//! The `ExecSemantics` table: value-level execution semantics of the
//! RV64 subset plus the SCD extension, written once and shared by every
//! executor in the workspace.
//!
//! Two machines interpret this ISA — the cycle model
//! (`scd-sim::Machine`) and the timing-free reference ISS (`scd-ref`) —
//! and their architectural results must agree bit for bit. The only way
//! to make that a structural property rather than a testing aspiration
//! is to write the data computation *once*: every function here is pure
//! (no state, no I/O, no timing), takes operand values, and returns the
//! result value. The executors own register files, memory, control flow
//! and timing; they call into this table for every data result.
//!
//! Anything semantically subtle lives here on purpose: RISC-V
//! division-by-zero and overflow fixups, shift-amount masking, `W`-form
//! sign extension, `fcvt.l.d` NaN/overflow saturation, and the
//! sign-injection bit games.

use crate::inst::{AluOp, BranchOp, FCmpOp, FpOp, LoadOp, Rounding, StoreOp};

const SIGN: u64 = 1 << 63;

/// Integer ALU semantics shared by the register and immediate forms.
#[inline]
pub fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 63),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Addw => (a as i32).wrapping_add(b as i32) as i64 as u64,
        AluOp::Subw => (a as i32).wrapping_sub(b as i32) as i64 as u64,
        AluOp::Sllw => ((a as i32) << (b & 31)) as i64 as u64,
        AluOp::Srlw => (((a as u32) >> (b & 31)) as i32) as i64 as u64,
        AluOp::Sraw => ((a as i32) >> (b & 31)) as i64 as u64,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        AluOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                a.wrapping_div(b) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                a.wrapping_rem(b) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::Mulw => (a as i32).wrapping_mul(b as i32) as i64 as u64,
        AluOp::Divw => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                u64::MAX
            } else if a == i32::MIN && b == -1 {
                a as i64 as u64
            } else {
                a.wrapping_div(b) as i64 as u64
            }
        }
        AluOp::Remw => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                a as i64 as u64
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a.wrapping_rem(b) as i64 as u64
            }
        }
        AluOp::Remuw => {
            let (a, b) = (a as u32, b as u32);
            (if b == 0 { a } else { a % b }) as i32 as i64 as u64
        }
    }
}

/// Conditional-branch comparison.
#[inline]
pub fn branch_taken(op: BranchOp, a: u64, b: u64) -> bool {
    match op {
        BranchOp::Beq => a == b,
        BranchOp::Bne => a != b,
        BranchOp::Blt => (a as i64) < (b as i64),
        BranchOp::Bge => (a as i64) >= (b as i64),
        BranchOp::Bltu => a < b,
        BranchOp::Bgeu => a >= b,
    }
}

/// Double-precision FP arithmetic on raw bit patterns (NaN payloads and
/// signed zeros round-trip untouched through `from_bits`/`to_bits`).
#[inline]
pub fn fp_op(op: FpOp, a_bits: u64, b_bits: u64) -> u64 {
    let a = f64::from_bits(a_bits);
    let b = f64::from_bits(b_bits);
    match op {
        FpOp::FaddD => (a + b).to_bits(),
        FpOp::FsubD => (a - b).to_bits(),
        FpOp::FmulD => (a * b).to_bits(),
        FpOp::FdivD => (a / b).to_bits(),
        FpOp::FminD => a.min(b).to_bits(),
        FpOp::FmaxD => a.max(b).to_bits(),
        FpOp::FsqrtD => a.sqrt().to_bits(),
        FpOp::FsgnjD => (a_bits & !SIGN) | (b_bits & SIGN),
        FpOp::FsgnjnD => (a_bits & !SIGN) | (!b_bits & SIGN),
        FpOp::FsgnjxD => a_bits ^ (b_bits & SIGN),
    }
}

/// Double-precision FP comparison on raw bit patterns.
#[inline]
pub fn fcmp(op: FCmpOp, a_bits: u64, b_bits: u64) -> bool {
    let a = f64::from_bits(a_bits);
    let b = f64::from_bits(b_bits);
    match op {
        FCmpOp::FeqD => a == b,
        FCmpOp::FltD => a < b,
        FCmpOp::FleD => a <= b,
    }
}

/// `fcvt.l.d`: double (raw bits) to signed 64-bit integer with RISC-V
/// saturation — NaN and +overflow go to `i64::MAX`, -overflow to
/// `i64::MIN`.
#[inline]
pub fn fcvt_l_d(a_bits: u64, rm: Rounding) -> u64 {
    let a = f64::from_bits(a_bits);
    let rounded = match rm {
        Rounding::Rne => a.round_ties_even(),
        Rounding::Rtz => a.trunc(),
        Rounding::Rdn => a.floor(),
    };
    let v = if rounded.is_nan() || rounded >= i64::MAX as f64 {
        i64::MAX
    } else if rounded <= i64::MIN as f64 {
        i64::MIN
    } else {
        rounded as i64
    };
    v as u64
}

/// `fcvt.d.l`: signed 64-bit integer to double, returned as raw bits.
#[inline]
pub fn fcvt_d_l(v: u64) -> u64 {
    (v as i64 as f64).to_bits()
}

/// Access width of a load, in bytes.
#[inline]
pub fn load_width(op: LoadOp) -> u64 {
    match op {
        LoadOp::Lb | LoadOp::Lbu => 1,
        LoadOp::Lh | LoadOp::Lhu => 2,
        LoadOp::Lw | LoadOp::Lwu => 4,
        LoadOp::Ld => 8,
    }
}

/// Extends the raw (zero-extended) memory value of a load to the full
/// 64-bit register value.
#[inline]
pub fn load_extend(op: LoadOp, raw: u64) -> u64 {
    match op {
        LoadOp::Lb => raw as u8 as i8 as i64 as u64,
        LoadOp::Lbu => raw as u8 as u64,
        LoadOp::Lh => raw as u16 as i16 as i64 as u64,
        LoadOp::Lhu => raw as u16 as u64,
        LoadOp::Lw => raw as u32 as i32 as i64 as u64,
        LoadOp::Lwu => raw as u32 as u64,
        LoadOp::Ld => raw,
    }
}

/// Access width of a store, in bytes.
#[inline]
pub fn store_width(op: StoreOp) -> u64 {
    match op {
        StoreOp::Sb => 1,
        StoreOp::Sh => 2,
        StoreOp::Sw => 4,
        StoreOp::Sd => 8,
    }
}

/// Truncates a register value to the store's access width (the value
/// the memory system actually receives).
#[inline]
pub fn store_truncate(op: StoreOp, v: u64) -> u64 {
    match op {
        StoreOp::Sb => v as u8 as u64,
        StoreOp::Sh => v as u16 as u64,
        StoreOp::Sw => v as u32 as u64,
        StoreOp::Sd => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn division_fixups() {
        assert_eq!(alu(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Div, i64::MIN as u64, -1i64 as u64), i64::MIN as u64);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Rem, i64::MIN as u64, -1i64 as u64), 0);
        assert_eq!(alu(AluOp::Divu, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
        assert_eq!(alu(AluOp::Divw, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Divw, i32::MIN as i64 as u64, -1i64 as u64), i32::MIN as i64 as u64);
        assert_eq!(alu(AluOp::Remw, 7, 0), 7);
        assert_eq!(alu(AluOp::Remuw, u32::MAX as u64, 0), u32::MAX as i32 as i64 as u64);
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(alu(AluOp::Sll, 1, 64), 1);
        assert_eq!(alu(AluOp::Srl, 2, 65), 1);
        assert_eq!(alu(AluOp::Sllw, 1, 32), 1);
        assert_eq!(alu(AluOp::Sraw, 0x8000_0000, 31), u64::MAX);
    }

    #[test]
    fn fcvt_saturates() {
        assert_eq!(fcvt_l_d(f64::NAN.to_bits(), Rounding::Rtz), i64::MAX as u64);
        assert_eq!(fcvt_l_d(1e300f64.to_bits(), Rounding::Rtz), i64::MAX as u64);
        assert_eq!(fcvt_l_d((-1e300f64).to_bits(), Rounding::Rtz), i64::MIN as u64);
        assert_eq!(fcvt_l_d(2.5f64.to_bits(), Rounding::Rne), 2);
        assert_eq!(fcvt_l_d(2.5f64.to_bits(), Rounding::Rdn), 2);
        assert_eq!(fcvt_l_d((-2.5f64).to_bits(), Rounding::Rdn), 0u64.wrapping_sub(3));
    }

    #[test]
    fn sign_injection_preserves_nan_payloads() {
        let nan = 0x7FF8_0000_0000_1234u64;
        assert_eq!(fp_op(FpOp::FsgnjD, nan, SIGN), nan | SIGN);
        assert_eq!(fp_op(FpOp::FsgnjnD, nan, SIGN), nan);
        assert_eq!(fp_op(FpOp::FsgnjxD, nan | SIGN, SIGN), nan);
    }

    #[test]
    fn load_extension_and_store_truncation() {
        assert_eq!(load_extend(LoadOp::Lb, 0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(load_extend(LoadOp::Lbu, 0x80), 0x80);
        assert_eq!(load_extend(LoadOp::Lw, 0x8000_0000), 0xFFFF_FFFF_8000_0000);
        assert_eq!(load_extend(LoadOp::Lwu, 0x8000_0000), 0x8000_0000);
        assert_eq!(store_truncate(StoreOp::Sb, 0x1FF), 0xFF);
        assert_eq!(store_truncate(StoreOp::Sw, u64::MAX), 0xFFFF_FFFF);
        assert_eq!(load_width(LoadOp::Lhu), 2);
        assert_eq!(store_width(StoreOp::Sd), 8);
    }
}
