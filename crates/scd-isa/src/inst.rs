//! Instruction set definition: an RV64 subset plus the SCD extension of
//! Table I in the paper (`setmask`, `<load>.op`, `bop`, `jru`, `jte.flush`).

use crate::reg::{FReg, Reg};
use std::fmt;

/// Conditional-branch comparison, RV64 B-type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq` — branch if equal.
    Beq,
    /// `bne` — branch if not equal.
    Bne,
    /// `blt` — branch if less than (signed).
    Blt,
    /// `bge` — branch if greater or equal (signed).
    Bge,
    /// `bltu` — branch if less than (unsigned).
    Bltu,
    /// `bgeu` — branch if greater or equal (unsigned).
    Bgeu,
}

impl BranchOp {
    /// All comparison kinds.
    pub const ALL: [BranchOp; 6] = [
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blt,
        BranchOp::Bge,
        BranchOp::Bltu,
        BranchOp::Bgeu,
    ];

    /// The funct3 field value of this operation.
    pub fn funct3(self) -> u32 {
        match self {
            BranchOp::Beq => 0b000,
            BranchOp::Bne => 0b001,
            BranchOp::Blt => 0b100,
            BranchOp::Bge => 0b101,
            BranchOp::Bltu => 0b110,
            BranchOp::Bgeu => 0b111,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Bge => "bge",
            BranchOp::Bltu => "bltu",
            BranchOp::Bgeu => "bgeu",
        }
    }
}

/// Load width/signedness, RV64 I-type loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// `lb` — load byte (sign-extended).
    Lb,
    /// `lh` — load halfword (sign-extended).
    Lh,
    /// `lw` — load word (sign-extended).
    Lw,
    /// `ld` — load doubleword.
    Ld,
    /// `lbu` — load byte (zero-extended).
    Lbu,
    /// `lhu` — load halfword (zero-extended).
    Lhu,
    /// `lwu` — load word (zero-extended).
    Lwu,
}

impl LoadOp {
    /// All load kinds.
    pub const ALL: [LoadOp; 7] = [
        LoadOp::Lb,
        LoadOp::Lh,
        LoadOp::Lw,
        LoadOp::Ld,
        LoadOp::Lbu,
        LoadOp::Lhu,
        LoadOp::Lwu,
    ];

    /// The funct3 field value of this operation.
    pub fn funct3(self) -> u32 {
        match self {
            LoadOp::Lb => 0b000,
            LoadOp::Lh => 0b001,
            LoadOp::Lw => 0b010,
            LoadOp::Ld => 0b011,
            LoadOp::Lbu => 0b100,
            LoadOp::Lhu => 0b101,
            LoadOp::Lwu => 0b110,
        }
    }

    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Ld => "ld",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
            LoadOp::Lwu => "lwu",
        }
    }
}

/// Store width, RV64 S-type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `sb` — store byte.
    Sb,
    /// `sh` — store halfword.
    Sh,
    /// `sw` — store word.
    Sw,
    /// `sd` — store doubleword.
    Sd,
}

impl StoreOp {
    /// All store kinds.
    pub const ALL: [StoreOp; 4] = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw, StoreOp::Sd];

    /// The funct3 field value of this operation.
    pub fn funct3(self) -> u32 {
        match self {
            StoreOp::Sb => 0b000,
            StoreOp::Sh => 0b001,
            StoreOp::Sw => 0b010,
            StoreOp::Sd => 0b011,
        }
    }

    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
            StoreOp::Sd => "sd",
        }
    }
}

/// Register-register / register-immediate integer ALU operation.
///
/// Not every member is legal in the immediate form; see
/// [`AluOp::has_imm_form`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add` — addition.
    Add,
    /// `sub` — subtraction.
    Sub,
    /// `sll` — shift left logical.
    Sll,
    /// `slt` — set if less than (signed).
    Slt,
    /// `sltu` — set if less than (unsigned).
    Sltu,
    /// `xor` — bitwise xor.
    Xor,
    /// `srl` — shift right logical.
    Srl,
    /// `sra` — shift right arithmetic.
    Sra,
    /// `or` — bitwise or.
    Or,
    /// `and` — bitwise and.
    And,
    // RV64 W (32-bit) forms
    /// `addw` — 32-bit addition (sign-extended).
    Addw,
    /// `subw` — 32-bit subtraction.
    Subw,
    /// `sllw` — 32-bit shift left.
    Sllw,
    /// `srlw` — 32-bit shift right logical.
    Srlw,
    /// `sraw` — 32-bit shift right arithmetic.
    Sraw,
    // M extension
    /// `mul` — multiply (low 64 bits).
    Mul,
    /// `mulh` — multiply high (signed x signed).
    Mulh,
    /// `mulhu` — multiply high (unsigned).
    Mulhu,
    /// `div` — signed division.
    Div,
    /// `divu` — unsigned division.
    Divu,
    /// `rem` — signed remainder.
    Rem,
    /// `remu` — unsigned remainder.
    Remu,
    /// `mulw` — 32-bit multiply.
    Mulw,
    /// `divw` — 32-bit signed division.
    Divw,
    /// `remw` — 32-bit signed remainder.
    Remw,
    /// `remuw` — 32-bit unsigned remainder.
    Remuw,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 26] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
        AluOp::Addw,
        AluOp::Subw,
        AluOp::Sllw,
        AluOp::Srlw,
        AluOp::Sraw,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Mulhu,
        AluOp::Div,
        AluOp::Divu,
        AluOp::Rem,
        AluOp::Remu,
        AluOp::Mulw,
        AluOp::Divw,
        AluOp::Remw,
        AluOp::Remuw,
    ];

    /// Whether the operation exists in an OP-IMM encoding
    /// (`addi`, `slti`, ..., `slliw`).
    pub fn has_imm_form(self) -> bool {
        matches!(
            self,
            AluOp::Add
                | AluOp::Slt
                | AluOp::Sltu
                | AluOp::Xor
                | AluOp::Or
                | AluOp::And
                | AluOp::Sll
                | AluOp::Srl
                | AluOp::Sra
                | AluOp::Addw
                | AluOp::Sllw
                | AluOp::Srlw
                | AluOp::Sraw
        )
    }

    /// Whether the operation is a shift (immediate form uses a shamt).
    pub fn is_shift(self) -> bool {
        matches!(
            self,
            AluOp::Sll | AluOp::Srl | AluOp::Sra | AluOp::Sllw | AluOp::Srlw | AluOp::Sraw
        )
    }

    /// Whether this is a 32-bit (`*w`) operation.
    pub fn is_word(self) -> bool {
        matches!(
            self,
            AluOp::Addw
                | AluOp::Subw
                | AluOp::Sllw
                | AluOp::Srlw
                | AluOp::Sraw
                | AluOp::Mulw
                | AluOp::Divw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }

    /// Whether this belongs to the M (multiply/divide) extension.
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::Mulw
                | AluOp::Divw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
            AluOp::Mulw => "mulw",
            AluOp::Divw => "divw",
            AluOp::Remw => "remw",
            AluOp::Remuw => "remuw",
        }
    }
}

/// Double-precision FP arithmetic (register-register, D extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `fadd.d` — double-precision add.
    FaddD,
    /// `fsub.d` — double-precision subtract.
    FsubD,
    /// `fmul.d` — double-precision multiply.
    FmulD,
    /// `fdiv.d` — double-precision divide.
    FdivD,
    /// `fmin.d` — double-precision minimum.
    FminD,
    /// `fmax.d` — double-precision maximum.
    FmaxD,
    /// `fsgnj.d` — sign-injection (copy sign).
    FsgnjD,
    /// `fsgnjn.d` — sign-injection (negated sign).
    FsgnjnD,
    /// `fsgnjx.d` — sign-injection (xor sign).
    FsgnjxD,
    /// `fsqrt.d` — double-precision square root.
    FsqrtD,
}

impl FpOp {
    /// All FP operations.
    pub const ALL: [FpOp; 10] = [
        FpOp::FaddD,
        FpOp::FsubD,
        FpOp::FmulD,
        FpOp::FdivD,
        FpOp::FminD,
        FpOp::FmaxD,
        FpOp::FsgnjD,
        FpOp::FsgnjnD,
        FpOp::FsgnjxD,
        FpOp::FsqrtD,
    ];

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::FaddD => "fadd.d",
            FpOp::FsubD => "fsub.d",
            FpOp::FmulD => "fmul.d",
            FpOp::FdivD => "fdiv.d",
            FpOp::FminD => "fmin.d",
            FpOp::FmaxD => "fmax.d",
            FpOp::FsgnjD => "fsgnj.d",
            FpOp::FsgnjnD => "fsgnjn.d",
            FpOp::FsgnjxD => "fsgnjx.d",
            FpOp::FsqrtD => "fsqrt.d",
        }
    }
}

/// FP compare writing an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpOp {
    /// FP compare: equal.
    FeqD,
    /// FP compare: less than.
    FltD,
    /// FP compare: less or equal.
    FleD,
}

impl FCmpOp {
    /// All FP comparisons.
    pub const ALL: [FCmpOp; 3] = [FCmpOp::FeqD, FCmpOp::FltD, FCmpOp::FleD];

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpOp::FeqD => "feq.d",
            FCmpOp::FltD => "flt.d",
            FCmpOp::FleD => "fle.d",
        }
    }
}

/// Rounding mode for `fcvt.l.d` (we only model the modes the guest uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rounding {
    /// Round to nearest, ties to even.
    Rne,
    /// Round towards zero (truncate).
    Rtz,
    /// Round down (floor).
    Rdn,
}

impl Rounding {
    /// All modeled rounding modes.
    pub const ALL: [Rounding; 3] = [Rounding::Rne, Rounding::Rtz, Rounding::Rdn];

    /// The rm field encoding.
    pub fn field(self) -> u32 {
        match self {
            Rounding::Rne => 0b000,
            Rounding::Rtz => 0b001,
            Rounding::Rdn => 0b010,
        }
    }
}

/// One decoded instruction of the simulated machine.
///
/// Field names follow RISC-V conventions (`rd` destination, `rs1`/`rs2`
/// sources, `imm`/`offset` immediates). The five SCD instructions
/// (Table I of the paper) carry a *branch ID* (`bid`) so that multiple
/// jump tables can be tracked simultaneously (Section IV, "Supporting
/// multiple jump tables").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // RISC-V field names are the documentation
pub enum Inst {
    /// `lui rd, imm` — load upper immediate.
    Lui { rd: Reg, imm: i64 },
    /// `auipc rd, imm` — add upper immediate to PC.
    Auipc { rd: Reg, imm: i64 },
    /// `jal rd, offset` — direct jump and link.
    Jal { rd: Reg, offset: i64 },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i64 },
    /// Conditional branch.
    Branch { op: BranchOp, rs1: Reg, rs2: Reg, offset: i64 },
    /// Memory load into an integer register.
    Load { op: LoadOp, rd: Reg, rs1: Reg, offset: i64 },
    /// Memory store from an integer register.
    Store { op: StoreOp, rs2: Reg, rs1: Reg, offset: i64 },
    /// Register-immediate ALU operation.
    OpImm { op: AluOp, rd: Reg, rs1: Reg, imm: i64 },
    /// Register-register ALU operation.
    Op { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `fld fd, offset(rs1)` — FP load.
    Fld { rd: FReg, rs1: Reg, offset: i64 },
    /// `fsd fs2, offset(rs1)` — FP store.
    Fsd { rs2: FReg, rs1: Reg, offset: i64 },
    /// Double-precision FP arithmetic.
    FOp { op: FpOp, rd: FReg, rs1: FReg, rs2: FReg },
    /// FP comparison writing an integer register.
    FCmp { op: FCmpOp, rd: Reg, rs1: FReg, rs2: FReg },
    /// `fcvt.l.d rd, fs1, rm` — double to 64-bit signed integer.
    FcvtLD { rd: Reg, rs1: FReg, rm: Rounding },
    /// `fcvt.d.l fd, rs1` — 64-bit signed integer to double.
    FcvtDL { rd: FReg, rs1: Reg },
    /// `fmv.x.d rd, fs1` — raw bit move f-reg to x-reg.
    FmvXD { rd: Reg, rs1: FReg },
    /// `fmv.d.x fd, rs1` — raw bit move x-reg to f-reg.
    FmvDX { rd: FReg, rs1: Reg },
    /// Environment call: used as the guest's halt / host-service gateway.
    Ecall,
    /// Breakpoint: the guest interpreters use it as a trap on dynamic
    /// errors (the simulator reports it as [`a guest
    /// fault`](crate::inst::Inst::Ebreak)).
    Ebreak,
    /// Memory fence (a timing no-op in this model).
    Fence,

    // ---- SCD extension (Table I) ----
    /// `setmask` — Rmask\[bid\] <- rs1.
    SetMask { bid: u8, rs1: Reg },
    /// `bop` — branch-on-opcode: BTB lookup keyed by Rop\[bid\].
    Bop { bid: u8 },
    /// `jru` — jump-register-with-JTE-update.
    Jru { bid: u8, rs1: Reg },
    /// `jte.flush` — invalidate all JTEs in the BTB.
    JteFlush,
    /// A load with the `.op` suffix: also writes `result & Rmask\[bid\]`
    /// into Rop\[bid\] and sets Rop\[bid\].v.
    LoadOp { op: LoadOp, bid: u8, rd: Reg, rs1: Reg, offset: i64 },
}

impl Inst {
    /// True if the instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. }
                | Inst::Jalr { .. }
                | Inst::Branch { .. }
                | Inst::Bop { .. }
                | Inst::Jru { .. }
        )
    }

    /// True if the instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Fld { .. } | Inst::LoadOp { .. }
        )
    }

    /// True if the instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Fsd { .. })
    }

    /// The destination integer register, if any (x0 returned as-is).
    pub fn def_xreg(&self) -> Option<Reg> {
        match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::FCmp { rd, .. }
            | Inst::FcvtLD { rd, .. }
            | Inst::FmvXD { rd, .. }
            | Inst::LoadOp { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// The destination FP register, if any.
    pub fn def_freg(&self) -> Option<FReg> {
        match *self {
            Inst::Fld { rd, .. }
            | Inst::FOp { rd, .. }
            | Inst::FcvtDL { rd, .. }
            | Inst::FmvDX { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Source integer registers (up to two).
    pub fn use_xregs(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Jalr { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::Fld { rs1, .. }
            | Inst::OpImm { rs1, .. }
            | Inst::FcvtDL { rs1, .. }
            | Inst::FmvDX { rs1, .. }
            | Inst::SetMask { rs1, .. }
            | Inst::Jru { rs1, .. }
            | Inst::LoadOp { rs1, .. } => [Some(rs1), None],
            Inst::Branch { rs1, rs2, .. } | Inst::Op { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Store { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Fsd { rs1, .. } => [Some(rs1), None],
            _ => [None, None],
        }
    }

    /// Source FP registers (up to two).
    pub fn use_fregs(&self) -> [Option<FReg>; 2] {
        match *self {
            Inst::FOp { rs1, rs2, .. } | Inst::FCmp { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::FcvtLD { rs1, .. } | Inst::FmvXD { rs1, .. } => [Some(rs1), None],
            Inst::Fsd { rs2, .. } => [Some(rs2), None],
            _ => [None, None],
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm >> 12) & 0xfffff),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm >> 12) & 0xfffff),
            Inst::Jal { rd, offset } => {
                if rd.is_zero() {
                    write!(f, "j {offset:+}")
                } else {
                    write!(f, "jal {rd}, {offset:+}")
                }
            }
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch { op, rs1, rs2, offset } => {
                write!(f, "{} {rs1}, {rs2}, {offset:+}", op.mnemonic())
            }
            Inst::Load { op, rd, rs1, offset } => {
                write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic())
            }
            Inst::Store { op, rs2, rs1, offset } => {
                write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic())
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let m = op.mnemonic();
                if op.is_word() {
                    // addiw, slliw, ... : immediate mnemonics insert the i
                    // before the trailing w.
                    let base = &m[..m.len() - 1];
                    write!(f, "{base}iw {rd}, {rs1}, {imm}")
                } else {
                    write!(f, "{m}i {rd}, {rs1}, {imm}")
                }
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::Fld { rd, rs1, offset } => write!(f, "fld {rd}, {offset}({rs1})"),
            Inst::Fsd { rs2, rs1, offset } => write!(f, "fsd {rs2}, {offset}({rs1})"),
            Inst::FOp { op, rd, rs1, rs2 } => {
                if op == FpOp::FsqrtD {
                    write!(f, "fsqrt.d {rd}, {rs1}")
                } else {
                    write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
                }
            }
            Inst::FCmp { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::FcvtLD { rd, rs1, rm } => write!(f, "fcvt.l.d {rd}, {rs1}, {rm:?}"),
            Inst::FcvtDL { rd, rs1 } => write!(f, "fcvt.d.l {rd}, {rs1}"),
            Inst::FmvXD { rd, rs1 } => write!(f, "fmv.x.d {rd}, {rs1}"),
            Inst::FmvDX { rd, rs1 } => write!(f, "fmv.d.x {rd}, {rs1}"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Ebreak => write!(f, "ebreak"),
            Inst::Fence => write!(f, "fence"),
            Inst::SetMask { bid, rs1 } => write!(f, "setmask.{bid} {rs1}"),
            Inst::Bop { bid } => write!(f, "bop.{bid}"),
            Inst::Jru { bid, rs1 } => write!(f, "jru.{bid} {rs1}"),
            Inst::JteFlush => write!(f, "jte.flush"),
            Inst::LoadOp { op, bid, rd, rs1, offset } => {
                write!(f, "{}.op.{bid} {rd}, {offset}({rs1})", op.mnemonic())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let i = Inst::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, imm: -4 };
        assert_eq!(i.to_string(), "addi a0, a1, -4");
        let i = Inst::OpImm { op: AluOp::Addw, rd: Reg::A0, rs1: Reg::A1, imm: 4 };
        assert_eq!(i.to_string(), "addiw a0, a1, 4");
        let i = Inst::Bop { bid: 0 };
        assert_eq!(i.to_string(), "bop.0");
        let i = Inst::LoadOp { op: LoadOp::Lw, bid: 1, rd: Reg::A0, rs1: Reg::T0, offset: 0 };
        assert_eq!(i.to_string(), "lw.op.1 a0, 0(t0)");
    }

    #[test]
    fn def_use_classification() {
        let i = Inst::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        assert_eq!(i.def_xreg(), Some(Reg::A0));
        assert_eq!(i.use_xregs(), [Some(Reg::A1), Some(Reg::A2)]);
        assert!(!i.is_control());
        assert!(Inst::Bop { bid: 0 }.is_control());
        assert!(Inst::Jru { bid: 0, rs1: Reg::T0 }.is_control());
        let ld = Inst::LoadOp { op: LoadOp::Lw, bid: 0, rd: Reg::A0, rs1: Reg::T0, offset: 0 };
        assert!(ld.is_load());
        assert_eq!(ld.def_xreg(), Some(Reg::A0));
    }

    #[test]
    fn imm_form_validity() {
        assert!(AluOp::Add.has_imm_form());
        assert!(!AluOp::Sub.has_imm_form());
        assert!(!AluOp::Mul.has_imm_form());
        assert!(AluOp::Sllw.has_imm_form());
        assert!(AluOp::Sllw.is_shift());
        assert!(AluOp::Remuw.is_word());
        assert!(AluOp::Remuw.is_muldiv());
    }
}
