//! Integer and floating-point architectural registers.

use std::fmt;

/// An integer (x) register of the simulated RV64-subset core.
///
/// `X0` is hard-wired to zero, as in RISC-V. The ABI aliases used by the
/// guest interpreters are provided as associated constants (`Reg::RA`,
/// `Reg::SP`, `Reg::A0`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its index.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "register index out of range");
        Reg(n)
    }

    /// The register index (0..=31).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// True for `x0`, the hard-wired zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `x0` — x0 (hard-wired zero).
    pub const X0: Reg = Reg(0);
    /// `zero` — zero (alias of x0).
    pub const ZERO: Reg = Reg(0);
    /// `ra` — return address.
    pub const RA: Reg = Reg(1);
    /// `sp` — stack pointer.
    pub const SP: Reg = Reg(2);
    /// `gp` — global pointer.
    pub const GP: Reg = Reg(3);
    /// `tp` — thread pointer.
    pub const TP: Reg = Reg(4);
    /// `t0` — temporary register.
    pub const T0: Reg = Reg(5);
    /// `t1` — temporary register.
    pub const T1: Reg = Reg(6);
    /// `t2` — temporary register.
    pub const T2: Reg = Reg(7);
    /// `s0` — callee-saved register.
    pub const S0: Reg = Reg(8);
    /// `s1` — callee-saved register.
    pub const S1: Reg = Reg(9);
    /// `a0` — argument/result register.
    pub const A0: Reg = Reg(10);
    /// `a1` — argument/result register.
    pub const A1: Reg = Reg(11);
    /// `a2` — argument/result register.
    pub const A2: Reg = Reg(12);
    /// `a3` — argument/result register.
    pub const A3: Reg = Reg(13);
    /// `a4` — argument/result register.
    pub const A4: Reg = Reg(14);
    /// `a5` — argument/result register.
    pub const A5: Reg = Reg(15);
    /// `a6` — argument/result register.
    pub const A6: Reg = Reg(16);
    /// `a7` — argument/result register.
    pub const A7: Reg = Reg(17);
    /// `s2` — callee-saved register.
    pub const S2: Reg = Reg(18);
    /// `s3` — callee-saved register.
    pub const S3: Reg = Reg(19);
    /// `s4` — callee-saved register.
    pub const S4: Reg = Reg(20);
    /// `s5` — callee-saved register.
    pub const S5: Reg = Reg(21);
    /// `s6` — callee-saved register.
    pub const S6: Reg = Reg(22);
    /// `s7` — callee-saved register.
    pub const S7: Reg = Reg(23);
    /// `s8` — callee-saved register.
    pub const S8: Reg = Reg(24);
    /// `s9` — callee-saved register.
    pub const S9: Reg = Reg(25);
    /// `s10` — callee-saved register.
    pub const S10: Reg = Reg(26);
    /// `s11` — callee-saved register.
    pub const S11: Reg = Reg(27);
    /// `t3` — temporary register.
    pub const T3: Reg = Reg(28);
    /// `t4` — temporary register.
    pub const T4: Reg = Reg(29);
    /// `t5` — temporary register.
    pub const T5: Reg = Reg(30);
    /// `t6` — temporary register.
    pub const T6: Reg = Reg(31);
}

const X_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(X_NAMES[self.index()])
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

/// A floating-point (f) register holding a raw 64-bit IEEE-754 double.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(u8);

impl FReg {
    /// Creates a floating-point register from its index.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub const fn new(n: u8) -> Self {
        assert!(n < 32, "fp register index out of range");
        FReg(n)
    }

    /// The register index (0..=31).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// `ft0` — FP temporary register.
    pub const FT0: FReg = FReg(0);
    /// `ft1` — FP temporary register.
    pub const FT1: FReg = FReg(1);
    /// `ft2` — FP temporary register.
    pub const FT2: FReg = FReg(2);
    /// `ft3` — FP temporary register.
    pub const FT3: FReg = FReg(3);
    /// `ft4` — FP temporary register.
    pub const FT4: FReg = FReg(4);
    /// `ft5` — FP temporary register.
    pub const FT5: FReg = FReg(5);
    /// `ft6` — FP temporary register.
    pub const FT6: FReg = FReg(6);
    /// `ft7` — FP temporary register.
    pub const FT7: FReg = FReg(7);
    /// `fs0` — FP callee-saved register.
    pub const FS0: FReg = FReg(8);
    /// `fs1` — FP callee-saved register.
    pub const FS1: FReg = FReg(9);
    /// `fa0` — FP argument/result register.
    pub const FA0: FReg = FReg(10);
    /// `fa1` — FP argument/result register.
    pub const FA1: FReg = FReg(11);
    /// `fa2` — FP argument/result register.
    pub const FA2: FReg = FReg(12);
    /// `fa3` — FP argument/result register.
    pub const FA3: FReg = FReg(13);
    /// `fa4` — FP argument/result register.
    pub const FA4: FReg = FReg(14);
    /// `fa5` — FP argument/result register.
    pub const FA5: FReg = FReg(15);
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<FReg> for u8 {
    fn from(r: FReg) -> u8 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::S11.to_string(), "s11");
        assert_eq!(FReg::FA0.to_string(), "f10");
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::X0.is_zero());
        assert!(!Reg::RA.is_zero());
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..32u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
            assert_eq!(FReg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }
}
