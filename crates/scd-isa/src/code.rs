//! Binary encoding and decoding of instructions.
//!
//! Standard instructions use the real RISC-V encodings (R/I/S/B/U/J
//! formats). The SCD extension lives in the *custom-0* (`0001011`) and
//! *custom-1* (`0101011`) major opcodes:
//!
//! * custom-0, funct3 0/1/2/3 = `setmask` / `bop` / `jru` / `jte.flush`,
//!   with the branch ID in funct7.
//! * custom-1 = `.op`-suffixed loads; funct3 is the load width as in the
//!   standard LOAD opcode, the branch ID occupies imm\[11:10\] and the
//!   displacement the remaining imm\[9:0\] (0..=1023 — the guest
//!   interpreters only ever use small non-negative displacements here).

use crate::inst::*;
use crate::reg::{FReg, Reg};
use std::fmt;

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OPIMM: u32 = 0b0010011;
const OPC_OPIMM32: u32 = 0b0011011;
const OPC_OP: u32 = 0b0110011;
const OPC_OP32: u32 = 0b0111011;
const OPC_LOADFP: u32 = 0b0000111;
const OPC_STOREFP: u32 = 0b0100111;
const OPC_OPFP: u32 = 0b1010011;
const OPC_SYSTEM: u32 = 0b1110011;
const OPC_MISCMEM: u32 = 0b0001111;
const OPC_CUSTOM0: u32 = 0b0001011;
const OPC_CUSTOM1: u32 = 0b0101011;

/// Error produced when a 32-bit word does not decode to a known
/// instruction, or an instruction's fields do not fit its encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The word does not correspond to any instruction in the subset.
    Illegal {
        /// The offending instruction word.
        word: u32,
    },
    /// A field value cannot be represented in the encoding.
    FieldRange {
        /// Which field overflowed.
        what: &'static str,
        /// The out-of-range value.
        value: i64,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::Illegal { word } => write!(f, "illegal instruction word {word:#010x}"),
            CodeError::FieldRange { what, value } => {
                write!(f, "{what} value {value} does not fit its encoding")
            }
        }
    }
}

impl std::error::Error for CodeError {}

fn x(r: Reg) -> u32 {
    r.index() as u32
}
fn fr(r: FReg) -> u32 {
    r.index() as u32
}

fn check_range(what: &'static str, v: i64, lo: i64, hi: i64) -> Result<(), CodeError> {
    if v < lo || v > hi {
        return Err(CodeError::FieldRange { what, value: v });
    }
    Ok(())
}

fn enc_r(opcode: u32, funct3: u32, funct7: u32, rd: u32, rs1: u32, rs2: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn enc_i(opcode: u32, funct3: u32, rd: u32, rs1: u32, imm: i64) -> u32 {
    let imm = (imm as u32) & 0xfff;
    (imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn enc_s(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i64) -> u32 {
    let imm = (imm as u32) & 0xfff;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((imm & 0x1f) << 7) | opcode
}

fn enc_b(opcode: u32, funct3: u32, rs1: u32, rs2: u32, off: i64) -> u32 {
    let imm = off as u32;
    let b12 = (imm >> 12) & 1;
    let b11 = (imm >> 11) & 1;
    let b10_5 = (imm >> 5) & 0x3f;
    let b4_1 = (imm >> 1) & 0xf;
    (b12 << 31)
        | (b10_5 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (b4_1 << 8)
        | (b11 << 7)
        | opcode
}

fn enc_u(opcode: u32, rd: u32, imm: i64) -> u32 {
    ((imm as u32) & 0xfffff000) | (rd << 7) | opcode
}

fn enc_j(opcode: u32, rd: u32, off: i64) -> u32 {
    let imm = off as u32;
    let b20 = (imm >> 20) & 1;
    let b19_12 = (imm >> 12) & 0xff;
    let b11 = (imm >> 11) & 1;
    let b10_1 = (imm >> 1) & 0x3ff;
    (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | opcode
}

fn alu_functs(op: AluOp) -> (u32, u32) {
    // (funct3, funct7)
    match op {
        AluOp::Add | AluOp::Addw => (0b000, 0),
        AluOp::Sub | AluOp::Subw => (0b000, 0b0100000),
        AluOp::Sll | AluOp::Sllw => (0b001, 0),
        AluOp::Slt => (0b010, 0),
        AluOp::Sltu => (0b011, 0),
        AluOp::Xor => (0b100, 0),
        AluOp::Srl | AluOp::Srlw => (0b101, 0),
        AluOp::Sra | AluOp::Sraw => (0b101, 0b0100000),
        AluOp::Or => (0b110, 0),
        AluOp::And => (0b111, 0),
        AluOp::Mul | AluOp::Mulw => (0b000, 1),
        AluOp::Mulh => (0b001, 1),
        AluOp::Mulhu => (0b011, 1),
        AluOp::Div | AluOp::Divw => (0b100, 1),
        AluOp::Divu => (0b101, 1),
        AluOp::Rem | AluOp::Remw => (0b110, 1),
        AluOp::Remu | AluOp::Remuw => (0b111, 1),
    }
}

/// Encodes an instruction to its 32-bit word.
///
/// # Errors
/// Returns [`CodeError::FieldRange`] when an immediate or displacement does
/// not fit the instruction format (e.g. a branch offset beyond ±4 KiB).
pub fn encode(inst: Inst) -> Result<u32, CodeError> {
    Ok(match inst {
        Inst::Lui { rd, imm } => {
            check_range("lui imm", imm, -(1 << 31), (1 << 31) - 1)?;
            if imm & 0xfff != 0 {
                return Err(CodeError::FieldRange { what: "lui imm low bits", value: imm });
            }
            enc_u(OPC_LUI, x(rd), imm)
        }
        Inst::Auipc { rd, imm } => {
            if imm & 0xfff != 0 {
                return Err(CodeError::FieldRange { what: "auipc imm low bits", value: imm });
            }
            enc_u(OPC_AUIPC, x(rd), imm)
        }
        Inst::Jal { rd, offset } => {
            check_range("jal offset", offset, -(1 << 20), (1 << 20) - 2)?;
            if offset & 1 != 0 {
                return Err(CodeError::FieldRange { what: "jal offset alignment", value: offset });
            }
            enc_j(OPC_JAL, x(rd), offset)
        }
        Inst::Jalr { rd, rs1, offset } => {
            check_range("jalr offset", offset, -2048, 2047)?;
            enc_i(OPC_JALR, 0, x(rd), x(rs1), offset)
        }
        Inst::Branch { op, rs1, rs2, offset } => {
            check_range("branch offset", offset, -4096, 4094)?;
            if offset & 1 != 0 {
                return Err(CodeError::FieldRange { what: "branch offset alignment", value: offset });
            }
            enc_b(OPC_BRANCH, op.funct3(), x(rs1), x(rs2), offset)
        }
        Inst::Load { op, rd, rs1, offset } => {
            check_range("load offset", offset, -2048, 2047)?;
            enc_i(OPC_LOAD, op.funct3(), x(rd), x(rs1), offset)
        }
        Inst::Store { op, rs2, rs1, offset } => {
            check_range("store offset", offset, -2048, 2047)?;
            enc_s(OPC_STORE, op.funct3(), x(rs1), x(rs2), offset)
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            if !op.has_imm_form() {
                return Err(CodeError::FieldRange { what: "op without imm form", value: imm });
            }
            let (f3, f7) = alu_functs(op);
            let opcode = if op.is_word() { OPC_OPIMM32 } else { OPC_OPIMM };
            if op.is_shift() {
                let max = if op.is_word() { 31 } else { 63 };
                check_range("shamt", imm, 0, max)?;
                let hi = (f7 as i64) << 5;
                enc_i(opcode, f3, x(rd), x(rs1), hi | imm)
            } else {
                check_range("op imm", imm, -2048, 2047)?;
                enc_i(opcode, f3, x(rd), x(rs1), imm)
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (f3, f7) = alu_functs(op);
            let opcode = if op.is_word() { OPC_OP32 } else { OPC_OP };
            enc_r(opcode, f3, f7, x(rd), x(rs1), x(rs2))
        }
        Inst::Fld { rd, rs1, offset } => {
            check_range("fld offset", offset, -2048, 2047)?;
            enc_i(OPC_LOADFP, 0b011, fr(rd), x(rs1), offset)
        }
        Inst::Fsd { rs2, rs1, offset } => {
            check_range("fsd offset", offset, -2048, 2047)?;
            enc_s(OPC_STOREFP, 0b011, x(rs1), fr(rs2), offset)
        }
        Inst::FOp { op, rd, rs1, rs2 } => match op {
            FpOp::FaddD => enc_r(OPC_OPFP, 0b111, 0b0000001, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FsubD => enc_r(OPC_OPFP, 0b111, 0b0000101, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FmulD => enc_r(OPC_OPFP, 0b111, 0b0001001, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FdivD => enc_r(OPC_OPFP, 0b111, 0b0001101, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FsgnjD => enc_r(OPC_OPFP, 0b000, 0b0010001, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FsgnjnD => enc_r(OPC_OPFP, 0b001, 0b0010001, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FsgnjxD => enc_r(OPC_OPFP, 0b010, 0b0010001, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FminD => enc_r(OPC_OPFP, 0b000, 0b0010101, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FmaxD => enc_r(OPC_OPFP, 0b001, 0b0010101, fr(rd), fr(rs1), fr(rs2)),
            FpOp::FsqrtD => enc_r(OPC_OPFP, 0b111, 0b0101101, fr(rd), fr(rs1), 0),
        },
        Inst::FCmp { op, rd, rs1, rs2 } => {
            let f3 = match op {
                FCmpOp::FleD => 0b000,
                FCmpOp::FltD => 0b001,
                FCmpOp::FeqD => 0b010,
            };
            enc_r(OPC_OPFP, f3, 0b1010001, x(rd), fr(rs1), fr(rs2))
        }
        Inst::FcvtLD { rd, rs1, rm } => enc_r(OPC_OPFP, rm.field(), 0b1100001, x(rd), fr(rs1), 2),
        Inst::FcvtDL { rd, rs1 } => enc_r(OPC_OPFP, 0b111, 0b1101001, fr(rd), x(rs1), 2),
        Inst::FmvXD { rd, rs1 } => enc_r(OPC_OPFP, 0b000, 0b1110001, x(rd), fr(rs1), 0),
        Inst::FmvDX { rd, rs1 } => enc_r(OPC_OPFP, 0b000, 0b1111001, fr(rd), x(rs1), 0),
        Inst::Ecall => enc_i(OPC_SYSTEM, 0, 0, 0, 0),
        Inst::Ebreak => enc_i(OPC_SYSTEM, 0, 0, 0, 1),
        Inst::Fence => enc_i(OPC_MISCMEM, 0, 0, 0, 0),
        Inst::SetMask { bid, rs1 } => {
            check_range("branch id", bid as i64, 0, 3)?;
            enc_r(OPC_CUSTOM0, 0, bid as u32, 0, x(rs1), 0)
        }
        Inst::Bop { bid } => {
            check_range("branch id", bid as i64, 0, 3)?;
            enc_r(OPC_CUSTOM0, 1, bid as u32, 0, 0, 0)
        }
        Inst::Jru { bid, rs1 } => {
            check_range("branch id", bid as i64, 0, 3)?;
            enc_r(OPC_CUSTOM0, 2, bid as u32, 0, x(rs1), 0)
        }
        Inst::JteFlush => enc_r(OPC_CUSTOM0, 3, 0, 0, 0, 0),
        Inst::LoadOp { op, bid, rd, rs1, offset } => {
            check_range("branch id", bid as i64, 0, 3)?;
            check_range(".op load offset", offset, 0, 1023)?;
            let imm = ((bid as i64) << 10) | offset;
            enc_i(OPC_CUSTOM1, op.funct3(), x(rd), x(rs1), imm)
        }
    })
}

fn dec_i_imm(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}

fn dec_s_imm(w: u32) -> i64 {
    let hi = ((w as i32) >> 25) as i64; // sign-extended imm[11:5]
    let lo = ((w >> 7) & 0x1f) as i64;
    (hi << 5) | lo
}

fn dec_b_off(w: u32) -> i64 {
    let b12 = ((w as i32) >> 31) as i64; // sign
    let b11 = ((w >> 7) & 1) as i64;
    let b10_5 = ((w >> 25) & 0x3f) as i64;
    let b4_1 = ((w >> 8) & 0xf) as i64;
    (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}

fn dec_j_off(w: u32) -> i64 {
    let b20 = ((w as i32) >> 31) as i64; // sign
    let b19_12 = ((w >> 12) & 0xff) as i64;
    let b11 = ((w >> 20) & 1) as i64;
    let b10_1 = ((w >> 21) & 0x3ff) as i64;
    (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

fn dec_reg(n: u32) -> Reg {
    Reg::new((n & 0x1f) as u8)
}
fn dec_freg(n: u32) -> FReg {
    FReg::new((n & 0x1f) as u8)
}

fn dec_load_op(f3: u32) -> Option<LoadOp> {
    Some(match f3 {
        0b000 => LoadOp::Lb,
        0b001 => LoadOp::Lh,
        0b010 => LoadOp::Lw,
        0b011 => LoadOp::Ld,
        0b100 => LoadOp::Lbu,
        0b101 => LoadOp::Lhu,
        0b110 => LoadOp::Lwu,
        _ => return None,
    })
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
/// Returns [`CodeError::Illegal`] for words outside the implemented subset.
pub fn decode(w: u32) -> Result<Inst, CodeError> {
    let opcode = w & 0x7f;
    let rd = (w >> 7) & 0x1f;
    let f3 = (w >> 12) & 0x7;
    let rs1 = (w >> 15) & 0x1f;
    let rs2 = (w >> 20) & 0x1f;
    let f7 = (w >> 25) & 0x7f;
    let ill = || CodeError::Illegal { word: w };

    Ok(match opcode {
        OPC_LUI => Inst::Lui { rd: dec_reg(rd), imm: (w & 0xfffff000) as i32 as i64 },
        OPC_AUIPC => Inst::Auipc { rd: dec_reg(rd), imm: (w & 0xfffff000) as i32 as i64 },
        OPC_JAL => Inst::Jal { rd: dec_reg(rd), offset: dec_j_off(w) },
        OPC_JALR => {
            if f3 != 0 {
                return Err(ill());
            }
            Inst::Jalr { rd: dec_reg(rd), rs1: dec_reg(rs1), offset: dec_i_imm(w) }
        }
        OPC_BRANCH => {
            let op = BranchOp::ALL
                .into_iter()
                .find(|b| b.funct3() == f3)
                .ok_or_else(ill)?;
            Inst::Branch { op, rs1: dec_reg(rs1), rs2: dec_reg(rs2), offset: dec_b_off(w) }
        }
        OPC_LOAD => {
            let op = dec_load_op(f3).ok_or_else(ill)?;
            Inst::Load { op, rd: dec_reg(rd), rs1: dec_reg(rs1), offset: dec_i_imm(w) }
        }
        OPC_STORE => {
            let op = StoreOp::ALL
                .into_iter()
                .find(|s| s.funct3() == f3)
                .ok_or_else(ill)?;
            Inst::Store { op, rs2: dec_reg(rs2), rs1: dec_reg(rs1), offset: dec_s_imm(w) }
        }
        OPC_OPIMM | OPC_OPIMM32 => {
            let word = opcode == OPC_OPIMM32;
            let op = match (f3, word) {
                (0b000, false) => AluOp::Add,
                (0b000, true) => AluOp::Addw,
                (0b010, false) => AluOp::Slt,
                (0b011, false) => AluOp::Sltu,
                (0b100, false) => AluOp::Xor,
                (0b110, false) => AluOp::Or,
                (0b111, false) => AluOp::And,
                (0b001, false) => AluOp::Sll,
                (0b001, true) => AluOp::Sllw,
                (0b101, _) => {
                    let arith = (w >> 30) & 1 == 1;
                    match (arith, word) {
                        (false, false) => AluOp::Srl,
                        (true, false) => AluOp::Sra,
                        (false, true) => AluOp::Srlw,
                        (true, true) => AluOp::Sraw,
                    }
                }
                _ => return Err(ill()),
            };
            let imm = if op.is_shift() {
                let mask = if op.is_word() { 0x1f } else { 0x3f };
                dec_i_imm(w) & mask
            } else {
                dec_i_imm(w)
            };
            Inst::OpImm { op, rd: dec_reg(rd), rs1: dec_reg(rs1), imm }
        }
        OPC_OP | OPC_OP32 => {
            let word = opcode == OPC_OP32;
            let op = AluOp::ALL
                .into_iter()
                .filter(|o| o.is_word() == word)
                .find(|o| alu_functs(*o) == (f3, f7))
                .ok_or_else(ill)?;
            Inst::Op { op, rd: dec_reg(rd), rs1: dec_reg(rs1), rs2: dec_reg(rs2) }
        }
        OPC_LOADFP => {
            if f3 != 0b011 {
                return Err(ill());
            }
            Inst::Fld { rd: dec_freg(rd), rs1: dec_reg(rs1), offset: dec_i_imm(w) }
        }
        OPC_STOREFP => {
            if f3 != 0b011 {
                return Err(ill());
            }
            Inst::Fsd { rs2: dec_freg(rs2), rs1: dec_reg(rs1), offset: dec_s_imm(w) }
        }
        OPC_OPFP => match f7 {
            0b0000001 => Inst::FOp { op: FpOp::FaddD, rd: dec_freg(rd), rs1: dec_freg(rs1), rs2: dec_freg(rs2) },
            0b0000101 => Inst::FOp { op: FpOp::FsubD, rd: dec_freg(rd), rs1: dec_freg(rs1), rs2: dec_freg(rs2) },
            0b0001001 => Inst::FOp { op: FpOp::FmulD, rd: dec_freg(rd), rs1: dec_freg(rs1), rs2: dec_freg(rs2) },
            0b0001101 => Inst::FOp { op: FpOp::FdivD, rd: dec_freg(rd), rs1: dec_freg(rs1), rs2: dec_freg(rs2) },
            0b0101101 => Inst::FOp { op: FpOp::FsqrtD, rd: dec_freg(rd), rs1: dec_freg(rs1), rs2: FReg::FT0 },
            0b0010001 => {
                let op = match f3 {
                    0b000 => FpOp::FsgnjD,
                    0b001 => FpOp::FsgnjnD,
                    0b010 => FpOp::FsgnjxD,
                    _ => return Err(ill()),
                };
                Inst::FOp { op, rd: dec_freg(rd), rs1: dec_freg(rs1), rs2: dec_freg(rs2) }
            }
            0b0010101 => {
                let op = match f3 {
                    0b000 => FpOp::FminD,
                    0b001 => FpOp::FmaxD,
                    _ => return Err(ill()),
                };
                Inst::FOp { op, rd: dec_freg(rd), rs1: dec_freg(rs1), rs2: dec_freg(rs2) }
            }
            0b1010001 => {
                let op = match f3 {
                    0b000 => FCmpOp::FleD,
                    0b001 => FCmpOp::FltD,
                    0b010 => FCmpOp::FeqD,
                    _ => return Err(ill()),
                };
                Inst::FCmp { op, rd: dec_reg(rd), rs1: dec_freg(rs1), rs2: dec_freg(rs2) }
            }
            0b1100001 => {
                if rs2 != 2 {
                    return Err(ill());
                }
                let rm = Rounding::ALL
                    .into_iter()
                    .find(|r| r.field() == f3)
                    .ok_or_else(ill)?;
                Inst::FcvtLD { rd: dec_reg(rd), rs1: dec_freg(rs1), rm }
            }
            0b1101001 => {
                if rs2 != 2 {
                    return Err(ill());
                }
                Inst::FcvtDL { rd: dec_freg(rd), rs1: dec_reg(rs1) }
            }
            0b1110001 => Inst::FmvXD { rd: dec_reg(rd), rs1: dec_freg(rs1) },
            0b1111001 => Inst::FmvDX { rd: dec_freg(rd), rs1: dec_reg(rs1) },
            _ => return Err(ill()),
        },
        OPC_SYSTEM => match (w >> 20) & 0xfff {
            0 => Inst::Ecall,
            1 => Inst::Ebreak,
            _ => return Err(ill()),
        },
        OPC_MISCMEM => Inst::Fence,
        OPC_CUSTOM0 => {
            // Branch IDs occupy funct7 but only 0..=3 are architected.
            if f3 < 3 && f7 > 3 {
                return Err(ill());
            }
            match f3 {
                0 => Inst::SetMask { bid: f7 as u8, rs1: dec_reg(rs1) },
                1 => Inst::Bop { bid: f7 as u8 },
                2 => Inst::Jru { bid: f7 as u8, rs1: dec_reg(rs1) },
                3 => Inst::JteFlush,
                _ => return Err(ill()),
            }
        }
        OPC_CUSTOM1 => {
            let op = dec_load_op(f3).ok_or_else(ill)?;
            let raw = (w >> 20) & 0xfff;
            let bid = ((raw >> 10) & 0x3) as u8;
            let offset = (raw & 0x3ff) as i64;
            Inst::LoadOp { op, bid, rd: dec_reg(rd), rs1: dec_reg(rs1), offset }
        }
        _ => return Err(ill()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn roundtrip(i: Inst) {
        let w = encode(i).unwrap_or_else(|e| panic!("encode {i}: {e}"));
        let back = decode(w).unwrap_or_else(|e| panic!("decode {i} ({w:#x}): {e}"));
        assert_eq!(i, back, "roundtrip failed for {i} (word {w:#010x})");
    }

    #[test]
    fn roundtrip_core() {
        roundtrip(Inst::Lui { rd: Reg::A0, imm: 0x12345 << 12 });
        roundtrip(Inst::Lui { rd: Reg::A0, imm: (-4096i64) & !0xfff });
        roundtrip(Inst::Auipc { rd: Reg::T0, imm: 0x1000 });
        roundtrip(Inst::Jal { rd: Reg::RA, offset: -2048 });
        roundtrip(Inst::Jal { rd: Reg::ZERO, offset: 4 });
        roundtrip(Inst::Jalr { rd: Reg::ZERO, rs1: Reg::T1, offset: 0 });
        for op in BranchOp::ALL {
            roundtrip(Inst::Branch { op, rs1: Reg::A0, rs2: Reg::A1, offset: -64 });
        }
        for op in LoadOp::ALL {
            roundtrip(Inst::Load { op, rd: Reg::A2, rs1: Reg::S1, offset: -8 });
        }
        for op in StoreOp::ALL {
            roundtrip(Inst::Store { op, rs2: Reg::A2, rs1: Reg::S1, offset: 40 });
        }
    }

    #[test]
    fn roundtrip_alu() {
        for op in AluOp::ALL {
            roundtrip(Inst::Op { op, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 });
            if op.has_imm_form() {
                let imm = if op.is_shift() { 13 } else { -7 };
                roundtrip(Inst::OpImm { op, rd: Reg::A0, rs1: Reg::A1, imm });
            }
        }
        roundtrip(Inst::OpImm { op: AluOp::Srl, rd: Reg::A0, rs1: Reg::A1, imm: 63 });
        roundtrip(Inst::OpImm { op: AluOp::Sra, rd: Reg::A0, rs1: Reg::A1, imm: 48 });
    }

    #[test]
    fn roundtrip_fp() {
        use crate::reg::FReg;
        roundtrip(Inst::Fld { rd: FReg::FA0, rs1: Reg::SP, offset: 16 });
        roundtrip(Inst::Fsd { rs2: FReg::FA1, rs1: Reg::SP, offset: -16 });
        for op in FpOp::ALL {
            roundtrip(Inst::FOp { op, rd: FReg::FT0, rs1: FReg::FT1, rs2: if op == FpOp::FsqrtD { FReg::FT0 } else { FReg::FT2 } });
        }
        for op in FCmpOp::ALL {
            roundtrip(Inst::FCmp { op, rd: Reg::A0, rs1: FReg::FA0, rs2: FReg::FA1 });
        }
        for rm in Rounding::ALL {
            roundtrip(Inst::FcvtLD { rd: Reg::A0, rs1: FReg::FA0, rm });
        }
        roundtrip(Inst::FcvtDL { rd: FReg::FA0, rs1: Reg::A0 });
        roundtrip(Inst::FmvXD { rd: Reg::A0, rs1: FReg::FA0 });
        roundtrip(Inst::FmvDX { rd: FReg::FA0, rs1: Reg::A0 });
    }

    #[test]
    fn roundtrip_scd() {
        for bid in 0..4u8 {
            roundtrip(Inst::SetMask { bid, rs1: Reg::A0 });
            roundtrip(Inst::Bop { bid });
            roundtrip(Inst::Jru { bid, rs1: Reg::T2 });
            roundtrip(Inst::LoadOp { op: LoadOp::Lw, bid, rd: Reg::A0, rs1: Reg::T0, offset: 12 });
            roundtrip(Inst::LoadOp { op: LoadOp::Lbu, bid, rd: Reg::A0, rs1: Reg::T0, offset: 1023 });
        }
        roundtrip(Inst::JteFlush);
        roundtrip(Inst::Ecall);
        roundtrip(Inst::Ebreak);
        roundtrip(Inst::Fence);
    }

    #[test]
    fn range_errors() {
        assert!(encode(Inst::Branch { op: BranchOp::Beq, rs1: Reg::A0, rs2: Reg::A1, offset: 5000 }).is_err());
        assert!(encode(Inst::Branch { op: BranchOp::Beq, rs1: Reg::A0, rs2: Reg::A1, offset: 3 }).is_err());
        assert!(encode(Inst::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::A1, offset: 3000 }).is_err());
        assert!(encode(Inst::OpImm { op: AluOp::Sub, rd: Reg::A0, rs1: Reg::A1, imm: 1 }).is_err());
        assert!(encode(Inst::OpImm { op: AluOp::Sll, rd: Reg::A0, rs1: Reg::A1, imm: 64 }).is_err());
        assert!(encode(Inst::Bop { bid: 4 }).is_err());
        assert!(encode(Inst::LoadOp { op: LoadOp::Lw, bid: 0, rd: Reg::A0, rs1: Reg::A1, offset: 1024 }).is_err());
    }

    #[test]
    fn illegal_words() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // custom-0 with funct3 = 7 is unassigned
        assert!(decode(0x0000_700b).is_err());
    }
}
