//! A small two-section (text + rodata) assembler used to author the guest
//! interpreter binaries.
//!
//! The builder records instructions with optional label fixups; `finish`
//! assigns addresses, resolves labels (branch/jump offsets, absolute
//! address materialization, jump-table words in rodata) and returns a
//! [`Program`] ready to be loaded into the simulator.

use crate::code::{encode, CodeError};
use crate::inst::{AluOp, BranchOp, Inst, LoadOp, StoreOp};
use crate::reg::{FReg, Reg};
use std::collections::HashMap;
use std::fmt;

/// Label-dependent patch attached to an emitted instruction.
#[derive(Debug, Clone)]
enum Fixup {
    /// Conditional branch to a label: patch the B-type offset.
    Branch(String),
    /// `jal` to a label: patch the J-type offset.
    Jal(String),
    /// `lui rd, %hi(label)` with `+0x800` rounding.
    AbsHi(String),
    /// `addiw rd, rd, %lo(label)`.
    AbsLo(String),
}

#[derive(Debug, Clone)]
struct Slot {
    inst: Inst,
    fixup: Option<Fixup>,
}

/// An item in the read-only data section.
#[derive(Debug, Clone)]
enum RoItem {
    /// A literal 64-bit word.
    Word(u64),
    /// The absolute address of a text or rodata label.
    Addr(String),
}

/// Error raised while assembling a program.
#[derive(Debug, Clone)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A resolved value did not fit the instruction encoding.
    Encode {
        /// Text index of the offending instruction.
        at: usize,
        /// The instruction after fixups.
        inst: Inst,
        /// The underlying encoding error.
        err: CodeError,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Encode { at, inst, err } => {
                write!(f, "cannot encode `{inst}` at text index {at}: {err}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// A fully assembled guest program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Base address of the text section.
    pub text_base: u64,
    /// Encoded instruction words.
    pub words: Vec<u32>,
    /// The same instructions in decoded form (index = (pc-text_base)/4).
    /// Reference-counted so every machine built from this program shares
    /// one decoded copy instead of cloning it per simulation cell.
    pub insts: std::sync::Arc<[Inst]>,
    /// Base address of the read-only data section.
    pub rodata_base: u64,
    /// Read-only data bytes (jump tables etc.).
    pub rodata: Vec<u8>,
    /// Label name to absolute address.
    pub symbols: HashMap<String, u64>,
}

impl Program {
    /// Address of a label.
    ///
    /// # Panics
    /// Panics if the label does not exist (programming error in the guest
    /// builder, not a user input).
    pub fn sym(&self, name: &str) -> u64 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("no symbol `{name}`"))
    }

    /// End address (exclusive) of the text section.
    pub fn text_end(&self) -> u64 {
        self.text_base + 4 * self.words.len() as u64
    }

    /// The half-open address range `[start, end)` between two labels.
    pub fn range(&self, start: &str, end: &str) -> (u64, u64) {
        (self.sym(start), self.sym(end))
    }

    /// Renders a disassembly listing of the text section.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut rev: HashMap<u64, Vec<&str>> = HashMap::new();
        for (name, &addr) in &self.symbols {
            rev.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let pc = self.text_base + 4 * i as u64;
            if let Some(names) = rev.get(&pc) {
                let mut names = names.clone();
                names.sort_unstable();
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let _ = writeln!(out, "  {pc:#010x}:  {inst}");
        }
        out
    }
}

/// The assembler/builder. See the crate-level docs for an example.
#[derive(Debug)]
pub struct Asm {
    text_base: u64,
    slots: Vec<Slot>,
    labels: HashMap<String, usize>,
    ro_items: Vec<RoItem>,
    ro_labels: HashMap<String, usize>,
    error: Option<AsmError>,
}

impl Asm {
    /// Creates an assembler whose text section starts at `text_base`
    /// (must be 4-byte aligned).
    ///
    /// # Panics
    /// Panics if `text_base` is not 4-byte aligned.
    pub fn new(text_base: u64) -> Self {
        assert_eq!(text_base % 4, 0, "text base must be 4-byte aligned");
        Asm {
            text_base,
            slots: Vec::new(),
            labels: HashMap::new(),
            ro_items: Vec::new(),
            ro_labels: HashMap::new(),
            error: None,
        }
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no instructions were emitted yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Address the next emitted instruction will receive.
    pub fn here(&self) -> u64 {
        self.text_base + 4 * self.slots.len() as u64
    }

    fn set_err(&mut self, e: AsmError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Defines a text label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.slots.len()).is_some() {
            self.set_err(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.slots.push(Slot { inst, fixup: None });
        self
    }

    fn inst_fix(&mut self, inst: Inst, fix: Fixup) -> &mut Self {
        self.slots.push(Slot { inst, fixup: Some(fix) });
        self
    }

    // ---- integer ALU ----

    /// Emits `op`.
    pub fn op(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op, rd, rs1, rs2 })
    }

    /// Emits `opi`.
    pub fn opi(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::OpImm { op, rd, rs1, imm })
    }

    /// Emits `add`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Add, rd, rs1, rs2)
    }
    /// Emits `sub`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Sub, rd, rs1, rs2)
    }
    /// Emits `and`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::And, rd, rs1, rs2)
    }
    /// Emits `or`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Or, rd, rs1, rs2)
    }
    /// Emits `xor`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Xor, rd, rs1, rs2)
    }
    /// Emits `sltu`.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Sltu, rd, rs1, rs2)
    }
    /// Emits `slt`.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Slt, rd, rs1, rs2)
    }
    /// Emits `sll`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Sll, rd, rs1, rs2)
    }
    /// Emits `srl`.
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Srl, rd, rs1, rs2)
    }
    /// Emits `mul`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Mul, rd, rs1, rs2)
    }
    /// Emits `div`.
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Div, rd, rs1, rs2)
    }
    /// Emits `rem`.
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Rem, rd, rs1, rs2)
    }
    /// Emits `remu`.
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Remu, rd, rs1, rs2)
    }

    /// Emits `addi`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.opi(AluOp::Add, rd, rs1, imm)
    }
    /// Emits `andi`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.opi(AluOp::And, rd, rs1, imm)
    }
    /// Emits `ori`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.opi(AluOp::Or, rd, rs1, imm)
    }
    /// Emits `xori`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.opi(AluOp::Xor, rd, rs1, imm)
    }
    /// Emits `slti`.
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.opi(AluOp::Slt, rd, rs1, imm)
    }
    /// Emits `sltiu`.
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.opi(AluOp::Sltu, rd, rs1, imm)
    }
    /// Emits `slli`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, sh: i64) -> &mut Self {
        self.opi(AluOp::Sll, rd, rs1, sh)
    }
    /// Emits `srli`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, sh: i64) -> &mut Self {
        self.opi(AluOp::Srl, rd, rs1, sh)
    }
    /// Emits `srai`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, sh: i64) -> &mut Self {
        self.opi(AluOp::Sra, rd, rs1, sh)
    }

    // ---- memory ----

    /// Emits `load`.
    pub fn load(&mut self, op: LoadOp, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op, rd, rs1, offset })
    }
    /// Emits `store`.
    pub fn store(&mut self, op: StoreOp, rs2: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store { op, rs2, rs1, offset })
    }
    /// Emits `lb`.
    pub fn lb(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.load(LoadOp::Lb, rd, offset, rs1)
    }
    /// Emits `lbu`.
    pub fn lbu(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.load(LoadOp::Lbu, rd, offset, rs1)
    }
    /// Emits `lhu`.
    pub fn lhu(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.load(LoadOp::Lhu, rd, offset, rs1)
    }
    /// Emits `lh`.
    pub fn lh(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.load(LoadOp::Lh, rd, offset, rs1)
    }
    /// Emits `lw`.
    pub fn lw(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.load(LoadOp::Lw, rd, offset, rs1)
    }
    /// Emits `lwu`.
    pub fn lwu(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.load(LoadOp::Lwu, rd, offset, rs1)
    }
    /// Emits `ld`.
    pub fn ld(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.load(LoadOp::Ld, rd, offset, rs1)
    }
    /// Emits `sb`.
    pub fn sb(&mut self, rs2: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.store(StoreOp::Sb, rs2, offset, rs1)
    }
    /// Emits `sw`.
    pub fn sw(&mut self, rs2: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.store(StoreOp::Sw, rs2, offset, rs1)
    }
    /// Emits `sd`.
    pub fn sd(&mut self, rs2: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.store(StoreOp::Sd, rs2, offset, rs1)
    }
    /// Emits `fld`.
    pub fn fld(&mut self, rd: FReg, offset: i64, rs1: Reg) -> &mut Self {
        self.inst(Inst::Fld { rd, rs1, offset })
    }
    /// Emits `fsd`.
    pub fn fsd(&mut self, rs2: FReg, offset: i64, rs1: Reg) -> &mut Self {
        self.inst(Inst::Fsd { rs2, rs1, offset })
    }

    // ---- FP ----

    /// Emits `fop`.
    pub fn fop(&mut self, op: crate::inst::FpOp, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FOp { op, rd, rs1, rs2 })
    }
    /// Emits `fadd`.
    pub fn fadd(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fop(crate::inst::FpOp::FaddD, rd, rs1, rs2)
    }
    /// Emits `fsub`.
    pub fn fsub(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fop(crate::inst::FpOp::FsubD, rd, rs1, rs2)
    }
    /// Emits `fmul`.
    pub fn fmul(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fop(crate::inst::FpOp::FmulD, rd, rs1, rs2)
    }
    /// Emits `fdiv`.
    pub fn fdiv(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fop(crate::inst::FpOp::FdivD, rd, rs1, rs2)
    }
    /// Emits `fsqrt`.
    pub fn fsqrt(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fop(crate::inst::FpOp::FsqrtD, rd, rs1, FReg::FT0)
    }
    /// Emits `fcmp`.
    pub fn fcmp(&mut self, op: crate::inst::FCmpOp, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.inst(Inst::FCmp { op, rd, rs1, rs2 })
    }
    /// Emits `feq`.
    pub fn feq(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fcmp(crate::inst::FCmpOp::FeqD, rd, rs1, rs2)
    }
    /// Emits `flt`.
    pub fn flt(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fcmp(crate::inst::FCmpOp::FltD, rd, rs1, rs2)
    }
    /// Emits `fle`.
    pub fn fle(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fcmp(crate::inst::FCmpOp::FleD, rd, rs1, rs2)
    }
    /// Emits `fcvt.l.d`.
    pub fn fcvt_l_d(&mut self, rd: Reg, rs1: FReg, rm: crate::inst::Rounding) -> &mut Self {
        self.inst(Inst::FcvtLD { rd, rs1, rm })
    }
    /// Emits `fcvt.d.l`.
    pub fn fcvt_d_l(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FcvtDL { rd, rs1 })
    }
    /// Emits `fmv.x.d`.
    pub fn fmv_x_d(&mut self, rd: Reg, rs1: FReg) -> &mut Self {
        self.inst(Inst::FmvXD { rd, rs1 })
    }
    /// Emits `fmv.d.x`.
    pub fn fmv_d_x(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FmvDX { rd, rs1 })
    }

    // ---- control flow ----

    /// Conditional branch to a label (must resolve within ±4 KiB).
    pub fn br(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.inst_fix(
            Inst::Branch { op, rs1, rs2, offset: 0 },
            Fixup::Branch(label.to_string()),
        )
    }
    /// Emits `beq`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.br(BranchOp::Beq, rs1, rs2, label)
    }
    /// Emits `bne`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.br(BranchOp::Bne, rs1, rs2, label)
    }
    /// Emits `blt`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.br(BranchOp::Blt, rs1, rs2, label)
    }
    /// Emits `bge`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.br(BranchOp::Bge, rs1, rs2, label)
    }
    /// Emits `bltu`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.br(BranchOp::Bltu, rs1, rs2, label)
    }
    /// Emits `bgeu`.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.br(BranchOp::Bgeu, rs1, rs2, label)
    }
    /// Emits `beqz`.
    pub fn beqz(&mut self, rs1: Reg, label: &str) -> &mut Self {
        self.beq(rs1, Reg::ZERO, label)
    }
    /// Emits `bnez`.
    pub fn bnez(&mut self, rs1: Reg, label: &str) -> &mut Self {
        self.bne(rs1, Reg::ZERO, label)
    }

    /// Unconditional jump (`jal x0`) to a label (±1 MiB).
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.inst_fix(Inst::Jal { rd: Reg::ZERO, offset: 0 }, Fixup::Jal(label.to_string()))
    }

    /// Call (`jal ra`) to a label.
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.inst_fix(Inst::Jal { rd: Reg::RA, offset: 0 }, Fixup::Jal(label.to_string()))
    }

    /// Indirect jump through a register (`jalr x0, 0(rs1)`).
    pub fn jr(&mut self, rs1: Reg) -> &mut Self {
        self.inst(Inst::Jalr { rd: Reg::ZERO, rs1, offset: 0 })
    }

    /// Return (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.jr(Reg::RA)
    }

    /// Emits `ecall`.
    pub fn ecall(&mut self) -> &mut Self {
        self.inst(Inst::Ecall)
    }
    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.addi(Reg::ZERO, Reg::ZERO, 0)
    }
    /// Emits `mv`.
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }

    // ---- SCD extension ----

    /// Emits `setmask`.
    pub fn setmask(&mut self, bid: u8, rs1: Reg) -> &mut Self {
        self.inst(Inst::SetMask { bid, rs1 })
    }
    /// Emits `bop`.
    pub fn bop(&mut self, bid: u8) -> &mut Self {
        self.inst(Inst::Bop { bid })
    }
    /// Emits `jru`.
    pub fn jru(&mut self, bid: u8, rs1: Reg) -> &mut Self {
        self.inst(Inst::Jru { bid, rs1 })
    }
    /// Emits `jte_flush`.
    pub fn jte_flush(&mut self) -> &mut Self {
        self.inst(Inst::JteFlush)
    }
    /// A load with the `.op` suffix (writes Rop\[bid\] with the masked value).
    pub fn load_op(&mut self, op: LoadOp, bid: u8, rd: Reg, offset: i64, rs1: Reg) -> &mut Self {
        self.inst(Inst::LoadOp { op, bid, rd, rs1, offset })
    }

    // ---- pseudo-instructions ----

    /// Materializes an arbitrary 64-bit constant into `rd`.
    pub fn li(&mut self, rd: Reg, value: i64) -> &mut Self {
        if (-2048..=2047).contains(&value) {
            return self.addi(rd, Reg::ZERO, value);
        }
        if value as i32 as i64 == value {
            // lui + addiw
            let lo = (value << 52) >> 52; // sign-extended low 12
            let hi = value - lo;
            // hi fits in the upper-20 immediate as a sign-extended 32-bit
            self.inst(Inst::Lui { rd, imm: hi as i32 as i64 });
            if lo != 0 {
                self.opi(AluOp::Addw, rd, rd, lo);
            }
            return self;
        }
        // If the value is a 32-bit-representable value shifted left, build
        // the base and shift.
        let tz = value.trailing_zeros().min(63);
        if tz > 0 && ((value >> tz) as i32 as i64) == (value >> tz) {
            self.li(rd, value >> tz);
            return self.slli(rd, rd, tz as i64);
        }
        // General case: recursive 12-bit chunks.
        let lo = (value << 52) >> 52;
        let hi = (value - lo) >> 12;
        self.li(rd, hi);
        self.slli(rd, rd, 12);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
        self
    }

    /// Loads the absolute address of a label into `rd` (`lui`+`addiw`).
    ///
    /// All guest addresses fit in 31 bits, so this is always two
    /// instructions.
    pub fn la(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.inst_fix(Inst::Lui { rd, imm: 0 }, Fixup::AbsHi(label.to_string()));
        self.inst_fix(
            Inst::OpImm { op: AluOp::Addw, rd, rs1: rd, imm: 0 },
            Fixup::AbsLo(label.to_string()),
        )
    }

    // ---- rodata ----

    /// Defines a label in the rodata section at the current rodata offset.
    pub fn ro_label(&mut self, name: &str) -> &mut Self {
        if self
            .ro_labels
            .insert(name.to_string(), self.ro_items.len())
            .is_some()
        {
            self.set_err(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Emits a literal 64-bit rodata word.
    pub fn ro_word(&mut self, w: u64) -> &mut Self {
        self.ro_items.push(RoItem::Word(w));
        self
    }

    /// Emits the absolute address of a label as a 64-bit rodata word
    /// (the building block for software jump tables).
    pub fn ro_addr(&mut self, label: &str) -> &mut Self {
        self.ro_items.push(RoItem::Addr(label.to_string()));
        self
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    /// Returns an error for undefined/duplicate labels or out-of-range
    /// resolved offsets.
    pub fn finish(self) -> Result<Program, AsmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let text_base = self.text_base;
        let text_len = 4 * self.slots.len() as u64;
        // Keep rodata on its own cache lines / pages.
        let rodata_base = (text_base + text_len + 63) & !63;

        let mut symbols: HashMap<String, u64> = HashMap::new();
        for (name, idx) in &self.labels {
            symbols.insert(name.clone(), text_base + 4 * *idx as u64);
        }
        for (name, idx) in &self.ro_labels {
            if symbols
                .insert(name.clone(), rodata_base + 8 * *idx as u64)
                .is_some()
            {
                return Err(AsmError::DuplicateLabel(name.clone()));
            }
        }
        let lookup = |label: &str| -> Result<u64, AsmError> {
            symbols
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))
        };

        let mut insts = Vec::with_capacity(self.slots.len());
        let mut words = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.iter().enumerate() {
            let pc = text_base + 4 * i as u64;
            let inst = match &slot.fixup {
                None => slot.inst,
                Some(Fixup::Branch(l)) => {
                    let target = lookup(l)?;
                    let off = target.wrapping_sub(pc) as i64;
                    match slot.inst {
                        Inst::Branch { op, rs1, rs2, .. } => {
                            Inst::Branch { op, rs1, rs2, offset: off }
                        }
                        _ => unreachable!("branch fixup on non-branch"),
                    }
                }
                Some(Fixup::Jal(l)) => {
                    let target = lookup(l)?;
                    let off = target.wrapping_sub(pc) as i64;
                    match slot.inst {
                        Inst::Jal { rd, .. } => Inst::Jal { rd, offset: off },
                        _ => unreachable!("jal fixup on non-jal"),
                    }
                }
                Some(Fixup::AbsHi(l)) => {
                    let addr = lookup(l)? as i64;
                    let lo = (addr << 52) >> 52;
                    let hi = (addr - lo) as i32 as i64;
                    match slot.inst {
                        Inst::Lui { rd, .. } => Inst::Lui { rd, imm: hi },
                        _ => unreachable!("abs-hi fixup on non-lui"),
                    }
                }
                Some(Fixup::AbsLo(l)) => {
                    let addr = lookup(l)? as i64;
                    let lo = (addr << 52) >> 52;
                    match slot.inst {
                        Inst::OpImm { op, rd, rs1, .. } => Inst::OpImm { op, rd, rs1, imm: lo },
                        _ => unreachable!("abs-lo fixup on non-addi"),
                    }
                }
            };
            let word = encode(inst).map_err(|err| AsmError::Encode { at: i, inst, err })?;
            insts.push(inst);
            words.push(word);
        }

        let mut rodata = Vec::with_capacity(8 * self.ro_items.len());
        for item in &self.ro_items {
            let w = match item {
                RoItem::Word(w) => *w,
                RoItem::Addr(l) => lookup(l)?,
            };
            rodata.extend_from_slice(&w.to_le_bytes());
        }

        Ok(Program { text_base, words, insts: insts.into(), rodata_base, rodata, symbols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn labels_and_branches() {
        let mut a = Asm::new(0x1000);
        a.label("start");
        a.li(Reg::A0, 0);
        a.label("loop");
        a.addi(Reg::A0, Reg::A0, 1);
        a.slti(Reg::T0, Reg::A0, 10);
        a.bnez(Reg::T0, "loop");
        a.j("start");
        let p = a.finish().unwrap();
        assert_eq!(p.sym("start"), 0x1000);
        // li(0) is one addi
        assert_eq!(p.sym("loop"), 0x1004);
        // branch back: offset -8 from pc 0x100c
        match p.insts[3] {
            Inst::Branch { offset, .. } => assert_eq!(offset, -8),
            ref other => panic!("expected branch, got {other}"),
        }
        match p.insts[4] {
            Inst::Jal { offset, .. } => assert_eq!(offset, -0x10_i64),
            ref other => panic!("expected jal, got {other}"),
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new(0x1000);
        a.j("nowhere");
        assert!(matches!(a.finish(), Err(AsmError::UndefinedLabel(_))));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new(0x1000);
        a.label("x").nop();
        a.label("x");
        assert!(matches!(a.finish(), Err(AsmError::DuplicateLabel(_))));
    }

    #[test]
    fn rodata_jump_table() {
        let mut a = Asm::new(0x1000);
        a.label("h0").nop();
        a.label("h1").nop();
        a.ro_label("jt");
        a.ro_addr("h0");
        a.ro_addr("h1");
        a.ro_word(0xdead_beef);
        let p = a.finish().unwrap();
        let jt = p.sym("jt");
        assert_eq!(jt % 64, 0);
        assert_eq!(&p.rodata[0..8], &0x1000u64.to_le_bytes());
        assert_eq!(&p.rodata[8..16], &0x1004u64.to_le_bytes());
        assert_eq!(&p.rodata[16..24], &0xdead_beefu64.to_le_bytes());
    }

    #[test]
    fn la_materializes_address() {
        let mut a = Asm::new(0x1_0000);
        a.la(Reg::A0, "target");
        for _ in 0..10 {
            a.nop();
        }
        a.label("target").nop();
        let p = a.finish().unwrap();
        // Evaluate lui+addiw by hand.
        let (hi, lo) = match (p.insts[0], p.insts[1]) {
            (Inst::Lui { imm: hi, .. }, Inst::OpImm { imm: lo, .. }) => (hi, lo),
            _ => panic!("unexpected la expansion"),
        };
        let addr = ((hi + lo) as i32) as i64 as u64;
        assert_eq!(addr, p.sym("target"));
    }

    #[test]
    fn listing_contains_labels() {
        let mut a = Asm::new(0x1000);
        a.label("entry").nop().ecall();
        let p = a.finish().unwrap();
        let l = p.listing();
        assert!(l.contains("entry:"));
        assert!(l.contains("ecall"));
    }
}
