#![warn(missing_docs)]

//! # scd-isa — the simulated instruction set
//!
//! Defines the 64-bit RISC-V-subset ISA used by the SCD reproduction,
//! including the five-instruction SCD extension from Table I of the paper
//! (`setmask`, `<load>.op`, `bop`, `jru`, `jte.flush`), a binary
//! encoder/decoder using real RISC-V instruction formats, and a small
//! assembler used to author the guest interpreter binaries.
//!
//! ```
//! use scd_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x1_0000);
//! a.label("entry");
//! a.li(Reg::A0, 42);
//! a.ecall(); // halt
//! let program = a.finish()?;
//! assert_eq!(program.sym("entry"), 0x1_0000);
//! assert!(program.listing().contains("ecall"));
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod code;
pub mod exec;
pub mod inst;
pub mod reg;

pub use asm::{Asm, AsmError, Program};
pub use code::{decode, encode, CodeError};
pub use inst::{AluOp, BranchOp, FCmpOp, FpOp, Inst, LoadOp, Rounding, StoreOp};
pub use reg::{FReg, Reg};
