//! Property tests: every constructible instruction survives an
//! encode/decode roundtrip, and arbitrary words never panic the decoder.

use proptest::prelude::*;
use scd_isa::{
    decode, encode, AluOp, BranchOp, FCmpOp, FReg, FpOp, Inst, LoadOp, Reg, Rounding, StoreOp,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), -524288i64..524287).prop_map(|(rd, i)| Inst::Lui { rd, imm: i << 12 }),
        (arb_reg(), -524288i64..524287).prop_map(|(rd, i)| Inst::Auipc { rd, imm: i << 12 }),
        (arb_reg(), -524288i64..524287).prop_map(|(rd, o)| Inst::Jal { rd, offset: o * 2 }),
        (arb_reg(), arb_reg(), -2048i64..=2047)
            .prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (
            prop::sample::select(&BranchOp::ALL[..]),
            arb_reg(),
            arb_reg(),
            -2048i64..2047
        )
            .prop_map(|(op, rs1, rs2, o)| Inst::Branch { op, rs1, rs2, offset: o * 2 }),
        (
            prop::sample::select(&LoadOp::ALL[..]),
            arb_reg(),
            arb_reg(),
            -2048i64..=2047
        )
            .prop_map(|(op, rd, rs1, offset)| Inst::Load { op, rd, rs1, offset }),
        (
            prop::sample::select(&StoreOp::ALL[..]),
            arb_reg(),
            arb_reg(),
            -2048i64..=2047
        )
            .prop_map(|(op, rs2, rs1, offset)| Inst::Store { op, rs2, rs1, offset }),
        (
            prop::sample::select(&AluOp::ALL[..]),
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::Op { op, rd, rs1, rs2 }),
        (
            prop::sample::select(
                AluOp::ALL
                    .into_iter()
                    .filter(|o| o.has_imm_form() && !o.is_shift())
                    .collect::<Vec<_>>()
            ),
            arb_reg(),
            arb_reg(),
            -2048i64..=2047
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (
            prop::sample::select(
                AluOp::ALL.into_iter().filter(|o| o.is_shift()).collect::<Vec<_>>()
            ),
            arb_reg(),
            arb_reg(),
            0i64..32
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (arb_freg(), arb_reg(), -2048i64..=2047)
            .prop_map(|(rd, rs1, offset)| Inst::Fld { rd, rs1, offset }),
        (arb_freg(), arb_reg(), -2048i64..=2047)
            .prop_map(|(rs2, rs1, offset)| Inst::Fsd { rs2, rs1, offset }),
        (
            prop::sample::select(&FpOp::ALL[..]),
            arb_freg(),
            arb_freg(),
            arb_freg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::FOp {
                op,
                rd,
                rs1,
                rs2: if op == FpOp::FsqrtD { FReg::FT0 } else { rs2 }
            }),
        (
            prop::sample::select(&FCmpOp::ALL[..]),
            arb_reg(),
            arb_freg(),
            arb_freg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::FCmp { op, rd, rs1, rs2 }),
        (arb_reg(), arb_freg(), prop::sample::select(&Rounding::ALL[..]))
            .prop_map(|(rd, rs1, rm)| Inst::FcvtLD { rd, rs1, rm }),
        (arb_freg(), arb_reg()).prop_map(|(rd, rs1)| Inst::FcvtDL { rd, rs1 }),
        (arb_reg(), arb_freg()).prop_map(|(rd, rs1)| Inst::FmvXD { rd, rs1 }),
        (arb_freg(), arb_reg()).prop_map(|(rd, rs1)| Inst::FmvDX { rd, rs1 }),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        Just(Inst::Fence),
        (0u8..4, arb_reg()).prop_map(|(bid, rs1)| Inst::SetMask { bid, rs1 }),
        (0u8..4).prop_map(|bid| Inst::Bop { bid }),
        (0u8..4, arb_reg()).prop_map(|(bid, rs1)| Inst::Jru { bid, rs1 }),
        Just(Inst::JteFlush),
        (
            prop::sample::select(&LoadOp::ALL[..]),
            0u8..4,
            arb_reg(),
            arb_reg(),
            0i64..=1023
        )
            .prop_map(|(op, bid, rd, rs1, offset)| Inst::LoadOp { op, bid, rd, rs1, offset }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let w = encode(inst).expect("constructed within field ranges");
        let back = decode(w).expect("own encodings decode");
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn decode_never_panics(w in any::<u32>()) {
        let _ = decode(w); // Ok or Err, never panic
    }

    #[test]
    fn decode_encode_refixes(w in any::<u32>()) {
        // Any word that decodes must re-encode to a word that decodes to
        // the same instruction (encodings are canonical modulo ignored
        // bits).
        if let Ok(inst) = decode(w) {
            let w2 = encode(inst).expect("decoded instructions re-encode");
            prop_assert_eq!(decode(w2).expect("canonical encoding decodes"), inst);
        }
    }
}
