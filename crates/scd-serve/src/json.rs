//! A minimal hand-rolled JSON layer: a recursive-descent parser into a
//! borrowed-nothing [`Value`] tree, plus the string-escaping helper the
//! renderers share.
//!
//! The workspace is deliberately serde-free (it must build offline), so
//! job files and cache payloads go through this module. Two properties
//! matter and shape the design:
//!
//! - **u64 exactness.** Simulator counters are `u64` and can exceed
//!   2^53, where `f64` loses integers. [`Value::Num`] therefore keeps
//!   the *literal token text* and reparses it as `u64` or `f64` on
//!   demand, so a cycle counter round-trips bit-exactly.
//! - **Totality.** Parsing is a typed `Result` — a truncated or
//!   corrupted payload must surface as a decode error the cache can
//!   quarantine, never a panic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal token text (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (last occurrence wins, per common practice).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is an unsigned integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric literal.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (a concatenated or truncated-and-glued payload must not pass).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected byte {c:#04x} at {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        // Validate the token by the loosest reading; the literal text is
        // what gets stored.
        text.parse::<f64>().map_err(|_| format!("bad number at byte {start}"))?;
        Ok(Value::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }
}

/// Appends `s` as a JSON string literal (quotes included) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
    }

    #[test]
    fn u64_exactness_beyond_f64() {
        // 2^63 + 1 is not representable as f64; the literal must still
        // round-trip as u64.
        let v = parse("9223372036854775809").unwrap();
        assert_eq!(v.as_u64(), Some(9_223_372_036_854_775_809));
    }

    #[test]
    fn nested_and_lookup() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "n": null}"#).unwrap();
        assert_eq!(v.get("n"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{8} \u{1F600} ünïcode";
        let mut lit = String::new();
        push_str_literal(&mut lit, original);
        assert_eq!(parse(&lit).unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_escape() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate must fail");
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "", "{", "[1,", r#"{"a"}"#, "tru", "1 2", r#"{"a":1}x"#, "\"unterminated",
            "[1,]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
