//! The cache entry payload: everything a figure renderer needs from an
//! oracle-validated guest run, encoded as deterministic hand-rolled
//! JSON.
//!
//! The encoding is byte-deterministic (fixed field order, integer
//! literals only), which is what lets the warm-cache sweep reproduce the
//! cold sweep's reports byte-for-byte. Decoding is strict: any missing
//! or mistyped field is a typed error, which the cache layer treats
//! like a checksum failure — quarantine and recompute. Trace sinks are
//! deliberately *not* cached: the [`CycleBreakdown`] aggregate is the
//! only trace product the reports consume, and it is small and
//! deterministic.

use crate::json::{self, Value};
use scd_guest::GuestRun;
use scd_sim::{
    AccessCounters, BranchCounters, BtbStats, CycleBreakdown, SampleReport, SamplingPlan, SimStats,
};
use std::fmt::Write as _;

/// Payload format version; bump on any layout change so stale entries
/// decode-fail into quarantine instead of mis-reading.
const VERSION: u64 = 1;

/// A cached run result: the validated outcome plus its optional cycle
/// decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRun {
    /// The guest's `emit` checksum (already oracle-validated when the
    /// entry was stored).
    pub checksum: u64,
    /// Bytecodes dispatched.
    pub dispatches: u64,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// Event-derived cycle decomposition (`None` for untraced runs).
    pub breakdown: Option<CycleBreakdown>,
    /// Sampling metadata (`None` for full-detail runs). Present exactly
    /// when the job ran sampled — the stats above are then the scaled
    /// estimate this report quantifies.
    pub sample: Option<SampleReport>,
}

impl CachedRun {
    /// Captures the cacheable part of a completed run. The sample
    /// report's `self_check` knob is normalized off: it never changes
    /// results, so a checked and an unchecked run must encode (and
    /// compare) identically.
    pub fn from_run(run: &GuestRun, breakdown: Option<&CycleBreakdown>) -> Self {
        let sample = run.sample.clone().map(|mut r| {
            r.plan.self_check = false;
            r
        });
        CachedRun {
            checksum: run.checksum,
            dispatches: run.dispatches,
            stats: run.stats.clone(),
            breakdown: breakdown.cloned(),
            sample,
        }
    }

    /// Rebuilds the [`GuestRun`] view (no sink: the breakdown is the
    /// cached trace product).
    pub fn to_run(&self) -> GuestRun {
        GuestRun {
            checksum: self.checksum,
            dispatches: self.dispatches,
            stats: self.stats.clone(),
            sink: None,
            sample: self.sample.clone(),
        }
    }
}

fn push_branch(out: &mut String, name: &str, c: &BranchCounters) {
    let _ = write!(out, "\"{name}\":[{},{}],", c.executed, c.mispredicted);
}

fn push_access(out: &mut String, name: &str, c: &AccessCounters) {
    let _ = write!(
        out,
        "\"{name}\":[{},{},{}],",
        c.accesses, c.misses, c.writebacks
    );
}

/// Encodes a [`CachedRun`] as deterministic JSON.
pub fn encode(run: &CachedRun) -> String {
    let s = &run.stats;
    let b = &s.btb;
    let mut out = String::with_capacity(1024);
    let _ = write!(out, "{{\"v\":{VERSION},");
    let _ = write!(out, "\"checksum\":{},", run.checksum);
    let _ = write!(out, "\"dispatches\":{},", run.dispatches);
    out.push_str("\"stats\":{");
    let _ = write!(out, "\"cycles\":{},", s.cycles);
    let _ = write!(out, "\"instructions\":{},", s.instructions);
    let _ = write!(
        out,
        "\"dispatch_instructions\":{},",
        s.dispatch_instructions
    );
    let _ = write!(out, "\"loads\":{},", s.loads);
    let _ = write!(out, "\"stores\":{},", s.stores);
    push_branch(&mut out, "cond", &s.cond);
    push_branch(&mut out, "direct", &s.direct);
    push_branch(&mut out, "ret", &s.ret);
    push_branch(&mut out, "indirect_dispatch", &s.indirect_dispatch);
    push_branch(&mut out, "indirect_other", &s.indirect_other);
    let _ = write!(out, "\"bop_executed\":{},", s.bop_executed);
    let _ = write!(out, "\"bop_hits\":{},", s.bop_hits);
    let _ = write!(out, "\"bop_misses\":{},", s.bop_misses);
    let _ = write!(out, "\"bop_stall_cycles\":{},", s.bop_stall_cycles);
    let _ = write!(out, "\"jru_executed\":{},", s.jru_executed);
    push_access(&mut out, "icache", &s.icache);
    push_access(&mut out, "dcache", &s.dcache);
    push_access(&mut out, "l2", &s.l2);
    push_access(&mut out, "itlb", &s.itlb);
    push_access(&mut out, "dtlb", &s.dtlb);
    let _ = write!(
        out,
        "\"btb\":[{},{},{},{},{},{},{}]",
        b.jte_inserts,
        b.jte_cap_skips,
        b.btb_evicted_by_jte,
        b.jte_evictions,
        b.btb_blocked_by_jte,
        b.jte_flushes,
        b.jte_flushed
    );
    out.push('}');
    match &run.breakdown {
        None => out.push_str(",\"breakdown\":null"),
        Some(d) => {
            let _ = write!(
                out,
                ",\"breakdown\":[{},{},{},{},{},{},{},{},{},{}]",
                d.total,
                d.issue,
                d.fetch_stall,
                d.data_stall,
                d.redirect,
                d.bop_stall,
                d.dispatch_total,
                d.dispatch_redirect,
                d.dispatch_fetch_stall,
                d.events
            );
        }
    }
    // The sample object is emitted only when present: full-detail
    // payloads stay byte-identical to entries written before sampling
    // existed, so warm caches survive the format addition. The f64s are
    // carried as IEEE-754 bit patterns to keep the encoding exact and
    // deterministic.
    if let Some(r) = &run.sample {
        let _ = write!(
            out,
            ",\"sample\":{{\"plan\":[{},{},{}],\"intervals\":{},\"total_insts\":{},\
             \"measured_insts\":{},\"measured_cycles\":{},\"ff_insts\":{},\"warm_insts\":{},\
             \"cpi_mean_bits\":{},\"cpi_ci95_bits\":{},\"cycles_est\":{},\"cycles_ci95\":{},\
             \"exact_fallback\":{}}}",
            r.plan.period,
            r.plan.warmup,
            r.plan.measure,
            r.intervals,
            r.total_insts,
            r.measured_insts,
            r.measured_cycles,
            r.ff_insts,
            r.warm_insts,
            r.cpi_mean.to_bits(),
            r.cpi_ci95.to_bits(),
            r.cycles_est,
            r.cycles_ci95,
            r.exact_fallback
        );
    }
    out.push('}');
    out
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or mistyped field '{key}'"))
}

fn tuple_u64<const N: usize>(v: &Value, key: &str) -> Result<[u64; N], String> {
    let arr = v
        .get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing or mistyped field '{key}'"))?;
    if arr.len() != N {
        return Err(format!("field '{key}' has {} entries, want {N}", arr.len()));
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = item
            .as_u64()
            .ok_or_else(|| format!("non-integer entry in '{key}'"))?;
    }
    Ok(out)
}

fn branch(v: &Value, key: &str) -> Result<BranchCounters, String> {
    let [executed, mispredicted] = tuple_u64::<2>(v, key)?;
    Ok(BranchCounters {
        executed,
        mispredicted,
    })
}

fn access(v: &Value, key: &str) -> Result<AccessCounters, String> {
    let [accesses, misses, writebacks] = tuple_u64::<3>(v, key)?;
    Ok(AccessCounters {
        accesses,
        misses,
        writebacks,
    })
}

/// Decodes a payload produced by [`encode`]. Strict: version or field
/// mismatches are errors (the caller quarantines and recomputes).
pub fn decode(text: &str) -> Result<CachedRun, String> {
    let v = json::parse(text)?;
    let version = field_u64(&v, "v")?;
    if version != VERSION {
        return Err(format!("payload version {version}, want {VERSION}"));
    }
    let stats_v = v.get("stats").ok_or("missing field 'stats'")?;
    let [jte_inserts, jte_cap_skips, btb_evicted_by_jte, jte_evictions, btb_blocked_by_jte, jte_flushes, jte_flushed] =
        tuple_u64::<7>(stats_v, "btb")?;
    let stats = SimStats {
        cycles: field_u64(stats_v, "cycles")?,
        instructions: field_u64(stats_v, "instructions")?,
        dispatch_instructions: field_u64(stats_v, "dispatch_instructions")?,
        loads: field_u64(stats_v, "loads")?,
        stores: field_u64(stats_v, "stores")?,
        cond: branch(stats_v, "cond")?,
        direct: branch(stats_v, "direct")?,
        ret: branch(stats_v, "ret")?,
        indirect_dispatch: branch(stats_v, "indirect_dispatch")?,
        indirect_other: branch(stats_v, "indirect_other")?,
        bop_executed: field_u64(stats_v, "bop_executed")?,
        bop_hits: field_u64(stats_v, "bop_hits")?,
        bop_misses: field_u64(stats_v, "bop_misses")?,
        bop_stall_cycles: field_u64(stats_v, "bop_stall_cycles")?,
        jru_executed: field_u64(stats_v, "jru_executed")?,
        icache: access(stats_v, "icache")?,
        dcache: access(stats_v, "dcache")?,
        l2: access(stats_v, "l2")?,
        itlb: access(stats_v, "itlb")?,
        dtlb: access(stats_v, "dtlb")?,
        btb: BtbStats {
            jte_inserts,
            jte_cap_skips,
            btb_evicted_by_jte,
            jte_evictions,
            btb_blocked_by_jte,
            jte_flushes,
            jte_flushed,
        },
    };
    let breakdown = match v.get("breakdown") {
        Some(Value::Null) => None,
        Some(_) => {
            let [total, issue, fetch_stall, data_stall, redirect, bop_stall, dispatch_total, dispatch_redirect, dispatch_fetch_stall, events] =
                tuple_u64::<10>(&v, "breakdown")?;
            Some(CycleBreakdown {
                total,
                issue,
                fetch_stall,
                data_stall,
                redirect,
                bop_stall,
                dispatch_total,
                dispatch_redirect,
                dispatch_fetch_stall,
                events,
            })
        }
        None => return Err("missing field 'breakdown'".to_string()),
    };
    // Absent key (not null) means a full-detail run: the sample object
    // is only ever written when the run was sampled, and pre-sampling
    // payloads never carry the key at all.
    let sample = match v.get("sample") {
        None => None,
        Some(s) => Some(decode_sample(s)?),
    };
    Ok(CachedRun {
        checksum: field_u64(&v, "checksum")?,
        dispatches: field_u64(&v, "dispatches")?,
        stats,
        breakdown,
        sample,
    })
}

fn decode_sample(s: &Value) -> Result<SampleReport, String> {
    let [period, warmup, measure] = tuple_u64::<3>(s, "plan")?;
    let plan = SamplingPlan::new(period, warmup, measure)
        .map_err(|e| format!("field 'sample.plan': {e}"))?;
    Ok(SampleReport {
        plan,
        intervals: field_u64(s, "intervals")?,
        total_insts: field_u64(s, "total_insts")?,
        measured_insts: field_u64(s, "measured_insts")?,
        measured_cycles: field_u64(s, "measured_cycles")?,
        ff_insts: field_u64(s, "ff_insts")?,
        warm_insts: field_u64(s, "warm_insts")?,
        cpi_mean: f64::from_bits(field_u64(s, "cpi_mean_bits")?),
        cpi_ci95: f64::from_bits(field_u64(s, "cpi_ci95_bits")?),
        cycles_est: field_u64(s, "cycles_est")?,
        cycles_ci95: field_u64(s, "cycles_ci95")?,
        exact_fallback: s
            .get("exact_fallback")
            .and_then(Value::as_bool)
            .ok_or("missing or mistyped field 'sample.exact_fallback'")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distinct nonzero values in every field, so a swapped pair of
    /// fields cannot round-trip undetected.
    fn dense_run() -> CachedRun {
        let mut n = 0u64;
        let mut next = || {
            n += 1;
            n
        };
        let mut b = |_: &str| BranchCounters {
            executed: next(),
            mispredicted: next(),
        };
        let cond = b("cond");
        let direct = b("direct");
        let ret = b("ret");
        let indirect_dispatch = b("id");
        let indirect_other = b("io");
        let mut a = |_: &str| AccessCounters {
            accesses: next(),
            misses: next(),
            writebacks: next(),
        };
        let icache = a("icache");
        let dcache = a("dcache");
        let l2 = a("l2");
        let itlb = a("itlb");
        let dtlb = a("dtlb");
        CachedRun {
            checksum: next(),
            dispatches: next(),
            stats: SimStats {
                cycles: next(),
                instructions: next(),
                dispatch_instructions: next(),
                loads: next(),
                stores: next(),
                cond,
                direct,
                ret,
                indirect_dispatch,
                indirect_other,
                bop_executed: next(),
                bop_hits: next(),
                bop_misses: next(),
                bop_stall_cycles: next(),
                jru_executed: next(),
                icache,
                dcache,
                l2,
                itlb,
                dtlb,
                btb: BtbStats {
                    jte_inserts: next(),
                    jte_cap_skips: next(),
                    btb_evicted_by_jte: next(),
                    jte_evictions: next(),
                    btb_blocked_by_jte: next(),
                    jte_flushes: next(),
                    jte_flushed: next(),
                },
            },
            breakdown: Some(CycleBreakdown {
                total: next(),
                issue: next(),
                fetch_stall: next(),
                data_stall: next(),
                redirect: next(),
                bop_stall: next(),
                dispatch_total: next(),
                dispatch_redirect: next(),
                dispatch_fetch_stall: next(),
                events: next(),
            }),
            sample: None,
        }
    }

    /// A sample report with distinct values in every field (and
    /// non-representable-as-integer f64s, to exercise the bit-pattern
    /// round trip).
    fn dense_sample() -> SampleReport {
        SampleReport {
            plan: SamplingPlan::new(1_000_000, 50_000, 20_000).unwrap(),
            intervals: 101,
            total_insts: 102,
            measured_insts: 103,
            measured_cycles: 104,
            ff_insts: 105,
            warm_insts: 106,
            cpi_mean: 1.375_000_000_1,
            cpi_ci95: 0.031_250_000_7,
            cycles_est: 107,
            cycles_ci95: 108,
            exact_fallback: false,
        }
    }

    #[test]
    fn roundtrip_every_field() {
        let run = dense_run();
        let text = encode(&run);
        let back = decode(&text).expect("decode");
        assert_eq!(back, run);
    }

    #[test]
    fn roundtrip_untraced() {
        let mut run = dense_run();
        run.breakdown = None;
        assert_eq!(decode(&encode(&run)).expect("decode"), run);
    }

    #[test]
    fn encoding_is_deterministic() {
        let run = dense_run();
        assert_eq!(encode(&run), encode(&run));
    }

    #[test]
    fn u64_counters_survive_past_f64_precision() {
        let mut run = dense_run();
        run.stats.cycles = u64::MAX - 1;
        assert_eq!(
            decode(&encode(&run)).expect("decode").stats.cycles,
            u64::MAX - 1
        );
    }

    #[test]
    fn full_detail_payloads_never_carry_the_sample_key() {
        // Byte-compatibility with pre-sampling cache entries: a run
        // without a sample report encodes exactly as version 1 always
        // did, and such payloads decode with `sample: None`.
        let run = dense_run();
        let text = encode(&run);
        assert!(
            !text.contains("sample"),
            "no sample key on full-detail payloads: {text}"
        );
        assert_eq!(decode(&text).expect("decode").sample, None);
    }

    #[test]
    fn roundtrip_sampled() {
        let mut run = dense_run();
        run.breakdown = None;
        run.sample = Some(dense_sample());
        let text = encode(&run);
        let back = decode(&text).expect("decode");
        assert_eq!(back, run);
        // f64s survive bit-exactly, not merely to printed precision.
        let s = back.sample.unwrap();
        assert_eq!(s.cpi_mean.to_bits(), dense_sample().cpi_mean.to_bits());
        assert_eq!(s.cpi_ci95.to_bits(), dense_sample().cpi_ci95.to_bits());
        assert_eq!(encode(&run), text, "sampled encoding is deterministic");
    }

    #[test]
    fn mangled_sample_objects_are_errors() {
        let mut run = dense_run();
        run.sample = Some(dense_sample());
        let text = encode(&run);
        let missing = text.replacen("\"intervals\"", "\"intervals_gone\"", 1);
        assert!(decode(&missing).is_err());
        let bad_plan = text.replacen("\"plan\":[1000000", "\"plan\":[1", 1);
        assert!(
            decode(&bad_plan).is_err(),
            "an impossible plan must not decode"
        );
    }

    #[test]
    fn truncated_and_mangled_payloads_are_errors() {
        let text = encode(&dense_run());
        for cut in [0, 1, text.len() / 2, text.len() - 1] {
            assert!(
                decode(&text[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let wrong_version = text.replacen("\"v\":1", "\"v\":999", 1);
        assert!(decode(&wrong_version).is_err());
        let missing = text.replacen("\"cycles\"", "\"cycles_gone\"", 1);
        assert!(decode(&missing).is_err());
    }
}
