//! The crash-safe content-addressed on-disk result cache.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   objects/<kk>/<key>     committed entries (kk = first 2 hex digits)
//!   tmp/<key>.<pid>.<seq>  in-flight writes (swept at open)
//!   quarantine/<key>.<n>   entries that failed verification
//! ```
//!
//! `<key>` is the lowercase SHA-256 hex of the client's canonical
//! manifest (see `RunRequest::cache_manifest` in `scd-guest`).
//!
//! ## Entry format
//!
//! A 24-byte header followed by the payload:
//!
//! ```text
//! magic    4 bytes  "SCDC"
//! version  u32 LE   entry-format version (1)
//! len      u64 LE   payload length in bytes
//! fnv      u64 LE   FNV-1a over the payload
//! payload  len bytes
//! ```
//!
//! ## Atomicity protocol
//!
//! Writers never touch `objects/` directly: the full entry is written
//! to `tmp/`, `fsync`ed, then published with an atomic `rename`. A
//! reader therefore sees either no entry or a complete one — never a
//! torn write. A process killed mid-write leaves only a `tmp/` file,
//! which the next [`Cache::open`] deletes (counted in
//! [`CacheStats::recovered_tmp`]).
//!
//! ## Degradation, not panics
//!
//! Every verification failure on read — short file, bad magic, version
//! skew, length mismatch, checksum mismatch — moves the entry to
//! `quarantine/` (preserving the evidence) and reports a miss, so the
//! client recomputes and overwrites. Corruption can cost time, never
//! correctness and never a crash.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Entry header magic.
const MAGIC: [u8; 4] = *b"SCDC";
/// Entry format version.
const VERSION: u32 = 1;
/// Header size in bytes.
const HEADER: usize = 24;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` (the same construction `scd-sim`'s snapshot
/// fingerprint uses; cheap, and plenty against torn writes and bit
/// rot — this is an integrity check, not an authenticity one).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Counters describing what the cache did, all monotonic. Shared
/// (`&Cache`) across worker threads, hence atomics.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Successful loads.
    pub hits: AtomicU64,
    /// Absent entries.
    pub misses: AtomicU64,
    /// Entries written.
    pub stores: AtomicU64,
    /// Entries that failed verification and were quarantined.
    pub quarantined: AtomicU64,
    /// Stale `tmp/` files removed at open (killed-writer recovery).
    pub recovered_tmp: AtomicU64,
}

impl CacheStats {
    /// Hit rate over all lookups, in `[0, 1]`; `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let hits = self.hits.load(Ordering::Relaxed);
        let total =
            hits + self.misses.load(Ordering::Relaxed) + self.quarantined.load(Ordering::Relaxed);
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// One-line end-of-run summary of every counter — the canonical
    /// form both `scd serve` and `sweep --cache` print behind their
    /// `--cache-stats` flags.
    pub fn summary(&self) -> String {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "{} hit(s), {} miss(es), {} store(s), {} quarantined, {} tmp recovered",
            get(&self.hits),
            get(&self.misses),
            get(&self.stores),
            get(&self.quarantined),
            get(&self.recovered_tmp),
        )
    }
}

/// A content-addressed result cache rooted at one directory.
pub struct Cache {
    root: PathBuf,
    /// Monotonic suffix making concurrent `tmp/` names unique within
    /// this process (the pid handles cross-process collisions).
    seq: AtomicU64,
    /// What the cache has done so far.
    pub stats: CacheStats,
}

impl Cache {
    /// Opens (creating if needed) the cache at `root`, sweeping any
    /// stale `tmp/` files a killed writer left behind.
    ///
    /// # Errors
    /// I/O errors creating the directory layout.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Cache> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("tmp"))?;
        fs::create_dir_all(root.join("quarantine"))?;
        let cache = Cache {
            root,
            seq: AtomicU64::new(0),
            stats: CacheStats::default(),
        };
        for entry in fs::read_dir(cache.root.join("tmp"))? {
            let entry = entry?;
            if fs::remove_file(entry.path()).is_ok() {
                cache.stats.recovered_tmp.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(cache)
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Derives the cache key for a canonical manifest.
    pub fn key(manifest: &str) -> String {
        crate::sha256::sha256_hex(manifest.as_bytes())
    }

    fn object_path(&self, key: &str) -> PathBuf {
        let shard = key.get(..2).unwrap_or("xx");
        self.root.join("objects").join(shard).join(key)
    }

    /// Loads and verifies the payload stored under `key`. Absent
    /// entries are a plain miss; entries failing any verification step
    /// are moved to `quarantine/` and also reported as a miss, so the
    /// caller's only obligation is to recompute and [`Cache::store`].
    pub fn load(&self, key: &str) -> Option<Vec<u8>> {
        let path = self.object_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                // Unreadable (permissions, I/O error): degrade to a miss
                // without touching the file.
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match verify(&bytes) {
            Ok(payload) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            Err(_) => {
                self.quarantine(key, &path);
                None
            }
        }
    }

    /// Moves a failed entry aside, keeping the evidence. Never errors:
    /// if even the rename fails the entry is deleted, and if *that*
    /// fails the next lookup simply re-quarantines.
    fn quarantine(&self, key: &str, path: &Path) {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let dst = self.root.join("quarantine").join(format!("{key}.{n}"));
        if fs::rename(path, &dst).is_err() {
            let _ = fs::remove_file(path);
        }
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores `payload` under `key` via the temp-file + atomic-rename
    /// protocol. Safe to call concurrently for distinct or identical
    /// keys (last rename wins; the entries are identical by
    /// construction since keys are content hashes of the inputs).
    ///
    /// # Errors
    /// I/O errors writing or publishing the entry; the temp file is
    /// cleaned up on failure.
    pub fn store(&self, key: &str, payload: &[u8]) -> io::Result<()> {
        let mut entry = Vec::with_capacity(HEADER + payload.len());
        entry.extend_from_slice(&MAGIC);
        entry.extend_from_slice(&VERSION.to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(&fnv1a(payload).to_le_bytes());
        entry.extend_from_slice(payload);

        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .root
            .join("tmp")
            .join(format!("{key}.{}.{n}", std::process::id()));
        let publish = (|| -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&entry)?;
            // The entry must be durable *before* the rename publishes
            // it, or a crash could commit a hole.
            f.sync_all()?;
            let dst = self.object_path(key);
            if let Some(dir) = dst.parent() {
                fs::create_dir_all(dir)?;
            }
            fs::rename(&tmp, &dst)
        })();
        if publish.is_err() {
            let _ = fs::remove_file(&tmp);
        } else {
            self.stats.stores.fetch_add(1, Ordering::Relaxed);
        }
        publish
    }

    /// Flushes directory metadata so committed renames survive a crash
    /// of the host right after exit. Advisory: errors (e.g. platforms
    /// where directories cannot be `fsync`ed) are swallowed — entry
    /// *contents* were already synced at store time.
    pub fn flush(&self) {
        let objects = self.root.join("objects");
        let mut dirs = vec![objects.clone()];
        if let Ok(rd) = fs::read_dir(&objects) {
            dirs.extend(rd.flatten().map(|e| e.path()));
        }
        for dir in dirs {
            if let Ok(f) = File::open(&dir) {
                let _ = f.sync_all();
            }
        }
    }
}

/// Checks an entry's header and checksum, returning the payload slice.
fn verify(bytes: &[u8]) -> Result<&[u8], String> {
    if bytes.len() < HEADER {
        return Err(format!("short entry: {} bytes", bytes.len()));
    }
    if bytes[..4] != MAGIC {
        return Err("bad magic".to_string());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(format!("entry version {version}, want {VERSION}"));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER..];
    if payload.len() as u64 != len {
        return Err(format!(
            "length mismatch: header {len}, file {}",
            payload.len()
        ));
    }
    let want = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let got = fnv1a(payload);
    if got != want {
        return Err(format!("checksum mismatch: {got:#018x} != {want:#018x}"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory per test, cleaned up on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("scd-serve-test-{tag}-{}-{n}", std::process::id()));
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn stat(a: &AtomicU64) -> u64 {
        a.load(Ordering::Relaxed)
    }

    #[test]
    fn roundtrip() {
        let dir = TempDir::new("roundtrip");
        let cache = Cache::open(dir.path()).expect("open");
        let key = Cache::key("manifest-a");
        assert_eq!(cache.load(&key), None);
        cache.store(&key, b"hello payload").expect("store");
        assert_eq!(cache.load(&key).as_deref(), Some(&b"hello payload"[..]));
        assert_eq!(stat(&cache.stats.hits), 1);
        assert_eq!(stat(&cache.stats.misses), 1);
        assert_eq!(stat(&cache.stats.stores), 1);
    }

    #[test]
    fn distinct_manifests_distinct_keys() {
        assert_ne!(Cache::key("a"), Cache::key("b"));
        assert_eq!(Cache::key("a"), Cache::key("a"));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dir = TempDir::new("empty");
        let cache = Cache::open(dir.path()).expect("open");
        let key = Cache::key("empty");
        cache.store(&key, b"").expect("store");
        assert_eq!(cache.load(&key).as_deref(), Some(&b""[..]));
    }

    #[test]
    fn truncated_entry_is_quarantined_and_recomputable() {
        let dir = TempDir::new("truncate");
        let cache = Cache::open(dir.path()).expect("open");
        let key = Cache::key("truncate-me");
        cache
            .store(&key, b"some payload that will be cut short")
            .expect("store");
        let path = cache.object_path(&key);
        let full = fs::read(&path).expect("read entry");
        fs::write(&path, &full[..full.len() / 2]).expect("truncate");

        assert_eq!(
            cache.load(&key),
            None,
            "truncated entry must read as a miss"
        );
        assert_eq!(stat(&cache.stats.quarantined), 1);
        assert!(
            !path.exists(),
            "corrupt entry must be moved out of objects/"
        );
        let quarantined = fs::read_dir(dir.path().join("quarantine"))
            .expect("quarantine dir")
            .count();
        assert_eq!(quarantined, 1, "the evidence must be preserved");

        // Recompute path: store again, load cleanly.
        cache.store(&key, b"recomputed").expect("re-store");
        assert_eq!(cache.load(&key).as_deref(), Some(&b"recomputed"[..]));
    }

    #[test]
    fn bit_flip_is_quarantined() {
        let dir = TempDir::new("bitflip");
        let cache = Cache::open(dir.path()).expect("open");
        let key = Cache::key("flip-me");
        cache.store(&key, b"payload under test").expect("store");
        let path = cache.object_path(&key);
        let mut bytes = fs::read(&path).expect("read entry");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).expect("write corrupted");

        assert_eq!(
            cache.load(&key),
            None,
            "bit-flipped entry must read as a miss"
        );
        assert_eq!(stat(&cache.stats.quarantined), 1);
    }

    #[test]
    fn header_corruptions_are_quarantined() {
        // Each mutation targets a different header field: magic,
        // version, declared length.
        type Mutation = fn(&mut Vec<u8>);
        let cases: [(&str, Mutation); 4] = [
            ("magic", |b| b[0] = b'X'),
            ("version", |b| b[4] = 0xee),
            ("declared length", |b| b[8] ^= 0x01),
            ("shorter than header", |b| b.truncate(HEADER - 1)),
        ];
        for (what, mutate) in cases {
            let dir = TempDir::new("header");
            let cache = Cache::open(dir.path()).expect("open");
            let key = Cache::key(what);
            cache.store(&key, b"payload").expect("store");
            let path = cache.object_path(&key);
            let mut bytes = fs::read(&path).expect("read entry");
            mutate(&mut bytes);
            fs::write(&path, &bytes).expect("write corrupted");
            assert_eq!(cache.load(&key), None, "{what} corruption must miss");
            assert_eq!(stat(&cache.stats.quarantined), 1, "{what} must quarantine");
        }
    }

    #[test]
    fn stale_tmp_file_is_swept_at_open_and_never_served() {
        let dir = TempDir::new("staletmp");
        {
            let cache = Cache::open(dir.path()).expect("open");
            let key = Cache::key("interrupted");
            // Simulate a writer killed mid-write: a partial entry in
            // tmp/ that never got renamed.
            let tmp = dir.path().join("tmp").join(format!("{key}.999.0"));
            fs::write(&tmp, b"SCDC\x01\x00\x00\x00partial garbage").expect("write stale tmp");
            drop(cache);
        }
        let cache = Cache::open(dir.path()).expect("reopen");
        assert_eq!(
            stat(&cache.stats.recovered_tmp),
            1,
            "stale tmp must be swept"
        );
        assert_eq!(
            fs::read_dir(dir.path().join("tmp"))
                .expect("tmp dir")
                .count(),
            0,
            "tmp/ must be empty after recovery"
        );
        // The interrupted write never published, so the key is a miss.
        assert_eq!(cache.load(&Cache::key("interrupted")), None);
    }

    #[test]
    fn store_failure_cleans_its_temp_file() {
        let dir = TempDir::new("storefail");
        let cache = Cache::open(dir.path()).expect("open");
        // Force the publish to fail: make the object shard path an
        // existing *file*, so create_dir_all errors.
        let key = Cache::key("blocked");
        let shard = dir.path().join("objects").join(&key[..2]);
        fs::write(&shard, b"not a directory").expect("block shard");
        assert!(cache.store(&key, b"payload").is_err());
        assert_eq!(
            fs::read_dir(dir.path().join("tmp"))
                .expect("tmp dir")
                .count(),
            0,
            "failed store must not leak its temp file"
        );
    }

    #[test]
    fn concurrent_stores_and_loads() {
        let dir = TempDir::new("concurrent");
        let cache = Cache::open(dir.path()).expect("open");
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..16 {
                        let key = Cache::key(&format!("item-{}", (t * 16 + i) % 8));
                        let payload = format!("payload-{}", (t * 16 + i) % 8);
                        cache.store(&key, payload.as_bytes()).expect("store");
                        assert_eq!(cache.load(&key), Some(payload.into_bytes()));
                    }
                });
            }
        });
        assert_eq!(stat(&cache.stats.quarantined), 0);
    }

    #[test]
    fn flush_is_safe_to_call() {
        let dir = TempDir::new("flush");
        let cache = Cache::open(dir.path()).expect("open");
        cache.store(&Cache::key("x"), b"p").expect("store");
        cache.flush();
    }
}
