//! The panic-isolated batch driver: a worker pool that streams job
//! outcomes in input order with backpressure, survives worker panics,
//! retries transient failures once, and drains cleanly on interrupt.
//!
//! The pool is deliberately *not* `sweep.rs`'s `parallel_map`: a batch
//! service streams results as they complete (bounded channel, reorder
//! buffer) instead of buffering a whole matrix, and it must keep going
//! when a worker dies. The two properties that make interruption safe:
//!
//! - workers check the interrupt flag *before* claiming an index, and
//!   the shared cursor hands indices out monotonically — so the claimed
//!   set is always a contiguous prefix and every unclaimed job is
//!   reported [`JobOutcome::Cancelled`] rather than silently dropped;
//! - in-flight jobs run to completion (and commit their cache entries)
//!   before the drain finishes, so an interrupted batch resumes as
//!   cache hits.

use crate::cache::Cache;
use crate::jobs::{JobDone, JobError, JobOutcome, JobSpec};
use crate::payload::{self, CachedRun};
use scd_guest::RunRequest;
use scd_sim::{downcast_sink, CycleBreakdown, SimError, WatchdogKind};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Stride for the stat-invariant checker on traced jobs (matches the
/// sweep driver's release-mode setting).
const INVARIANT_STRIDE: u64 = 1 << 16;

/// Knobs for one batch execution.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Per-job wall-clock watchdog, enforced inside the simulator on
    /// top of any cycle budget the job itself carries.
    pub job_timeout: Option<Duration>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            threads: 1,
            job_timeout: None,
        }
    }
}

/// What a finished batch looked like.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    /// Jobs that completed and validated.
    pub ok: usize,
    /// Jobs that failed (after any retry).
    pub failed: usize,
    /// Jobs never started because the batch was interrupted.
    pub cancelled: usize,
}

impl BatchSummary {
    /// Whether the batch was cut short.
    pub fn interrupted(&self) -> bool {
        self.cancelled > 0
    }
}

/// Extracts a printable message from a panic payload (the
/// `catch_unwind` error value). Shared with `scd-bench`'s sweep pool so
/// both report worker panics the same way.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs `runner` once per job on `threads` workers, delivering every
/// outcome to `emit` **in input order** (a reorder buffer over a
/// bounded channel: slow consumers exert backpressure on the pool).
///
/// Panic isolation and retry live here, wrapped around `runner`: a
/// panicking worker yields [`JobError::Panic`] for that job and the
/// pool keeps going; transient failures (panics, I/O) get exactly one
/// retry, deterministic failures none. When `interrupt` becomes true,
/// workers stop claiming new jobs, in-flight jobs finish, and every
/// unclaimed job is emitted as [`JobOutcome::Cancelled`].
pub fn run_batch<F>(
    jobs: &[JobSpec],
    threads: usize,
    interrupt: &AtomicBool,
    runner: F,
    mut emit: impl FnMut(usize, &JobSpec, &JobOutcome),
) -> BatchSummary
where
    F: Fn(&JobSpec) -> Result<JobDone, JobError> + Sync,
{
    let attempt = |job: &JobSpec| -> JobOutcome {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let error = match catch_unwind(AssertUnwindSafe(|| runner(job))) {
                Ok(Ok(mut done)) => {
                    done.attempts = attempts;
                    return JobOutcome::Done(Box::new(done));
                }
                Ok(Err(e)) => e,
                Err(payload) => JobError::Panic(panic_message(payload)),
            };
            if attempts >= 2 || !error.transient() {
                return JobOutcome::Failed { error, attempts };
            }
        }
    };

    let mut summary = BatchSummary::default();
    let mut tally = |o: &JobOutcome| match o {
        JobOutcome::Done(_) => summary.ok += 1,
        JobOutcome::Failed { .. } => summary.failed += 1,
        JobOutcome::Cancelled => summary.cancelled += 1,
    };

    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 {
        for (i, job) in jobs.iter().enumerate() {
            let outcome = if interrupt.load(Ordering::SeqCst) {
                JobOutcome::Cancelled
            } else {
                attempt(job)
            };
            tally(&outcome);
            emit(i, job, &outcome);
        }
        return summary;
    }

    let cursor = AtomicUsize::new(0);
    // Bounded: a consumer that falls behind stalls the pool instead of
    // letting results pile up unboundedly.
    let (tx, rx) = mpsc::sync_channel::<(usize, JobOutcome)>(2 * threads);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let attempt = &attempt;
            s.spawn(move || loop {
                if interrupt.load(Ordering::SeqCst) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                if tx.send((i, attempt(job))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Reorder: outcomes surface in input order no matter which
        // worker finished first.
        let mut next = 0usize;
        let mut pending = BTreeMap::new();
        for (i, outcome) in rx {
            pending.insert(i, outcome);
            while let Some(outcome) = pending.remove(&next) {
                tally(&outcome);
                emit(next, &jobs[next], &outcome);
                next += 1;
            }
        }
        // Claims are a contiguous prefix (interrupt is checked before
        // each claim), so everything left is unclaimed → cancelled.
        debug_assert!(pending.is_empty(), "non-contiguous claim set");
        for (i, job) in jobs.iter().enumerate().skip(next) {
            let outcome = JobOutcome::Cancelled;
            tally(&outcome);
            emit(i, job, &outcome);
        }
    });
    summary
}

/// The cache manifest for `req` widened with the trace discriminator —
/// the one canonical key-derivation every cache client (the serve
/// driver, the sweep) must share so their entries interoperate.
pub fn manifest_for(req: &RunRequest<'_>, traced: bool) -> String {
    let mut m = req.cache_manifest();
    m.push_str("\ntraced ");
    m.push_str(if traced { "1" } else { "0" });
    m
}

/// Runs one job for real: cache lookup, simulate + oracle-validate on
/// miss, cache store. This is the `runner` the `scd serve` subcommand
/// passes to [`run_batch`].
///
/// # Errors
/// [`JobError`] describing the failure; [`JobError::Io`] (a failed
/// cache store) is transient and will be retried once by the driver.
pub fn simulate_job(
    job: &JobSpec,
    cache: Option<&Cache>,
    timeout: Option<Duration>,
) -> Result<JobDone, JobError> {
    let started = Instant::now();
    let key = cache
        .map(|_| Cache::key(&job.cache_manifest()))
        .unwrap_or_default();
    if let Some(c) = cache {
        if let Some(bytes) = c.load(&key) {
            // The checksum passed but the payload may still predate a
            // format change; a decode failure (or a breakdown missing
            // where the job needs one) degrades to recompute.
            if let Ok(run) = std::str::from_utf8(&bytes)
                .map_err(|e| e.to_string())
                .and_then(payload::decode)
            {
                // A traced job needs a breakdown; a sampled job needs a
                // sample report (and a detailed job must not get one) —
                // the manifests already keep these apart, so this only
                // guards against entries that predate a format change.
                if (!job.traced || run.breakdown.is_some())
                    && (job.sample.is_some() == run.sample.is_some())
                {
                    return Ok(JobDone {
                        key,
                        cached: true,
                        attempts: 1,
                        run,
                        wall: started.elapsed(),
                    });
                }
            }
        }
    }

    let run = compute_job(job, timeout)?;
    if let Some(c) = cache {
        let text = payload::encode(&run);
        c.store(&key, text.as_bytes())
            .map_err(|e| JobError::Io(format!("cache store {}: {e}", c.root().display())))?;
    }
    Ok(JobDone {
        key,
        cached: false,
        attempts: 1,
        run,
        wall: started.elapsed(),
    })
}

/// Simulates and oracle-validates one job (no cache involvement).
fn compute_job(job: &JobSpec, timeout: Option<Duration>) -> Result<CachedRun, JobError> {
    job.with_request(|req| {
        let mut session = req.session().map_err(JobError::Compile)?;
        let m = &mut session.machine;
        if let Some(plan) = &job.sample {
            // Sampled path: the scheduler forbids per-retirement
            // observers, so this is always the uninstrumented loop.
            m.disable_invariants();
            if let Some(t) = timeout {
                m.set_wall_budget(t);
            }
            let run = match session.run_sampled_and_validate(job.max_insts, plan) {
                Ok(run) => run,
                Err(scd_guest::GuestError::Sim(SimError::Watchdog {
                    kind: WatchdogKind::WallClock,
                    ..
                })) => return Err(JobError::Timeout(timeout.unwrap_or_default())),
                Err(e) => return Err(JobError::Guest(e.to_string())),
            };
            return Ok(CachedRun::from_run(&run, None));
        }
        if job.traced {
            m.enable_invariants(INVARIANT_STRIDE);
            m.set_trace_sink(Box::new(CycleBreakdown::default()));
        } else {
            // Uninstrumented: let the execute-ahead replay loop engage.
            m.disable_invariants();
        }
        if let Some(t) = timeout {
            m.set_wall_budget(t);
        }
        let exit = match m.run(job.max_insts) {
            Ok(exit) => exit,
            Err(SimError::Watchdog {
                kind: WatchdogKind::WallClock,
                ..
            }) => {
                return Err(JobError::Timeout(timeout.unwrap_or_default()));
            }
            Err(e) => return Err(JobError::Guest(format!("simulation error: {e}"))),
        };
        let run = session
            .validate(&exit)
            .map_err(|e| JobError::Guest(e.to_string()))?;
        let breakdown = if job.traced {
            let sink = session
                .machine
                .take_trace_sink()
                .and_then(downcast_sink::<CycleBreakdown>)
                .ok_or_else(|| {
                    JobError::Guest("trace sink did not come back from the machine".to_string())
                })?;
            Some(*sink)
        } else {
            None
        };
        Ok(CachedRun::from_run(&run, breakdown.as_ref()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_guest::{GuestOptions, Scheme, Vm};
    use scd_sim::{SimConfig, SimStats};
    use std::sync::atomic::AtomicU32;
    use std::sync::Mutex;

    fn job(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            vm: Vm::Lvm,
            scheme: Scheme::Scd,
            cfg: SimConfig::embedded_a5(),
            src: "emit(1);".to_string(),
            predefined: Vec::new(),
            max_insts: u64::MAX,
            opts: GuestOptions::default(),
            traced: false,
            sample: None,
        }
    }

    fn done() -> JobDone {
        JobDone {
            key: String::new(),
            cached: false,
            attempts: 1,
            run: CachedRun {
                checksum: 0,
                dispatches: 0,
                stats: SimStats::default(),
                breakdown: None,
                sample: None,
            },
            wall: Duration::ZERO,
        }
    }

    fn collect(
        jobs: &[JobSpec],
        threads: usize,
        interrupt: &AtomicBool,
        runner: impl Fn(&JobSpec) -> Result<JobDone, JobError> + Sync,
    ) -> (BatchSummary, Vec<(usize, JobOutcome)>) {
        let mut seen = Vec::new();
        let summary = run_batch(jobs, threads, interrupt, runner, |i, _, o| {
            seen.push((i, o.clone()))
        });
        (summary, seen)
    }

    #[test]
    fn panicking_worker_is_isolated_per_job() {
        let jobs: Vec<JobSpec> = ["a", "bad", "c", "d"].map(job).to_vec();
        for threads in [1, 3] {
            let (summary, seen) = collect(&jobs, threads, &AtomicBool::new(false), |j| {
                if j.id == "bad" {
                    panic!("injected worker panic for {}", j.id);
                }
                Ok(done())
            });
            assert_eq!(
                summary,
                BatchSummary {
                    ok: 3,
                    failed: 1,
                    cancelled: 0
                }
            );
            let order: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
            assert_eq!(
                order,
                vec![0, 1, 2, 3],
                "threads={threads}: order must be input order"
            );
            match &seen[1].1 {
                JobOutcome::Failed {
                    error: JobError::Panic(msg),
                    attempts: 2,
                } => {
                    assert!(msg.contains("injected worker panic"), "payload kept: {msg}");
                }
                other => panic!("want Panic after one retry, got {other:?}"),
            }
        }
    }

    #[test]
    fn transient_failure_gets_exactly_one_retry() {
        let jobs = vec![job("flaky")];
        let calls = AtomicU32::new(0);
        let (summary, seen) = collect(&jobs, 1, &AtomicBool::new(false), |_| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt dies");
            }
            Ok(done())
        });
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(summary.ok, 1);
        match &seen[0].1 {
            JobOutcome::Done(d) => assert_eq!(d.attempts, 2),
            other => panic!("want Done on retry, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_failures_are_not_retried() {
        let jobs = vec![job("broken")];
        let calls = AtomicU32::new(0);
        let (summary, seen) = collect(&jobs, 1, &AtomicBool::new(false), |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(JobError::Guest("checksum mismatch".to_string()))
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "guest errors repeat; don't retry them"
        );
        assert_eq!(summary.failed, 1);
        assert!(matches!(
            &seen[0].1,
            JobOutcome::Failed {
                error: JobError::Guest(_),
                attempts: 1
            }
        ));
    }

    #[test]
    fn io_failures_are_retried_panics_preserved() {
        let jobs = vec![job("io")];
        let calls = AtomicU32::new(0);
        let (_, seen) = collect(&jobs, 1, &AtomicBool::new(false), |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(JobError::Io("disk full".to_string()))
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            2,
            "I/O errors are transient: one retry"
        );
        assert!(matches!(
            &seen[0].1,
            JobOutcome::Failed {
                error: JobError::Io(_),
                attempts: 2
            }
        ));
    }

    #[test]
    fn interrupt_cancels_unclaimed_jobs() {
        let jobs: Vec<JobSpec> = (0..6).map(|i| job(&format!("j{i}"))).collect();
        let interrupt = AtomicBool::new(false);
        let started = Mutex::new(Vec::new());
        let (summary, seen) = collect(&jobs, 1, &interrupt, |j| {
            started.lock().unwrap().push(j.id.clone());
            if j.id == "j1" {
                // Simulate SIGINT arriving while job 1 runs.
                interrupt.store(true, Ordering::SeqCst);
            }
            Ok(done())
        });
        assert_eq!(
            summary,
            BatchSummary {
                ok: 2,
                failed: 0,
                cancelled: 4
            }
        );
        assert!(summary.interrupted());
        assert_eq!(
            *started.lock().unwrap(),
            vec!["j0", "j1"],
            "in-flight jobs finish"
        );
        for (i, o) in &seen[2..] {
            assert!(
                matches!(o, JobOutcome::Cancelled),
                "job {i} must be cancelled"
            );
        }
    }

    #[test]
    fn interrupt_with_pool_reports_every_job() {
        // With several workers the exact cut point varies; the contract
        // is: every job gets exactly one outcome, in input order, and
        // claimed ∪ cancelled covers the batch.
        let jobs: Vec<JobSpec> = (0..32).map(|i| job(&format!("j{i}"))).collect();
        let interrupt = AtomicBool::new(false);
        let (summary, seen) = collect(&jobs, 4, &interrupt, |j| {
            if j.id == "j3" {
                interrupt.store(true, Ordering::SeqCst);
            }
            Ok(done())
        });
        assert_eq!(seen.len(), jobs.len());
        let order: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..jobs.len()).collect::<Vec<_>>());
        assert_eq!(summary.ok + summary.failed + summary.cancelled, jobs.len());
        assert!(summary.cancelled > 0, "interrupt must cancel the tail");
        // Cancelled outcomes form a suffix: claims are a contiguous
        // prefix by construction.
        let first_cancelled = seen
            .iter()
            .position(|(_, o)| matches!(o, JobOutcome::Cancelled))
            .expect("some job cancelled");
        for (i, o) in &seen[first_cancelled..] {
            assert!(
                matches!(o, JobOutcome::Cancelled),
                "job {i} in the cancelled suffix"
            );
        }
    }

    #[test]
    fn pool_preserves_input_order_under_contention() {
        let jobs: Vec<JobSpec> = (0..64).map(|i| job(&format!("j{i}"))).collect();
        let (summary, seen) = collect(&jobs, 8, &AtomicBool::new(false), |j| {
            // Vary the work so completion order scrambles.
            let spin = j.id.len() * 1000;
            std::hint::black_box((0..spin).sum::<usize>());
            Ok(done())
        });
        assert_eq!(summary.ok, 64);
        let order: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }
}
