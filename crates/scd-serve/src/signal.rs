//! SIGINT-as-a-flag, with no signal-handling dependency.
//!
//! The workspace builds offline (no `libc`/`signal-hook` crates), so
//! the handler is registered through the C `signal(2)` symbol that
//! `std` already links against. The handler body does the only thing
//! that is async-signal-safe *and* useful here: store into a static
//! atomic. Everyone else — the batch driver, the sweep — polls the
//! flag at claim boundaries and drains.
//!
//! On non-Unix targets [`install_sigint_flag`] degrades to a flag that
//! never fires (Ctrl-C then terminates the process with the platform
//! default, exactly the pre-PR behavior).

use std::sync::atomic::AtomicBool;

/// Set by the handler on the first SIGINT.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    /// `SIGINT` on every Unix this workspace targets.
    const SIGINT: i32 = 2;
    /// `SIG_DFL`: restore default disposition.
    const SIG_DFL: usize = 0;

    extern "C" {
        /// `signal(2)`, reached through the libc `std` already links.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The handler: record the interrupt, then restore the default
    /// disposition so a *second* Ctrl-C kills a wedged drain instead of
    /// being swallowed.
    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGINT handler (idempotent) and returns the flag it
/// sets. Poll it at work-claim boundaries; once true, drain and exit
/// with the conventional `130`.
pub fn install_sigint_flag() -> &'static AtomicBool {
    imp::install();
    &INTERRUPTED
}

/// The conventional exit code for "terminated by SIGINT" (128 + 2).
pub const EXIT_SIGINT: i32 = 130;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[cfg(unix)]
    #[test]
    fn flag_observes_a_real_sigint() {
        // `raise(2)` delivers synchronously to this thread, so this is
        // deterministic, not a sleep-and-hope test. Restore the handler
        // afterwards (it resets itself to SIG_DFL on delivery) so a
        // stray Ctrl-C in a test run still behaves.
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        let flag = install_sigint_flag();
        assert!(!flag.load(Ordering::SeqCst));
        unsafe {
            raise(2);
        }
        assert!(flag.load(Ordering::SeqCst), "handler must record the SIGINT");
        // Re-arm for any other test (or harness) relying on defaults.
        INTERRUPTED.store(false, Ordering::SeqCst);
    }
}
