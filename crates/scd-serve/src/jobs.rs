//! Job specifications and result lines for the batch driver.
//!
//! A jobs file is JSONL: one job object per line, blank lines and
//! `#`-prefixed comment lines skipped. Example:
//!
//! ```text
//! {"id": "fib-scd", "bench": "recursive-fib", "vm": "lvm", "scheme": "scd", "predefined": {"N": 15}}
//! {"src": "var s=0; for i=1,N { s=s+i; } emit(s);", "vm": "svm", "scheme": "baseline", "predefined": {"N": 100}}
//! ```
//!
//! Fields: `bench` (corpus name from Table III) *or* `src` (inline Luma
//! source); `vm` (`lvm`/`svm`); `scheme` (`baseline`, `threaded`,
//! `scd`); optional `id` (defaults to the line number), `cfg`
//! (`embedded_a5` default, `fpga_rocket`, `highend_a8`), `predefined`
//! (object of numbers), `max_insts`, `production_weight`,
//! `scheduled_fetch`, `traced` (collect a cycle decomposition),
//! `sample` (`"default"` for the qualified default plan, or a
//! `"period:warmup:measure"` sampling plan, e.g.
//! `"1M:50k:20k"` — runs the job under interval sampling; incompatible
//! with `traced`).
//!
//! Results stream back as JSONL, one line per job in input order — see
//! [`render_result`].

use crate::json::{self, push_str_literal, Value};
use crate::payload::CachedRun;
use scd_guest::{GuestOptions, RunRequest, Scheme, Vm};
use scd_sim::{SamplingPlan, SimConfig};
use std::fmt::Write as _;
use std::time::Duration;

/// One parsed job: a fully resolved run request in owned form.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Client-chosen id echoed on the result line.
    pub id: String,
    /// Guest VM.
    pub vm: Vm,
    /// Dispatch scheme.
    pub scheme: Scheme,
    /// Simulated-core configuration.
    pub cfg: SimConfig,
    /// Luma source (inline, or resolved from the corpus `bench` name).
    pub src: String,
    /// Predefined variables, in job-file order.
    pub predefined: Vec<(String, f64)>,
    /// Retired-instruction budget.
    pub max_insts: u64,
    /// Interpreter build options.
    pub opts: GuestOptions,
    /// Whether to collect (and cache) a cycle decomposition.
    pub traced: bool,
    /// Interval-sampling plan (`None` runs full detail).
    pub sample: Option<SamplingPlan>,
}

impl JobSpec {
    /// Parses one JSONL job line (`line_no` is 1-based, used for the
    /// default id and error context).
    ///
    /// # Errors
    /// A description of the malformed line.
    pub fn parse(line: &str, line_no: usize) -> Result<JobSpec, String> {
        let v = json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        Self::from_value(&v, line_no).map_err(|e| format!("line {line_no}: {e}"))
    }

    fn from_value(v: &Value, line_no: usize) -> Result<JobSpec, String> {
        let id = match v.get("id") {
            Some(val) => val.as_str().ok_or("'id' must be a string")?.to_string(),
            None => format!("job-{line_no}"),
        };
        let vm = match v.get("vm").and_then(Value::as_str) {
            Some("lvm") => Vm::Lvm,
            Some("svm") => Vm::Svm,
            Some(other) => return Err(format!("unknown vm '{other}' (want lvm or svm)")),
            None => return Err("missing field 'vm'".to_string()),
        };
        let scheme = match v.get("scheme").and_then(Value::as_str) {
            Some("baseline") => Scheme::Baseline,
            Some("threaded" | "jump-threading") => Scheme::Threaded,
            Some("scd") => Scheme::Scd,
            Some(other) => return Err(format!("unknown scheme '{other}'")),
            None => return Err("missing field 'scheme'".to_string()),
        };
        let cfg = match v.get("cfg").and_then(Value::as_str) {
            None | Some("embedded_a5") => SimConfig::embedded_a5(),
            Some("fpga_rocket") => SimConfig::fpga_rocket(),
            Some("highend_a8") => SimConfig::highend_a8(),
            Some(other) => return Err(format!("unknown cfg '{other}'")),
        };
        let src = match (v.get("src"), v.get("bench")) {
            (Some(_), Some(_)) => return Err("give 'src' or 'bench', not both".to_string()),
            (Some(s), None) => s.as_str().ok_or("'src' must be a string")?.to_string(),
            (None, Some(b)) => {
                let name = b.as_str().ok_or("'bench' must be a string")?;
                luma::scripts::BENCHMARKS
                    .iter()
                    .find(|bm| bm.name == name)
                    .ok_or_else(|| format!("unknown benchmark '{name}'"))?
                    .source
                    .to_string()
            }
            (None, None) => return Err("missing 'src' or 'bench'".to_string()),
        };
        let mut predefined = Vec::new();
        if let Some(p) = v.get("predefined") {
            let Value::Obj(fields) = p else {
                return Err("'predefined' must be an object of numbers".to_string());
            };
            for (k, val) in fields {
                let num = val
                    .as_f64()
                    .ok_or_else(|| format!("predefined '{k}' must be a number"))?;
                predefined.push((k.clone(), num));
            }
        }
        let max_insts = match v.get("max_insts") {
            Some(m) => m
                .as_u64()
                .ok_or("'max_insts' must be an unsigned integer")?,
            None => u64::MAX,
        };
        let mut opts = GuestOptions::default();
        if let Some(b) = v.get("production_weight") {
            opts.production_weight = b.as_bool().ok_or("'production_weight' must be a bool")?;
        }
        if let Some(b) = v.get("scheduled_fetch") {
            opts.scheduled_fetch = b.as_bool().ok_or("'scheduled_fetch' must be a bool")?;
        }
        let traced = match v.get("traced") {
            Some(b) => b.as_bool().ok_or("'traced' must be a bool")?,
            None => false,
        };
        let sample = match v.get("sample") {
            Some(s) => {
                let plan = s
                    .as_str()
                    .ok_or("'sample' must be a period:warmup:measure string or \"default\"")?;
                Some(if plan == "default" {
                    SamplingPlan::qualified_default(false)
                } else {
                    SamplingPlan::parse(plan)?
                })
            }
            None => None,
        };
        if traced && sample.is_some() {
            // The trace sink is a per-retirement observer; sampled runs
            // cannot carry those (and a sampled breakdown would be a
            // fragment, not the whole-run decomposition callers expect).
            return Err("a job cannot be both traced and sampled".to_string());
        }
        Ok(JobSpec {
            id,
            vm,
            scheme,
            cfg,
            src,
            predefined,
            max_insts,
            opts,
            traced,
            sample,
        })
    }

    /// Runs `f` with the borrowed [`RunRequest`] view of this job.
    pub fn with_request<R>(&self, f: impl FnOnce(&RunRequest<'_>) -> R) -> R {
        let pre: Vec<(&str, f64)> = self
            .predefined
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let req = RunRequest::new(self.cfg.clone(), self.vm, &self.src)
            .predefined(&pre)
            .scheme(self.scheme)
            .opts(self.opts)
            .max_insts(self.max_insts)
            .sample(self.sample);
        f(&req)
    }

    /// The cache manifest for this job: the request identity plus the
    /// trace discriminator (a traced entry carries a breakdown the
    /// untraced one does not, so they address different entries).
    pub fn cache_manifest(&self) -> String {
        self.with_request(|req| crate::driver::manifest_for(req, self.traced))
    }
}

/// Parses a whole jobs file (JSONL; blank and `#` comment lines are
/// skipped).
///
/// # Errors
/// The first malformed line, with its line number.
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        jobs.push(JobSpec::parse(trimmed, i + 1)?);
    }
    Ok(jobs)
}

/// Why a job failed. `transient()` failures get one retry; the rest are
/// deterministic and retrying would only repeat them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job line or its program failed to parse/compile.
    Compile(String),
    /// The simulated run faulted or failed oracle validation.
    Guest(String),
    /// The per-job wall-clock watchdog fired.
    Timeout(Duration),
    /// The worker panicked (payload preserved).
    Panic(String),
    /// Host-side I/O failed (e.g. writing a cache entry).
    Io(String),
}

impl JobError {
    /// Whether one bounded retry is worth attempting.
    pub fn transient(&self) -> bool {
        matches!(self, JobError::Panic(_) | JobError::Io(_))
    }

    /// Stable machine-readable kind tag for result lines.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Compile(_) => "compile",
            JobError::Guest(_) => "guest",
            JobError::Timeout(_) => "timeout",
            JobError::Panic(_) => "panic",
            JobError::Io(_) => "io",
        }
    }

    /// Human-readable detail.
    pub fn message(&self) -> String {
        match self {
            JobError::Compile(m) | JobError::Guest(m) | JobError::Panic(m) | JobError::Io(m) => {
                m.clone()
            }
            JobError::Timeout(d) => format!("wall-clock watchdog fired after {d:?}"),
        }
    }
}

/// One finished job as the driver reports it.
#[derive(Debug, Clone)]
pub struct JobDone {
    /// Cache key the result lives under (empty when no cache).
    pub key: String,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Attempts taken (2 = one retry).
    pub attempts: u32,
    /// The validated run.
    pub run: CachedRun,
    /// Host wall-clock time spent on this job.
    pub wall: Duration,
}

/// Terminal state of one job in the result stream.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// Completed and validated. Boxed: a done job carries the full
    /// cached-run payload, dwarfing the other variants.
    Done(Box<JobDone>),
    /// Failed (after any retry).
    Failed {
        /// The final error.
        error: JobError,
        /// Attempts taken.
        attempts: u32,
    },
    /// Never claimed: the batch was interrupted first.
    Cancelled,
}

/// Renders one result line (no trailing newline) for `job`.
pub fn render_result(job: &JobSpec, outcome: &JobOutcome) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"id\":");
    push_str_literal(&mut out, &job.id);
    match outcome {
        JobOutcome::Done(done) => {
            out.push_str(",\"status\":\"ok\"");
            if !done.key.is_empty() {
                out.push_str(",\"key\":");
                push_str_literal(&mut out, &done.key);
            }
            let s = &done.run.stats;
            let _ = write!(
                out,
                ",\"cached\":{},\"attempts\":{},\"checksum\":{},\"dispatches\":{},\
                 \"cycles\":{},\"instructions\":{},\"wall_ms\":{}",
                done.cached,
                done.attempts,
                done.run.checksum,
                done.run.dispatches,
                s.cycles,
                s.instructions,
                done.wall.as_millis()
            );
            if let Some(r) = &done.run.sample {
                let _ = write!(
                    out,
                    ",\"sampled\":true,\"intervals\":{},\"cycles_ci95\":{},\"exact_fallback\":{}",
                    r.intervals, r.cycles_ci95, r.exact_fallback
                );
            }
        }
        JobOutcome::Failed { error, attempts } => {
            let _ = write!(out, ",\"status\":\"error\",\"kind\":\"{}\"", error.kind());
            out.push_str(",\"message\":");
            push_str_literal(&mut out, &error.message());
            let _ = write!(out, ",\"attempts\":{attempts}");
        }
        JobOutcome::Cancelled => out.push_str(",\"status\":\"cancelled\""),
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_inline_job() {
        let j = JobSpec::parse(r#"{"src": "emit(1);", "vm": "lvm", "scheme": "scd"}"#, 3)
            .expect("parse");
        assert_eq!(j.id, "job-3");
        assert_eq!(j.vm, Vm::Lvm);
        assert_eq!(j.scheme, Scheme::Scd);
        assert_eq!(j.max_insts, u64::MAX);
        assert!(!j.traced);
    }

    #[test]
    fn parses_corpus_bench_job() {
        let line = r#"{"id": "bt", "bench": "binary-trees", "vm": "svm", "scheme": "baseline",
                       "predefined": {"N": 4}, "max_insts": 1000000, "traced": true}"#;
        let j = JobSpec::parse(line, 1).expect("parse");
        assert_eq!(j.id, "bt");
        assert!(j.src.contains("emit"), "corpus source resolved");
        assert_eq!(j.predefined, vec![("N".to_string(), 4.0)]);
        assert_eq!(j.max_insts, 1_000_000);
        assert!(j.traced);
    }

    #[test]
    fn parses_sampled_job() {
        let line = r#"{"src": "emit(1);", "vm": "lvm", "scheme": "scd", "sample": "1M:50k:20k"}"#;
        let j = JobSpec::parse(line, 1).expect("parse");
        let plan = j.sample.expect("plan parsed");
        assert_eq!(
            (plan.period, plan.warmup, plan.measure),
            (1_000_000, 50_000, 20_000)
        );
        assert!(!plan.self_check, "jobs never opt into the paranoia pass");
    }

    #[test]
    fn sample_default_resolves_qualified_plan() {
        let line = r#"{"src": "emit(1);", "vm": "lvm", "scheme": "scd", "sample": "default"}"#;
        let j = JobSpec::parse(line, 1).expect("parse");
        assert_eq!(
            j.sample.expect("plan resolved"),
            SamplingPlan::qualified_default(false)
        );
    }

    #[test]
    fn rejects_malformed_jobs() {
        for (line, why) in [
            ("{}", "missing vm"),
            (r#"{"vm": "lvm", "scheme": "scd"}"#, "missing src/bench"),
            (
                r#"{"src": "x", "bench": "y", "vm": "lvm", "scheme": "scd"}"#,
                "both src and bench",
            ),
            (
                r#"{"src": "x", "vm": "jvm", "scheme": "scd"}"#,
                "unknown vm",
            ),
            (
                r#"{"src": "x", "vm": "lvm", "scheme": "direct"}"#,
                "unknown scheme",
            ),
            (
                r#"{"bench": "no-such-bench", "vm": "lvm", "scheme": "scd"}"#,
                "unknown bench",
            ),
            (
                r#"{"src": "x", "vm": "lvm", "scheme": "scd", "cfg": "cray-1"}"#,
                "unknown cfg",
            ),
            (
                r#"{"src": "x", "vm": "lvm", "scheme": "scd", "sample": "1M:50k"}"#,
                "bad plan",
            ),
            (
                r#"{"src": "x", "vm": "lvm", "scheme": "scd", "sample": "1M:50k:20k", "traced": true}"#,
                "traced and sampled",
            ),
            ("not json at all", "not json"),
        ] {
            assert!(JobSpec::parse(line, 1).is_err(), "must reject: {why}");
        }
    }

    #[test]
    fn jobs_file_skips_blanks_and_comments() {
        let text =
            "\n# a comment\n{\"src\": \"emit(1);\", \"vm\": \"lvm\", \"scheme\": \"scd\"}\n\n";
        let jobs = parse_jobs(text).expect("parse");
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, "job-3", "ids come from real line numbers");
    }

    #[test]
    fn manifest_distinguishes_what_it_must() {
        let base = r#"{"src": "emit(N);", "vm": "lvm", "scheme": "scd", "predefined": {"N": 1}}"#;
        let j = JobSpec::parse(base, 1).expect("parse");
        let m = j.cache_manifest();

        // Same identity, different id: the id is presentation, not
        // identity — it must NOT split the cache entry.
        let mut same = j.clone();
        same.id = "renamed".to_string();
        assert_eq!(m, same.cache_manifest());

        // Every identity field must split the entry.
        let mut other = j.clone();
        other.scheme = Scheme::Baseline;
        assert_ne!(m, other.cache_manifest());
        let mut other = j.clone();
        other.vm = Vm::Svm;
        assert_ne!(m, other.cache_manifest());
        let mut other = j.clone();
        other.predefined[0].1 = 2.0;
        assert_ne!(m, other.cache_manifest());
        let mut other = j.clone();
        other.src.push(' ');
        assert_ne!(m, other.cache_manifest());
        let mut other = j.clone();
        other.max_insts = 10;
        assert_ne!(m, other.cache_manifest());
        let mut other = j.clone();
        other.traced = true;
        assert_ne!(m, other.cache_manifest());
        let mut other = j.clone();
        other.opts.production_weight = false;
        assert_ne!(m, other.cache_manifest());
        let mut other = j.clone();
        other.cfg = SimConfig::highend_a8();
        assert_ne!(m, other.cache_manifest());

        // A sampled run estimates, a detailed run measures: the plan
        // must split the entry, and different plans must not collide.
        let mut sampled = j.clone();
        sampled.sample = Some(SamplingPlan::parse("1M:50k:20k").unwrap());
        assert_ne!(m, sampled.cache_manifest());
        let mut other_plan = j.clone();
        other_plan.sample = Some(SamplingPlan::parse("1M:50k:10k").unwrap());
        assert_ne!(sampled.cache_manifest(), other_plan.cache_manifest());
        // ...while `self_check` never does (it cannot change results).
        let mut checked = sampled.clone();
        checked.sample.as_mut().unwrap().self_check = true;
        assert_eq!(sampled.cache_manifest(), checked.cache_manifest());
    }

    #[test]
    fn result_lines_are_valid_json() {
        let j = JobSpec::parse(r#"{"src": "emit(1);", "vm": "lvm", "scheme": "scd"}"#, 1)
            .expect("parse");
        let outcomes = [
            JobOutcome::Failed {
                error: JobError::Panic("index out of bounds: \"quoted\"\nline2".to_string()),
                attempts: 2,
            },
            JobOutcome::Cancelled,
        ];
        for o in &outcomes {
            let line = render_result(&j, o);
            let v = json::parse(&line).expect("result line parses");
            assert_eq!(v.get("id").and_then(Value::as_str), Some("job-1"));
        }
    }
}
