#![warn(missing_docs)]

//! # scd-serve — crash-safe batch simulation with a persistent result cache
//!
//! ROADMAP item 3: generalize the sweep's in-process deduplication
//! (1,111 requested cells → 594 simulated) into a persistent,
//! many-client service layer. The crate has two halves:
//!
//! - **[`cache`]** — a content-addressed on-disk store keyed by the
//!   SHA-256 of a run's canonical manifest (program source, `SimConfig`,
//!   scheme, inputs — see `RunRequest::cache_manifest` in `scd-guest`).
//!   Entries commit via temp-file + atomic rename behind a
//!   length-and-checksum header; corruption quarantines and recomputes,
//!   a killed writer's leftovers are swept on the next open. Crashes
//!   and bit rot cost time, never correctness and never a panic.
//! - **[`driver`]** — a panic-isolated worker pool that streams job
//!   outcomes in input order with backpressure, retries transient
//!   failures once, enforces a per-job wall-clock watchdog through the
//!   simulator's own budget mechanism, and drains in-flight jobs on
//!   interrupt so a Ctrl-C'd batch resumes as cache hits.
//!
//! The `scd serve --jobs file.jsonl` subcommand is the CLI client; the
//! sweep driver in `scd-bench` is the library client (opt-in
//! `--cache DIR`). Both derive keys through [`driver::manifest_for`],
//! so their entries interoperate: a sweep warms the cache for serve
//! jobs and vice versa.
//!
//! Everything is hand-rolled on `std` only (the workspace builds
//! offline): [`sha256`] for keys, [`json`] for job files and payloads,
//! [`signal`] for SIGINT-as-a-flag via the already-linked libc.

pub mod cache;
pub mod driver;
pub mod jobs;
pub mod json;
pub mod payload;
pub mod sha256;
pub mod signal;

pub use cache::{Cache, CacheStats};
pub use driver::{manifest_for, panic_message, run_batch, simulate_job, BatchSummary, DriverConfig};
pub use jobs::{parse_jobs, render_result, JobDone, JobError, JobOutcome, JobSpec};
pub use payload::CachedRun;
pub use signal::{install_sigint_flag, EXIT_SIGINT};
