//! Activity-based energy model: dynamic energy from the simulator's
//! event counts plus leakage over runtime. This grounds the Table V EDP
//! number in *measured activity* rather than a constant-power
//! assumption, and directly captures the paper's Section II-B
//! observation that a short-circuited dispatch also skips ~10 cache
//! accesses' worth of energy per bytecode.

use scd_sim::SimStats;

/// Per-event energies (picojoules) for a 40 nm embedded core, and
/// leakage power. Values are textbook-scale estimates (small L1 SRAM
/// access ≈ 10–25 pJ at 40 nm, ALU op ≈ 2–6 pJ, DRAM access ≈ nJ-class
/// charged partially to the core boundary); the *relative* energy
/// between schemes is what the reproduction relies on.
#[derive(Debug, Clone, Copy)]
pub struct EnergyParams {
    /// Base per-instruction pipeline energy (fetch/decode/regfile/ALU).
    pub inst_pj: f64,
    /// L1 instruction cache access.
    pub icache_access_pj: f64,
    /// L1 data cache access.
    pub dcache_access_pj: f64,
    /// L1 miss serviced from memory (controller + IO at core boundary).
    pub dram_access_pj: f64,
    /// BTB lookup or insert.
    pub btb_access_pj: f64,
    /// TLB lookup.
    pub tlb_access_pj: f64,
    /// Pipeline flush (mispredict recovery).
    pub flush_pj: f64,
    /// Leakage + clock-tree power in milliwatts.
    pub leakage_mw: f64,
    /// Core clock in Hz (for converting cycles to seconds).
    pub freq_hz: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        // 40 nm embedded class at the FPGA-config's synthesized 500 MHz.
        EnergyParams {
            inst_pj: 6.0,
            icache_access_pj: 14.0,
            dcache_access_pj: 16.0,
            dram_access_pj: 600.0,
            btb_access_pj: 2.5,
            tlb_access_pj: 1.2,
            flush_pj: 18.0,
            leakage_mw: 4.0,
            freq_hz: 500e6,
        }
    }
}

/// Energy breakdown of one run.
#[derive(Debug, Clone, Copy)]
pub struct EnergyEstimate {
    /// Activity energy in microjoules.
    pub dynamic_uj: f64,
    /// Leakage + clock energy in microjoules.
    pub leakage_uj: f64,
    /// Runtime in seconds at the configured clock.
    pub runtime_s: f64,
}

impl EnergyEstimate {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.dynamic_uj + self.leakage_uj
    }

    /// Energy-delay product in microjoule-seconds.
    pub fn edp(&self) -> f64 {
        self.total_uj() * self.runtime_s
    }
}

/// Computes the energy of a run from its statistics.
pub fn energy_of_run(stats: &SimStats, p: &EnergyParams) -> EnergyEstimate {
    let branches = stats.cond.executed
        + stats.direct.executed
        + stats.ret.executed
        + stats.indirect_dispatch.executed
        + stats.indirect_other.executed;
    let dynamic_pj = stats.instructions as f64 * p.inst_pj
        + stats.icache.accesses as f64 * p.icache_access_pj
        + stats.dcache.accesses as f64 * p.dcache_access_pj
        + (stats.icache.misses + stats.dcache.misses + stats.l2.misses) as f64
            * p.dram_access_pj
        + (branches + stats.bop_executed + stats.btb.jte_inserts) as f64 * p.btb_access_pj
        + (stats.itlb.accesses + stats.dtlb.accesses) as f64 * p.tlb_access_pj
        + stats.total_mispredictions() as f64 * p.flush_pj;
    let runtime_s = stats.cycles as f64 / p.freq_hz;
    EnergyEstimate {
        dynamic_uj: dynamic_pj / 1e6,
        leakage_uj: p.leakage_mw * runtime_s * 1e3, // mW * s = mJ -> uJ
        runtime_s,
    }
}

/// EDP improvement of `fast` over `base` (positive = better).
pub fn edp_improvement_measured(base: &SimStats, fast: &SimStats, p: &EnergyParams) -> f64 {
    1.0 - energy_of_run(fast, p).edp() / energy_of_run(base, p).edp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(insts: u64, cycles: u64, mispred: u64) -> SimStats {
        let mut s = SimStats { instructions: insts, cycles, ..Default::default() };
        s.icache.accesses = insts;
        s.dcache.accesses = insts / 3;
        for _ in 0..mispred {
            s.record_branch(scd_sim::BranchClass::IndirectDispatch, true);
        }
        s
    }

    #[test]
    fn energy_scales_with_activity() {
        let p = EnergyParams::default();
        let small = energy_of_run(&stats(1_000, 1_500, 10), &p);
        let big = energy_of_run(&stats(10_000, 15_000, 100), &p);
        assert!(big.total_uj() > small.total_uj() * 9.0);
        assert!(big.runtime_s > small.runtime_s * 9.0);
    }

    #[test]
    fn fewer_instructions_and_cycles_improve_edp() {
        let p = EnergyParams::default();
        let base = stats(10_000, 15_000, 300);
        let scd = stats(8_200, 12_000, 30);
        let imp = edp_improvement_measured(&base, &scd, &p);
        assert!(imp > 0.2 && imp < 0.7, "implausible EDP improvement {imp}");
    }

    #[test]
    fn leakage_dominates_idle_runs() {
        let p = EnergyParams::default();
        // Very long run with almost no activity: leakage wins.
        let mut s = SimStats { instructions: 10, cycles: 100_000_000, ..Default::default() };
        s.icache.accesses = 10;
        let e = energy_of_run(&s, &p);
        assert!(e.leakage_uj > e.dynamic_uj * 100.0);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let p = EnergyParams::default();
        let e = energy_of_run(&stats(1_000, 2_000, 5), &p);
        assert!((e.edp() - e.total_uj() * e.runtime_s).abs() < 1e-12);
    }
}
