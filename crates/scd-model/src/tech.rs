//! 40 nm technology constants for the analytical area/power model.
//!
//! The paper synthesizes a Rocket core with Synopsys DC against TSMC
//! CLN40G libraries (Section V). We cannot run a synthesis flow, so
//! Table V is reproduced with a bit-count model: each module's area is
//! (storage bits x per-bit area of its array type) + (logic gate
//! equivalents x per-gate area), and power follows area with per-type
//! activity factors. The constants below are calibrated so the
//! *baseline* column lands near Table V's absolute numbers; the SCD
//! *delta* then emerges from the structural additions alone (J/B bit,
//! wider BTB entries, three new registers, mask AND, compare logic),
//! which is the claim being reproduced.

/// Area of one high-density 6T SRAM bit, mm² (cache data/tag arrays).
pub const SRAM_BIT_MM2: f64 = 0.60e-6;
/// Area of one register-file/flop bit, mm² (BTB, TLB, register files).
pub const RF_BIT_MM2: f64 = 2.6e-6;
/// Area of one CAM bit, mm² (fully-associative tag matches).
pub const CAM_BIT_MM2: f64 = 4.4e-6;
/// Area of one NAND2-equivalent gate, mm².
pub const GATE_MM2: f64 = 1.1e-6;

/// Leakage + clocking power per mm² of SRAM, mW.
pub const SRAM_MW_PER_MM2: f64 = 8.5;
/// Power per mm² of register-file/flop arrays, mW (higher activity).
pub const RF_MW_PER_MM2: f64 = 62.0;
/// Power per mm² of random logic, mW.
pub const LOGIC_MW_PER_MM2: f64 = 55.0;

/// Storage array flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayKind {
    /// High-density 6T SRAM (cache arrays).
    Sram,
    /// Register-file / flop arrays (BTB, TLB).
    RegFile,
    /// Content-addressable match array (fully-associative tags).
    Cam,
    /// Random logic, counted in NAND2 equivalents.
    Logic,
}

impl ArrayKind {
    /// Area of one bit (or gate, for `Logic`) in mm².
    pub fn bit_area(self) -> f64 {
        match self {
            ArrayKind::Sram => SRAM_BIT_MM2,
            ArrayKind::RegFile => RF_BIT_MM2,
            ArrayKind::Cam => CAM_BIT_MM2,
            ArrayKind::Logic => GATE_MM2,
        }
    }

    /// Power density in mW/mm².
    pub fn power_density(self) -> f64 {
        match self {
            ArrayKind::Sram => SRAM_MW_PER_MM2,
            ArrayKind::RegFile | ArrayKind::Cam => RF_MW_PER_MM2,
            ArrayKind::Logic => LOGIC_MW_PER_MM2,
        }
    }
}

/// Area (mm²) of `bits` of storage of the given kind.
pub fn area_of(kind: ArrayKind, bits: f64) -> f64 {
    bits * kind.bit_area()
}

/// Power (mW) of a block of the given kind and area.
pub fn power_of(kind: ArrayKind, area_mm2: f64) -> f64 {
    area_mm2 * kind.power_density()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_kb_sram_is_fraction_of_mm2() {
        let bits = 16.0 * 1024.0 * 8.0;
        let a = area_of(ArrayKind::Sram, bits);
        assert!(a > 0.05 && a < 0.3, "16KB SRAM area {a} mm2 out of plausible 40nm range");
    }

    #[test]
    fn cam_denser_than_nothing_but_pricier_than_sram() {
        const { assert!(CAM_BIT_MM2 > RF_BIT_MM2) };
        const { assert!(RF_BIT_MM2 > SRAM_BIT_MM2) };
    }

    #[test]
    fn power_positive() {
        for k in [ArrayKind::Sram, ArrayKind::RegFile, ArrayKind::Cam, ArrayKind::Logic] {
            assert!(power_of(k, area_of(k, 1000.0)) > 0.0);
        }
    }
}
