#![warn(missing_docs)]

//! # scd-model — analytical area/power/EDP model (Table V)
//!
//! The paper reports synthesis results (TSMC 40nm, Synopsys DC) showing
//! SCD costs 0.72% chip area and 1.09% power, improving the Lua
//! interpreter's energy-delay product by 24.2%. This crate reproduces
//! that table with a bit-count model: module areas follow storage bits
//! and gate counts, SCD's delta follows from its structural additions
//! (J/B bit and opcode key per BTB entry, the three architectural
//! registers, mask AND and compare datapath of Fig. 5, stall logic).
//!
//! ```
//! use scd_model::{table_v, edp_improvement};
//! use scd_sim::SimConfig;
//!
//! let t = table_v(&SimConfig::fpga_rocket());
//! assert!(t.area_increase < 0.02); // sub-2% chip overhead
//! let edp = edp_improvement(0.12, t.power_increase);
//! assert!(edp > 0.15); // double-digit EDP gain
//! ```

pub mod area;
pub mod energy;
pub mod tech;

pub use area::{edp_improvement, estimate, table_v, ChipEstimate, Module, TableV};
pub use energy::{edp_improvement_measured, energy_of_run, EnergyEstimate, EnergyParams};
pub use tech::ArrayKind;
