//! The module-tree area/power model that regenerates Table V.

use crate::tech::{area_of, power_of, ArrayKind};
use scd_sim::SimConfig;
use std::fmt::Write as _;

/// One row of the Table V hierarchy.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module path, Table V style (e.g. `ICache/BTB`).
    pub name: &'static str,
    /// Nesting depth for display.
    pub depth: usize,
    /// Own (non-child) area in mm².
    pub area_mm2: f64,
    /// Own power in mW.
    pub power_mw: f64,
}

/// A full chip estimate: a flat list of modules (children listed after
/// parents; parent rows report the *sum* of their subtree, as Table V
/// does).
#[derive(Debug, Clone)]
pub struct ChipEstimate {
    /// All leaf modules.
    pub modules: Vec<Module>,
}

impl ChipEstimate {
    /// Total chip area in mm² (the `Top` row).
    pub fn total_area(&self) -> f64 {
        self.modules.iter().map(|m| m.area_mm2).sum()
    }

    /// Total chip power in mW.
    pub fn total_power(&self) -> f64 {
        self.modules.iter().map(|m| m.power_mw).sum()
    }

    /// Area of one named module (own, non-child).
    pub fn module_area(&self, name: &str) -> f64 {
        self.modules
            .iter()
            .filter(|m| m.name == name)
            .map(|m| m.area_mm2)
            .sum()
    }

    /// Power of one named module.
    pub fn module_power(&self, name: &str) -> f64 {
        self.modules
            .iter()
            .filter(|m| m.name == name)
            .map(|m| m.power_mw)
            .sum()
    }

    /// Renders the Table V-style breakdown, optionally side by side with
    /// an SCD estimate.
    pub fn render(&self, other: Option<&ChipEstimate>) -> String {
        let mut out = String::new();
        let ta = self.total_area();
        let tp = self.total_power();
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>7} {:>9} {:>7}{}",
            "Module",
            "Area(mm2)",
            "%",
            "Power(mW)",
            "%",
            if other.is_some() { "   | SCD Area(mm2)  Power(mW)" } else { "" }
        );
        let _ = writeln!(
            out,
            "{:<28} {:>10.4} {:>6.1}% {:>9.3} {:>6.1}%{}",
            "Top",
            ta,
            100.0,
            tp,
            100.0,
            other
                .map(|o| format!("   | {:>13.4} {:>10.3}", o.total_area(), o.total_power()))
                .unwrap_or_default()
        );
        for (i, m) in self.modules.iter().enumerate() {
            let indent = "  ".repeat(m.depth);
            let o = other.and_then(|o| o.modules.get(i));
            let _ = writeln!(
                out,
                "{:<28} {:>10.4} {:>6.1}% {:>9.3} {:>6.1}%{}",
                format!("{indent}- {}", m.name),
                m.area_mm2,
                100.0 * m.area_mm2 / ta,
                m.power_mw,
                100.0 * m.power_mw / tp,
                o.map(|o| format!("   | {:>13.4} {:>10.3}", o.area_mm2, o.power_mw))
                    .unwrap_or_default()
            );
        }
        out
    }
}

fn module(name: &'static str, depth: usize, kind: ArrayKind, bits: f64) -> Module {
    let area = area_of(kind, bits);
    Module { name, depth, area_mm2: area, power_mw: power_of(kind, area) }
}

/// BTB storage bits for a configuration.
///
/// Baseline entry: tag (30b) + target (30b) + valid = 61 bits. The SCD
/// overlay (Section III-B) widens each entry with the J/B flag and an
/// opcode key field, and adds the three architectural registers
/// (Rop/Rmask/Rbop-pc per branch ID), the mask AND, and the
/// Rbop-pc/opcode compare datapath of Fig. 5.
fn btb_bits(cfg: &SimConfig, scd: bool) -> (f64, f64) {
    let entries = cfg.btb.entries as f64;
    let fully_assoc = cfg.btb.ways == 0;
    let base_entry_bits = 61.0;
    let cam_bits = if fully_assoc { entries * 30.0 } else { 0.0 };
    let mut ram_bits = entries * base_entry_bits - cam_bits.min(entries * 30.0);
    let mut logic_gates = 150.0; // replacement + way muxing
    if scd {
        // +1 J/B bit, +9-bit opcode key per entry.
        ram_bits += entries * 10.0;
        // 3 registers x 64 bits x branch IDs modeled as 1 set in RTL
        // (the FPGA build tracks one jump table), plus compare + AND.
        logic_gates += 3.0 * 64.0 * 6.0 + 30.0 * 3.0 + 32.0 * 2.0;
    }
    (ram_bits + cam_bits * (crate::tech::CAM_BIT_MM2 / crate::tech::RF_BIT_MM2), logic_gates)
}

/// Builds the chip estimate for a configuration.
///
/// The hierarchy mirrors Table V: Tile { Core { CSR, Div }, FPU,
/// ICache { BTB, Array, ITLB }, DCache, Uncore { HTIF, Memsys } },
/// Wrapping.
pub fn estimate(cfg: &SimConfig, scd: bool) -> ChipEstimate {
    let icache_bits = cfg.icache.size as f64 * 8.0 * 1.09; // data + tags
    let dcache_bits = cfg.dcache.size as f64 * 8.0 * 1.09;
    let itlb_bits = cfg.itlb_entries as f64 * 60.0;
    let dtlb_bits = cfg.dtlb_entries as f64 * 60.0;
    let (btb_rf_bits, btb_gates) = btb_bits(cfg, scd);

    let mut core_gates = 22_000.0; // datapath + bypass + control
    if scd {
        core_gates += 220.0; // stall logic + .op write port control (Fig. 5)
    }

    let modules = vec![
        // Core
        module("Core", 2, ArrayKind::Logic, core_gates),
        module("Core/CSR", 3, ArrayKind::Logic, 11_500.0),
        module("Core/Div", 3, ArrayKind::Logic, 5_500.0),
        // FPU
        module("FPU", 2, ArrayKind::Logic, 78_000.0),
        // ICache complex
        Module {
            name: "ICache/BTB",
            depth: 3,
            area_mm2: area_of(ArrayKind::RegFile, btb_rf_bits)
                + area_of(ArrayKind::Logic, btb_gates),
            power_mw: power_of(
                ArrayKind::RegFile,
                area_of(ArrayKind::RegFile, btb_rf_bits),
            ) + power_of(ArrayKind::Logic, area_of(ArrayKind::Logic, btb_gates)),
        },
        module("ICache/Array", 3, ArrayKind::Sram, icache_bits),
        module("ICache/ITLB", 3, ArrayKind::RegFile, itlb_bits),
        module("ICache/ctrl", 3, ArrayKind::Logic, 9_000.0),
        // DCache complex
        module("DCache/Array", 3, ArrayKind::Sram, dcache_bits),
        module("DCache/DTLB", 3, ArrayKind::RegFile, dtlb_bits),
        module("DCache/ctrl", 3, ArrayKind::Logic, 14_000.0),
        // Uncore
        module("Uncore/HTIF", 3, ArrayKind::Logic, 5_500.0),
        module("Uncore/Memsys", 3, ArrayKind::Logic, 10_500.0),
        // Wrapping (pads, clocking)
        module("Wrapping", 1, ArrayKind::Logic, 37_000.0),
    ];
    ChipEstimate { modules }
}

/// The Table V comparison: baseline vs SCD estimates plus the derived
/// deltas and the energy-delay product improvement.
#[derive(Debug, Clone)]
pub struct TableV {
    /// The chip without SCD.
    pub baseline: ChipEstimate,
    /// The chip with SCD integrated.
    pub scd: ChipEstimate,
    /// Relative chip area increase (paper: 0.72%).
    pub area_increase: f64,
    /// Relative chip power increase (paper: 1.09%).
    pub power_increase: f64,
    /// Relative BTB area increase (paper: ~21.6%).
    pub btb_area_increase: f64,
    /// Relative BTB power increase (paper: ~11.7%).
    pub btb_power_increase: f64,
}

/// Computes the Table V comparison for a configuration.
pub fn table_v(cfg: &SimConfig) -> TableV {
    let baseline = estimate(cfg, false);
    let scd = estimate(cfg, true);
    let area_increase = scd.total_area() / baseline.total_area() - 1.0;
    let power_increase = scd.total_power() / baseline.total_power() - 1.0;
    let btb_area_increase =
        scd.module_area("ICache/BTB") / baseline.module_area("ICache/BTB") - 1.0;
    let btb_power_increase =
        scd.module_power("ICache/BTB") / baseline.module_power("ICache/BTB") - 1.0;
    TableV { baseline, scd, area_increase, power_increase, btb_area_increase, btb_power_increase }
}

/// Energy-delay-product improvement given a speedup and the power
/// increase: EDP = P * D^2, with D the runtime.
pub fn edp_improvement(speedup: f64, power_increase: f64) -> f64 {
    let d = 1.0 / (1.0 + speedup);
    1.0 - (1.0 + power_increase) * d * d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_shape_matches_paper() {
        let t = table_v(&SimConfig::fpga_rocket());
        // Paper: +0.72% area, +1.09% power; we require the same order of
        // magnitude (sub-2% chip overhead).
        assert!(t.area_increase > 0.0 && t.area_increase < 0.02, "{}", t.area_increase);
        assert!(t.power_increase > 0.0 && t.power_increase < 0.03, "{}", t.power_increase);
        // BTB-local deltas in the paper's 10-30% band.
        assert!(t.btb_area_increase > 0.05 && t.btb_area_increase < 0.40);
        assert!(t.btb_power_increase > 0.03 && t.btb_power_increase < 0.40);
    }

    #[test]
    fn totals_in_table_v_ballpark() {
        // Paper totals: 0.690 mm2, 18.46 mW at 500 MHz (40nm).
        let b = estimate(&SimConfig::fpga_rocket(), false);
        let area = b.total_area();
        let power = b.total_power();
        assert!(area > 0.3 && area < 1.4, "area {area}");
        assert!(power > 9.0 && power < 40.0, "power {power}");
    }

    #[test]
    fn caches_dominate_area() {
        // Table V: ICache + DCache are ~72% of the chip.
        let b = estimate(&SimConfig::fpga_rocket(), false);
        let cache = b.module_area("ICache/Array") + b.module_area("DCache/Array");
        assert!(cache / b.total_area() > 0.4);
    }

    #[test]
    fn edp_matches_paper_arithmetic() {
        // With the paper's +1.09% power and 14-18% effective speedups,
        // EDP improvements land in the ~20-25% band it reports.
        let e = edp_improvement(0.15, 0.0109);
        assert!(e > 0.18 && e < 0.30, "{e}");
        assert!(edp_improvement(0.0, 0.0) == 0.0);
        assert!(edp_improvement(0.0, 0.05) < 0.0); // power-only = worse EDP
    }

    #[test]
    fn render_contains_all_rows() {
        let t = table_v(&SimConfig::fpga_rocket());
        let s = t.baseline.render(Some(&t.scd));
        for name in ["Top", "ICache/BTB", "DCache/Array", "FPU", "Wrapping"] {
            assert!(s.contains(name), "missing {name} in\n{s}");
        }
    }
}
