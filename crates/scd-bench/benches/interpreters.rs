//! Criterion benchmarks for the full stack: host-oracle interpretation
//! throughput and whole-machine simulation throughput under each
//! dispatch scheme (one small workload so `cargo bench` stays quick;
//! the paper-figure harness binaries do the heavy sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_sim::SimConfig;
use std::hint::black_box;

const SRC: &str = "
    fn work(n) {
        var s = 0;
        for i = 1, n { s = s + i * 3 % 7; }
        return s;
    }
    emit(work(N));
";

fn bench_oracles(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle");
    g.bench_function("lvm", |b| {
        b.iter(|| black_box(luma::lvm::run_source(SRC, &[("N", 2000.0)], u64::MAX).unwrap()))
    });
    g.bench_function("svm", |b| {
        b.iter(|| black_box(luma::svm::run_source(SRC, &[("N", 2000.0)], u64::MAX).unwrap()))
    });
    g.finish();
}

fn bench_simulated(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated");
    g.sample_size(10);
    for vm in Vm::ALL {
        for scheme in Scheme::ALL {
            g.bench_function(format!("{}/{}", vm.name(), scheme.name()), |b| {
                b.iter(|| {
                    black_box(
                        run_source(
                            SimConfig::embedded_a5(),
                            vm,
                            SRC,
                            &[("N", 500.0)],
                            scheme,
                            GuestOptions::default(),
                            u64::MAX,
                        )
                        .unwrap(),
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_oracles, bench_simulated);
criterion_main!(benches);
