//! Criterion microbenchmarks for the per-retirement hot path: the
//! monomorphized fast run loop against the fully observed loop (same
//! guest, same budget), and machine construction (which builds the
//! static side-table and shares the decoded program via `Arc`). The
//! fast/observed gap here is the whole point of the `OBSERVED`
//! monomorphization; `simperf` measures the same effect wall-to-wall.

use criterion::{criterion_group, criterion_main, Criterion};
use scd_guest::{GuestOptions, Scheme, Session, Vm};
use scd_sim::{CycleBreakdown, SimConfig, SimError};
use std::hint::black_box;

const SRC: &str = "
    fn work(n) {
        var s = 0;
        for i = 1, n { s = s + i * 3 % 7; }
        return s;
    }
    emit(work(N));
";

/// Guest instructions retired per bench iteration. Small enough that
/// the sample loop stays responsive, large enough to amortize the
/// per-call dispatch onto the monomorphized loop.
const STEP: u64 = 100_000;

fn session(scheme: Scheme) -> Session {
    // N is far larger than any bench will consume, so the guest never
    // halts mid-measurement and every iteration runs exactly STEP
    // instructions of steady-state interpreter loop.
    Session::from_source(
        SimConfig::embedded_a5(),
        Vm::Lvm,
        SRC,
        &[("N", 1e15)],
        scheme,
        GuestOptions::default(),
    )
    .expect("build session")
}

/// Advances the machine by STEP instructions; the instruction limit is
/// cumulative, so each call extends it from wherever the guest stopped.
fn step(m: &mut scd_sim::Machine) {
    let target = m.stats.instructions + STEP;
    match m.run(target) {
        Err(SimError::InstLimit { .. }) => {}
        other => panic!("expected InstLimit, got {other:?}"),
    }
}

fn bench_run_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_loop");
    g.sample_size(10);
    for scheme in [Scheme::Baseline, Scheme::Scd] {
        let mut fast = session(scheme);
        fast.machine.disable_invariants();
        g.bench_function(format!("fast/{}", scheme.name()), |b| {
            b.iter(|| step(&mut fast.machine))
        });

        let mut obs = session(scheme);
        obs.machine.enable_invariants(4096);
        obs.machine.set_trace_sink(Box::new(CycleBreakdown::default()));
        g.bench_function(format!("observed/{}", scheme.name()), |b| {
            b.iter(|| step(&mut obs.machine))
        });
    }
    g.finish();
}

fn bench_machine_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_build");
    // Session construction compiles the guest, decodes the program
    // (once, behind an Arc), builds the machine, and rebuilds the
    // static side-table for the scheme's annotations.
    g.bench_function("session_from_source", |b| {
        b.iter(|| black_box(session(Scheme::Scd)))
    });
    g.finish();
}

criterion_group!(benches, bench_run_loop, bench_machine_build);
criterion_main!(benches);
