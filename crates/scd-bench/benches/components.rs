//! Criterion microbenchmarks for the simulator's building blocks:
//! BTB lookup/insert (with and without the JTE overlay), direction
//! predictors, cache accesses, and instruction encode/decode.

use criterion::{criterion_group, criterion_main, Criterion};
use scd_isa::{decode, encode, AluOp, Inst, Reg};
use scd_sim::{
    Btb, BtbConfig, BtbKey, Cache, CacheConfig, Direction, DirectionConfig, Replacement,
};
use std::hint::black_box;

fn bench_btb(c: &mut Criterion) {
    let mut g = c.benchmark_group("btb");
    g.bench_function("pc_lookup_hit", |b| {
        let mut btb = Btb::new(BtbConfig::set_assoc(256, 2, Replacement::RoundRobin));
        for i in 0..64u64 {
            btb.insert(BtbKey::Pc(0x1000 + 4 * i), 0x2000 + 4 * i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(btb.lookup(BtbKey::Pc(0x1000 + 4 * i)))
        });
    });
    g.bench_function("jte_lookup_hit", |b| {
        let mut btb = Btb::new(BtbConfig::set_assoc(256, 2, Replacement::RoundRobin));
        for op in 0..47u64 {
            btb.insert(BtbKey::Jte { bid: 0, opcode: op }, 0x3000 + 4 * op);
        }
        let mut op = 0u64;
        b.iter(|| {
            op = (op + 1) % 47;
            black_box(btb.lookup(BtbKey::Jte { bid: 0, opcode: op }))
        });
    });
    g.bench_function("mixed_insert", |b| {
        let mut btb = Btb::new(BtbConfig::fully_assoc(62, Replacement::Lru));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if i.is_multiple_of(3) {
                btb.insert(BtbKey::Jte { bid: 0, opcode: i % 47 }, i);
            } else {
                btb.insert(BtbKey::Pc(4 * (i % 512)), i);
            }
        });
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("direction");
    for (name, cfg) in [
        ("tournament", DirectionConfig::Tournament { global_entries: 512, local_entries: 128 }),
        ("gshare", DirectionConfig::Gshare { entries: 128 }),
    ] {
        g.bench_function(name, |b| {
            let mut p = Direction::new(cfg);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let pc = 0x1000 + 4 * (i % 97);
                let taken = (i * 2654435761) % 7 < 4;
                let pred = p.predict(pc);
                p.update(pc, taken);
                black_box(pred)
            });
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l1_access", |b| {
        let mut cache = Cache::new(CacheConfig::new(16 * 1024, 2));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(40503);
            black_box(cache.access((i * 64) % (1 << 20), i.is_multiple_of(4)))
        });
    });
}

fn bench_codec(c: &mut Criterion) {
    let insts = [
        Inst::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 },
        Inst::Load { op: scd_isa::LoadOp::Ld, rd: Reg::T0, rs1: Reg::S1, offset: 16 },
        Inst::Branch { op: scd_isa::BranchOp::Bne, rs1: Reg::T0, rs2: Reg::T1, offset: -64 },
        Inst::Bop { bid: 0 },
        Inst::LoadOp { op: scd_isa::LoadOp::Lwu, bid: 0, rd: Reg::A0, rs1: Reg::S1, offset: 0 },
    ];
    let words: Vec<u32> = insts.iter().map(|&i| encode(i).unwrap()).collect();
    c.bench_function("isa/encode", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 1) % insts.len();
            black_box(encode(insts[k]).unwrap())
        });
    });
    c.bench_function("isa/decode", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 1) % words.len();
            black_box(decode(words[k]).unwrap())
        });
    });
}

criterion_group!(benches, bench_btb, bench_predictors, bench_cache, bench_codec);
criterion_main!(benches);
