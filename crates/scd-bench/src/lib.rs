//! # scd-bench — the paper-experiment harness
//!
//! One `sweep` driver regenerates the whole evaluation section — every
//! figure and table — from a single deduplicated, parallel run matrix:
//!
//! ```text
//! cargo run --release -p scd-bench --bin sweep                  # everything
//! cargo run --release -p scd-bench --bin sweep -- --only fig7,table4
//! cargo run --release -p scd-bench --bin sweep -- --threads 4
//! cargo run --release -p scd-bench --bin sweep -- --smoke       # CI drift gate
//! ```
//!
//! The per-figure binaries (`fig2` ... `table5`, `ablation`) still
//! exist, but each is now a thin alias for `sweep --only <name>`: the
//! cells it needs are planned into a [`RunMatrix`](sweep::RunMatrix),
//! executed in parallel, and rendered by the same code path the sweep
//! uses (see [`figures`]).
//!
//! This library holds the shared machinery: the deduplicating run-matrix
//! builder and parallel executor ([`sweep`]), the per-figure planners
//! and renderers ([`figures`]), and the table formatting below.

use luma::scripts::Benchmark;
use scd_guest::Scheme;
use scd_sim::{geomean, CycleBreakdown, SimConfig};

pub mod figures;
pub mod headline;
pub mod sweep;

pub use headline::{EdpHeadline, Table4Headline};
pub use sweep::{
    parallel_map, plan_matrix, try_parallel_map, CellId, CellOut, CellSpec, MapOutcome, Matrix,
    MatrixPlan, MatrixRow, RunMatrix, SweepError, SweepResults,
};

/// Invariant-checkpoint stride for harness runs. Figure binaries run in
/// release, so the self-check is explicitly enabled here: every figure
/// is produced from a run whose counters passed the cross-checks.
pub(crate) const INVARIANT_STRIDE: u64 = 1 << 16;

/// The four bars of Fig. 7: three software schemes plus the VBBI
/// hardware predictor (which runs the *baseline* binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    Baseline,
    JumpThreading,
    Vbbi,
    Scd,
}

impl Variant {
    pub const ALL: [Variant; 4] = [
        Variant::Baseline,
        Variant::JumpThreading,
        Variant::Vbbi,
        Variant::Scd,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::JumpThreading => "jump-threading",
            Variant::Vbbi => "vbbi",
            Variant::Scd => "scd",
        }
    }

    /// The guest build this variant runs.
    pub fn scheme(self) -> Scheme {
        match self {
            Variant::Baseline | Variant::Vbbi => Scheme::Baseline,
            Variant::JumpThreading => Scheme::Threaded,
            Variant::Scd => Scheme::Scd,
        }
    }

    /// The hardware configuration this variant needs, derived from a
    /// base configuration.
    pub fn configure(self, base: &SimConfig) -> SimConfig {
        match self {
            Variant::Vbbi => base.clone().with_vbbi(),
            _ => base.clone(),
        }
    }
}

/// Input scale for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgScale {
    /// Table III "Simulator" column (scaled).
    Sim,
    /// Table III "FPGA" column (scaled).
    Fpga,
    /// Tiny smoke-test inputs.
    Tiny,
}

impl ArgScale {
    pub fn arg(self, b: &Benchmark) -> f64 {
        match self {
            ArgScale::Sim => b.sim_arg,
            ArgScale::Fpga => b.fpga_arg,
            ArgScale::Tiny => b.tiny_arg,
        }
    }
}

/// Formats a per-benchmark table: one metric column per variant, with a
/// GEOMEAN row (matching the paper's figures). Metrics that can be zero
/// (MPKI) fall back to an arithmetic mean for the summary row.
pub fn format_table(
    title: &str,
    matrix: &Matrix<'_>,
    variants: &[Variant],
    metric: impl Fn(&MatrixRow<'_>, Variant) -> f64,
    unit: &str,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title} [{}]", matrix.vm.name());
    let _ = write!(out, "{:<18}", "benchmark");
    for v in variants {
        let _ = write!(out, "{:>16}", v.name());
    }
    let _ = writeln!(out, "  ({unit})");
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for row in &matrix.rows {
        let _ = write!(out, "{:<18}", row.bench.name);
        for (i, &v) in variants.iter().enumerate() {
            let x = metric(row, v);
            cols[i].push(x);
            let _ = write!(out, "{x:>16.3}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<18}", "MEAN");
    for c in &cols {
        match geomean(c) {
            Some(g) if c.iter().all(|&x| x > 0.0) => {
                let _ = write!(out, "{g:>16.3}");
            }
            _ => {
                let mean = c.iter().sum::<f64>() / c.len() as f64;
                let _ = write!(out, "{mean:>16.3}");
            }
        }
    }
    out.push('\n');
    out
}

/// Sums the event-derived decompositions of one variant across every
/// benchmark of a traced matrix.
pub fn aggregate_breakdown(matrix: &Matrix<'_>, v: Variant) -> CycleBreakdown {
    let mut agg = CycleBreakdown::default();
    for row in &matrix.rows {
        let b = row.breakdown(v);
        agg.total += b.total;
        agg.issue += b.issue;
        agg.fetch_stall += b.fetch_stall;
        agg.data_stall += b.data_stall;
        agg.redirect += b.redirect;
        agg.bop_stall += b.bop_stall;
        agg.dispatch_total += b.dispatch_total;
        agg.dispatch_redirect += b.dispatch_redirect;
        agg.dispatch_fetch_stall += b.dispatch_fetch_stall;
        agg.events += b.events;
    }
    agg
}

/// Formats the aggregated cycle decomposition per variant: where every
/// simulated cycle went, attributed from the per-retirement events of
/// the same runs that produced the headline table.
pub fn format_breakdown(title: &str, matrix: &Matrix<'_>, variants: &[Variant]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title} [{}]", matrix.vm.name());
    let _ = writeln!(
        out,
        "{:<16}{:>12}{:>9}{:>9}{:>9}{:>10}{:>9}{:>11}{:>12}",
        "variant",
        "cycles",
        "issue%",
        "fetch%",
        "data%",
        "redir%",
        "bop%",
        "dispatch%",
        "disp-redir%"
    );
    for &v in variants {
        let b = aggregate_breakdown(matrix, v);
        let pct = |x: u64| 100.0 * x as f64 / b.total.max(1) as f64;
        let _ = writeln!(
            out,
            "{:<16}{:>12}{:>9.1}{:>9.1}{:>9.1}{:>10.1}{:>9.1}{:>11.1}{:>12.1}",
            v.name(),
            b.total,
            pct(b.issue),
            pct(b.fetch_stall),
            pct(b.data_stall),
            pct(b.redirect),
            pct(b.bop_stall),
            pct(b.dispatch_total),
            100.0 * b.dispatch_redirect as f64 / b.redirect.max(1) as f64,
        );
    }
    out
}

/// Writes a harness artifact (report, bench record, golden), failing
/// loudly: a run must not exit 0 while silently dropping the file it
/// was asked to produce. Creates parent directories as needed; any I/O
/// failure is reported and exits 70 (the harness-internal-error code
/// shared with the `scd` CLI).
pub fn write_artifact(path: impl AsRef<std::path::Path>, contents: &str) {
    let path = path.as_ref();
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(70);
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(70);
    }
}

/// Prints a report to stdout and also writes it to `results/<name>.txt`
/// (exits 70 if the file cannot be written — historically the write
/// error was silently swallowed and a figure could vanish).
pub fn emit_report(name: &str, body: &str) {
    emit_report_to("results", name, body);
}

/// [`emit_report`] with an explicit output directory. Sampled sweeps
/// route their previews to `results/sampled/` so the committed
/// full-detail `results/` files are never overwritten by estimates.
pub fn emit_report_to(dir: &str, name: &str, body: &str) {
    println!("{body}");
    write_artifact(std::path::Path::new(dir).join(format!("{name}.txt")), body);
}

/// Parses a `--quick` flag from the command line (tiny inputs, for CI).
pub fn arg_scale_from_cli(default: ArgScale) -> ArgScale {
    if std::env::args().any(|a| a == "--quick") {
        ArgScale::Tiny
    } else {
        default
    }
}

/// Parses `--threads N` (or `--threads=N`) from the command line;
/// defaults to the host's available parallelism.
pub fn threads_from_cli() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|s| s.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(n) = a
            .strip_prefix("--threads=")
            .and_then(|s| s.parse::<usize>().ok())
        {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Entry point shared by the per-figure binaries: plan the named
/// report's cells, execute them in parallel, render, and emit the
/// report. Honors `--quick` (tiny inputs) and `--threads N`.
///
/// # Panics
/// Panics when `name` is not a registered report.
pub fn run_report_cli(name: &str) {
    let report = figures::report(name).unwrap_or_else(|| panic!("unknown report `{name}`"));
    let scale = arg_scale_from_cli(report.default_scale);
    let threads = threads_from_cli();
    let mut m = RunMatrix::new();
    m.set_interleaved(std::env::args().any(|a| a == "--interleaved"));
    let plan = (report.plan)(&mut m, scale);
    eprintln!(
        "{name}: {} unique cells ({} requested), {threads} thread(s)",
        m.len(),
        m.requested()
    );
    let results = m.run(threads, true);
    emit_report(name, &plan.render(&results));
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_guest::Vm;

    #[test]
    fn variant_wiring() {
        assert_eq!(Variant::Vbbi.scheme(), Scheme::Baseline);
        assert_eq!(Variant::Scd.scheme(), Scheme::Scd);
        let cfg = Variant::Vbbi.configure(&SimConfig::embedded_a5());
        assert_eq!(cfg.indirect, scd_sim::IndirectPredictor::Vbbi);
        let cfg = Variant::Scd.configure(&SimConfig::embedded_a5());
        assert_eq!(cfg.indirect, scd_sim::IndirectPredictor::BtbPc);
    }

    #[test]
    fn tiny_matrix_runs_and_formats() {
        let mut m = RunMatrix::new();
        let plan = plan_matrix(
            &mut m,
            &SimConfig::embedded_a5(),
            Vm::Lvm,
            ArgScale::Tiny,
            &[Variant::Baseline, Variant::Scd],
            false,
        );
        let r = m.run(2, false);
        let matrix = plan.resolve(&r);
        assert_eq!(matrix.rows.len(), 11);
        let t = format_table("test", &matrix, &[Variant::Scd], |r, v| r.speedup(v), "x");
        assert!(t.contains("MEAN"));
        assert!(t.contains("fibo"));
        // SCD wins on geomean even at tiny scale.
        let speedups: Vec<f64> = matrix
            .rows
            .iter()
            .map(|r| r.speedup(Variant::Scd))
            .collect();
        assert!(geomean(&speedups).expect("positive speedups") > 1.0);
    }
}
