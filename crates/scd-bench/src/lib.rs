//! # scd-bench — the paper-experiment harness
//!
//! One binary per table/figure of the evaluation section regenerates the
//! corresponding result (see DESIGN.md's experiment index):
//!
//! ```text
//! cargo run --release -p scd-bench --bin fig7      # overall speedups
//! cargo run --release -p scd-bench --bin table4    # FPGA-config table
//! ...
//! ```
//!
//! This library holds the shared machinery: the run matrix (benchmark x
//! VM x variant x configuration), correctness-checked runs, and table
//! formatting.

use luma::scripts::{Benchmark, BENCHMARKS};
use scd_guest::{run_source_with, GuestOptions, GuestRun, Scheme, Vm};
use scd_sim::{geomean, CycleBreakdown, SimConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// Invariant-checkpoint stride for harness runs. Figure binaries run in
/// release, so the self-check is explicitly enabled here: every figure
/// is produced from a run whose counters passed the cross-checks.
const INVARIANT_STRIDE: u64 = 1 << 16;

/// The four bars of Fig. 7: three software schemes plus the VBBI
/// hardware predictor (which runs the *baseline* binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    Baseline,
    JumpThreading,
    Vbbi,
    Scd,
}

impl Variant {
    pub const ALL: [Variant; 4] =
        [Variant::Baseline, Variant::JumpThreading, Variant::Vbbi, Variant::Scd];

    pub fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::JumpThreading => "jump-threading",
            Variant::Vbbi => "vbbi",
            Variant::Scd => "scd",
        }
    }

    /// The guest build this variant runs.
    pub fn scheme(self) -> Scheme {
        match self {
            Variant::Baseline | Variant::Vbbi => Scheme::Baseline,
            Variant::JumpThreading => Scheme::Threaded,
            Variant::Scd => Scheme::Scd,
        }
    }

    /// The hardware configuration this variant needs, derived from a
    /// base configuration.
    pub fn configure(self, base: &SimConfig) -> SimConfig {
        match self {
            Variant::Vbbi => base.clone().with_vbbi(),
            _ => base.clone(),
        }
    }
}

/// Input scale for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgScale {
    /// Table III "Simulator" column (scaled).
    Sim,
    /// Table III "FPGA" column (scaled).
    Fpga,
    /// Tiny smoke-test inputs.
    Tiny,
}

impl ArgScale {
    pub fn arg(self, b: &Benchmark) -> f64 {
        match self {
            ArgScale::Sim => b.sim_arg,
            ArgScale::Fpga => b.fpga_arg,
            ArgScale::Tiny => b.tiny_arg,
        }
    }
}

/// Runs one benchmark under one variant.
///
/// # Panics
/// Panics on any correctness failure (checksum/dispatch mismatch) — a
/// harness run must never silently produce numbers from a wrong
/// execution.
pub fn run_one(
    base_cfg: &SimConfig,
    vm: Vm,
    b: &Benchmark,
    scale: ArgScale,
    variant: Variant,
) -> GuestRun {
    let cfg = variant.configure(base_cfg);
    run_source_with(
        cfg,
        vm,
        b.source,
        &[("N", scale.arg(b))],
        variant.scheme(),
        GuestOptions::default(),
        u64::MAX,
        |m| m.enable_invariants(INVARIANT_STRIDE),
    )
    .unwrap_or_else(|e| panic!("{} [{} / {}]: {e}", b.name, vm.name(), variant.name()))
}

/// [`run_one`], additionally streaming the run's retirement events into
/// a [`CycleBreakdown`] so figures can attribute cycles from real events
/// instead of PC-range heuristics.
///
/// # Panics
/// Panics on any correctness failure, like [`run_one`].
pub fn run_one_traced(
    base_cfg: &SimConfig,
    vm: Vm,
    b: &Benchmark,
    scale: ArgScale,
    variant: Variant,
) -> (GuestRun, CycleBreakdown) {
    let cfg = variant.configure(base_cfg);
    let breakdown = Rc::new(RefCell::new(CycleBreakdown::default()));
    let sink = Rc::clone(&breakdown);
    let run = run_source_with(
        cfg,
        vm,
        b.source,
        &[("N", scale.arg(b))],
        variant.scheme(),
        GuestOptions::default(),
        u64::MAX,
        move |m| {
            m.enable_invariants(INVARIANT_STRIDE);
            m.set_trace_sink(Box::new(sink));
        },
    )
    .unwrap_or_else(|e| panic!("{} [{} / {}]: {e}", b.name, vm.name(), variant.name()));
    let bd = *breakdown.borrow();
    (run, bd)
}

/// A complete matrix of runs for one VM and configuration.
pub struct Matrix {
    pub vm: Vm,
    pub rows: Vec<MatrixRow>,
}

/// All variants of one benchmark.
pub struct MatrixRow {
    pub bench: &'static Benchmark,
    pub runs: Vec<(Variant, GuestRun)>,
    /// Event-derived cycle decompositions (empty unless the matrix was
    /// built with [`run_matrix_traced`]).
    pub breakdowns: Vec<(Variant, CycleBreakdown)>,
}

impl MatrixRow {
    pub fn get(&self, v: Variant) -> &GuestRun {
        &self.runs.iter().find(|(vv, _)| *vv == v).expect("variant present").1
    }

    /// The event-derived cycle decomposition for `v`.
    ///
    /// # Panics
    /// Panics when the matrix was not built with [`run_matrix_traced`].
    pub fn breakdown(&self, v: Variant) -> &CycleBreakdown {
        &self
            .breakdowns
            .iter()
            .find(|(vv, _)| *vv == v)
            .expect("matrix was built with tracing")
            .1
    }

    /// Speedup of `v` over the baseline (1.0 = no change).
    pub fn speedup(&self, v: Variant) -> f64 {
        self.get(Variant::Baseline).stats.cycles as f64 / self.get(v).stats.cycles as f64
    }

    /// Dynamic instruction count of `v` normalized to baseline.
    pub fn norm_insts(&self, v: Variant) -> f64 {
        self.get(v).stats.instructions as f64
            / self.get(Variant::Baseline).stats.instructions as f64
    }
}

/// Runs the full benchmark matrix for one VM.
pub fn run_matrix(
    base_cfg: &SimConfig,
    vm: Vm,
    scale: ArgScale,
    variants: &[Variant],
    progress: bool,
) -> Matrix {
    run_matrix_inner(base_cfg, vm, scale, variants, progress, false)
}

/// [`run_matrix`] with per-run event tracing, filling
/// [`MatrixRow::breakdowns`] so the figure can decompose cycles from the
/// same runs that produced its headline numbers.
pub fn run_matrix_traced(
    base_cfg: &SimConfig,
    vm: Vm,
    scale: ArgScale,
    variants: &[Variant],
    progress: bool,
) -> Matrix {
    run_matrix_inner(base_cfg, vm, scale, variants, progress, true)
}

fn run_matrix_inner(
    base_cfg: &SimConfig,
    vm: Vm,
    scale: ArgScale,
    variants: &[Variant],
    progress: bool,
    traced: bool,
) -> Matrix {
    let mut rows = Vec::new();
    for b in &BENCHMARKS {
        let mut runs = Vec::new();
        let mut breakdowns = Vec::new();
        for &v in variants {
            if progress {
                eprintln!("  running {} [{} / {}]...", b.name, vm.name(), v.name());
            }
            if traced {
                let (run, bd) = run_one_traced(base_cfg, vm, b, scale, v);
                runs.push((v, run));
                breakdowns.push((v, bd));
            } else {
                runs.push((v, run_one(base_cfg, vm, b, scale, v)));
            }
        }
        rows.push(MatrixRow { bench: b, runs, breakdowns });
    }
    Matrix { vm, rows }
}

/// Formats a per-benchmark table: one metric column per variant, with a
/// GEOMEAN row (matching the paper's figures). Metrics that can be zero
/// (MPKI) fall back to an arithmetic mean for the summary row.
pub fn format_table(
    title: &str,
    matrix: &Matrix,
    variants: &[Variant],
    metric: impl Fn(&MatrixRow, Variant) -> f64,
    unit: &str,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title} [{}]", matrix.vm.name());
    let _ = write!(out, "{:<18}", "benchmark");
    for v in variants {
        let _ = write!(out, "{:>16}", v.name());
    }
    let _ = writeln!(out, "  ({unit})");
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for row in &matrix.rows {
        let _ = write!(out, "{:<18}", row.bench.name);
        for (i, &v) in variants.iter().enumerate() {
            let x = metric(row, v);
            cols[i].push(x);
            let _ = write!(out, "{x:>16.3}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<18}", "MEAN");
    for c in &cols {
        if c.iter().all(|&x| x > 0.0) {
            let _ = write!(out, "{:>16.3}", geomean(c));
        } else {
            let mean = c.iter().sum::<f64>() / c.len() as f64;
            let _ = write!(out, "{mean:>16.3}");
        }
    }
    out.push('\n');
    out
}

/// Sums the event-derived decompositions of one variant across every
/// benchmark of a traced matrix.
pub fn aggregate_breakdown(matrix: &Matrix, v: Variant) -> CycleBreakdown {
    let mut agg = CycleBreakdown::default();
    for row in &matrix.rows {
        let b = row.breakdown(v);
        agg.total += b.total;
        agg.issue += b.issue;
        agg.fetch_stall += b.fetch_stall;
        agg.data_stall += b.data_stall;
        agg.redirect += b.redirect;
        agg.bop_stall += b.bop_stall;
        agg.dispatch_total += b.dispatch_total;
        agg.dispatch_redirect += b.dispatch_redirect;
        agg.dispatch_fetch_stall += b.dispatch_fetch_stall;
        agg.events += b.events;
    }
    agg
}

/// Formats the aggregated cycle decomposition per variant: where every
/// simulated cycle went, attributed from the per-retirement events of
/// the same runs that produced the headline table.
pub fn format_breakdown(title: &str, matrix: &Matrix, variants: &[Variant]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title} [{}]", matrix.vm.name());
    let _ = writeln!(
        out,
        "{:<16}{:>12}{:>9}{:>9}{:>9}{:>10}{:>9}{:>11}{:>12}",
        "variant",
        "cycles",
        "issue%",
        "fetch%",
        "data%",
        "redir%",
        "bop%",
        "dispatch%",
        "disp-redir%"
    );
    for &v in variants {
        let b = aggregate_breakdown(matrix, v);
        let pct = |x: u64| 100.0 * x as f64 / b.total.max(1) as f64;
        let _ = writeln!(
            out,
            "{:<16}{:>12}{:>9.1}{:>9.1}{:>9.1}{:>10.1}{:>9.1}{:>11.1}{:>12.1}",
            v.name(),
            b.total,
            pct(b.issue),
            pct(b.fetch_stall),
            pct(b.data_stall),
            pct(b.redirect),
            pct(b.bop_stall),
            pct(b.dispatch_total),
            100.0 * b.dispatch_redirect as f64 / b.redirect.max(1) as f64,
        );
    }
    out
}

/// Prints a report to stdout and also writes it to `results/<name>.txt`.
pub fn emit_report(name: &str, body: &str) {
    println!("{body}");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.txt")), body);
    }
}

/// Parses a `--quick` flag from the command line (tiny inputs, for CI).
pub fn arg_scale_from_cli(default: ArgScale) -> ArgScale {
    if std::env::args().any(|a| a == "--quick") {
        ArgScale::Tiny
    } else {
        default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_wiring() {
        assert_eq!(Variant::Vbbi.scheme(), Scheme::Baseline);
        assert_eq!(Variant::Scd.scheme(), Scheme::Scd);
        let cfg = Variant::Vbbi.configure(&SimConfig::embedded_a5());
        assert_eq!(cfg.indirect, scd_sim::IndirectPredictor::Vbbi);
        let cfg = Variant::Scd.configure(&SimConfig::embedded_a5());
        assert_eq!(cfg.indirect, scd_sim::IndirectPredictor::BtbPc);
    }

    #[test]
    fn tiny_matrix_runs_and_formats() {
        let m = run_matrix(
            &SimConfig::embedded_a5(),
            Vm::Lvm,
            ArgScale::Tiny,
            &[Variant::Baseline, Variant::Scd],
            false,
        );
        assert_eq!(m.rows.len(), 11);
        let t = format_table("test", &m, &[Variant::Scd], |r, v| r.speedup(v), "x");
        assert!(t.contains("MEAN"));
        assert!(t.contains("fibo"));
        // SCD wins on geomean even at tiny scale.
        let speedups: Vec<f64> = m.rows.iter().map(|r| r.speedup(Variant::Scd)).collect();
        assert!(geomean(&speedups) > 1.0);
    }
}
