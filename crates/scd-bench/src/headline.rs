//! The headline geomean ratios of Table IV and Table V, factored out of
//! the table renderers so the sampled-vs-full `--sample-gate` compares
//! exactly the numbers the tables print — not a reimplementation that
//! could drift from them.
//!
//! Everything here is a *ratio* (1.0 = no change), which is what
//! geomeans compose over; the renderers convert to the paper's
//! "% saved" / "% speedup" presentation at the last moment. The
//! per-element expressions are kept literally identical to what the
//! renderers historically pushed, so the committed `results/` artifacts
//! stay byte-for-byte stable across this refactor.

use scd_model::{edp_improvement, edp_improvement_measured, EnergyParams};
use scd_sim::{geomean, SimStats};

/// Table IV's four geomean columns, as ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Headline {
    /// Geomean jump-threading instruction ratio (jt / base; <1 = fewer).
    pub jt_inst: f64,
    /// Geomean jump-threading speedup ratio (base / jt cycles; >1 = faster).
    pub jt_speedup: f64,
    /// Geomean SCD instruction ratio (scd / base; <1 = fewer).
    pub scd_inst: f64,
    /// Geomean SCD speedup ratio (base / scd cycles; >1 = faster).
    pub scd_speedup: f64,
}

impl Table4Headline {
    /// Computes the headline from per-benchmark `(base, jt, scd)` stats.
    ///
    /// # Panics
    /// Panics on an empty row set or non-positive counters — a harness
    /// must never average numbers from a run that retired nothing.
    pub fn compute<'a>(
        rows: impl Iterator<Item = (&'a SimStats, &'a SimStats, &'a SimStats)>,
    ) -> Table4Headline {
        let (mut jts, mut jtc, mut scds, mut scdc) = (vec![], vec![], vec![], vec![]);
        for (base, jt, scd) in rows {
            let isave = |x: &SimStats| 1.0 - x.instructions as f64 / base.instructions as f64;
            let spdup = |x: &SimStats| base.cycles as f64 / x.cycles as f64 - 1.0;
            jts.push(1.0 - isave(jt));
            jtc.push(1.0 + spdup(jt));
            scds.push(1.0 - isave(scd));
            scdc.push(1.0 + spdup(scd));
        }
        let gm = |v: &[f64]| geomean(v).expect("positive ratios");
        Table4Headline {
            jt_inst: gm(&jts),
            jt_speedup: gm(&jtc),
            scd_inst: gm(&scds),
            scd_speedup: gm(&scdc),
        }
    }

    /// The four ratios with stable labels, for comparison reports.
    pub fn named(&self) -> [(&'static str, f64); 4] {
        [
            ("table4 jt instruction ratio", self.jt_inst),
            ("table4 jt speedup ratio", self.jt_speedup),
            ("table4 scd instruction ratio", self.scd_inst),
            ("table4 scd speedup ratio", self.scd_speedup),
        ]
    }
}

/// Table V's two EDP geomeans, as ratios to baseline EDP (lower is
/// better; the paper's "24.2% improvement" is `1 - const_power`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdpHeadline {
    /// Geomean EDP ratio under the paper's constant-power arithmetic.
    pub const_power: f64,
    /// Geomean EDP ratio from activity-based (event-count) energy.
    pub activity: f64,
}

impl EdpHeadline {
    /// Computes the headline from per-benchmark `(base, scd)` stats and
    /// the modeled chip power increase (Table V's `power_increase`).
    ///
    /// # Panics
    /// Panics on an empty row set or non-positive EDP ratios.
    pub fn compute<'a>(
        rows: impl Iterator<Item = (&'a SimStats, &'a SimStats)>,
        power_increase: f64,
    ) -> EdpHeadline {
        let eparams = EnergyParams::default();
        let (mut edps, mut edps_measured) = (vec![], vec![]);
        for (base, scd) in rows {
            let speedup = base.cycles as f64 / scd.cycles as f64 - 1.0;
            edps.push(1.0 - edp_improvement(speedup, power_increase));
            edps_measured.push(1.0 - edp_improvement_measured(base, scd, &eparams));
        }
        let gm = |v: &[f64]| geomean(v).expect("positive EDP ratios");
        EdpHeadline {
            const_power: gm(&edps),
            activity: gm(&edps_measured),
        }
    }

    /// The two ratios with stable labels, for comparison reports.
    pub fn named(&self) -> [(&'static str, f64); 2] {
        [
            ("table5 EDP ratio (const-power)", self.const_power),
            ("table5 EDP ratio (activity)", self.activity),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(instructions: u64, cycles: u64) -> SimStats {
        SimStats {
            instructions,
            cycles,
            ..Default::default()
        }
    }

    #[test]
    fn table4_ratios_are_geomeans() {
        // Two benchmarks with hand-checkable ratios: jt inst ratios
        // {0.9, 0.4} -> geomean 0.6; scd speedup ratios {2.0, 12.5} ->
        // geomean 5.0.
        let rows = [
            (stats(100, 100), stats(90, 100), stats(100, 50)),
            (stats(1000, 1000), stats(400, 1000), stats(1000, 80)),
        ];
        let h = Table4Headline::compute(rows.iter().map(|(b, j, s)| (b, j, s)));
        assert!((h.jt_inst - 0.6).abs() < 1e-12);
        assert!((h.jt_speedup - 1.0).abs() < 1e-12);
        assert!((h.scd_inst - 1.0).abs() < 1e-12);
        assert!((h.scd_speedup - 5.0).abs() < 1e-9);
        assert_eq!(h.named().len(), 4);
    }

    #[test]
    fn edp_identical_runs_are_ratio_one_at_zero_power_delta() {
        let rows = [(stats(100, 200), stats(100, 200))];
        let h = EdpHeadline::compute(rows.iter().map(|(b, s)| (b, s)), 0.0);
        assert!((h.const_power - 1.0).abs() < 1e-12);
        assert!((h.activity - 1.0).abs() < 1e-12);
    }
}
