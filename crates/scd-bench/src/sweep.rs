//! The shared run matrix behind every figure and table.
//!
//! Historically each `scd-bench` binary re-ran its own slice of the
//! evaluation matrix (benchmark × VM × scheme × `SimConfig`), so
//! regenerating the full evaluation re-simulated heavily overlapping
//! cell sets strictly sequentially. This module splits *planning* from
//! *execution*:
//!
//! 1. every figure contributes the cells it needs to one [`RunMatrix`]
//!    builder, which deduplicates them by their full identity
//!    (configuration, VM, benchmark, input, scheme, build options);
//! 2. [`RunMatrix::run`] executes the unique cells on a work-stealing
//!    pool of plain `std::thread::scope` workers (the `Machine` stack is
//!    `Send`, asserted at compile time in `scd-sim`), with results
//!    written into per-cell slots so the reduction order — and therefore
//!    every rendered byte — is deterministic regardless of thread count;
//! 3. figures render from the shared [`SweepResults`] via stable
//!    [`CellId`] handles.
//!
//! Untraced cells run uninstrumented on the execute-ahead replay loop
//! (bit-identical stats, PR 6's golden guarantee; oracle checksum
//! validation still gates every cell). Traced cells carry a
//! [`CycleBreakdown`] sink and the invariant checker armed at
//! [`INVARIANT_STRIDE`](crate), exactly as the sequential binaries did —
//! observers force the interleaved loop. The trace layer is
//! stat-invariant (PR 1's golden guarantee), so a cell shared between a
//! traced and an untraced consumer is run once, traced, and both read
//! identical statistics. [`RunMatrix::set_interleaved`] pins *every*
//! cell to the interleaved loop with invariants armed (the pre-replay
//! behavior), for apples-to-apples timing or debugging.

use crate::{ArgScale, Variant, INVARIANT_STRIDE};
use luma::scripts::{Benchmark, BENCHMARKS};
use scd_guest::{GuestOptions, GuestRun, RunRequest, Scheme, Vm};
use scd_sim::{CycleBreakdown, SimConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Stable handle to one cell of a [`RunMatrix`] / [`SweepResults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId(usize);

/// Everything that identifies one simulation cell of the evaluation
/// matrix. Two cells with equal identity (everything but `traced`) are
/// deduplicated into one run.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Simulated-core configuration (already variant-adjusted).
    pub cfg: SimConfig,
    /// Guest VM.
    pub vm: Vm,
    /// Corpus benchmark.
    pub bench: &'static Benchmark,
    /// Value bound to `N`.
    pub arg: f64,
    /// Interpreter dispatch scheme.
    pub scheme: Scheme,
    /// Interpreter build options.
    pub opts: GuestOptions,
    /// Whether any consumer needs the cycle decomposition of this cell.
    pub traced: bool,
}

impl CellSpec {
    /// Dedup key: the full cell identity minus `traced` (tracing is
    /// stat-invariant, so it widens a cell rather than splitting it).
    fn key(&self) -> String {
        format!(
            "{:?}|{:?}|{}|{:016x}|{:?}|{:?}",
            self.cfg,
            self.vm,
            self.bench.name,
            self.arg.to_bits(),
            self.scheme,
            self.opts
        )
    }
}

/// One executed cell: the validated run, its optional cycle
/// decomposition, and how long it took on the host.
pub struct CellOut {
    /// The oracle-validated run.
    pub run: GuestRun,
    /// Event-derived cycle decomposition (`None` for untraced cells).
    pub breakdown: Option<CycleBreakdown>,
    /// Host wall-clock time this cell took to simulate.
    pub wall: Duration,
}

/// Deduplicating builder for the evaluation run matrix.
#[derive(Default)]
pub struct RunMatrix {
    cells: Vec<CellSpec>,
    /// How many times each unique cell was requested.
    hits: Vec<usize>,
    index: HashMap<String, usize>,
    /// Pin every cell to the interleaved loop with invariants armed.
    interleaved: bool,
}

impl RunMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unique cells planned so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are planned.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total cell *requests* (before deduplication); the ratio to
    /// [`RunMatrix::len`] is the work the shared matrix saves.
    pub fn requested(&self) -> usize {
        self.hits.iter().sum()
    }

    /// Pins every cell — traced or not — to the interleaved reference
    /// loop with the invariant checker armed, instead of letting
    /// untraced cells take the execute-ahead replay loop. Stats are
    /// identical either way; this trades speed for continuous invariant
    /// checking.
    pub fn set_interleaved(&mut self, interleaved: bool) {
        self.interleaved = interleaved;
    }

    /// Plans `spec`, returning the id of the (possibly pre-existing)
    /// unique cell. A traced request upgrades an untraced cell.
    pub fn cell(&mut self, spec: CellSpec) -> CellId {
        let key = spec.key();
        match self.index.get(&key) {
            Some(&i) => {
                self.cells[i].traced |= spec.traced;
                self.hits[i] += 1;
                CellId(i)
            }
            None => {
                let i = self.cells.len();
                self.index.insert(key, i);
                self.cells.push(spec);
                self.hits.push(1);
                CellId(i)
            }
        }
    }

    /// Plans one benchmark under one Fig. 7 [`Variant`] (the variant
    /// picks both the scheme and the hardware configuration).
    pub fn variant(
        &mut self,
        base_cfg: &SimConfig,
        vm: Vm,
        bench: &'static Benchmark,
        scale: ArgScale,
        v: Variant,
        traced: bool,
    ) -> CellId {
        self.cell(CellSpec {
            cfg: v.configure(base_cfg),
            vm,
            bench,
            arg: scale.arg(bench),
            scheme: v.scheme(),
            opts: GuestOptions::default(),
            traced,
        })
    }

    /// Executes every unique cell on `threads` worker threads and
    /// returns the result set. Cell results land in planning order, so
    /// downstream rendering is deterministic for any thread count.
    ///
    /// # Panics
    /// Panics if any cell fails oracle validation — a harness run must
    /// never silently produce numbers from a wrong execution.
    pub fn run(self, threads: usize, progress: bool) -> SweepResults {
        let started = Instant::now();
        let total = self.cells.len();
        let done = AtomicUsize::new(0);
        let interleaved = self.interleaved;
        let outs = parallel_map(&self.cells, threads, |spec| {
            let out = run_cell(spec, interleaved);
            if progress {
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "  [{d}/{total}] {} [{} / {}] {:.2}s",
                    spec.bench.name,
                    spec.vm.name(),
                    spec.scheme.name(),
                    out.wall.as_secs_f64()
                );
            }
            out
        });
        SweepResults { specs: self.cells, hits: self.hits, cells: outs, wall: started.elapsed() }
    }
}

/// Runs one cell, oracle-validated. Traced (or `interleaved`) cells run
/// the interleaved loop with invariants armed; untraced cells run
/// uninstrumented on the replay fast path.
fn run_cell(spec: &CellSpec, interleaved: bool) -> CellOut {
    let started = Instant::now();
    let args = [("N", spec.arg)];
    let req = RunRequest::new(spec.cfg.clone(), spec.vm, spec.bench.source)
        .predefined(&args)
        .scheme(spec.scheme)
        .opts(spec.opts);
    let mut run = req
        .run_with(|m| {
            if spec.traced || interleaved {
                m.enable_invariants(INVARIANT_STRIDE);
            } else {
                // Let the execute-ahead replay loop engage (debug builds
                // otherwise auto-arm the invariant observer).
                m.disable_invariants();
            }
            if spec.traced {
                m.set_trace_sink(Box::new(CycleBreakdown::default()));
            }
        })
        .unwrap_or_else(|e| {
            panic!("{} [{} / {}]: {e}", spec.bench.name, spec.vm.name(), spec.scheme.name())
        });
    let breakdown = spec
        .traced
        .then(|| *run.take_sink::<CycleBreakdown>().expect("breakdown sink comes back with the run"));
    CellOut { run, breakdown, wall: started.elapsed() }
}

/// Order-preserving parallel map over a slice using scoped threads: a
/// shared atomic cursor hands out indices, each worker writes its result
/// into the slot for the index it claimed, and the output order matches
/// the input order exactly. With `threads <= 1` it degenerates to a
/// plain sequential map (no pool, no locks).
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("result slot poisoned") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("every slot filled"))
        .collect()
}

/// The executed matrix: one [`CellOut`] per unique planned cell, plus
/// the wall-clock accounting the sweep driver reports.
pub struct SweepResults {
    specs: Vec<CellSpec>,
    hits: Vec<usize>,
    cells: Vec<CellOut>,
    /// Wall-clock time of the whole (parallel) execution.
    pub wall: Duration,
}

impl SweepResults {
    /// Number of executed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix was empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The validated run of `id`.
    pub fn get(&self, id: CellId) -> &GuestRun {
        &self.cells[id.0].run
    }

    /// The cycle decomposition of `id`.
    ///
    /// # Panics
    /// Panics when the cell was planned untraced.
    pub fn breakdown(&self, id: CellId) -> &CycleBreakdown {
        self.cells[id.0].breakdown.as_ref().expect("cell was planned traced")
    }

    /// Sum of per-cell host runtimes: what the deduplicated matrix would
    /// cost on one thread.
    pub fn serial_unique(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }

    /// Dedup-unaware sequential estimate: per-cell runtime weighted by
    /// how many times the cell was requested — what the old one-binary-
    /// per-figure flow would have simulated.
    pub fn serial_requested(&self) -> Duration {
        self.cells
            .iter()
            .zip(&self.hits)
            .map(|(c, &h)| c.wall * u32::try_from(h).unwrap_or(u32::MAX))
            .sum()
    }

    /// Iterates `(spec, times-requested, result)` in planning order.
    pub fn iter(&self) -> impl Iterator<Item = (&CellSpec, usize, &CellOut)> {
        self.specs.iter().zip(&self.hits).zip(&self.cells).map(|((s, &h), c)| (s, h, c))
    }
}

/// The planned form of the old `run_matrix` helper: all benchmarks ×
/// the given variants for one VM/configuration, resolvable into a
/// [`Matrix`] view once the sweep has run.
pub struct MatrixPlan {
    /// The VM the matrix covers.
    pub vm: Vm,
    rows: Vec<(&'static Benchmark, Vec<(Variant, CellId)>)>,
}

/// Plans the full benchmark matrix for one VM.
pub fn plan_matrix(
    m: &mut RunMatrix,
    base_cfg: &SimConfig,
    vm: Vm,
    scale: ArgScale,
    variants: &[Variant],
    traced: bool,
) -> MatrixPlan {
    let rows = BENCHMARKS
        .iter()
        .map(|b| {
            let cells =
                variants.iter().map(|&v| (v, m.variant(base_cfg, vm, b, scale, v, traced))).collect();
            (b, cells)
        })
        .collect();
    MatrixPlan { vm, rows }
}

impl MatrixPlan {
    /// Resolves the plan against executed results into the borrowing
    /// [`Matrix`] view the table formatters consume.
    pub fn resolve<'r>(&self, r: &'r SweepResults) -> Matrix<'r> {
        Matrix {
            vm: self.vm,
            rows: self
                .rows
                .iter()
                .map(|(b, cells)| MatrixRow { bench: b, cells: cells.clone(), results: r })
                .collect(),
        }
    }
}

/// A complete matrix of executed runs for one VM and configuration,
/// borrowing from [`SweepResults`].
pub struct Matrix<'r> {
    /// The VM the matrix covers.
    pub vm: Vm,
    /// One row per benchmark.
    pub rows: Vec<MatrixRow<'r>>,
}

/// All variants of one benchmark.
pub struct MatrixRow<'r> {
    /// The benchmark.
    pub bench: &'static Benchmark,
    cells: Vec<(Variant, CellId)>,
    results: &'r SweepResults,
}

impl<'r> MatrixRow<'r> {
    fn id(&self, v: Variant) -> CellId {
        self.cells.iter().find(|(vv, _)| *vv == v).expect("variant present").1
    }

    /// The validated run of variant `v`.
    pub fn get(&self, v: Variant) -> &'r GuestRun {
        self.results.get(self.id(v))
    }

    /// The event-derived cycle decomposition for `v`.
    ///
    /// # Panics
    /// Panics when the matrix was planned untraced.
    pub fn breakdown(&self, v: Variant) -> &'r CycleBreakdown {
        self.results.breakdown(self.id(v))
    }

    /// Speedup of `v` over the baseline (1.0 = no change).
    pub fn speedup(&self, v: Variant) -> f64 {
        self.get(Variant::Baseline).stats.cycles as f64 / self.get(v).stats.cycles as f64
    }

    /// Dynamic instruction count of `v` normalized to baseline.
    pub fn norm_insts(&self, v: Variant) -> f64 {
        self.get(v).stats.instructions as f64
            / self.get(Variant::Baseline).stats.instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_collapses_identical_cells() {
        let a5 = SimConfig::embedded_a5();
        let mut m = RunMatrix::new();
        let b = &BENCHMARKS[0];
        let a = m.variant(&a5, Vm::Lvm, b, ArgScale::Tiny, Variant::Baseline, false);
        let c = m.variant(&a5, Vm::Lvm, b, ArgScale::Tiny, Variant::Baseline, true);
        assert_eq!(a, c, "identical cells must deduplicate");
        assert_eq!(m.len(), 1);
        assert_eq!(m.requested(), 2);
        // The traced request upgraded the shared cell.
        assert!(m.cells[0].traced);
        // A different scheme is a different cell.
        let d = m.variant(&a5, Vm::Lvm, b, ArgScale::Tiny, Variant::Scd, false);
        assert_ne!(a, d);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn parallel_map_is_order_preserving() {
        let items: Vec<u64> = (0..97).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7] {
            assert_eq!(parallel_map(&items, threads, |x| x * x), seq);
        }
    }

    #[test]
    fn sweep_matches_direct_runs_any_thread_count() {
        let a5 = SimConfig::embedded_a5();
        let plan_and_run = |threads: usize| {
            let mut m = RunMatrix::new();
            let plan = plan_matrix(
                &mut m,
                &a5,
                Vm::Lvm,
                ArgScale::Tiny,
                &[Variant::Baseline, Variant::Scd],
                true,
            );
            let r = m.run(threads, false);
            let matrix = plan.resolve(&r);
            let speedups: Vec<f64> =
                matrix.rows.iter().map(|row| row.speedup(Variant::Scd)).collect();
            let events: Vec<u64> =
                matrix.rows.iter().map(|row| row.breakdown(Variant::Scd).events).collect();
            (speedups, events)
        };
        let one = plan_and_run(1);
        let four = plan_and_run(4);
        assert_eq!(one, four, "thread count must not change any result");
        // SCD wins on geomean even at tiny scale.
        let g = scd_sim::geomean(&one.0).expect("positive speedups");
        assert!(g > 1.0, "geomean speedup {g} <= 1");
    }
}
