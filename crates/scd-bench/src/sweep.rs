//! The shared run matrix behind every figure and table.
//!
//! Historically each `scd-bench` binary re-ran its own slice of the
//! evaluation matrix (benchmark × VM × scheme × `SimConfig`), so
//! regenerating the full evaluation re-simulated heavily overlapping
//! cell sets strictly sequentially. This module splits *planning* from
//! *execution*:
//!
//! 1. every figure contributes the cells it needs to one [`RunMatrix`]
//!    builder, which deduplicates them by their full identity
//!    (configuration, VM, benchmark, input, scheme, build options);
//! 2. [`RunMatrix::run`] executes the unique cells on a work-stealing
//!    pool of plain `std::thread::scope` workers (the `Machine` stack is
//!    `Send`, asserted at compile time in `scd-sim`), with results
//!    written into per-cell slots so the reduction order — and therefore
//!    every rendered byte — is deterministic regardless of thread count;
//! 3. figures render from the shared [`SweepResults`] via stable
//!    [`CellId`] handles.
//!
//! Untraced cells run uninstrumented on the execute-ahead replay loop
//! (bit-identical stats, PR 6's golden guarantee; oracle checksum
//! validation still gates every cell). Traced cells carry a
//! [`CycleBreakdown`] sink and the invariant checker armed at
//! [`INVARIANT_STRIDE`](crate), exactly as the sequential binaries did —
//! observers force the interleaved loop. The trace layer is
//! stat-invariant (PR 1's golden guarantee), so a cell shared between a
//! traced and an untraced consumer is run once, traced, and both read
//! identical statistics. [`RunMatrix::set_interleaved`] pins *every*
//! cell to the interleaved loop with invariants armed (the pre-replay
//! behavior), for apples-to-apples timing or debugging.

use crate::{ArgScale, Variant, INVARIANT_STRIDE};
use luma::scripts::{Benchmark, BENCHMARKS};
use scd_guest::{GuestOptions, GuestRun, RunRequest, Scheme, Vm};
use scd_serve::{manifest_for, panic_message, payload, Cache, CachedRun};
use scd_sim::{CycleBreakdown, SamplingPlan, SimConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Stable handle to one cell of a [`RunMatrix`] / [`SweepResults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId(usize);

/// Everything that identifies one simulation cell of the evaluation
/// matrix. Two cells with equal identity (everything but `traced`) are
/// deduplicated into one run.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Simulated-core configuration (already variant-adjusted).
    pub cfg: SimConfig,
    /// Guest VM.
    pub vm: Vm,
    /// Corpus benchmark.
    pub bench: &'static Benchmark,
    /// Value bound to `N`.
    pub arg: f64,
    /// Interpreter dispatch scheme.
    pub scheme: Scheme,
    /// Interpreter build options.
    pub opts: GuestOptions,
    /// Whether any consumer needs the cycle decomposition of this cell.
    pub traced: bool,
}

impl CellSpec {
    /// Dedup key: the full cell identity minus `traced` (tracing is
    /// stat-invariant, so it widens a cell rather than splitting it).
    fn key(&self) -> String {
        format!(
            "{:?}|{:?}|{}|{:016x}|{:?}|{:?}",
            self.cfg,
            self.vm,
            self.bench.name,
            self.arg.to_bits(),
            self.scheme,
            self.opts
        )
    }
}

/// One executed cell: the validated run, its optional cycle
/// decomposition, and how long it took on the host.
pub struct CellOut {
    /// The oracle-validated run.
    pub run: GuestRun,
    /// Event-derived cycle decomposition (`None` for untraced cells).
    pub breakdown: Option<CycleBreakdown>,
    /// Host wall-clock time this cell took to simulate.
    pub wall: Duration,
}

/// Deduplicating builder for the evaluation run matrix.
#[derive(Default)]
pub struct RunMatrix {
    cells: Vec<CellSpec>,
    /// How many times each unique cell was requested.
    hits: Vec<usize>,
    index: HashMap<String, usize>,
    /// Pin every cell to the interleaved loop with invariants armed.
    interleaved: bool,
    /// Run every *untraced* cell under interval sampling with this plan.
    sample: Option<SamplingPlan>,
}

impl RunMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unique cells planned so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are planned.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total cell *requests* (before deduplication); the ratio to
    /// [`RunMatrix::len`] is the work the shared matrix saves.
    pub fn requested(&self) -> usize {
        self.hits.iter().sum()
    }

    /// Pins every cell — traced or not — to the interleaved reference
    /// loop with the invariant checker armed, instead of letting
    /// untraced cells take the execute-ahead replay loop. Stats are
    /// identical either way; this trades speed for continuous invariant
    /// checking.
    pub fn set_interleaved(&mut self, interleaved: bool) {
        self.interleaved = interleaved;
    }

    /// Runs every *untraced* cell under interval sampling with `plan`:
    /// fast-forward / functionally warm / measure, with cycle counts
    /// statistically estimated instead of fully simulated (architectural
    /// results stay exact and oracle-validated). Traced cells always run
    /// full detail — a cycle decomposition sampled from a fraction of
    /// the run would be a fragment, not an estimate. The plan joins each
    /// sampled cell's cache manifest, so sampled and full-detail entries
    /// never collide in a shared `--cache` directory.
    pub fn set_sample(&mut self, plan: Option<SamplingPlan>) {
        self.sample = plan;
    }

    /// Plans `spec`, returning the id of the (possibly pre-existing)
    /// unique cell. A traced request upgrades an untraced cell.
    pub fn cell(&mut self, spec: CellSpec) -> CellId {
        let key = spec.key();
        match self.index.get(&key) {
            Some(&i) => {
                self.cells[i].traced |= spec.traced;
                self.hits[i] += 1;
                CellId(i)
            }
            None => {
                let i = self.cells.len();
                self.index.insert(key, i);
                self.cells.push(spec);
                self.hits.push(1);
                CellId(i)
            }
        }
    }

    /// Plans one benchmark under one Fig. 7 [`Variant`] (the variant
    /// picks both the scheme and the hardware configuration).
    pub fn variant(
        &mut self,
        base_cfg: &SimConfig,
        vm: Vm,
        bench: &'static Benchmark,
        scale: ArgScale,
        v: Variant,
        traced: bool,
    ) -> CellId {
        self.cell(CellSpec {
            cfg: v.configure(base_cfg),
            vm,
            bench,
            arg: scale.arg(bench),
            scheme: v.scheme(),
            opts: GuestOptions::default(),
            traced,
        })
    }

    /// Executes every unique cell on `threads` worker threads and
    /// returns the result set. Cell results land in planning order, so
    /// downstream rendering is deterministic for any thread count.
    ///
    /// # Panics
    /// Panics if any cell fails oracle validation — a harness run must
    /// never silently produce numbers from a wrong execution.
    pub fn run(self, threads: usize, progress: bool) -> SweepResults {
        match self.run_cached(threads, progress, None, None) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`RunMatrix::run`] with the robustness knobs exposed: an optional
    /// persistent result [`Cache`] (entries are keyed through
    /// [`manifest_for`], so they interoperate with `scd serve`) and an
    /// optional interrupt flag. When the flag becomes true, in-flight
    /// cells finish — and commit their cache entries — but no new cell
    /// is claimed, and the sweep returns [`SweepError::Interrupted`]; a
    /// rerun against the same cache resumes as hits.
    ///
    /// # Errors
    /// [`SweepError::Cell`] on the first cell that fails to compile,
    /// validate or persist (including a worker panic, which no longer
    /// takes the rest of the matrix down with it);
    /// [`SweepError::Interrupted`] when cut short.
    pub fn run_cached(
        self,
        threads: usize,
        progress: bool,
        cache: Option<&Cache>,
        interrupt: Option<&AtomicBool>,
    ) -> Result<SweepResults, SweepError> {
        let started = Instant::now();
        let total = self.cells.len();
        let done = AtomicUsize::new(0);
        let interleaved = self.interleaved;
        let sample = self.sample;
        let outs = try_parallel_map(&self.cells, threads, interrupt, |spec| {
            let out = run_cell(spec, interleaved, sample.as_ref(), cache);
            if progress {
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                let status = match &out {
                    Ok(cell) => format!("{:.2}s", cell.wall.as_secs_f64()),
                    Err(_) => "FAILED".to_string(),
                };
                eprintln!(
                    "  [{d}/{total}] {} [{} / {}] {status}",
                    spec.bench.name,
                    spec.vm.name(),
                    spec.scheme.name(),
                );
            }
            out
        });
        let mut cells = Vec::with_capacity(outs.len());
        for (i, out) in outs.into_iter().enumerate() {
            let spec = &self.cells[i];
            let label = format!(
                "{} [{} / {}]",
                spec.bench.name,
                spec.vm.name(),
                spec.scheme.name()
            );
            match out {
                MapOutcome::Done(Ok(cell)) => cells.push(cell),
                MapOutcome::Done(Err(msg)) => return Err(SweepError::Cell(msg)),
                MapOutcome::Panicked(msg) => {
                    return Err(SweepError::Cell(format!("{label}: worker panicked: {msg}")))
                }
                MapOutcome::Cancelled => return Err(SweepError::Interrupted),
            }
        }
        Ok(SweepResults {
            specs: self.cells,
            hits: self.hits,
            cells,
            wall: started.elapsed(),
        })
    }
}

/// Why a [`RunMatrix::run_cached`] sweep did not produce results.
#[derive(Debug)]
pub enum SweepError {
    /// A cell failed to compile, validate, or persist its cache entry
    /// (message includes the cell label), or its worker panicked.
    Cell(String),
    /// The interrupt flag was raised before every cell ran; completed
    /// cells have already committed their cache entries.
    Interrupted,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Cell(msg) => f.write_str(msg),
            SweepError::Interrupted => f.write_str("sweep interrupted before completion"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Runs one cell, oracle-validated, through the optional persistent
/// cache. Traced (or `interleaved`) cells run the interleaved loop with
/// invariants armed; untraced cells run uninstrumented on the replay
/// fast path, or under interval sampling when the matrix has a plan.
fn run_cell(
    spec: &CellSpec,
    interleaved: bool,
    sample: Option<&SamplingPlan>,
    cache: Option<&Cache>,
) -> Result<CellOut, String> {
    let started = Instant::now();
    let label = format!(
        "{} [{} / {}]",
        spec.bench.name,
        spec.vm.name(),
        spec.scheme.name()
    );
    let args = [("N", spec.arg)];
    // Traced cells ignore the matrix sampling plan: the cycle breakdown
    // is a per-retirement observation, meaningless over a sampled run.
    let sample = if spec.traced { None } else { sample };
    let req = RunRequest::new(spec.cfg.clone(), spec.vm, spec.bench.source)
        .predefined(&args)
        .scheme(spec.scheme)
        .opts(spec.opts)
        .sample(sample.cloned());
    // `interleaved` is deliberately absent from the key: it pins the
    // reference loop, but stats are bit-identical either way (PR 6's
    // golden guarantee), so both modes share one cache entry. The
    // sampling plan *is* in the key (via the request manifest): sampled
    // cycle counts are estimates and must never masquerade as exact.
    let key = cache.map(|_| Cache::key(&manifest_for(&req, spec.traced)));
    if let (Some(c), Some(key)) = (cache, key.as_deref()) {
        if let Some(bytes) = c.load(key) {
            // Checksum passed but the payload may predate a format
            // change (or lack the breakdown this consumer needs); any
            // such mismatch degrades to recompute, never a failure.
            let decoded = std::str::from_utf8(&bytes)
                .map_err(|e| e.to_string())
                .and_then(payload::decode);
            if let Ok(cached) = decoded {
                if (!spec.traced || cached.breakdown.is_some())
                    && sample.is_some() == cached.sample.is_some()
                {
                    let breakdown = cached.breakdown;
                    return Ok(CellOut {
                        run: cached.to_run(),
                        breakdown,
                        wall: started.elapsed(),
                    });
                }
            }
        }
    }
    let mut run = req
        .run_with(|m| {
            if spec.traced || interleaved {
                m.enable_invariants(INVARIANT_STRIDE);
            } else {
                // Let the execute-ahead replay loop engage (debug builds
                // otherwise auto-arm the invariant observer).
                m.disable_invariants();
            }
            if spec.traced {
                m.set_trace_sink(Box::new(CycleBreakdown::default()));
            }
        })
        .map_err(|e| format!("{label}: {e}"))?;
    let breakdown = match spec.traced {
        true => Some(
            *run.take_sink::<CycleBreakdown>()
                .ok_or_else(|| format!("{label}: breakdown sink did not come back"))?,
        ),
        false => None,
    };
    if let (Some(c), Some(key)) = (cache, key.as_deref()) {
        let text = payload::encode(&CachedRun::from_run(&run, breakdown.as_ref()));
        c.store(key, text.as_bytes())
            .map_err(|e| format!("{label}: cache store under {}: {e}", c.root().display()))?;
    }
    Ok(CellOut {
        run,
        breakdown,
        wall: started.elapsed(),
    })
}

/// What happened to one item of a [`try_parallel_map`].
#[derive(Debug)]
pub enum MapOutcome<U> {
    /// The worker completed and produced a value.
    Done(U),
    /// The worker panicked on this item; the panic message is preserved
    /// and the rest of the map kept running.
    Panicked(String),
    /// The item was never claimed because `cancel` became true first.
    Cancelled,
}

/// Order-preserving parallel map over a slice using scoped threads: a
/// shared atomic cursor hands out indices, each worker writes its result
/// into the slot for the index it claimed, and the output order matches
/// the input order exactly. With `threads <= 1` it degenerates to a
/// plain sequential map (no pool, no locks).
///
/// Each item is computed under `catch_unwind` *before* its slot mutex
/// is taken, so a panicking worker yields [`MapOutcome::Panicked`] for
/// that one item instead of poisoning the slot and aborting the whole
/// map — the historical failure mode where one bad cell cost the rest
/// of an hours-long matrix. When `cancel` flips to true, workers stop
/// claiming and the unclaimed tail comes back [`MapOutcome::Cancelled`];
/// claims are monotonic, so cancelled items always form a suffix of the
/// per-worker claim order (with one thread, of the whole output).
pub fn try_parallel_map<T, U, F>(
    items: &[T],
    threads: usize,
    cancel: Option<&AtomicBool>,
    f: F,
) -> Vec<MapOutcome<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::SeqCst));
    let run_one = |item: &T| match catch_unwind(AssertUnwindSafe(|| f(item))) {
        Ok(v) => MapOutcome::Done(v),
        Err(payload) => MapOutcome::Panicked(panic_message(payload)),
    };
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items
            .iter()
            .map(|item| {
                if cancelled() {
                    MapOutcome::Cancelled
                } else {
                    run_one(item)
                }
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<MapOutcome<U>>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if cancelled() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = run_one(item);
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(out),
                    // Unreachable now that nothing panics while holding
                    // the lock, but if that ever regresses the result
                    // still lands instead of cascading the poison.
                    Err(poisoned) => *poisoned.into_inner() = Some(out),
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or(MapOutcome::Cancelled)
        })
        .collect()
}

/// Infallible wrapper over [`try_parallel_map`]: returns the mapped
/// values in input order.
///
/// # Panics
/// Re-raises the first worker panic — but only after every other item
/// has completed, so one bad item no longer discards the rest of the
/// computation mid-flight.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut first_panic = None;
    let results: Vec<U> = try_parallel_map(items, threads, None, f)
        .into_iter()
        .filter_map(|o| match o {
            MapOutcome::Done(v) => Some(v),
            MapOutcome::Panicked(msg) => {
                first_panic.get_or_insert(msg);
                None
            }
            MapOutcome::Cancelled => unreachable!("no cancel flag was passed"),
        })
        .collect();
    match first_panic {
        None => results,
        Some(msg) => panic!("parallel_map worker panicked: {msg}"),
    }
}

/// The executed matrix: one [`CellOut`] per unique planned cell, plus
/// the wall-clock accounting the sweep driver reports.
pub struct SweepResults {
    specs: Vec<CellSpec>,
    hits: Vec<usize>,
    cells: Vec<CellOut>,
    /// Wall-clock time of the whole (parallel) execution.
    pub wall: Duration,
}

impl SweepResults {
    /// Number of executed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix was empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The validated run of `id`.
    pub fn get(&self, id: CellId) -> &GuestRun {
        &self.cells[id.0].run
    }

    /// The cycle decomposition of `id`.
    ///
    /// # Panics
    /// Panics when the cell was planned untraced.
    pub fn breakdown(&self, id: CellId) -> &CycleBreakdown {
        self.cells[id.0]
            .breakdown
            .as_ref()
            .expect("cell was planned traced")
    }

    /// Sum of per-cell host runtimes: what the deduplicated matrix would
    /// cost on one thread.
    pub fn serial_unique(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }

    /// Dedup-unaware sequential estimate: per-cell runtime weighted by
    /// how many times the cell was requested — what the old one-binary-
    /// per-figure flow would have simulated.
    pub fn serial_requested(&self) -> Duration {
        self.cells
            .iter()
            .zip(&self.hits)
            .map(|(c, &h)| c.wall * u32::try_from(h).unwrap_or(u32::MAX))
            .sum()
    }

    /// Iterates `(spec, times-requested, result)` in planning order.
    pub fn iter(&self) -> impl Iterator<Item = (&CellSpec, usize, &CellOut)> {
        self.specs
            .iter()
            .zip(&self.hits)
            .zip(&self.cells)
            .map(|((s, &h), c)| (s, h, c))
    }
}

/// The planned form of the old `run_matrix` helper: all benchmarks ×
/// the given variants for one VM/configuration, resolvable into a
/// [`Matrix`] view once the sweep has run.
pub struct MatrixPlan {
    /// The VM the matrix covers.
    pub vm: Vm,
    rows: Vec<(&'static Benchmark, Vec<(Variant, CellId)>)>,
}

/// Plans the full benchmark matrix for one VM.
pub fn plan_matrix(
    m: &mut RunMatrix,
    base_cfg: &SimConfig,
    vm: Vm,
    scale: ArgScale,
    variants: &[Variant],
    traced: bool,
) -> MatrixPlan {
    let rows = BENCHMARKS
        .iter()
        .map(|b| {
            let cells = variants
                .iter()
                .map(|&v| (v, m.variant(base_cfg, vm, b, scale, v, traced)))
                .collect();
            (b, cells)
        })
        .collect();
    MatrixPlan { vm, rows }
}

impl MatrixPlan {
    /// Resolves the plan against executed results into the borrowing
    /// [`Matrix`] view the table formatters consume.
    pub fn resolve<'r>(&self, r: &'r SweepResults) -> Matrix<'r> {
        Matrix {
            vm: self.vm,
            rows: self
                .rows
                .iter()
                .map(|(b, cells)| MatrixRow {
                    bench: b,
                    cells: cells.clone(),
                    results: r,
                })
                .collect(),
        }
    }
}

/// A complete matrix of executed runs for one VM and configuration,
/// borrowing from [`SweepResults`].
pub struct Matrix<'r> {
    /// The VM the matrix covers.
    pub vm: Vm,
    /// One row per benchmark.
    pub rows: Vec<MatrixRow<'r>>,
}

/// All variants of one benchmark.
pub struct MatrixRow<'r> {
    /// The benchmark.
    pub bench: &'static Benchmark,
    cells: Vec<(Variant, CellId)>,
    results: &'r SweepResults,
}

impl<'r> MatrixRow<'r> {
    fn id(&self, v: Variant) -> CellId {
        self.cells
            .iter()
            .find(|(vv, _)| *vv == v)
            .expect("variant present")
            .1
    }

    /// The validated run of variant `v`.
    pub fn get(&self, v: Variant) -> &'r GuestRun {
        self.results.get(self.id(v))
    }

    /// The event-derived cycle decomposition for `v`.
    ///
    /// # Panics
    /// Panics when the matrix was planned untraced.
    pub fn breakdown(&self, v: Variant) -> &'r CycleBreakdown {
        self.results.breakdown(self.id(v))
    }

    /// Speedup of `v` over the baseline (1.0 = no change).
    pub fn speedup(&self, v: Variant) -> f64 {
        self.get(Variant::Baseline).stats.cycles as f64 / self.get(v).stats.cycles as f64
    }

    /// Dynamic instruction count of `v` normalized to baseline.
    pub fn norm_insts(&self, v: Variant) -> f64 {
        self.get(v).stats.instructions as f64
            / self.get(Variant::Baseline).stats.instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_collapses_identical_cells() {
        let a5 = SimConfig::embedded_a5();
        let mut m = RunMatrix::new();
        let b = &BENCHMARKS[0];
        let a = m.variant(&a5, Vm::Lvm, b, ArgScale::Tiny, Variant::Baseline, false);
        let c = m.variant(&a5, Vm::Lvm, b, ArgScale::Tiny, Variant::Baseline, true);
        assert_eq!(a, c, "identical cells must deduplicate");
        assert_eq!(m.len(), 1);
        assert_eq!(m.requested(), 2);
        // The traced request upgraded the shared cell.
        assert!(m.cells[0].traced);
        // A different scheme is a different cell.
        let d = m.variant(&a5, Vm::Lvm, b, ArgScale::Tiny, Variant::Scd, false);
        assert_ne!(a, d);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn parallel_map_is_order_preserving() {
        let items: Vec<u64> = (0..97).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7] {
            assert_eq!(parallel_map(&items, threads, |x| x * x), seq);
        }
    }

    #[test]
    fn try_parallel_map_isolates_worker_panics() {
        let items: Vec<u64> = (0..16).collect();
        for threads in [1, 4] {
            let outs = try_parallel_map(&items, threads, None, |&x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert_eq!(outs.len(), items.len());
            for (i, o) in outs.iter().enumerate() {
                match o {
                    MapOutcome::Done(v) => {
                        assert_ne!(i, 7, "threads={threads}: item 7 must not succeed");
                        assert_eq!(*v, items[i] * 2);
                    }
                    MapOutcome::Panicked(msg) => {
                        assert_eq!(i, 7, "threads={threads}: only item 7 panics");
                        assert!(msg.contains("boom at 7"), "payload preserved: {msg}");
                    }
                    MapOutcome::Cancelled => panic!("nothing was cancelled"),
                }
            }
        }
    }

    #[test]
    fn parallel_map_finishes_other_items_before_reraising() {
        let items: Vec<u64> = (0..8).collect();
        let completed = AtomicUsize::new(0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 4, |&x| {
                if x == 3 {
                    panic!("injected cell failure");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                x
            })
        }))
        .expect_err("the worker panic must surface");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("injected cell failure"),
            "message preserved: {msg}"
        );
        assert_eq!(
            completed.load(Ordering::SeqCst),
            7,
            "the other items still ran"
        );
    }

    #[test]
    fn cancel_flag_stops_claiming_new_items() {
        let items: Vec<u64> = (0..6).collect();
        let cancel = AtomicBool::new(false);
        let outs = try_parallel_map(&items, 1, Some(&cancel), |&x| {
            if x == 1 {
                cancel.store(true, Ordering::SeqCst);
            }
            x
        });
        assert!(matches!(outs[0], MapOutcome::Done(0)));
        assert!(
            matches!(outs[1], MapOutcome::Done(1)),
            "the in-flight item finishes"
        );
        for (i, o) in outs.iter().enumerate().skip(2) {
            assert!(
                matches!(o, MapOutcome::Cancelled),
                "item {i} must be cancelled"
            );
        }
    }

    /// End-to-end for the persistent cache: a cold sweep populates it, a
    /// warm sweep reproduces every number from it without simulating,
    /// and a corrupted entry quarantines and recomputes to the same
    /// values — the satellite guarantee that cache damage costs time,
    /// never correctness.
    #[test]
    fn warm_cache_reproduces_cold_results_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("scd-sweep-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a5 = SimConfig::embedded_a5();
        type Snapshot = Vec<(u64, u64, scd_sim::SimStats, CycleBreakdown)>;
        let sweep = |cache: &Cache| -> Snapshot {
            let mut m = RunMatrix::new();
            let plan = plan_matrix(
                &mut m,
                &a5,
                Vm::Lvm,
                ArgScale::Tiny,
                &[Variant::Baseline, Variant::Scd],
                true,
            );
            let r = m
                .run_cached(2, false, Some(cache), None)
                .expect("sweep clean");
            let matrix = plan.resolve(&r);
            let mut snap = Vec::new();
            for row in &matrix.rows {
                for v in [Variant::Baseline, Variant::Scd] {
                    let run = row.get(v);
                    snap.push((
                        run.checksum,
                        run.dispatches,
                        run.stats.clone(),
                        *row.breakdown(v),
                    ));
                }
            }
            snap
        };
        let stat = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::SeqCst);

        let cold_cache = Cache::open(&dir).expect("open cache");
        let cold = sweep(&cold_cache);
        let cells = stat(&cold_cache.stats.stores);
        assert!(cells > 0, "cold sweep must populate the cache");
        assert_eq!(stat(&cold_cache.stats.hits), 0);

        let warm_cache = Cache::open(&dir).expect("reopen cache");
        let warm = sweep(&warm_cache);
        assert_eq!(cold, warm, "warm results must be bit-identical to cold");
        assert_eq!(stat(&warm_cache.stats.hits), cells, "every cell must hit");
        assert_eq!(stat(&warm_cache.stats.misses), 0);

        // Truncate one committed entry mid-payload: quarantined, that
        // one cell recomputes, and the numbers still match.
        let victim = first_object(&dir);
        let bytes = std::fs::read(&victim).expect("read entry");
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate entry");
        let hurt_cache = Cache::open(&dir).expect("reopen cache");
        let healed = sweep(&hurt_cache);
        assert_eq!(cold, healed, "recomputed results must be bit-identical");
        assert_eq!(stat(&hurt_cache.stats.quarantined), 1);
        assert_eq!(
            stat(&hurt_cache.stats.misses),
            0,
            "quarantines are counted apart"
        );
        assert_eq!(stat(&hurt_cache.stats.hits), cells - 1);
        assert_eq!(
            stat(&hurt_cache.stats.stores),
            1,
            "the healed entry is re-committed"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A sampled matrix validates every cell against the oracle, caches
    /// under keys disjoint from full-detail entries, and resumes warm
    /// with the sample report intact — the sweep-layer guarantees of the
    /// sampling tentpole.
    #[test]
    fn sampled_matrix_validates_and_caches_separately() {
        let dir = std::env::temp_dir().join(format!(
            "scd-sweep-sample-cache-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let a5 = SimConfig::embedded_a5();
        let plan = SamplingPlan::parse("60k:10k:6k").expect("valid plan");
        let sweep = |sample: Option<SamplingPlan>, cache: &Cache| {
            let mut m = RunMatrix::new();
            m.set_sample(sample);
            let p = plan_matrix(
                &mut m,
                &a5,
                Vm::Lvm,
                ArgScale::Tiny,
                &[Variant::Baseline, Variant::Scd],
                false,
            );
            let r = m
                .run_cached(2, false, Some(cache), None)
                .expect("sweep clean");
            let matrix = p.resolve(&r);
            let mut snap = Vec::new();
            for row in &matrix.rows {
                for v in [Variant::Baseline, Variant::Scd] {
                    let run = row.get(v);
                    snap.push((run.checksum, run.dispatches, run.sample.is_some()));
                }
            }
            snap
        };
        let stat = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::SeqCst);

        let det_cache = Cache::open(&dir).expect("open cache");
        let det = sweep(None, &det_cache);
        let cells = stat(&det_cache.stats.stores);
        assert!(cells > 0);
        assert!(det.iter().all(|&(_, _, sampled)| !sampled));

        // The sampled sweep shares the cache directory but must not see
        // a single full-detail entry as a hit (the plan splits the key).
        let smp_cache = Cache::open(&dir).expect("reopen cache");
        let smp = sweep(Some(plan), &smp_cache);
        assert_eq!(
            stat(&smp_cache.stats.hits),
            0,
            "plans must split cache keys"
        );
        assert_eq!(stat(&smp_cache.stats.stores), cells);
        assert!(smp.iter().all(|&(_, _, sampled)| sampled));
        // Architectural results are exact under sampling: checksums and
        // dispatch counts match the full-detail run bit for bit.
        let arch = |s: &[(u64, u64, bool)]| s.iter().map(|&(c, d, _)| (c, d)).collect::<Vec<_>>();
        assert_eq!(arch(&det), arch(&smp));

        // Warm rerun of the sampled matrix: every cell hits, with the
        // sample report still attached.
        let warm_cache = Cache::open(&dir).expect("reopen cache");
        let warm = sweep(Some(plan), &warm_cache);
        assert_eq!(
            stat(&warm_cache.stats.hits),
            cells,
            "every sampled cell must hit"
        );
        assert_eq!(smp, warm);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// First committed entry file under `<dir>/objects/<fan-out>/`.
    fn first_object(dir: &std::path::Path) -> std::path::PathBuf {
        let objects = dir.join("objects");
        for sub in std::fs::read_dir(&objects).expect("objects dir") {
            let sub = sub.expect("dir entry").path();
            if !sub.is_dir() {
                continue;
            }
            if let Some(f) = std::fs::read_dir(&sub).expect("fan-out dir").next() {
                return f.expect("dir entry").path();
            }
        }
        panic!("no committed cache entries under {}", objects.display());
    }

    #[test]
    fn sweep_matches_direct_runs_any_thread_count() {
        let a5 = SimConfig::embedded_a5();
        let plan_and_run = |threads: usize| {
            let mut m = RunMatrix::new();
            let plan = plan_matrix(
                &mut m,
                &a5,
                Vm::Lvm,
                ArgScale::Tiny,
                &[Variant::Baseline, Variant::Scd],
                true,
            );
            let r = m.run(threads, false);
            let matrix = plan.resolve(&r);
            let speedups: Vec<f64> = matrix
                .rows
                .iter()
                .map(|row| row.speedup(Variant::Scd))
                .collect();
            let events: Vec<u64> = matrix
                .rows
                .iter()
                .map(|row| row.breakdown(Variant::Scd).events)
                .collect();
            (speedups, events)
        };
        let one = plan_and_run(1);
        let four = plan_and_run(4);
        assert_eq!(one, four, "thread count must not change any result");
        // SCD wins on geomean even at tiny scale.
        let g = scd_sim::geomean(&one.0).expect("positive speedups");
        assert!(g > 1.0, "geomean speedup {g} <= 1");
    }
}
