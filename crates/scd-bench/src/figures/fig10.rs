//! Figure 10: instruction cache miss rates in MPKI, plus the fetch-stall
//! cycles those misses actually cost — attributed from the per-retirement
//! trace events of the same runs rather than from PC-range heuristics.
//! Paper: jump threading inflates Lua's I-cache misses (0.28 -> 4.80
//! MPKI); note that our interpreters are leaner than Lua's C handlers,
//! so absolute footprints are smaller (see EXPERIMENTS.md).

use super::Render;
use crate::sweep::{plan_matrix, MatrixPlan, RunMatrix, SweepResults};
use crate::{aggregate_breakdown, format_table, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;
use std::fmt::Write as _;

const VARIANTS: [Variant; 3] = [Variant::Baseline, Variant::JumpThreading, Variant::Scd];

/// Plans the figure's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let matrices = Vm::ALL
        .iter()
        .map(|&vm| plan_matrix(m, &SimConfig::embedded_a5(), vm, scale, &VARIANTS, true))
        .collect();
    Box::new(Plan { scale, matrices })
}

struct Plan {
    scale: ArgScale,
    matrices: Vec<MatrixPlan>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let mut out = String::new();
        for plan in &self.matrices {
            let m = plan.resolve(r);
            out += &format_table(
                &format!("Figure 10: I-cache MPKI ({scale:?})"),
                &m,
                &VARIANTS,
                |r, v| r.get(v).stats.icache_mpki(),
                "misses/kinst",
            );
            out.push('\n');
            // What the misses cost: fetch-stall cycles per
            // kilo-instruction, and how much of that stalling lands in
            // dispatcher code.
            let _ =
                writeln!(out, "Fetch-stall attribution from trace events [{}]", m.vm.name());
            let _ = writeln!(
                out,
                "{:<16}{:>16}{:>16}{:>16}",
                "variant", "stall cyc/kinst", "share of cyc%", "in dispatch%"
            );
            for &v in &VARIANTS {
                let b = aggregate_breakdown(&m, v);
                let insts: u64 = m.rows.iter().map(|r| r.get(v).stats.instructions).sum();
                let _ = writeln!(
                    out,
                    "{:<16}{:>16.2}{:>16.1}{:>16.1}",
                    v.name(),
                    b.fetch_stall as f64 * 1000.0 / insts.max(1) as f64,
                    100.0 * b.fetch_stall as f64 / b.total.max(1) as f64,
                    100.0 * b.dispatch_fetch_stall as f64 / b.fetch_stall.max(1) as f64,
                );
            }
            out.push('\n');
        }
        out
    }
}
