//! Table IV: instruction count and cycle count of the Lua-like
//! interpreter on the FPGA (Rocket) configuration — baseline, jump
//! threading, SCD — with savings and speedups.
//! Paper geomeans: SCD saves 10.44% instructions, 12.04% cycles; jump
//! threading saves 4.84% instructions, ~0% cycles.

use super::Render;
use crate::sweep::{CellId, RunMatrix, SweepResults};
use crate::{ArgScale, Table4Headline, Variant};
use luma::scripts::BENCHMARKS;
use scd_guest::{GuestRun, Vm};
use scd_sim::SimConfig;
use std::fmt::Write as _;

/// Plans the table's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let cfg = SimConfig::fpga_rocket();
    let rows = BENCHMARKS
        .iter()
        .map(|b| {
            let base = m.variant(&cfg, Vm::Lvm, b, scale, Variant::Baseline, false);
            let jt = m.variant(&cfg, Vm::Lvm, b, scale, Variant::JumpThreading, false);
            let scd = m.variant(&cfg, Vm::Lvm, b, scale, Variant::Scd, false);
            (base, jt, scd)
        })
        .collect();
    Box::new(Plan { scale, rows })
}

struct Plan {
    scale: ArgScale,
    rows: Vec<(CellId, CellId, CellId)>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table IV: Lua-like interpreter on the Rocket (FPGA) configuration ({scale:?})"
        );
        let _ = writeln!(
            out,
            "{:<18}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}{:>11}{:>11}{:>11}{:>11}",
            "benchmark",
            "base-inst",
            "base-cyc",
            "jt-inst",
            "jt-cyc",
            "scd-inst",
            "scd-cyc",
            "jt-isave",
            "jt-spdup",
            "scd-isave",
            "scd-spdup"
        );
        for (b, &(base_id, jt_id, scd_id)) in BENCHMARKS.iter().zip(&self.rows) {
            let base = r.get(base_id);
            let jt = r.get(jt_id);
            let scd = r.get(scd_id);
            let isave =
                |x: &GuestRun| 1.0 - x.stats.instructions as f64 / base.stats.instructions as f64;
            let spdup = |x: &GuestRun| base.stats.cycles as f64 / x.stats.cycles as f64 - 1.0;
            let _ = writeln!(
                out,
                "{:<18}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}{:>10.2}%{:>10.2}%{:>10.2}%{:>10.2}%",
                b.name,
                base.stats.instructions,
                base.stats.cycles,
                jt.stats.instructions,
                jt.stats.cycles,
                scd.stats.instructions,
                scd.stats.cycles,
                100.0 * isave(jt),
                100.0 * spdup(jt),
                100.0 * isave(scd),
                100.0 * spdup(scd),
            );
        }
        let h = Table4Headline::compute(self.rows.iter().map(|&(base_id, jt_id, scd_id)| {
            (
                &r.get(base_id).stats,
                &r.get(jt_id).stats,
                &r.get(scd_id).stats,
            )
        }));
        let _ = writeln!(
            out,
            "{:<18}{:>56}{:>42}{:>10.2}%{:>10.2}%{:>10.2}%{:>10.2}%",
            "GEOMEAN",
            "",
            "",
            100.0 * (1.0 - h.jt_inst),
            100.0 * (h.jt_speedup - 1.0),
            100.0 * (1.0 - h.scd_inst),
            100.0 * (h.scd_speedup - 1.0),
        );
        out
    }
}
