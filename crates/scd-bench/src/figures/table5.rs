//! Table V: area/power breakdown of the Rocket-like core with and
//! without SCD (analytical 40nm model; see DESIGN.md for the synthesis
//! substitution), plus the EDP improvement combining Table IV speedups.
//! Paper: +0.72% area, +1.09% power, 24.2% EDP improvement.

use super::Render;
use crate::sweep::{CellId, RunMatrix, SweepResults};
use crate::{ArgScale, EdpHeadline, Variant};
use luma::scripts::BENCHMARKS;
use scd_guest::Vm;
use scd_model::{edp_improvement, edp_improvement_measured, table_v, EnergyParams};
use scd_sim::SimConfig;
use std::fmt::Write as _;

/// Plans the table's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let cfg = SimConfig::fpga_rocket();
    let rows = BENCHMARKS
        .iter()
        .map(|b| {
            let base = m.variant(&cfg, Vm::Lvm, b, scale, Variant::Baseline, false);
            let scd = m.variant(&cfg, Vm::Lvm, b, scale, Variant::Scd, false);
            (base, scd)
        })
        .collect();
    Box::new(Plan { scale, rows })
}

struct Plan {
    scale: ArgScale,
    rows: Vec<(CellId, CellId)>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let cfg = SimConfig::fpga_rocket();
        let t = table_v(&cfg);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table V: area/power estimate, baseline vs SCD (analytical 40nm model)\n"
        );
        out += &t.baseline.render(Some(&t.scd));
        let _ = writeln!(
            out,
            "\nTotal area increase : {:+.2}%   (paper: +0.72%)",
            100.0 * t.area_increase
        );
        let _ = writeln!(
            out,
            "Total power increase: {:+.2}%   (paper: +1.09%)",
            100.0 * t.power_increase
        );
        let _ = writeln!(
            out,
            "BTB area increase   : {:+.1}%   (paper: ~+21.6%)",
            100.0 * t.btb_area_increase
        );
        let _ = writeln!(
            out,
            "BTB power increase  : {:+.1}%   (paper: ~+11.7%)",
            100.0 * t.btb_power_increase
        );

        // EDP needs runtimes: per-benchmark speedups on the FPGA config.
        // Two methods: (i) constant-power (the paper's arithmetic: chip
        // power delta x squared runtime ratio) and (ii) activity-based
        // energy from the simulator's event counts.
        let _ = writeln!(
            out,
            "\nEDP improvement (per benchmark, Rocket config, {scale:?} inputs):"
        );
        let eparams = EnergyParams::default();
        for (b, &(base_id, scd_id)) in BENCHMARKS.iter().zip(&self.rows) {
            let base = r.get(base_id);
            let scd = r.get(scd_id);
            let speedup = base.stats.cycles as f64 / scd.stats.cycles as f64 - 1.0;
            let e = edp_improvement(speedup, t.power_increase);
            let em = edp_improvement_measured(&base.stats, &scd.stats, &eparams);
            let _ = writeln!(
                out,
                "  {:<18}{:>8.2}% speedup ->{:>8.2}% EDP (const-power), {:>7.2}% EDP (activity)",
                b.name,
                100.0 * speedup,
                100.0 * e,
                100.0 * em
            );
        }
        let h = EdpHeadline::compute(
            self.rows
                .iter()
                .map(|&(base_id, scd_id)| (&r.get(base_id).stats, &r.get(scd_id).stats)),
            t.power_increase,
        );
        let _ = writeln!(
            out,
            "  {:<18}{:>28.2}% const-power, {:>7.2}% activity-based (paper: 24.2%)",
            "GEOMEAN",
            100.0 * (1.0 - h.const_power),
            100.0 * (1.0 - h.activity)
        );
        out
    }
}
