//! Figure 3: fraction of dynamic instructions spent in the dispatcher
//! code for the Lua-like interpreter (baseline). Paper: >25%.

use super::Render;
use crate::sweep::{plan_matrix, MatrixPlan, RunMatrix, SweepResults};
use crate::{ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;
use std::fmt::Write as _;

/// Plans the figure's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let matrix =
        plan_matrix(m, &SimConfig::embedded_a5(), Vm::Lvm, scale, &[Variant::Baseline], false);
    Box::new(Plan { scale, matrix })
}

struct Plan {
    scale: ArgScale,
    matrix: MatrixPlan,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let m = self.matrix.resolve(r);
        let mut out = String::new();
        let _ =
            writeln!(out, "Figure 3: dispatcher-instruction fraction, LVM baseline ({scale:?})");
        let _ = writeln!(
            out,
            "{:<18}{:>14}{:>16}{:>16}",
            "benchmark", "dispatch-%", "dispatch-insts", "total-insts"
        );
        let mut fracs = Vec::new();
        for row in &m.rows {
            let s = &row.get(Variant::Baseline).stats;
            fracs.push(s.dispatch_fraction());
            let _ = writeln!(
                out,
                "{:<18}{:>13.1}%{:>16}{:>16}",
                row.bench.name,
                100.0 * s.dispatch_fraction(),
                s.dispatch_instructions,
                s.instructions
            );
        }
        let _ = writeln!(
            out,
            "{:<18}{:>13.1}%",
            "MEAN",
            100.0 * fracs.iter().sum::<f64>() / fracs.len() as f64
        );
        out
    }
}
