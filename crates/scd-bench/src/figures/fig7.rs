//! Figure 7: overall speedups of jump threading, VBBI and SCD over the
//! out-of-the-box baseline, for both interpreters, plus the cycle
//! decomposition behind them. The decomposition is attributed from the
//! per-retirement trace events of the same runs (redirect penalties,
//! cache-miss stalls, Rop waits), not from PC-range heuristics.
//! Paper geomeans: Lua 19.9% (SCD), 8.8% (VBBI), -1.6% (JT);
//! JavaScript 14.1%, 5.3%, 7.3%.

use super::Render;
use crate::sweep::{plan_matrix, MatrixPlan, RunMatrix, SweepResults};
use crate::{format_breakdown, format_table, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

/// Plans the figure's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let matrices = Vm::ALL
        .iter()
        .map(|&vm| plan_matrix(m, &SimConfig::embedded_a5(), vm, scale, &Variant::ALL, true))
        .collect();
    Box::new(Plan { scale, matrices })
}

struct Plan {
    scale: ArgScale,
    matrices: Vec<MatrixPlan>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let mut out = String::new();
        for plan in &self.matrices {
            let m = plan.resolve(r);
            out += &format_table(
                &format!("Figure 7: speedup over baseline ({scale:?})"),
                &m,
                &[Variant::JumpThreading, Variant::Vbbi, Variant::Scd],
                |r, v| r.speedup(v),
                "x baseline",
            );
            out.push('\n');
            out += &format_breakdown(
                "Cycle decomposition from trace events (all benchmarks)",
                &m,
                &Variant::ALL,
            );
            out.push('\n');
        }
        out
    }
}
