//! Figure 2: branch MPKI breakdown for the Lua-like interpreter
//! (baseline), split by branch class. The paper's point: the dispatch
//! indirect jump dominates mispredictions.

use super::Render;
use crate::sweep::{plan_matrix, MatrixPlan, RunMatrix, SweepResults};
use crate::{ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;
use std::fmt::Write as _;

/// Plans the figure's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let matrix =
        plan_matrix(m, &SimConfig::embedded_a5(), Vm::Lvm, scale, &[Variant::Baseline], false);
    Box::new(Plan { scale, matrix })
}

struct Plan {
    scale: ArgScale,
    matrix: MatrixPlan,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let m = self.matrix.resolve(r);
        let mut out = String::new();
        let _ = writeln!(out, "Figure 2: branch MPKI breakdown, LVM baseline ({scale:?})");
        let _ = writeln!(
            out,
            "{:<18}{:>12}{:>12}{:>12}{:>12}{:>12}{:>14}",
            "benchmark", "cond", "direct", "return", "ind-other", "ind-DISPATCH", "dispatch-share"
        );
        for row in &m.rows {
            let s = &row.get(Variant::Baseline).stats;
            let ki = s.instructions as f64 / 1000.0;
            let total = s.total_mispredictions() as f64;
            let _ = writeln!(
                out,
                "{:<18}{:>12.2}{:>12.2}{:>12.2}{:>12.2}{:>12.2}{:>13.1}%",
                row.bench.name,
                s.cond.mispredicted as f64 / ki,
                s.direct.mispredicted as f64 / ki,
                s.ret.mispredicted as f64 / ki,
                s.indirect_other.mispredicted as f64 / ki,
                s.indirect_dispatch.mispredicted as f64 / ki,
                100.0 * s.indirect_dispatch.mispredicted as f64 / total.max(1.0),
            );
        }
        out
    }
}
