//! Figure 11: sensitivity studies.
//! (a)/(b) SCD speedup vs BTB size {64, 128, 256, 512} for both VMs.
//! (c)/(d) SCD speedup vs the maximum JTE cap {4, 16, unbounded} at the
//! smallest BTB (64 entries).

use super::Render;
use crate::sweep::{CellId, CellSpec, RunMatrix, SweepResults};
use crate::{ArgScale, Variant};
use luma::scripts::{Benchmark, BENCHMARKS};
use scd_guest::{GuestOptions, Vm};
use scd_sim::{geomean, SimConfig};
use std::fmt::Write as _;

const SIZES: [usize; 4] = [64, 128, 256, 512];
const CAPS: [(Option<usize>, &str); 3] = [(Some(4), "4"), (Some(16), "16"), (None, "inf")];

fn cell(m: &mut RunMatrix, cfg: &SimConfig, vm: Vm, b: &'static Benchmark, scale: ArgScale, v: Variant) -> CellId {
    m.cell(CellSpec {
        cfg: v.configure(cfg),
        vm,
        bench: b,
        arg: scale.arg(b),
        scheme: v.scheme(),
        opts: GuestOptions::default(),
        traced: false,
    })
}

/// Plans the figure's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    // (a)/(b): BTB size sweep — baseline *and* SCD re-run per size, the
    // BTB serves both.
    let ab = Vm::ALL
        .iter()
        .map(|&vm| {
            BENCHMARKS
                .iter()
                .map(|b| {
                    SIZES
                        .iter()
                        .map(|&entries| {
                            let cfg = SimConfig::embedded_a5().with_btb_entries(entries);
                            let base = cell(m, &cfg, vm, b, scale, Variant::Baseline);
                            let scd = cell(m, &cfg, vm, b, scale, Variant::Scd);
                            (base, scd)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    // (c)/(d): JTE cap sweep at the smallest BTB; one shared baseline.
    let cd = Vm::ALL
        .iter()
        .map(|&vm| {
            BENCHMARKS
                .iter()
                .map(|b| {
                    let base_cfg = SimConfig::embedded_a5().with_btb_entries(64);
                    let base = cell(m, &base_cfg, vm, b, scale, Variant::Baseline);
                    let scds = CAPS
                        .iter()
                        .map(|(cap, _)| {
                            let cfg = base_cfg.clone().with_jte_cap(*cap);
                            cell(m, &cfg, vm, b, scale, Variant::Scd)
                        })
                        .collect();
                    (base, scds)
                })
                .collect()
        })
        .collect();
    Box::new(Plan { scale, ab, cd })
}

struct Plan {
    scale: ArgScale,
    /// `ab[vm][bench][size]` -> (baseline, scd).
    ab: Vec<Vec<Vec<(CellId, CellId)>>>,
    /// `cd[vm][bench]` -> (baseline, one scd per cap).
    cd: Vec<Vec<(CellId, Vec<CellId>)>>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let speedup = |base: CellId, scd: CellId| {
            r.get(base).stats.cycles as f64 / r.get(scd).stats.cycles as f64
        };
        let mut out = String::new();

        for (vi, vm) in Vm::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "Figure 11a/b: SCD speedup vs BTB size [{}] ({scale:?})",
                vm.name()
            );
            let _ = write!(out, "{:<18}", "benchmark");
            for s in SIZES {
                let _ = write!(out, "{s:>10}");
            }
            let _ = writeln!(out);
            let mut cols: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
            for (bi, b) in BENCHMARKS.iter().enumerate() {
                let _ = write!(out, "{:<18}", b.name);
                for (i, &(base, scd)) in self.ab[vi][bi].iter().enumerate() {
                    let speedup = speedup(base, scd);
                    cols[i].push(speedup);
                    let _ = write!(out, "{speedup:>10.3}");
                }
                let _ = writeln!(out);
            }
            let _ = write!(out, "{:<18}", "GEOMEAN");
            for c in &cols {
                let _ = write!(out, "{:>10.3}", geomean(c).expect("positive speedups"));
            }
            let _ = writeln!(out, "\n");
        }

        for (vi, vm) in Vm::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "Figure 11c/d: SCD speedup vs JTE cap at 64-entry BTB [{}] ({scale:?})",
                vm.name()
            );
            let _ = write!(out, "{:<18}", "benchmark");
            for (_, label) in CAPS {
                let _ = write!(out, "{label:>10}");
            }
            let _ = writeln!(out);
            let mut cols: Vec<Vec<f64>> = vec![Vec::new(); CAPS.len()];
            for (bi, b) in BENCHMARKS.iter().enumerate() {
                let _ = write!(out, "{:<18}", b.name);
                let (base, scds) = &self.cd[vi][bi];
                for (i, &scd) in scds.iter().enumerate() {
                    let speedup = speedup(*base, scd);
                    cols[i].push(speedup);
                    let _ = write!(out, "{speedup:>10.3}");
                }
                let _ = writeln!(out);
            }
            let _ = write!(out, "{:<18}", "GEOMEAN");
            for c in &cols {
                let _ = write!(out, "{:>10.3}", geomean(c).expect("positive speedups"));
            }
            let _ = writeln!(out, "\n");
        }

        out
    }
}
