//! Per-figure planners and renderers over the shared sweep.
//!
//! Each submodule owns one figure or table of the evaluation section.
//! Its `plan` hook contributes the cells the figure needs to a shared
//! [`RunMatrix`] and returns a [`Render`] that, once the matrix has
//! executed, formats the figure from the [`SweepResults`] — the same
//! bytes the old sequential binary produced. Planning is cheap and
//! side-effect-free; all simulation happens in [`RunMatrix::run`].

pub mod ablation;
pub mod btb_levels;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod highend;
pub mod table4;
pub mod table5;

use crate::sweep::{RunMatrix, SweepResults};
use crate::ArgScale;

/// A planned figure: holds the cell ids it needs, renders once the
/// shared matrix has run.
pub trait Render: Send {
    /// Formats the figure from executed results.
    fn render(&self, r: &SweepResults) -> String;
}

/// Registry entry for one report the sweep can regenerate.
pub struct Report {
    /// Report name; also the `results/<name>.txt` stem.
    pub name: &'static str,
    /// One-line description (shown by `sweep --list`).
    pub title: &'static str,
    /// The input scale the committed `results/` files were produced at.
    pub default_scale: ArgScale,
    /// Whether the report's cells collect per-instruction traces.
    /// Traced cells always run full detail (sampling would starve the
    /// trace consumers), so sampled sweeps skip these reports entirely.
    pub traced: bool,
    /// Plans the report's cells into `m` and returns its renderer.
    pub plan: fn(&mut RunMatrix, ArgScale) -> Box<dyn Render>,
}

/// Every report, in the paper's presentation order.
pub const REPORTS: &[Report] = &[
    Report {
        name: "fig2",
        title: "branch MPKI breakdown, LVM baseline",
        default_scale: ArgScale::Sim,
        traced: false,
        plan: fig2::plan,
    },
    Report {
        name: "fig3",
        title: "dispatcher-instruction fraction, LVM baseline",
        default_scale: ArgScale::Sim,
        traced: false,
        plan: fig3::plan,
    },
    Report {
        name: "fig7",
        title: "overall speedups + cycle decomposition",
        default_scale: ArgScale::Sim,
        traced: true,
        plan: fig7::plan,
    },
    Report {
        name: "fig8",
        title: "normalized dynamic instruction count",
        default_scale: ArgScale::Sim,
        traced: false,
        plan: fig8::plan,
    },
    Report {
        name: "fig9",
        title: "branch MPKI per variant",
        default_scale: ArgScale::Sim,
        traced: false,
        plan: fig9::plan,
    },
    Report {
        name: "fig10",
        title: "I-cache MPKI + fetch-stall attribution",
        default_scale: ArgScale::Sim,
        traced: true,
        plan: fig10::plan,
    },
    Report {
        name: "fig11",
        title: "BTB-size and JTE-cap sensitivity",
        default_scale: ArgScale::Sim,
        traced: false,
        plan: fig11::plan,
    },
    Report {
        name: "highend",
        title: "SCD on the dual-issue A8-like core",
        default_scale: ArgScale::Sim,
        traced: false,
        plan: highend::plan,
    },
    Report {
        name: "table4",
        title: "instruction/cycle counts on the Rocket (FPGA) config",
        default_scale: ArgScale::Fpga,
        traced: false,
        plan: table4::plan,
    },
    Report {
        name: "table5",
        title: "area/power model + EDP improvement",
        default_scale: ArgScale::Fpga,
        traced: false,
        plan: table5::plan,
    },
    Report {
        name: "ablation",
        title: "design-choice ablations",
        default_scale: ArgScale::Tiny,
        traced: false,
        plan: ablation::plan,
    },
    Report {
        name: "btb_levels",
        title: "BTB organization sensitivity + adversarial aliasing",
        default_scale: ArgScale::Tiny,
        traced: false,
        plan: btb_levels::plan,
    },
];

/// Looks a report up by name.
pub fn report(name: &str) -> Option<&'static Report> {
    REPORTS.iter().find(|r| r.name == name)
}
