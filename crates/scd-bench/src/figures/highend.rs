//! Section VI-C2: SCD on a higher-end dual-issue in-order core
//! (Cortex-A8-like: 32KB I$, 256KB L2, 512-entry BTB).
//! Paper: SCD still achieves 17.6% / 15.2% geomean speedups with
//! ~10% instruction reductions.

use super::Render;
use crate::sweep::{plan_matrix, MatrixPlan, RunMatrix, SweepResults};
use crate::{format_table, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

const VARIANTS: [Variant; 2] = [Variant::Baseline, Variant::Scd];

/// Plans the figure's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let matrices = Vm::ALL
        .iter()
        .map(|&vm| plan_matrix(m, &SimConfig::highend_a8(), vm, scale, &VARIANTS, false))
        .collect();
    Box::new(Plan { scale, matrices })
}

struct Plan {
    scale: ArgScale,
    matrices: Vec<MatrixPlan>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let mut out = String::new();
        for plan in &self.matrices {
            let m = plan.resolve(r);
            out += &format_table(
                &format!("Section VI-C2: SCD on the dual-issue A8-like core ({scale:?})"),
                &m,
                &[Variant::Scd],
                |r, v| r.speedup(v),
                "x baseline",
            );
            out += &format_table(
                "  normalized instruction count",
                &m,
                &[Variant::Scd],
                |r, v| r.norm_insts(v),
                "x baseline insts",
            );
            out.push('\n');
        }
        out
    }
}
