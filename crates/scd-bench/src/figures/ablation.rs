//! Ablation studies for the design choices discussed in the paper:
//!
//! 1. `bop` stall scheme vs fall-through scheme (Section III-B) and the
//!    scheduled-fetch code layout that hides the Rop latency.
//! 2. OS context-switch JTE flushing at different quantum lengths
//!    (Section IV).
//! 3. Interpreter "production weight": how the dispatcher's share of
//!    work changes SCD's benefit (lean vs production fetch block).
//! 4. Jump-threading I-cache pressure vs I$ capacity.
//! 5. The indirect-predictor ladder (VBBI, ITTAGE) vs SCD.
//! 6. BTB-overlaid vs dedicated (CBT-style) JTE storage.

use super::Render;
use crate::sweep::{CellId, CellSpec, RunMatrix, SweepResults};
use crate::ArgScale;
use luma::scripts::{Benchmark, BENCHMARKS};
use scd_guest::{GuestOptions, Scheme, Vm};
use scd_sim::{geomean, SimConfig};
use std::fmt::Write as _;

/// Emulated context-switch quantum lengths for study 2.
const QUANTA: [u64; 4] = [u64::MAX, 1_000_000, 100_000, 10_000];
/// I-cache capacities (KB) for study 4.
const ICACHE_KB: [u64; 4] = [16, 4, 2, 1];

fn cell(
    m: &mut RunMatrix,
    cfg: &SimConfig,
    b: &'static Benchmark,
    scale: ArgScale,
    scheme: Scheme,
    opts: GuestOptions,
) -> CellId {
    m.cell(CellSpec {
        cfg: cfg.clone(),
        vm: Vm::Lvm,
        bench: b,
        arg: scale.arg(b),
        scheme,
        opts,
        traced: false,
    })
}

/// Per-benchmark (baseline-on-`cfg_base`, scd-on-`cfg_scd`) cell pairs,
/// both built with `opts` — the planning form of the old bin's
/// `speedups` helper.
fn pairs(
    m: &mut RunMatrix,
    cfg_base: &SimConfig,
    cfg_scd: &SimConfig,
    opts: GuestOptions,
    scale: ArgScale,
) -> Vec<(CellId, CellId)> {
    BENCHMARKS
        .iter()
        .map(|b| {
            let base = cell(m, cfg_base, b, scale, Scheme::Baseline, opts);
            let scd = cell(m, cfg_scd, b, scale, Scheme::Scd, opts);
            (base, scd)
        })
        .collect()
}

/// Plans the ablation cells and returns the renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let a5 = SimConfig::embedded_a5();
    let dflt = GuestOptions::default();

    // 1. bop readiness handling.
    let stall = pairs(m, &a5, &a5, dflt, scale);
    let mut ft_cfg = a5.clone();
    ft_cfg.scd.stall_on_unready = false;
    let fall = pairs(m, &a5, &ft_cfg, dflt, scale);
    let sched =
        pairs(m, &a5, &a5, GuestOptions { production_weight: true, scheduled_fetch: true }, scale);

    // 2. Context-switch flushing.
    let flush = QUANTA
        .iter()
        .map(|&quantum| {
            let mut cfg = a5.clone();
            cfg.scd.flush_interval = if quantum == u64::MAX { None } else { Some(quantum) };
            pairs(m, &a5, &cfg, dflt, scale)
        })
        .collect();

    // 3. Interpreter weight.
    let weight = vec![
        pairs(m, &a5, &a5, dflt, scale),
        pairs(m, &a5, &a5, GuestOptions { production_weight: false, scheduled_fetch: false }, scale),
    ];

    // 4. Jump-threading I-cache pressure: baseline vs threaded builds at
    // shrinking I$ capacities.
    let icache = ICACHE_KB
        .iter()
        .map(|&kb| {
            let mut cfg = a5.clone();
            cfg.icache.size = kb * 1024;
            BENCHMARKS
                .iter()
                .map(|b| {
                    let base = cell(m, &cfg, b, scale, Scheme::Baseline, dflt);
                    let jt = cell(m, &cfg, b, scale, Scheme::Threaded, dflt);
                    (base, jt)
                })
                .collect()
        })
        .collect();

    // 5. Indirect-predictor ladder.
    let ladder_nonscd = pairs(m, &a5, &a5.clone().without_scd(), dflt, scale);
    let ladder_pred = [("VBBI", a5.clone().with_vbbi()), ("ITTAGE", a5.clone().with_ittage())]
        .into_iter()
        .map(|(label, cfg)| {
            let rows = BENCHMARKS
                .iter()
                .map(|b| {
                    let base = cell(m, &a5, b, scale, Scheme::Baseline, dflt);
                    let pred = cell(m, &cfg, b, scale, Scheme::Baseline, dflt);
                    (base, pred)
                })
                .collect();
            (label, rows)
        })
        .collect();
    let ladder_scd = pairs(m, &a5, &a5, dflt, scale);

    // 6. JTE storage organization at a small BTB.
    let small = SimConfig::embedded_a5().with_btb_entries(64);
    let overlay = pairs(m, &small, &small, dflt, scale);
    let cbt_cfg = small.clone().with_dedicated_jte_table(64);
    let cbt = pairs(m, &small, &cbt_cfg, dflt, scale);

    Box::new(Plan {
        scale,
        stall,
        fall,
        sched,
        flush,
        weight,
        icache,
        ladder_nonscd,
        ladder_pred,
        ladder_scd,
        overlay,
        cbt,
    })
}

struct Plan {
    scale: ArgScale,
    stall: Vec<(CellId, CellId)>,
    fall: Vec<(CellId, CellId)>,
    sched: Vec<(CellId, CellId)>,
    /// One pair set per entry of [`QUANTA`].
    flush: Vec<Vec<(CellId, CellId)>>,
    /// Production then lean.
    weight: Vec<Vec<(CellId, CellId)>>,
    /// One (baseline, jump-threaded) pair set per entry of [`ICACHE_KB`].
    icache: Vec<Vec<(CellId, CellId)>>,
    ladder_nonscd: Vec<(CellId, CellId)>,
    ladder_pred: Vec<(&'static str, Vec<(CellId, CellId)>)>,
    ladder_scd: Vec<(CellId, CellId)>,
    overlay: Vec<(CellId, CellId)>,
    cbt: Vec<(CellId, CellId)>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        // Geomean speedup of the second cell over the first, as a
        // percentage delta.
        let gain = |rows: &[(CellId, CellId)]| {
            let speedups: Vec<f64> = rows
                .iter()
                .map(|&(a, b)| r.get(a).stats.cycles as f64 / r.get(b).stats.cycles as f64)
                .collect();
            100.0 * (geomean(&speedups).expect("positive speedups") - 1.0)
        };

        let mut out = String::new();
        let _ = writeln!(out, "Ablations (LVM, {scale:?} inputs; SCD speedup over baseline)\n");

        // 1. bop readiness handling.
        let _ = writeln!(out, "1. bop readiness handling (Section III-B):");
        let _ = writeln!(out, "   stall scheme (paper default): {:+.1}%", gain(&self.stall));
        let _ = writeln!(out, "   fall-through scheme         : {:+.1}%", gain(&self.fall));
        let _ = writeln!(out, "   stall + scheduled fetch     : {:+.1}%", gain(&self.sched));

        // 2. Context-switch flushing.
        let _ = writeln!(out, "\n2. JTE flush on emulated context switches (Section IV):");
        for (&quantum, rows) in QUANTA.iter().zip(&self.flush) {
            let label = if quantum == u64::MAX {
                "never".to_string()
            } else {
                format!("every {quantum} insts")
            };
            let _ = writeln!(out, "   flush {label:<22}: {:+.1}%", gain(rows));
        }

        // 3. Interpreter weight.
        let _ = writeln!(out, "\n3. Interpreter fetch-block weight:");
        for (label, rows) in
            ["production (hook + counters)", "lean (bare fetch)"].iter().zip(&self.weight)
        {
            let _ = writeln!(out, "   {label:<30}: {:+.1}%", gain(rows));
        }

        // 4. I-cache capacity: our interpreters are leaner than Lua's C
        //    handlers and fit comfortably in 16 KB, so jump threading's code
        //    bloat is invisible there (see EXPERIMENTS.md). Shrinking the
        //    I-cache restores the paper's Fig. 10 effect.
        let _ = writeln!(out, "\n4. Jump-threading I-cache pressure vs I$ capacity (LVM):");
        for (&kb, rows) in ICACHE_KB.iter().zip(&self.icache) {
            let mut jt_mpki = Vec::new();
            let mut base_mpki = Vec::new();
            let mut jt_speed = Vec::new();
            for &(base_id, jt_id) in rows {
                let base = r.get(base_id);
                let jt = r.get(jt_id);
                base_mpki.push(base.stats.icache_mpki());
                jt_mpki.push(jt.stats.icache_mpki());
                jt_speed.push(base.stats.cycles as f64 / jt.stats.cycles as f64);
            }
            let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
            let _ = writeln!(
                out,
                "   {kb:>2} KB I$: baseline I$ MPKI {:>6.2}, jump-threaded {:>6.2}, JT speedup {:+.1}%",
                avg(&base_mpki),
                avg(&jt_mpki),
                100.0 * (geomean(&jt_speed).expect("positive speedups") - 1.0)
            );
        }

        // 5. Indirect predictor ladder: how far can pure prediction go,
        //    and what does SCD add beyond it (cf. Section VII related work)?
        let _ = writeln!(out, "\n5. Indirect-predictor ladder (baseline binary unless noted):");
        let _ =
            writeln!(out, "   SCD binary on non-SCD core    : {:+.1}%", gain(&self.ladder_nonscd));
        for (label, rows) in &self.ladder_pred {
            let _ = writeln!(out, "   {label:<30}: {:+.1}%", gain(rows));
        }
        let _ = writeln!(out, "   SCD (BTB overlay)             : {:+.1}%", gain(&self.ladder_scd));

        // 6. BTB overlay vs dedicated (CBT-style) JTE table, at a small BTB
        //    where contention between B entries and JTEs is worst.
        let _ = writeln!(out, "\n6. JTE storage organization at a 64-entry BTB:");
        let _ =
            writeln!(out, "   BTB overlay (SCD, no extra table): {:+.1}%", gain(&self.overlay));
        let _ = writeln!(out, "   dedicated table (CBT-style)      : {:+.1}%", gain(&self.cbt));

        out
    }
}
