//! Extension study: BTB organization sensitivity (`btb_levels`).
//!
//! Every paper figure runs on an idealized single-table BTB indexed by
//! raw key bits. Real embedded frontends use a small zero-bubble L0
//! backed by a larger, slower L1, both indexed through cheap XOR-fold
//! hashes (Yavarzadeh et al., arXiv 2412.05413). This report re-runs
//! the headline {baseline, jump-threading, SCD} comparison across BTB
//! organizations and JTE caps, then stresses each organization with
//! adversarially aliased interpreters (`scd fuzz --bias aliasing`)
//! whose jump-table entries all fold into one L0 set.
//!
//! Sections 1–3 go through the shared deduplicating [`RunMatrix`] (and
//! therefore honor `--sample`); section 4 runs the generated programs
//! directly — they are reproducer-style programs, not corpus
//! benchmarks, so they have no cell identity — serially and in a fixed
//! order, so the rendered bytes are identical for any `--threads`.

use super::Render;
use crate::sweep::{CellId, CellSpec, RunMatrix, SweepResults};
use crate::{ArgScale, Variant};
use luma::scripts::{Benchmark, BENCHMARKS};
use scd_guest::{GuestOptions, Vm};
use scd_ref::gen::{generate, GenConfig, Generated};
use scd_sim::{
    geomean, BtbConfig, Machine, Replacement, SimConfig, SimError, SimStats, TwoLevelBtbConfig,
    TwoLevelStats,
};
use std::fmt::Write as _;

/// JTE caps for section 3, smallest first (fig. 11c-d's ladder).
const CAPS: [(Option<usize>, &str); 3] = [(Some(4), "4"), (Some(16), "16"), (None, "inf")];

/// Adversarial generator seeds for section 4. Fixed and small: each
/// program is a few tens of thousands of instructions, cheap enough to
/// run full-detail at render time.
const ALIAS_SEEDS: [u64; 4] = [0, 1, 2, 3];

/// Instruction budget per adversarial run (the fuzz harness default).
const ALIAS_BUDGET: u64 = 2_000_000;

/// The organizations under study, all with 256 predictor entries of
/// primary capacity on the A5 core (the two-level rows add the 512-entry
/// L1 backing store real frontends spend on the second level):
///
/// * `ideal-fa` — fully-associative, raw-indexed: no conflicts at all.
/// * `ideal-sa` — the paper's 2-way set-associative table, raw-indexed.
/// * `2lvl-f8`  — 32e/2w L0 + 512e/4w L1, 8-bit XOR-fold index,
///   14-bit folded `Pc`/`Vbbi` tags, 2 bubbles per L1-served
///   prediction ([`TwoLevelBtbConfig::arm_like`]).
/// * `2lvl-f7`  — the same banks under a 7-bit fold: a different hash
///   mixing, so aliasing classes regroup.
fn org_configs() -> Vec<(&'static str, SimConfig)> {
    let a5 = SimConfig::embedded_a5();
    let mut ideal_fa = a5.clone();
    ideal_fa.btb = BtbConfig::fully_assoc(256, Replacement::Lru);
    let two8 = a5.clone().with_two_level_btb(TwoLevelBtbConfig::arm_like());
    let two7 = a5
        .clone()
        .with_two_level_btb(TwoLevelBtbConfig::arm_like().with_fold_bits(7));
    vec![
        ("ideal-fa", ideal_fa),
        ("ideal-sa", a5),
        ("2lvl-f8", two8),
        ("2lvl-f7", two7),
    ]
}

fn cell(
    m: &mut RunMatrix,
    cfg: &SimConfig,
    b: &'static Benchmark,
    scale: ArgScale,
    v: Variant,
) -> CellId {
    m.cell(CellSpec {
        cfg: v.configure(cfg),
        vm: Vm::Lvm,
        bench: b,
        arg: scale.arg(b),
        scheme: v.scheme(),
        opts: GuestOptions::default(),
        traced: false,
    })
}

/// One benchmark's cells under one organization.
struct OrgBench {
    base: CellId,
    threaded: CellId,
    /// One SCD cell per entry of [`CAPS`].
    scd: Vec<CellId>,
}

/// Plans the report's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let rows = org_configs()
        .iter()
        .map(|(_, cfg)| {
            BENCHMARKS
                .iter()
                .map(|b| OrgBench {
                    base: cell(m, cfg, b, scale, Variant::Baseline),
                    threaded: cell(m, cfg, b, scale, Variant::JumpThreading),
                    scd: CAPS
                        .iter()
                        .map(|(cap, _)| {
                            let c = cfg.clone().with_jte_cap(*cap);
                            cell(m, &c, b, scale, Variant::Scd)
                        })
                        .collect(),
                })
                .collect()
        })
        .collect();
    Box::new(Plan { scale, rows })
}

struct Plan {
    scale: ArgScale,
    /// `rows[org][bench]`, orgs in [`org_configs`] order.
    rows: Vec<Vec<OrgBench>>,
}

/// One adversarial program's outcome under one configuration.
struct AliasRun {
    stats: SimStats,
    two_level: Option<TwoLevelStats>,
}

/// Runs one generated program to completion (or the budget) under
/// `cfg`, full detail, replay fast path. Panics on any simulator error:
/// the report must never print numbers from a broken run.
fn run_alias(cfg: &SimConfig, g: &Generated, label: &str) -> AliasRun {
    let mut m = Machine::new(cfg.clone(), &g.program);
    m.map("fuzzdata", g.data_base, g.data_size);
    m.disable_invariants();
    match m.run(ALIAS_BUDGET) {
        Ok(_) | Err(SimError::InstLimit { .. }) => {}
        Err(e) => panic!("btb_levels adversarial run {label}: {e}"),
    }
    AliasRun {
        two_level: m.btb().two_level_stats(),
        stats: m.stats,
    }
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let orgs = org_configs();
        let speedup = |base: CellId, other: CellId| {
            r.get(base).stats.cycles as f64 / r.get(other).stats.cycles as f64
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "BTB organization sensitivity (LVM, {scale:?} inputs; extension study, arXiv 2412.05413)\n"
        );
        let _ = writeln!(out, "Organizations:");
        let _ = writeln!(out, "  ideal-fa  256e fully-assoc, raw index (no conflicts)");
        let _ = writeln!(out, "  ideal-sa  256e 2-way, raw index (paper simulator config)");
        let _ = writeln!(out, "  2lvl-f8   32e/2w L0 + 512e/4w L1, 8-bit fold, 14-bit tags, 2 L1 bubbles");
        let _ = writeln!(out, "  2lvl-f7   same banks, 7-bit fold (different aliasing classes)\n");

        // 1. SCD speedup over the same-organization baseline, uncapped.
        let uncapped = CAPS.iter().position(|(c, _)| c.is_none()).expect("inf cap");
        let _ = writeln!(out, "1. SCD speedup over same-organization baseline (uncapped JTEs):");
        let _ = write!(out, "{:<18}", "benchmark");
        for (name, _) in &orgs {
            let _ = write!(out, "{name:>10}");
        }
        let _ = writeln!(out);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
        for (bi, b) in BENCHMARKS.iter().enumerate() {
            let _ = write!(out, "{:<18}", b.name);
            for (oi, col) in cols.iter_mut().enumerate() {
                let ob = &self.rows[oi][bi];
                let s = speedup(ob.base, ob.scd[uncapped]);
                col.push(s);
                let _ = write!(out, "{s:>10.3}");
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<18}", "GEOMEAN");
        for c in &cols {
            let _ = write!(out, "{:>10.3}", geomean(c).expect("positive speedups"));
        }
        let _ = writeln!(out, "\n");

        // 2. Jump threading under the same organizations: its benefit
        //    also leans on the BTB (one indirect branch per handler).
        let _ = writeln!(out, "2. Jump-threading speedup over baseline (geomean):");
        for (oi, (name, _)) in orgs.iter().enumerate() {
            let s: Vec<f64> = self.rows[oi]
                .iter()
                .map(|ob| speedup(ob.base, ob.threaded))
                .collect();
            let _ = writeln!(
                out,
                "   {name:<10}: {:+.1}%",
                100.0 * (geomean(&s).expect("positive speedups") - 1.0)
            );
        }

        // 3. JTE cap ladder per organization. Under the two-level
        //    organizations the cap bounds residency across both banks.
        let _ = writeln!(out, "\n3. SCD speedup vs JTE cap (geomean over benchmarks):");
        let _ = write!(out, "{:<18}", "organization");
        for (_, label) in CAPS {
            let _ = write!(out, "{label:>10}");
        }
        let _ = writeln!(out);
        for (oi, (name, _)) in orgs.iter().enumerate() {
            let _ = write!(out, "{name:<18}");
            for ci in 0..CAPS.len() {
                let s: Vec<f64> = self.rows[oi]
                    .iter()
                    .map(|ob| speedup(ob.base, ob.scd[ci]))
                    .collect();
                let _ = write!(out, "{:>10.3}", geomean(&s).expect("positive speedups"));
            }
            let _ = writeln!(out);
        }

        // 4. Hostile aliasing: generated interpreters whose JTE keys all
        //    fold into one L0 set per branch id (`--bias aliasing`).
        //    SCD's win per organization is cycles(SCD off) / cycles(SCD
        //    on); erosion is the two-level win relative to the ideal
        //    set-associative one. bop% is the short-circuit hit rate —
        //    the dispatch fast path the aliasing attacks.
        let ideal = &orgs[1].1;
        let two_level = &orgs[2].1;
        let off = |cfg: &SimConfig| {
            let mut c = cfg.clone();
            c.scd.enabled = false;
            c
        };
        let _ = writeln!(
            out,
            "\n4. Adversarial aliasing (scd fuzz --bias aliasing programs, full detail):"
        );
        let _ = writeln!(
            out,
            "{:<10}{:>12}{:>12}{:>10}{:>12}{:>12}",
            "program", "ideal-sa", "2lvl-f8", "erosion", "bop% ideal", "bop% 2lvl"
        );
        let mut wins_ideal = Vec::new();
        let mut wins_two = Vec::new();
        let mut traffic = Vec::new();
        for &seed in &ALIAS_SEEDS {
            let g = generate(&GenConfig::aliasing_from_seed(seed));
            let label = format!("alias-{seed}");
            let on_ideal = run_alias(ideal, &g, &label);
            let off_ideal = run_alias(&off(ideal), &g, &label);
            let on_two = run_alias(two_level, &g, &label);
            let off_two = run_alias(&off(two_level), &g, &label);
            let win_i = off_ideal.stats.cycles as f64 / on_ideal.stats.cycles as f64;
            let win_t = off_two.stats.cycles as f64 / on_two.stats.cycles as f64;
            let bop_rate = |s: &SimStats| 100.0 * s.bop_hits as f64 / s.bop_executed.max(1) as f64;
            let _ = writeln!(
                out,
                "{label:<10}{win_i:>12.3}{win_t:>12.3}{:>9.1}%{:>12.1}{:>12.1}",
                100.0 * (win_t / win_i - 1.0),
                bop_rate(&on_ideal.stats),
                bop_rate(&on_two.stats),
            );
            wins_ideal.push(win_i);
            wins_two.push(win_t);
            traffic.push((label, on_two.two_level.expect("two-level run carries stats")));
        }
        let gi = geomean(&wins_ideal).expect("positive wins");
        let gt = geomean(&wins_two).expect("positive wins");
        let _ = writeln!(
            out,
            "{:<10}{gi:>12.3}{gt:>12.3}{:>9.1}%",
            "GEOMEAN",
            100.0 * (gt / gi - 1.0)
        );
        let _ = writeln!(out, "\n   Two-level traffic under SCD (the aliased JTE working set):");
        let _ = writeln!(
            out,
            "   {:<10}{:>10}{:>10}{:>12}{:>11}{:>7}",
            "program", "l0_hits", "l1_hits", "promotions", "demotions", "drops"
        );
        for (label, tl) in &traffic {
            let _ = writeln!(
                out,
                "   {label:<10}{:>10}{:>10}{:>12}{:>11}{:>7}",
                tl.l0_hits, tl.l1_hits, tl.promotions, tl.demotions, tl.demotion_drops
            );
        }
        out
    }
}
