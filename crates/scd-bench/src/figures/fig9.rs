//! Figure 9: branch misprediction rate in MPKI (lower is better).
//! Paper: SCD cuts Lua MPKI by ~70%, VBBI by ~77%, JT by ~24%.

use super::Render;
use crate::sweep::{plan_matrix, MatrixPlan, RunMatrix, SweepResults};
use crate::{format_table, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

/// Plans the figure's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let matrices = Vm::ALL
        .iter()
        .map(|&vm| plan_matrix(m, &SimConfig::embedded_a5(), vm, scale, &Variant::ALL, false))
        .collect();
    Box::new(Plan { scale, matrices })
}

struct Plan {
    scale: ArgScale,
    matrices: Vec<MatrixPlan>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let mut out = String::new();
        for plan in &self.matrices {
            let m = plan.resolve(r);
            out += &format_table(
                &format!("Figure 9: branch MPKI ({scale:?})"),
                &m,
                &Variant::ALL,
                |r, v| r.get(v).stats.branch_mpki(),
                "misses/kinst",
            );
            out.push('\n');
        }
        out
    }
}
