//! Figure 8: normalized dynamic instruction count (lower is better).
//! Paper: SCD cuts total instructions by ~10% on both interpreters.

use super::Render;
use crate::sweep::{plan_matrix, MatrixPlan, RunMatrix, SweepResults};
use crate::{format_table, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

const VARIANTS: [Variant; 3] = [Variant::Baseline, Variant::JumpThreading, Variant::Scd];

/// Plans the figure's cells and returns its renderer.
pub fn plan(m: &mut RunMatrix, scale: ArgScale) -> Box<dyn Render> {
    let matrices = Vm::ALL
        .iter()
        .map(|&vm| plan_matrix(m, &SimConfig::embedded_a5(), vm, scale, &VARIANTS, false))
        .collect();
    Box::new(Plan { scale, matrices })
}

struct Plan {
    scale: ArgScale,
    matrices: Vec<MatrixPlan>,
}

impl Render for Plan {
    fn render(&self, r: &SweepResults) -> String {
        let scale = self.scale;
        let mut out = String::new();
        for plan in &self.matrices {
            let m = plan.resolve(r);
            out += &format_table(
                &format!("Figure 8: normalized dynamic instruction count ({scale:?})"),
                &m,
                &VARIANTS,
                |r, v| r.norm_insts(v),
                "x baseline insts",
            );
            out.push('\n');
        }
        out
    }
}
