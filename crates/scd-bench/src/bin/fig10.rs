//! Figure 10: instruction cache miss rates in MPKI, plus the fetch-stall
//! cycles those misses actually cost — attributed from the per-retirement
//! trace events of the same runs rather than from PC-range heuristics.
//! Paper: jump threading inflates Lua's I-cache misses (0.28 -> 4.80
//! MPKI); note that our interpreters are leaner than Lua's C handlers,
//! so absolute footprints are smaller (see EXPERIMENTS.md).

use scd_bench::{
    aggregate_breakdown, arg_scale_from_cli, emit_report, format_table, run_matrix_traced,
    ArgScale, Variant,
};
use scd_guest::Vm;
use scd_sim::SimConfig;
use std::fmt::Write as _;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let variants = [Variant::Baseline, Variant::JumpThreading, Variant::Scd];
    let mut out = String::new();
    for vm in Vm::ALL {
        let m = run_matrix_traced(&SimConfig::embedded_a5(), vm, scale, &variants, true);
        out += &format_table(
            &format!("Figure 10: I-cache MPKI ({scale:?})"),
            &m,
            &variants,
            |r, v| r.get(v).stats.icache_mpki(),
            "misses/kinst",
        );
        out.push('\n');
        // What the misses cost: fetch-stall cycles per kilo-instruction,
        // and how much of that stalling lands in dispatcher code.
        let _ = writeln!(out, "Fetch-stall attribution from trace events [{}]", m.vm.name());
        let _ = writeln!(
            out,
            "{:<16}{:>16}{:>16}{:>16}",
            "variant", "stall cyc/kinst", "share of cyc%", "in dispatch%"
        );
        for &v in &variants {
            let b = aggregate_breakdown(&m, v);
            let insts: u64 = m.rows.iter().map(|r| r.get(v).stats.instructions).sum();
            let _ = writeln!(
                out,
                "{:<16}{:>16.2}{:>16.1}{:>16.1}",
                v.name(),
                b.fetch_stall as f64 * 1000.0 / insts.max(1) as f64,
                100.0 * b.fetch_stall as f64 / b.total.max(1) as f64,
                100.0 * b.dispatch_fetch_stall as f64 / b.fetch_stall.max(1) as f64,
            );
        }
        out.push('\n');
    }
    emit_report("fig10", &out);
}
