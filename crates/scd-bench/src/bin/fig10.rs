//! Figure 10: instruction cache miss rates in MPKI.
//! Paper: jump threading inflates Lua's I-cache misses (0.28 -> 4.80
//! MPKI); note that our interpreters are leaner than Lua's C handlers,
//! so absolute footprints are smaller (see EXPERIMENTS.md).

use scd_bench::{arg_scale_from_cli, emit_report, format_table, run_matrix, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let variants = [Variant::Baseline, Variant::JumpThreading, Variant::Scd];
    let mut out = String::new();
    for vm in Vm::ALL {
        let m = run_matrix(&SimConfig::embedded_a5(), vm, scale, &variants, true);
        out += &format_table(
            &format!("Figure 10: I-cache MPKI ({scale:?})"),
            &m,
            &variants,
            |r, v| r.get(v).stats.icache_mpki(),
            "misses/kinst",
        );
        out.push('\n');
    }
    emit_report("fig10", &out);
}
