//! Figure 7: overall speedups of jump threading, VBBI and SCD over the
//! out-of-the-box baseline, for both interpreters, plus the cycle
//! decomposition behind them. The decomposition is attributed from the
//! per-retirement trace events of the same runs (redirect penalties,
//! cache-miss stalls, Rop waits), not from PC-range heuristics.
//! Paper geomeans: Lua 19.9% (SCD), 8.8% (VBBI), -1.6% (JT);
//! JavaScript 14.1%, 5.3%, 7.3%.

use scd_bench::{
    arg_scale_from_cli, emit_report, format_breakdown, format_table, run_matrix_traced, ArgScale,
    Variant,
};
use scd_guest::Vm;
use scd_sim::SimConfig;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let mut out = String::new();
    for vm in Vm::ALL {
        let m = run_matrix_traced(&SimConfig::embedded_a5(), vm, scale, &Variant::ALL, true);
        out += &format_table(
            &format!("Figure 7: speedup over baseline ({scale:?})"),
            &m,
            &[Variant::JumpThreading, Variant::Vbbi, Variant::Scd],
            |r, v| r.speedup(v),
            "x baseline",
        );
        out.push('\n');
        out += &format_breakdown(
            "Cycle decomposition from trace events (all benchmarks)",
            &m,
            &Variant::ALL,
        );
        out.push('\n');
    }
    emit_report("fig7", &out);
}
