//! Figure 7: overall speedups of jump threading, VBBI and SCD over the
//! out-of-the-box baseline, for both interpreters.
//! Paper geomeans: Lua 19.9% (SCD), 8.8% (VBBI), -1.6% (JT);
//! JavaScript 14.1%, 5.3%, 7.3%.

use scd_bench::{arg_scale_from_cli, emit_report, format_table, run_matrix, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let mut out = String::new();
    for vm in Vm::ALL {
        let m = run_matrix(&SimConfig::embedded_a5(), vm, scale, &Variant::ALL, true);
        out += &format_table(
            &format!("Figure 7: speedup over baseline ({scale:?})"),
            &m,
            &[Variant::JumpThreading, Variant::Vbbi, Variant::Scd],
            |r, v| r.speedup(v),
            "x baseline",
        );
        out.push('\n');
    }
    emit_report("fig7", &out);
}
