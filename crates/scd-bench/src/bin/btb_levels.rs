//! Thin alias for `sweep --only btb_levels`: plans the report's cells into
//! the shared run matrix, executes them in parallel, and renders via
//! `scd_bench::figures::btb_levels`. Honors `--quick` and `--threads N`.

fn main() {
    scd_bench::run_report_cli("btb_levels");
}
