//! Per-structure warming-window sensitivity: how short can each
//! structure class's warm window get before the sampled estimate
//! drifts?
//!
//! ```text
//! cargo run --release -p scd-bench --bin warming_sensitivity            # committed scale
//! cargo run --release -p scd-bench --bin warming_sensitivity -- --quick # CI-sized
//! ```
//!
//! Two structurally diverse benchmarks (fibo: recursion + dispatch
//! pressure; spectral-norm: FP + array traffic) run on the embedded-a5
//! / LVM / SCD corner, full detail first (the reference cycle count at
//! a fixed instruction budget), then sampled under a grid of plans:
//!
//! * uniform windows — the whole warm leg warms everything, the PR 8
//!   baseline cadence;
//! * one structure class swept while the other two are held at the
//!   longest window in the grid, isolating that class's own
//!   requirement (`CACHE` sweeps the cache/TLB window, `BTB` the
//!   PC-entry BTB window, `PRED` the direction/ITTAGE/RAS/indirect
//!   window).
//!
//! Each row reports the estimated-cycles drift against the full-detail
//! reference. The committed `results/warming_sensitivity.txt` is the
//! qualification evidence behind the default `--sample default` plan.
//! Its headline: the cache/TLB hierarchy is the *only* class with a
//! real window requirement (~20k retirements before drift flattens);
//! BTB and direction/indirect predictors retrain so fast on
//! interpreter dispatch loops that even 1k windows add no measurable
//! drift. The default plan therefore keeps uniform windows sized for
//! the cache class — and conversely, a conservative plan that holds
//! predictors warm for a long leg can lean on the gated replay
//! consumer, which makes the predictor-only span cheap (see
//! `BENCH_simperf.json`'s warming section).

use luma::scripts::BENCHMARKS;
use scd_bench::write_artifact;
use scd_guest::{RunRequest, Scheme, Vm};
use scd_sim::{SamplingPlan, SimConfig};
use std::fmt::Write as _;
use std::process::exit;

/// The two qualification benchmarks.
const BENCHES: [&str; 2] = ["fibo", "spectral-norm"];

/// Swept window lengths, shortest first.
const WINDOWS: [u64; 5] = [1_000, 5_000, 10_000, 20_000, 50_000];

/// The hold-at-max window for the two classes not being swept (also the
/// top of the uniform sweep).
const HOLD: u64 = 100_000;

const OUT: &str = "results/warming_sensitivity.txt";

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode shrinks the budget, not the grid: the point of the CI
    // run is exercising every plan shape, not reproducing the numbers.
    let (budget, period, measure) = if quick {
        (4_000_000, 250_000, 10_000)
    } else {
        (40_000_000, 1_000_000, 20_000)
    };
    let cfg = SimConfig::embedded_a5();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Per-structure warming-window sensitivity [embedded-a5, LVM, scd scheme]\n\
         budget {budget} insts, period {period}, measure {measure}, hold-at-max {HOLD}\n\
         drift = |estimated - full-detail cycles| / full-detail cycles\n"
    );

    for name in BENCHES {
        let b = BENCHMARKS
            .iter()
            .find(|b| b.name == name)
            .expect("pinned benchmark");
        let arg = if quick { b.tiny_arg } else { b.sim_arg };
        let predefined = [("N", arg)];
        let req = RunRequest::new(cfg.clone(), Vm::Lvm, b.source)
            .predefined(&predefined)
            .scheme(Scheme::Scd)
            .max_insts(budget);

        let full = run(&req, None);
        let _ = writeln!(out, "{name}: full-detail reference {full} cycles");
        let _ = writeln!(
            out,
            "  {:<12}{:>10}{:>16}{:>10}",
            "sweep", "window", "cycles-est", "drift%"
        );

        // Uniform windows: the PR 8 cadence, for scale.
        for w in WINDOWS.into_iter().chain([HOLD]) {
            let plan = SamplingPlan::new(period, w, measure).unwrap_or_else(|e| die(&e));
            row(&mut out, "uniform", w, run(&req, Some(plan)), full);
        }
        // One class swept, the other two held at the grid maximum.
        for w in WINDOWS {
            let plan = SamplingPlan::new(period, w, measure)
                .and_then(|p| p.with_windows(HOLD, HOLD))
                .unwrap_or_else(|e| die(&e));
            row(&mut out, "CACHE", w, run(&req, Some(plan)), full);
        }
        for w in WINDOWS {
            let plan = SamplingPlan::new(period, HOLD, measure)
                .and_then(|p| p.with_windows(w, HOLD))
                .unwrap_or_else(|e| die(&e));
            row(&mut out, "BTB", w, run(&req, Some(plan)), full);
        }
        for w in WINDOWS {
            let plan = SamplingPlan::new(period, HOLD, measure)
                .and_then(|p| p.with_windows(HOLD, w))
                .unwrap_or_else(|e| die(&e));
            row(&mut out, "PRED", w, run(&req, Some(plan)), full);
        }
        out.push('\n');
    }

    print!("{out}");
    if quick {
        eprintln!("warming_sensitivity: quick run, not overwriting {OUT}");
    } else {
        write_artifact(OUT, &out);
        eprintln!("warming_sensitivity: wrote {OUT}");
    }
}

/// Runs the request (sampled under `plan`, or full detail) and returns
/// total cycles — estimated for sampled runs, exact for full detail.
fn run(req: &RunRequest<'_>, plan: Option<SamplingPlan>) -> u64 {
    let r = req
        .clone()
        .sample(plan)
        .run_with(|m| m.disable_invariants())
        .unwrap_or_else(|e| die(&e));
    r.stats.cycles
}

fn row(out: &mut String, sweep: &str, window: u64, est: u64, full: u64) {
    let drift = 100.0 * (est as f64 - full as f64).abs() / full as f64;
    let _ = writeln!(out, "  {sweep:<12}{window:>10}{est:>16}{drift:>10.3}");
}

fn die(msg: &str) -> ! {
    eprintln!("warming_sensitivity: {msg}");
    exit(1);
}
