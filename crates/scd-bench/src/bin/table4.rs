//! Table IV: instruction count and cycle count of the Lua-like
//! interpreter on the FPGA (Rocket) configuration — baseline, jump
//! threading, SCD — with savings and speedups.
//! Paper geomeans: SCD saves 10.44% instructions, 12.04% cycles; jump
//! threading saves 4.84% instructions, ~0% cycles.

use luma::scripts::BENCHMARKS;
use scd_bench::{arg_scale_from_cli, emit_report, run_one, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::{geomean, SimConfig};
use std::fmt::Write as _;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Fpga);
    let cfg = SimConfig::fpga_rocket();
    let mut out = String::new();
    let _ = writeln!(out, "Table IV: Lua-like interpreter on the Rocket (FPGA) configuration ({scale:?})");
    let _ = writeln!(
        out,
        "{:<18}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}{:>11}{:>11}{:>11}{:>11}",
        "benchmark", "base-inst", "base-cyc", "jt-inst", "jt-cyc", "scd-inst", "scd-cyc",
        "jt-isave", "jt-spdup", "scd-isave", "scd-spdup"
    );
    let (mut jts, mut jtc, mut scds, mut scdc) = (vec![], vec![], vec![], vec![]);
    for b in &BENCHMARKS {
        eprintln!("  table4 {}", b.name);
        let base = run_one(&cfg, Vm::Lvm, b, scale, Variant::Baseline);
        let jt = run_one(&cfg, Vm::Lvm, b, scale, Variant::JumpThreading);
        let scd = run_one(&cfg, Vm::Lvm, b, scale, Variant::Scd);
        let isave = |x: &scd_guest::GuestRun| {
            1.0 - x.stats.instructions as f64 / base.stats.instructions as f64
        };
        let spdup = |x: &scd_guest::GuestRun| {
            base.stats.cycles as f64 / x.stats.cycles as f64 - 1.0
        };
        jts.push(1.0 - isave(&jt));
        jtc.push(1.0 + spdup(&jt));
        scds.push(1.0 - isave(&scd));
        scdc.push(1.0 + spdup(&scd));
        let _ = writeln!(
            out,
            "{:<18}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}{:>10.2}%{:>10.2}%{:>10.2}%{:>10.2}%",
            b.name,
            base.stats.instructions,
            base.stats.cycles,
            jt.stats.instructions,
            jt.stats.cycles,
            scd.stats.instructions,
            scd.stats.cycles,
            100.0 * isave(&jt),
            100.0 * spdup(&jt),
            100.0 * isave(&scd),
            100.0 * spdup(&scd),
        );
    }
    let _ = writeln!(
        out,
        "{:<18}{:>56}{:>42}{:>10.2}%{:>10.2}%{:>10.2}%{:>10.2}%",
        "GEOMEAN",
        "",
        "",
        100.0 * (1.0 - geomean(&jts)),
        100.0 * (geomean(&jtc) - 1.0),
        100.0 * (1.0 - geomean(&scds)),
        100.0 * (geomean(&scdc) - 1.0),
    );
    emit_report("table4", &out);
}
