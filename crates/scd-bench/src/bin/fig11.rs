//! Thin alias for `sweep --only fig11`: plans the report's cells into the
//! shared run matrix, executes them in parallel, and renders via
//! `scd_bench::figures::fig11`. Honors `--quick` and `--threads N`.

fn main() {
    scd_bench::run_report_cli("fig11");
}
