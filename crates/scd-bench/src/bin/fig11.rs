//! Figure 11: sensitivity studies.
//! (a)/(b) SCD speedup vs BTB size {64, 128, 256, 512} for both VMs.
//! (c)/(d) SCD speedup vs the maximum JTE cap {4, 16, unbounded} at the
//! smallest BTB (64 entries).

use luma::scripts::BENCHMARKS;
use scd_bench::{arg_scale_from_cli, emit_report, run_one, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::{geomean, SimConfig};
use std::fmt::Write as _;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let mut out = String::new();

    // (a)/(b): BTB size sweep.
    for vm in Vm::ALL {
        let _ = writeln!(out, "Figure 11a/b: SCD speedup vs BTB size [{}] ({scale:?})", vm.name());
        let sizes = [64usize, 128, 256, 512];
        let _ = write!(out, "{:<18}", "benchmark");
        for s in sizes {
            let _ = write!(out, "{s:>10}");
        }
        let _ = writeln!(out);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
        for b in &BENCHMARKS {
            let _ = write!(out, "{:<18}", b.name);
            for (i, &entries) in sizes.iter().enumerate() {
                let cfg = SimConfig::embedded_a5().with_btb_entries(entries);
                eprintln!("  fig11ab {} [{}] btb={entries}", b.name, vm.name());
                let base = run_one(&cfg, vm, b, scale, Variant::Baseline);
                let scd = run_one(&cfg, vm, b, scale, Variant::Scd);
                let speedup = base.stats.cycles as f64 / scd.stats.cycles as f64;
                cols[i].push(speedup);
                let _ = write!(out, "{speedup:>10.3}");
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<18}", "GEOMEAN");
        for c in &cols {
            let _ = write!(out, "{:>10.3}", geomean(c));
        }
        let _ = writeln!(out, "\n");
    }

    // (c)/(d): JTE cap sweep at the smallest BTB.
    for vm in Vm::ALL {
        let _ = writeln!(
            out,
            "Figure 11c/d: SCD speedup vs JTE cap at 64-entry BTB [{}] ({scale:?})",
            vm.name()
        );
        let caps: [(Option<usize>, &str); 3] = [(Some(4), "4"), (Some(16), "16"), (None, "inf")];
        let _ = write!(out, "{:<18}", "benchmark");
        for (_, label) in caps {
            let _ = write!(out, "{label:>10}");
        }
        let _ = writeln!(out);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); caps.len()];
        for b in &BENCHMARKS {
            let _ = write!(out, "{:<18}", b.name);
            let base_cfg = SimConfig::embedded_a5().with_btb_entries(64);
            let base = run_one(&base_cfg, vm, b, scale, Variant::Baseline);
            for (i, (cap, _)) in caps.iter().enumerate() {
                eprintln!("  fig11cd {} [{}] cap={cap:?}", b.name, vm.name());
                let cfg = base_cfg.clone().with_jte_cap(*cap);
                let scd = run_one(&cfg, vm, b, scale, Variant::Scd);
                let speedup = base.stats.cycles as f64 / scd.stats.cycles as f64;
                cols[i].push(speedup);
                let _ = write!(out, "{speedup:>10.3}");
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<18}", "GEOMEAN");
        for c in &cols {
            let _ = write!(out, "{:>10.3}", geomean(c));
        }
        let _ = writeln!(out, "\n");
    }

    emit_report("fig11", &out);
}
