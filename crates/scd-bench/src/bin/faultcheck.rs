//! Fault-injection sweep: the differential guard over the benchmark
//! corpus.
//!
//! Runs every Table III benchmark, on both VMs, under each of the three
//! standard seeded fault plans, and asserts the hint-not-oracle
//! property: the faulted run must validate against the host oracle and
//! finish architecturally bit-identical to the clean run. Timing may
//! differ (lost JTEs lengthen the retired path); results may not.
//!
//! ```text
//! cargo run --release -p scd-bench --bin faultcheck           # sim-scale
//! cargo run -p scd-bench --bin faultcheck -- --quick          # tiny inputs
//! cargo run -p scd-bench --bin faultcheck -- --quick --smoke  # CI subset
//! cargo run -p scd-bench --bin faultcheck -- --threads 4
//! ```
//!
//! The (benchmark, vm, plan) triples are independent, so they run
//! through the same order-preserving parallel map as the sweep driver;
//! the report bytes do not depend on the thread count.
//!
//! Exits non-zero on the first divergence, printing the trace-window
//! dump path emitted by the guard.

use scd_bench::{arg_scale_from_cli, emit_report, parallel_map, threads_from_cli, ArgScale};
use scd_guest::{differential_check, RunRequest, Scheme, Vm};
use scd_sim::{FaultPlan, SimConfig};
use std::fmt::Write as _;

const SEED: u64 = 2026;
const WINDOW: usize = 256;

/// `--smoke` restricts the sweep to three cheap, dispatch-diverse
/// benchmarks so the debug-profile CI job finishes in minutes.
const SMOKE_BENCHES: [&str; 3] = ["spectral-norm", "random", "fibo"];

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = threads_from_cli();

    let mut work = Vec::new();
    for b in &luma::scripts::BENCHMARKS {
        if smoke && !SMOKE_BENCHES.contains(&b.name) {
            continue;
        }
        for vm in [Vm::Lvm, Vm::Svm] {
            for plan in FaultPlan::standard_plans(SEED) {
                work.push((b, vm, plan));
            }
        }
    }

    // Each row is (rendered line, diverged?); the reduction below is
    // sequential and in submission order.
    let rows = parallel_map(&work, threads, |(b, vm, plan)| {
        let args = [("N", scale.arg(b))];
        let req = RunRequest::new(SimConfig::embedded_a5(), *vm, b.source)
            .predefined(&args)
            .scheme(Scheme::Scd);
        match differential_check(&req, plan.clone(), WINDOW) {
            Ok(r) => {
                let clean = r.clean.stats.instructions;
                let faulted = r.faulted.stats.instructions;
                assert!(
                    faulted >= clean,
                    "{}/{}/{}: faults shortened the retired path",
                    b.name,
                    vm.name(),
                    r.plan
                );
                let line = format!(
                    "{:<18}{:<5}{:<18}{:>10}{:>14}{:>14}{:>8.2}%",
                    b.name,
                    vm.name(),
                    r.plan,
                    r.injected,
                    clean,
                    faulted,
                    100.0 * (faulted as f64 / clean.max(1) as f64 - 1.0),
                );
                (line, false)
            }
            Err(e) => {
                let line =
                    format!("{:<18}{:<5}{:<18}  FAILED: {e}", b.name, vm.name(), plan.name());
                (line, true)
            }
        }
    });

    let mut out = String::new();
    let _ = writeln!(out, "Fault-injection differential sweep ({scale:?}, seed {SEED})");
    let _ = writeln!(
        out,
        "{:<18}{:<5}{:<18}{:>10}{:>14}{:>14}{:>9}",
        "benchmark", "vm", "plan", "injected", "clean-insts", "fault-insts", "overhead"
    );
    let mut failures = 0u32;
    for (line, diverged) in rows {
        let _ = writeln!(out, "{line}");
        failures += u32::from(diverged);
    }
    let _ = writeln!(out, "\ndivergences: {failures}");
    emit_report("faultcheck", &out);
    if failures > 0 {
        std::process::exit(1);
    }
}
