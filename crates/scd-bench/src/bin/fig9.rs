//! Figure 9: branch misprediction rate in MPKI (lower is better).
//! Paper: SCD cuts Lua MPKI by ~70%, VBBI by ~77%, JT by ~24%.

use scd_bench::{arg_scale_from_cli, emit_report, format_table, run_matrix, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let mut out = String::new();
    for vm in Vm::ALL {
        let m = run_matrix(&SimConfig::embedded_a5(), vm, scale, &Variant::ALL, true);
        out += &format_table(
            &format!("Figure 9: branch MPKI ({scale:?})"),
            &m,
            &Variant::ALL,
            |r, v| r.get(v).stats.branch_mpki(),
            "misses/kinst",
        );
        out.push('\n');
    }
    emit_report("fig9", &out);
}
