//! The one-stop evaluation driver: regenerates every figure and table
//! from a single deduplicated run matrix, executed in parallel.
//!
//! ```text
//! cargo run --release -p scd-bench --bin sweep                    # everything
//! cargo run --release -p scd-bench --bin sweep -- --list          # report index
//! cargo run --release -p scd-bench --bin sweep -- --only fig7,table4
//! cargo run --release -p scd-bench --bin sweep -- --threads 4
//! cargo run --release -p scd-bench --bin sweep -- --quick         # tiny inputs
//! cargo run --release -p scd-bench --bin sweep -- --smoke         # CI drift gate
//! cargo run --release -p scd-bench --bin sweep -- --smoke --bless # re-pin goldens
//! cargo run --release -p scd-bench --bin sweep -- --interleaved   # reference loop
//! cargo run --release -p scd-bench --bin sweep -- --cache DIR     # persistent results
//! cargo run --release -p scd-bench --bin sweep -- --sample 1M:100k:50k  # interval sampling
//! cargo run --release -p scd-bench --bin sweep -- --sample default # qualified default plan
//! cargo run --release -p scd-bench --bin sweep -- --sample-gate   # sampled-vs-full gate
//! ```
//!
//! With `--cache DIR`, every cell first consults the content-addressed
//! on-disk cache shared with `scd serve` (see `scd-serve`), and a
//! SIGINT drains in-flight cells — committing their entries — before
//! exiting 130, so a rerun resumes as cache hits. `--expect-warm`
//! additionally fails the run (exit 1) when fewer than 95% of cells
//! hit: the CI cache-roundtrip gate. `--cache-stats` prints the cache's
//! end-of-run counter summary (hits/misses/stores/quarantined/
//! recovered) to stderr.
//!
//! With `--sample PERIOD:WARMUP[/BTB=N,PRED=N]:MEASURE`, every cell
//! runs under interval sampling with replay-driven warming (see
//! EXPERIMENTS.md): cycle counts become statistical estimates, so the
//! rendered tables are fast previews written to `results/sampled/`
//! (never the committed `results/` files), and the host-performance
//! record goes to `BENCH_sweep_sampled.json` — including the speedup
//! against the committed full-detail `BENCH_sweep.json` wall time.
//! The literal plan `default` resolves to the qualified default plan
//! (the one `--sample-gate` holds to ≤1% headline drift). Traced
//! reports (fig7, fig10) are skipped: their cells must run full detail
//! anyway, which would cap the sweep speedup well below its target.
//! Sampled cells cache under distinct keys; `--sample` composes with
//! `--interleaved` (which pins the interleaved warming engine — sampled
//! results are engine-invariant) but is still rejected alongside
//! `--smoke` (the golden gate pins full-detail bytes).
//!
//! `--sample-gate` is the CI accuracy gate for the sampling machinery:
//! it runs the Table IV/V headline matrix twice — full detail and
//! sampled — and fails (exit 1) when any headline geomean ratio drifts
//! by more than 1% relative, reporting the measured simulation speedup
//! alongside.
//!
//! Untraced cells run on the execute-ahead replay loop by default;
//! `--interleaved` pins every cell to the interleaved reference loop
//! with the invariant checker armed (the pre-replay behavior). Stats
//! are bit-identical either way.
//!
//! Without `--smoke`, every selected report is rendered to stdout and
//! `results/<name>.txt` (exactly the bytes the per-figure binaries
//! produce), and host-performance accounting is written to
//! `BENCH_sweep.json` (see EXPERIMENTS.md for the schema).
//!
//! With `--smoke`, a small fixed report subset runs on tiny inputs and
//! each rendered report is byte-compared against the pinned golden in
//! `tests/golden/sweep_smoke/`; any drift exits non-zero. This is the
//! CI gate that catches unintended changes to simulator timing or
//! table formatting. `--bless` re-pins the goldens after an intended
//! change. The smoke gate also co-simulates one benchmark against the
//! `scd-ref` architectural oracle (both VMs x both schemes) so a
//! timing-model change that silently corrupts architectural state
//! cannot slip through on a day the formatted numbers happen to match.

use scd_bench::figures::{self, Render, Report, REPORTS};
use scd_bench::{
    emit_report, emit_report_to, threads_from_cli, write_artifact, ArgScale, EdpHeadline,
    RunMatrix, SweepError, SweepResults, Table4Headline, Variant,
};
use scd_guest::{lockstep_check, RunRequest, Scheme, Vm};
use scd_serve::{install_sigint_flag, Cache, EXIT_SIGINT};
use scd_sim::{SamplingPlan, SimConfig};
use std::fmt::Write as _;
use std::process::exit;
use std::sync::atomic::Ordering;

/// Reports the `--smoke` gate runs: cheap, structurally diverse (a
/// hand-rolled table, an arithmetic-mean table, and the full
/// two-VM/four-variant matrix through `format_table`), and overlapping
/// enough to exercise cell deduplication.
const SMOKE_REPORTS: [&str; 3] = ["fig2", "fig3", "fig9"];
const SMOKE_GOLDEN_DIR: &str = "tests/golden/sweep_smoke";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| argv.iter().any(|a| a == f);
    if has("--list") {
        for r in REPORTS {
            println!("{:<10} {:?}  {}", r.name, r.default_scale, r.title);
        }
        return;
    }
    let smoke = has("--smoke");
    let quick = has("--quick") || smoke;
    let bless = has("--bless");
    let threads = threads_from_cli();
    let sample = parse_sample(&argv, quick);

    if has("--sample-gate") {
        sample_gate(threads, quick, sample);
        return;
    }
    if sample.is_some() && smoke {
        eprintln!("--sample is incompatible with --smoke (goldens pin full-detail bytes)");
        exit(2);
    }

    let only = parse_only(&argv);
    let mut selected: Vec<&Report> = match &only {
        Some(names) => names
            .iter()
            .map(|n| {
                figures::report(n).unwrap_or_else(|| {
                    eprintln!("unknown report `{n}`; see --list");
                    exit(2);
                })
            })
            .collect(),
        None if smoke => SMOKE_REPORTS
            .iter()
            .map(|n| figures::report(n).expect("smoke report"))
            .collect(),
        None => REPORTS.iter().collect(),
    };
    if sample.is_some() {
        // Traced cells always run full detail (the trace consumers need
        // every retirement), so keeping fig7/fig10 in a sampled sweep
        // would spend ~20% of the full-detail wall for previews that
        // sampling cannot accelerate. Skip them instead.
        let skipped: Vec<&str> = selected
            .iter()
            .filter(|r| r.traced)
            .map(|r| r.name)
            .collect();
        if !skipped.is_empty() {
            eprintln!(
                "sweep: skipping traced report(s) {} — their cells need full-detail \
                 trace collection; rerun without --sample to regenerate them",
                skipped.join(", ")
            );
            selected.retain(|r| !r.traced);
        }
        if selected.is_empty() {
            eprintln!("sweep: nothing to run — every selected report is traced");
            exit(2);
        }
    }

    let mut m = RunMatrix::new();
    m.set_interleaved(has("--interleaved"));
    m.set_sample(sample);
    if let Some(p) = &sample {
        eprintln!(
            "sweep: interval sampling (plan {p}) — cycle counts are estimates; \
             rendered tables are previews, not committed artifacts"
        );
    }
    let plans: Vec<(&Report, Box<dyn Render>)> = selected
        .iter()
        .map(|rep| {
            let scale = if quick {
                ArgScale::Tiny
            } else {
                rep.default_scale
            };
            (*rep, (rep.plan)(&mut m, scale))
        })
        .collect();

    eprintln!(
        "sweep: {} report(s), {} unique cells ({} requested, {:.2}x dedup), {threads} thread(s)",
        plans.len(),
        m.len(),
        m.requested(),
        m.requested() as f64 / m.len().max(1) as f64
    );

    let expect_warm = has("--expect-warm");
    let cache_dir = parse_cache(&argv);
    if expect_warm && cache_dir.is_none() {
        eprintln!("--expect-warm requires --cache DIR");
        exit(2);
    }
    let cache = cache_dir.map(|dir| {
        Cache::open(&dir).unwrap_or_else(|e| {
            eprintln!("sweep: cannot open cache {dir}: {e}");
            exit(70);
        })
    });

    let results = match &cache {
        None => m.run(threads, true),
        Some(c) => {
            // SIGINT becomes a drain: in-flight cells finish and commit
            // their cache entries, then the sweep exits 130 and a rerun
            // resumes as hits. Only armed when a cache makes the drain
            // worth something; without one, Ctrl-C keeps its default
            // kill semantics.
            let interrupt = install_sigint_flag();
            match m.run_cached(threads, true, Some(c), Some(interrupt)) {
                Ok(r) => {
                    c.flush();
                    report_cache(c, expect_warm, has("--cache-stats"));
                    r
                }
                Err(SweepError::Interrupted) => {
                    c.flush();
                    eprintln!(
                        "sweep: interrupted; {} cell(s) served from cache, {} newly \
                         cached — rerun with the same --cache to resume",
                        c.stats.hits.load(Ordering::SeqCst),
                        c.stats.stores.load(Ordering::SeqCst),
                    );
                    exit(EXIT_SIGINT);
                }
                Err(e) => {
                    eprintln!("sweep: {e}");
                    exit(70);
                }
            }
        }
    };

    let mut drifted = 0u32;
    for (rep, plan) in &plans {
        let body = plan.render(&results);
        if smoke {
            drifted += u32::from(!check_smoke(rep.name, &body, bless));
        } else if sample.is_some() {
            emit_report_to("results/sampled", rep.name, &body);
        } else {
            emit_report(rep.name, &body);
        }
    }

    if !smoke {
        let report_names: Vec<&str> = plans.iter().map(|(r, _)| r.name).collect();
        let json = bench_json(&results, threads, &report_names, quick, sample.as_ref());
        // Sampled runs keep their own perf record so the committed
        // full-detail BENCH_sweep.json (the reference wall time the
        // sampled speedup is quoted against) is never overwritten by a
        // preview pass.
        let artifact = if sample.is_some() {
            "BENCH_sweep_sampled.json"
        } else {
            "BENCH_sweep.json"
        };
        write_artifact(artifact, &json);
        let wall = results.wall.as_secs_f64();
        let total_insts: u64 = results
            .iter()
            .map(|(_, _, out)| out.run.stats.instructions)
            .sum();
        let unique_s = results.serial_unique().as_secs_f64();
        eprintln!(
            "sweep: {} cells in {wall:.1}s wall ({:.1}s summed cell time, {:.1}s dedup-unaware \
             sequential estimate) -> {artifact}",
            results.len(),
            unique_s,
            results.serial_requested().as_secs_f64(),
        );
        eprintln!(
            "sweep: simulated {:.1}M guest instructions at {:.2} Minst/s aggregate",
            total_insts as f64 / 1e6,
            total_insts as f64 / 1e6 / unique_s.max(1e-9),
        );
    }
    if smoke && !lockstep_smoke() {
        exit(1);
    }
    if drifted > 0 {
        eprintln!("sweep --smoke: {drifted} report(s) drifted from pinned goldens");
        exit(1);
    }
}

/// The `--smoke` oracle gate: one benchmark on tiny inputs, both VMs x
/// both dispatch schemes, lockstep-checked against the reference ISS.
/// Returns false (and reports) on any divergence.
fn lockstep_smoke() -> bool {
    let bench = luma::scripts::BENCHMARKS
        .iter()
        .find(|b| b.name == "binary-trees")
        .expect("seed benchmark went missing");
    let args = [("N", ArgScale::Tiny.arg(bench))];
    let mut ok = true;
    let mut checked = 0u64;
    for vm in [Vm::Lvm, Vm::Svm] {
        for scheme in [Scheme::Baseline, Scheme::Scd] {
            let req = RunRequest::new(SimConfig::embedded_a5(), vm, bench.source)
                .predefined(&args)
                .scheme(scheme)
                .max_insts(100_000_000);
            match lockstep_check(&req) {
                Ok(r) => checked += r.checked,
                Err(e) => {
                    eprintln!(
                        "sweep --smoke: lockstep {}/{}/{}: {e}",
                        bench.name,
                        vm.name(),
                        scheme.name()
                    );
                    ok = false;
                }
            }
        }
    }
    if ok {
        eprintln!("sweep --smoke: lockstep oracle clean ({checked} instructions checked)");
    }
    ok
}

/// Parses `--cache DIR` / `--cache=DIR`. Exits 2 when the flag is
/// present but the directory is missing.
fn parse_cache(argv: &[String]) -> Option<String> {
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if a == "--cache" {
            return match it.next() {
                Some(dir) => Some(dir.clone()),
                None => {
                    eprintln!("--cache requires a directory argument");
                    exit(2);
                }
            };
        }
        if let Some(dir) = a.strip_prefix("--cache=") {
            return Some(dir.to_string());
        }
    }
    None
}

/// Reports cache effectiveness (`--cache-stats`, the shared
/// [`scd_serve::CacheStats::summary`] formatter) and enforces
/// `--expect-warm` (≥95% of cells served from the cache, the CI
/// roundtrip gate — enforced whether or not the summary prints).
fn report_cache(c: &Cache, expect_warm: bool, cache_stats: bool) {
    if cache_stats {
        let mut line = format!("sweep: cache {}", c.stats.summary());
        if let Some(rate) = c.stats.hit_rate() {
            let _ = write!(line, " ({:.1}% hit rate)", 100.0 * rate);
        }
        eprintln!("{line}");
    }
    if expect_warm && !c.stats.hit_rate().is_some_and(|r| r >= 0.95) {
        eprintln!("sweep: --expect-warm: hit rate below 95% — cache keys drifted or cold");
        exit(1);
    }
}

/// Parses `--sample PLAN` / `--sample=PLAN`. The literal plan `default`
/// resolves to the qualified default plan for the current input scale
/// (the same plan `--sample-gate` qualifies). Exits 2 on a malformed
/// plan.
fn parse_sample(argv: &[String], quick: bool) -> Option<SamplingPlan> {
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let plan = if a == "--sample" {
            match it.next() {
                Some(p) => p.clone(),
                None => {
                    eprintln!("--sample requires a PERIOD:WARMUP:MEASURE argument (or `default`)");
                    exit(2);
                }
            }
        } else if let Some(p) = a.strip_prefix("--sample=") {
            p.to_string()
        } else {
            continue;
        };
        if plan == "default" {
            return Some(default_gate_plan(quick));
        }
        return match SamplingPlan::parse(&plan) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("--sample {plan}: {e}");
                exit(2);
            }
        };
    }
    None
}

/// The qualified default plans (`--sample default`, and what
/// `--sample-gate` runs when no explicit plan is given): scaled to the
/// guest lengths of each input scale so the measured fraction stays
/// small enough to demonstrate a real speedup while keeping enough
/// intervals for tight estimates. The windows are grounded in the
/// per-structure sensitivity study — see
/// [`SamplingPlan::qualified_default`].
fn default_gate_plan(quick: bool) -> SamplingPlan {
    SamplingPlan::qualified_default(quick)
}

/// The `--sample-gate` accuracy gate: runs the Table IV/V headline
/// matrix (all benchmarks × baseline/jump-threading/SCD on the Rocket
/// configuration) full-detail and sampled, then compares the six
/// headline geomean ratios the tables print. Any relative drift above
/// 1% fails the gate — the bound under which every percentage in the
/// committed tables is reproduced to the displayed precision.
fn sample_gate(threads: usize, quick: bool, plan: Option<SamplingPlan>) {
    let plan = plan.unwrap_or_else(|| default_gate_plan(quick));
    let scale = if quick { ArgScale::Tiny } else { ArgScale::Sim };
    eprintln!(
        "sweep: sample gate — Table IV/V headline matrix, full detail vs plan {plan} \
         ({scale:?} inputs, {threads} thread(s))"
    );
    let full = gate_headlines(threads, scale, None);
    let sampled = gate_headlines(threads, scale, Some(plan));

    let pairs = || {
        full.table4.named().into_iter().chain(full.edp.named()).zip(
            sampled
                .table4
                .named()
                .into_iter()
                .chain(sampled.edp.named()),
        )
    };
    let mut drifted = 0u32;
    let mut worst = 0.0f64;
    for ((name, f), (_, s)) in pairs() {
        let drift = (s - f).abs() / f.abs().max(1e-12);
        worst = worst.max(drift);
        let ok = drift <= 0.01;
        drifted += u32::from(!ok);
        eprintln!(
            "  {name:<34} full {f:.6}  sampled {s:.6}  drift {:>6.3}%{}",
            100.0 * drift,
            if ok { "" } else { "  EXCEEDS 1%" }
        );
    }
    let full_s = full.serial.max(1e-9);
    let sampled_s = sampled.serial.max(1e-9);
    eprintln!(
        "sweep: sample gate: {:.1}s full vs {:.1}s sampled summed cell time \
         ({:.2}x speedup), worst headline drift {:.3}%",
        full_s,
        sampled_s,
        full_s / sampled_s,
        100.0 * worst
    );
    if drifted > 0 {
        eprintln!("sweep: sample gate: {drifted} headline ratio(s) drifted beyond 1%");
        exit(1);
    }
    eprintln!("sweep: sample gate clean");
}

/// Headline numbers of one gate pass (full detail or sampled), plus the
/// summed per-cell host time the pass cost.
struct GateHeadlines {
    table4: Table4Headline,
    edp: EdpHeadline,
    serial: f64,
}

fn gate_headlines(threads: usize, scale: ArgScale, sample: Option<SamplingPlan>) -> GateHeadlines {
    let cfg = SimConfig::fpga_rocket();
    let mut m = RunMatrix::new();
    m.set_sample(sample);
    let rows: Vec<_> = luma::scripts::BENCHMARKS
        .iter()
        .map(|b| {
            (
                m.variant(&cfg, Vm::Lvm, b, scale, Variant::Baseline, false),
                m.variant(&cfg, Vm::Lvm, b, scale, Variant::JumpThreading, false),
                m.variant(&cfg, Vm::Lvm, b, scale, Variant::Scd, false),
            )
        })
        .collect();
    let r = m.run(threads, true);
    let table4 = Table4Headline::compute(
        rows.iter()
            .map(|&(b, j, s)| (&r.get(b).stats, &r.get(j).stats, &r.get(s).stats)),
    );
    let edp = EdpHeadline::compute(
        rows.iter()
            .map(|&(b, _, s)| (&r.get(b).stats, &r.get(s).stats)),
        scd_model::table_v(&cfg).power_increase,
    );
    GateHeadlines {
        table4,
        edp,
        serial: r.serial_unique().as_secs_f64(),
    }
}

/// Parses `--only a,b` / `--only=a,b` into a name list.
fn parse_only(argv: &[String]) -> Option<Vec<String>> {
    let mut sel = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let list = if a == "--only" {
            it.next().cloned()
        } else {
            a.strip_prefix("--only=").map(str::to_string)
        };
        if let Some(list) = list {
            sel = Some(
                list.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
            );
        }
    }
    sel
}

/// Compares one rendered report against its pinned smoke golden (or
/// re-pins it under `--bless`). Returns whether the report is clean.
fn check_smoke(name: &str, body: &str, bless: bool) -> bool {
    let path = std::path::Path::new(SMOKE_GOLDEN_DIR).join(format!("{name}.txt"));
    if bless {
        write_artifact(&path, body);
        eprintln!("  blessed {}", path.display());
        return true;
    }
    match std::fs::read_to_string(&path) {
        Ok(golden) if golden == body => {
            eprintln!("  {name:<10} matches {}", path.display());
            true
        }
        Ok(golden) => {
            eprintln!("  {name:<10} DRIFTED from {}", path.display());
            print_first_diff(&golden, body);
            false
        }
        Err(e) => {
            eprintln!("  {name:<10} golden unreadable ({e}); regenerate with --smoke --bless");
            false
        }
    }
}

fn print_first_diff(golden: &str, got: &str) {
    for (i, (g, n)) in golden.lines().zip(got.lines()).enumerate() {
        if g != n {
            eprintln!("    first differing line {}:", i + 1);
            eprintln!("    - {g}");
            eprintln!("    + {n}");
            return;
        }
    }
    eprintln!(
        "    outputs differ in length: golden {} vs rendered {} lines",
        golden.lines().count(),
        got.lines().count()
    );
}

/// Reads the top-level `wall_ms` out of the committed full-detail
/// `BENCH_sweep.json`, if present. The file is hand-emitted JSON with
/// one key per line, so a line scan is exact: the first `"wall_ms"`
/// key is the top-level one (the `per_cell` array comes later).
fn full_detail_wall_ms() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_sweep.json").ok()?;
    text.lines()
        .map(str::trim_start)
        .find_map(|l| l.strip_prefix("\"wall_ms\": "))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
}

/// Host-performance record: what the sweep cost and what sharing one
/// deduplicated matrix across figures saved. Durations are host
/// wall-clock milliseconds; `serial_requested_ms` is the dedup-unaware
/// estimate (each cell's runtime weighted by how many reports asked for
/// it) — the cost of the old one-binary-per-figure flow on one thread.
fn bench_json(
    r: &SweepResults,
    threads: usize,
    reports: &[&str],
    quick: bool,
    sample: Option<&SamplingPlan>,
) -> String {
    let wall_ms = r.wall.as_secs_f64() * 1e3;
    let unique_ms = r.serial_unique().as_secs_f64() * 1e3;
    let requested_ms = r.serial_requested().as_secs_f64() * 1e3;
    // Aggregate simulator throughput: total guest instructions retired
    // per second of summed per-cell wall time. The per-cell `mips`
    // fields below give the same ratio cell by cell, so simulator-perf
    // regressions can be localized to a preset/VM/scheme corner.
    let total_insts: u64 = r.iter().map(|(_, _, out)| out.run.stats.instructions).sum();
    let aggregate_mips = total_insts as f64 / 1e6 / (unique_ms / 1e3).max(1e-9);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"scd-sweep-bench-v2\",");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    if let Some(p) = sample {
        // Only sampled records carry the plan: an absent key marks the
        // cycle counts below as exact, and full-detail records stay
        // byte-identical to pre-sampling ones. When the committed
        // full-detail record is on disk, quote the end-to-end speedup
        // against its wall time — the headline number the sampling
        // machinery exists to produce.
        let _ = writeln!(s, "  \"sample\": \"{p}\",");
        // Only full-scale runs are comparable to the committed record:
        // a --quick pass runs tiny inputs and would quote a nonsense
        // thousand-fold "speedup".
        if let Some(full_ms) = full_detail_wall_ms().filter(|_| !quick) {
            let _ = writeln!(s, "  \"full_detail_wall_ms\": {full_ms:.3},");
            let _ = writeln!(
                s,
                "  \"speedup_vs_full_detail\": {:.3},",
                full_ms / wall_ms.max(1e-9)
            );
        }
    }
    let _ = writeln!(
        s,
        "  \"reports\": [{}],",
        reports
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  \"cells\": {},", r.len());
    let _ = writeln!(
        s,
        "  \"cells_requested\": {},",
        r.iter().map(|(_, h, _)| h).sum::<usize>()
    );
    let _ = writeln!(s, "  \"wall_ms\": {wall_ms:.3},");
    let _ = writeln!(s, "  \"serial_unique_ms\": {unique_ms:.3},");
    let _ = writeln!(s, "  \"serial_requested_ms\": {requested_ms:.3},");
    let _ = writeln!(
        s,
        "  \"parallel_speedup\": {:.3},",
        unique_ms / wall_ms.max(1e-9)
    );
    let _ = writeln!(
        s,
        "  \"dedup_speedup\": {:.3},",
        requested_ms / unique_ms.max(1e-9)
    );
    let _ = writeln!(
        s,
        "  \"speedup_vs_sequential_bins\": {:.3},",
        requested_ms / wall_ms.max(1e-9)
    );
    let _ = writeln!(s, "  \"total_instructions\": {total_insts},");
    let _ = writeln!(s, "  \"aggregate_mips\": {aggregate_mips:.2},");
    s.push_str("  \"per_cell\": [\n");
    let n = r.len();
    for (i, (spec, hits, out)) in r.iter().enumerate() {
        let stats = &out.run.stats;
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"vm\": \"{}\", \"scheme\": \"{}\", \"arg\": {}, \
             \"traced\": {}, \"hits\": {hits}, \"wall_ms\": {:.3}, \"cycles\": {}, \
             \"instructions\": {}, \"ipc\": {:.4}, \"mips\": {:.2}}}",
            spec.bench.name,
            spec.vm.name(),
            spec.scheme.name(),
            spec.arg,
            spec.traced,
            out.wall.as_secs_f64() * 1e3,
            stats.cycles,
            stats.instructions,
            stats.ipc(),
            stats.instructions as f64 / 1e6 / out.wall.as_secs_f64().max(1e-9),
        );
        s.push_str(if i + 1 == n { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
