//! Figure 8: normalized dynamic instruction count (lower is better).
//! Paper: SCD cuts total instructions by ~10% on both interpreters.

use scd_bench::{arg_scale_from_cli, emit_report, format_table, run_matrix, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let variants = [Variant::Baseline, Variant::JumpThreading, Variant::Scd];
    let mut out = String::new();
    for vm in Vm::ALL {
        let m = run_matrix(&SimConfig::embedded_a5(), vm, scale, &variants, true);
        out += &format_table(
            &format!("Figure 8: normalized dynamic instruction count ({scale:?})"),
            &m,
            &variants,
            |r, v| r.norm_insts(v),
            "x baseline insts",
        );
        out.push('\n');
    }
    emit_report("fig8", &out);
}
