//! Figure 2: branch MPKI breakdown for the Lua-like interpreter
//! (baseline), split by branch class. The paper's point: the dispatch
//! indirect jump dominates mispredictions.

use scd_bench::{arg_scale_from_cli, emit_report, run_matrix, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;
use std::fmt::Write as _;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let m = run_matrix(&SimConfig::embedded_a5(), Vm::Lvm, scale, &[Variant::Baseline], true);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2: branch MPKI breakdown, LVM baseline ({scale:?})");
    let _ = writeln!(
        out,
        "{:<18}{:>12}{:>12}{:>12}{:>12}{:>12}{:>14}",
        "benchmark", "cond", "direct", "return", "ind-other", "ind-DISPATCH", "dispatch-share"
    );
    for row in &m.rows {
        let s = &row.get(Variant::Baseline).stats;
        let ki = s.instructions as f64 / 1000.0;
        let total = s.total_mispredictions() as f64;
        let _ = writeln!(
            out,
            "{:<18}{:>12.2}{:>12.2}{:>12.2}{:>12.2}{:>12.2}{:>13.1}%",
            row.bench.name,
            s.cond.mispredicted as f64 / ki,
            s.direct.mispredicted as f64 / ki,
            s.ret.mispredicted as f64 / ki,
            s.indirect_other.mispredicted as f64 / ki,
            s.indirect_dispatch.mispredicted as f64 / ki,
            100.0 * s.indirect_dispatch.mispredicted as f64 / total.max(1.0),
        );
    }
    emit_report("fig2", &out);
}
