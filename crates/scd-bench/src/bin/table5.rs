//! Table V: area/power breakdown of the Rocket-like core with and
//! without SCD (analytical 40nm model; see DESIGN.md for the synthesis
//! substitution), plus the EDP improvement combining Table IV speedups.
//! Paper: +0.72% area, +1.09% power, 24.2% EDP improvement.

use luma::scripts::BENCHMARKS;
use scd_bench::{arg_scale_from_cli, emit_report, run_one, ArgScale, Variant};
use scd_guest::Vm;
use scd_model::{edp_improvement, edp_improvement_measured, table_v, EnergyParams};
use scd_sim::{geomean, SimConfig};
use std::fmt::Write as _;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Fpga);
    let cfg = SimConfig::fpga_rocket();
    let t = table_v(&cfg);
    let mut out = String::new();
    let _ = writeln!(out, "Table V: area/power estimate, baseline vs SCD (analytical 40nm model)\n");
    out += &t.baseline.render(Some(&t.scd));
    let _ = writeln!(
        out,
        "\nTotal area increase : {:+.2}%   (paper: +0.72%)",
        100.0 * t.area_increase
    );
    let _ = writeln!(
        out,
        "Total power increase: {:+.2}%   (paper: +1.09%)",
        100.0 * t.power_increase
    );
    let _ = writeln!(
        out,
        "BTB area increase   : {:+.1}%   (paper: ~+21.6%)",
        100.0 * t.btb_area_increase
    );
    let _ = writeln!(
        out,
        "BTB power increase  : {:+.1}%   (paper: ~+11.7%)",
        100.0 * t.btb_power_increase
    );

    // EDP needs runtimes: per-benchmark speedups on the FPGA config.
    // Two methods: (i) constant-power (the paper's arithmetic: chip
    // power delta x squared runtime ratio) and (ii) activity-based
    // energy from the simulator's event counts.
    let _ = writeln!(out, "\nEDP improvement (per benchmark, Rocket config, {scale:?} inputs):");
    let eparams = EnergyParams::default();
    let mut edps = Vec::new();
    let mut edps_measured = Vec::new();
    for b in &BENCHMARKS {
        eprintln!("  table5 {}", b.name);
        let base = run_one(&cfg, Vm::Lvm, b, scale, Variant::Baseline);
        let scd = run_one(&cfg, Vm::Lvm, b, scale, Variant::Scd);
        let speedup = base.stats.cycles as f64 / scd.stats.cycles as f64 - 1.0;
        let e = edp_improvement(speedup, t.power_increase);
        let em = edp_improvement_measured(&base.stats, &scd.stats, &eparams);
        edps.push(1.0 - e);
        edps_measured.push(1.0 - em);
        let _ = writeln!(
            out,
            "  {:<18}{:>8.2}% speedup ->{:>8.2}% EDP (const-power), {:>7.2}% EDP (activity)",
            b.name,
            100.0 * speedup,
            100.0 * e,
            100.0 * em
        );
    }
    let _ = writeln!(
        out,
        "  {:<18}{:>28.2}% const-power, {:>7.2}% activity-based (paper: 24.2%)",
        "GEOMEAN",
        100.0 * (1.0 - geomean(&edps)),
        100.0 * (1.0 - geomean(&edps_measured))
    );
    emit_report("table5", &out);
}
