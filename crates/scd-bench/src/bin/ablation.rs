//! Ablation studies for the design choices discussed in the paper:
//!
//! 1. `bop` stall scheme vs fall-through scheme (Section III-B) and the
//!    scheduled-fetch code layout that hides the Rop latency.
//! 2. OS context-switch JTE flushing at different quantum lengths
//!    (Section IV).
//! 3. Interpreter "production weight": how the dispatcher's share of
//!    work changes SCD's benefit (lean vs production fetch block).

use luma::scripts::BENCHMARKS;
use scd_bench::{arg_scale_from_cli, emit_report, ArgScale};
use scd_guest::{run_source, GuestOptions, Scheme, Vm};
use scd_sim::{geomean, SimConfig};
use std::fmt::Write as _;

fn speedups(
    cfg_base: &SimConfig,
    cfg_scd: &SimConfig,
    opts: GuestOptions,
    scale: ArgScale,
) -> Vec<f64> {
    BENCHMARKS
        .iter()
        .map(|b| {
            let args = [("N", scale.arg(b))];
            let base = run_source(
                cfg_base.clone(),
                Vm::Lvm,
                b.source,
                &args,
                Scheme::Baseline,
                opts,
                u64::MAX,
            )
            .expect("baseline runs");
            let scd =
                run_source(cfg_scd.clone(), Vm::Lvm, b.source, &args, Scheme::Scd, opts, u64::MAX)
                    .expect("scd runs");
            base.stats.cycles as f64 / scd.stats.cycles as f64
        })
        .collect()
}

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Tiny);
    let a5 = SimConfig::embedded_a5();
    let mut out = String::new();
    let _ = writeln!(out, "Ablations (LVM, {scale:?} inputs; SCD speedup over baseline)\n");

    // 1. bop readiness handling.
    let _ = writeln!(out, "1. bop readiness handling (Section III-B):");
    let stall = speedups(&a5, &a5, GuestOptions::default(), scale);
    let mut ft_cfg = a5.clone();
    ft_cfg.scd.stall_on_unready = false;
    let fall = speedups(&a5, &ft_cfg, GuestOptions::default(), scale);
    let sched = speedups(
        &a5,
        &a5,
        GuestOptions { production_weight: true, scheduled_fetch: true },
        scale,
    );
    let _ = writeln!(out, "   stall scheme (paper default): {:+.1}%", 100.0 * (geomean(&stall) - 1.0));
    let _ = writeln!(out, "   fall-through scheme         : {:+.1}%", 100.0 * (geomean(&fall) - 1.0));
    let _ = writeln!(out, "   stall + scheduled fetch     : {:+.1}%", 100.0 * (geomean(&sched) - 1.0));

    // 2. Context-switch flushing.
    let _ = writeln!(out, "\n2. JTE flush on emulated context switches (Section IV):");
    for quantum in [u64::MAX, 1_000_000, 100_000, 10_000] {
        let mut cfg = a5.clone();
        cfg.scd.flush_interval = if quantum == u64::MAX { None } else { Some(quantum) };
        let s = speedups(&a5, &cfg, GuestOptions::default(), scale);
        let label = if quantum == u64::MAX {
            "never".to_string()
        } else {
            format!("every {quantum} insts")
        };
        let _ = writeln!(out, "   flush {label:<22}: {:+.1}%", 100.0 * (geomean(&s) - 1.0));
    }

    // 3. Interpreter weight.
    let _ = writeln!(out, "\n3. Interpreter fetch-block weight:");
    for (label, opts) in [
        ("production (hook + counters)", GuestOptions::default()),
        ("lean (bare fetch)", GuestOptions { production_weight: false, scheduled_fetch: false }),
    ] {
        let s = speedups(&a5, &a5, opts, scale);
        let _ = writeln!(out, "   {label:<30}: {:+.1}%", 100.0 * (geomean(&s) - 1.0));
    }

    // 4. I-cache capacity: our interpreters are leaner than Lua's C
    //    handlers and fit comfortably in 16 KB, so jump threading's code
    //    bloat is invisible there (see EXPERIMENTS.md). Shrinking the
    //    I-cache restores the paper's Fig. 10 effect.
    let _ = writeln!(out, "\n4. Jump-threading I-cache pressure vs I$ capacity (LVM):");
    for kb in [16u64, 4, 2, 1] {
        let mut cfg = a5.clone();
        cfg.icache.size = kb * 1024;
        let mut jt_mpki = Vec::new();
        let mut base_mpki = Vec::new();
        let mut jt_speed = Vec::new();
        for b in BENCHMARKS.iter() {
            let args = [("N", scale.arg(b))];
            let base = run_source(cfg.clone(), Vm::Lvm, b.source, &args, Scheme::Baseline,
                GuestOptions::default(), u64::MAX).expect("baseline runs");
            let jt = run_source(cfg.clone(), Vm::Lvm, b.source, &args, Scheme::Threaded,
                GuestOptions::default(), u64::MAX).expect("threaded runs");
            base_mpki.push(base.stats.icache_mpki());
            jt_mpki.push(jt.stats.icache_mpki());
            jt_speed.push(base.stats.cycles as f64 / jt.stats.cycles as f64);
        }
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let _ = writeln!(
            out,
            "   {kb:>2} KB I$: baseline I$ MPKI {:>6.2}, jump-threaded {:>6.2}, JT speedup {:+.1}%",
            avg(&base_mpki),
            avg(&jt_mpki),
            100.0 * (geomean(&jt_speed) - 1.0)
        );
    }

    // 5. Indirect predictor ladder: how far can pure prediction go,
    //    and what does SCD add beyond it (cf. Section VII related work)?
    let _ = writeln!(out, "\n5. Indirect-predictor ladder (baseline binary unless noted):");
    {
        let base = speedups(&a5, &a5.clone().without_scd(), GuestOptions::default(), scale);
        let _ = writeln!(out, "   SCD binary on non-SCD core    : {:+.1}%", 100.0 * (geomean(&base) - 1.0));
    }
    for (label, cfg) in [
        ("VBBI", a5.clone().with_vbbi()),
        ("ITTAGE", a5.clone().with_ittage()),
    ] {
        let s: Vec<f64> = BENCHMARKS
            .iter()
            .map(|b| {
                let args = [("N", scale.arg(b))];
                let base = run_source(a5.clone(), Vm::Lvm, b.source, &args, Scheme::Baseline,
                    GuestOptions::default(), u64::MAX).expect("baseline runs");
                let pred = run_source(cfg.clone(), Vm::Lvm, b.source, &args, Scheme::Baseline,
                    GuestOptions::default(), u64::MAX).expect("predictor run");
                base.stats.cycles as f64 / pred.stats.cycles as f64
            })
            .collect();
        let _ = writeln!(out, "   {label:<30}: {:+.1}%", 100.0 * (geomean(&s) - 1.0));
    }
    {
        let s = speedups(&a5, &a5, GuestOptions::default(), scale);
        let _ = writeln!(out, "   SCD (BTB overlay)             : {:+.1}%", 100.0 * (geomean(&s) - 1.0));
    }

    // 6. BTB overlay vs dedicated (CBT-style) JTE table, at a small BTB
    //    where contention between B entries and JTEs is worst.
    let _ = writeln!(out, "\n6. JTE storage organization at a 64-entry BTB:");
    let small = SimConfig::embedded_a5().with_btb_entries(64);
    let overlay = speedups(&small, &small, GuestOptions::default(), scale);
    let cbt_cfg = small.clone().with_dedicated_jte_table(64);
    let cbt = speedups(&small, &cbt_cfg, GuestOptions::default(), scale);
    let _ = writeln!(out, "   BTB overlay (SCD, no extra table): {:+.1}%", 100.0 * (geomean(&overlay) - 1.0));
    let _ = writeln!(out, "   dedicated table (CBT-style)      : {:+.1}%", 100.0 * (geomean(&cbt) - 1.0));

    emit_report("ablation", &out);
}
