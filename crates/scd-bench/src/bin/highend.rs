//! Section VI-C2: SCD on a higher-end dual-issue in-order core
//! (Cortex-A8-like: 32KB I$, 256KB L2, 512-entry BTB).
//! Paper: SCD still achieves 17.6% / 15.2% geomean speedups with
//! ~10% instruction reductions.

use scd_bench::{arg_scale_from_cli, emit_report, format_table, run_matrix, ArgScale, Variant};
use scd_guest::Vm;
use scd_sim::SimConfig;

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let variants = [Variant::Baseline, Variant::Scd];
    let mut out = String::new();
    for vm in Vm::ALL {
        let m = run_matrix(&SimConfig::highend_a8(), vm, scale, &variants, true);
        out += &format_table(
            &format!("Section VI-C2: SCD on the dual-issue A8-like core ({scale:?})"),
            &m,
            &[Variant::Scd],
            |r, v| r.speedup(v),
            "x baseline",
        );
        out += &format_table(
            "  normalized instruction count",
            &m,
            &[Variant::Scd],
            |r, v| r.norm_insts(v),
            "x baseline insts",
        );
        out.push('\n');
    }
    emit_report("highend", &out);
}
