//! Simulator-perf harness: measures the *simulator's own* throughput
//! (guest instructions retired per host second) on a fixed workload
//! matrix, so every PR records the cycle model's speed trajectory the
//! same way `BENCH_sweep.json` records the sweep's.
//!
//! ```text
//! cargo run --release -p scd-bench --bin simperf                    # full budget
//! cargo run --release -p scd-bench --bin simperf -- --quick         # CI-sized
//! cargo run --release -p scd-bench --bin simperf -- --ref old.json  # embed speedups
//! cargo run --release -p scd-bench --bin simperf -- --quick --check BENCH_simperf.json
//! cargo run --release -p scd-bench --bin simperf -- --interleaved   # reference loop
//! ```
//!
//! The matrix is the golden-stats trio (fibo / random / spectral-norm)
//! x both VMs x all three dispatch schemes x {embedded-a5, fpga-rocket}
//! — 36 cells. Each cell loads a fresh session, disables the invariant
//! checker and runs *untraced* under a fixed retired-instruction budget,
//! so host wall time is the only free variable. Untraced runs take the
//! execute-ahead replay loop by default; `--interleaved` pins the
//! interleaved reference loop instead (the pre-replay measurement mode,
//! kept for apples-to-apples comparisons). Output goes to
//! `BENCH_simperf.json` (hand-rolled JSON, schema in EXPERIMENTS.md).
//!
//! `--ref FILE` copies per-cell `mips` from an earlier record into the
//! output as `ref_mips` plus a per-cell and geomean `speedup` — the
//! honest before/after record for optimization PRs. `--check FILE`
//! compares the current run against a committed record and exits
//! non-zero only when a cell *regresses* below `0.70x` its reference
//! throughput (generous, sized for noisy 1-core CI runners); being
//! faster never fails.

use luma::scripts::BENCHMARKS;
use scd_guest::{GuestOptions, Scheme, Session, Vm};
use scd_sim::{geomean, SimConfig, SimError};
use std::fmt::Write as _;
use std::process::exit;
use std::time::Instant;

/// The pinned golden-stats benchmark trio — cheap, structurally diverse
/// (recursion, RNG + array traffic, FP-heavy).
const BENCHES: [&str; 3] = ["fibo", "random", "spectral-norm"];

/// Retired-instruction budget per cell.
const FULL_BUDGET: u64 = 20_000_000;
const QUICK_BUDGET: u64 = 2_000_000;

const OUT: &str = "BENCH_simperf.json";

struct Cell {
    preset: &'static str,
    vm: Vm,
    bench: &'static str,
    scheme: Scheme,
    insts: u64,
    wall_s: f64,
}

impl Cell {
    fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.preset,
            self.vm.name(),
            self.bench,
            self.scheme.name()
        )
    }

    fn mips(&self) -> f64 {
        self.insts as f64 / self.wall_s.max(1e-12) / 1e6
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| argv.iter().any(|a| a == f);
    let arg_of = |f: &str| {
        argv.iter()
            .position(|a| a == f)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let quick = has("--quick");
    let interleaved = has("--interleaved");
    let budget = if quick { QUICK_BUDGET } else { FULL_BUDGET };
    let reference = arg_of("--ref").map(|p| load_record(&p));
    let check = arg_of("--check").map(|p| load_record(&p));

    let configs = [SimConfig::embedded_a5(), SimConfig::fpga_rocket()];
    let mut cells = Vec::new();
    // Which engine the untraced fast path actually resolves to on this
    // host (ReplayMode::Auto consults host parallelism), recorded so a
    // throughput record names the loop that produced it.
    let mut replay_mode = "unknown";
    // A broken cell must not torpedo the cells already measured: record
    // the failure, finish the matrix so the full picture is reported,
    // then exit non-zero.
    let mut failures: Vec<String> = Vec::new();
    eprintln!(
        "simperf: {} cells, {budget} insts each{}",
        configs.len() * 2 * 3 * BENCHES.len(),
        if interleaved {
            " (interleaved reference loop)"
        } else {
            ""
        }
    );
    for cfg in &configs {
        for vm in Vm::ALL {
            for name in BENCHES {
                let b = BENCHMARKS
                    .iter()
                    .find(|b| b.name == name)
                    .expect("pinned benchmark");
                for scheme in Scheme::ALL {
                    let key = format!("{}/{}/{name}/{}", cfg.name, vm.name(), scheme.name());
                    let mut session = match Session::from_source(
                        cfg.clone(),
                        vm,
                        b.source,
                        &[("N", b.sim_arg)],
                        scheme,
                        GuestOptions::default(),
                    ) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("  {key}: FAILED to load: {e}");
                            failures.push(format!("{key}: {e}"));
                            continue;
                        }
                    };
                    // Untraced, uninstrumented: the release fast path.
                    session.machine.disable_invariants();
                    session.machine.set_replay(!interleaved);
                    replay_mode = session.machine.replay_engine();
                    let started = Instant::now();
                    match session.machine.run(budget) {
                        Ok(_) | Err(SimError::InstLimit { .. }) => {}
                        Err(e) => {
                            eprintln!("  {key}: FAILED: {e}");
                            failures.push(format!("{key}: {e}"));
                            continue;
                        }
                    }
                    let cell = Cell {
                        preset: cfg.name,
                        vm,
                        bench: name,
                        scheme,
                        insts: session.machine.stats.instructions,
                        wall_s: started.elapsed().as_secs_f64(),
                    };
                    eprintln!("  {:<44} {:>8.2} Minst/s", cell.key(), cell.mips());
                    cells.push(cell);
                }
            }
        }
    }

    if !failures.is_empty() {
        eprintln!("simperf: {} cell(s) failed:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        exit(1);
    }

    let mips: Vec<f64> = cells.iter().map(Cell::mips).collect();
    let g = geomean(&mips).unwrap_or_else(|| {
        eprintln!("simperf: no valid throughput measurements — cannot compute geomean");
        exit(1);
    });
    eprintln!("simperf: geomean {g:.2} Minst/s over {} cells", cells.len());

    if let Some(baseline) = check {
        exit(run_check(&cells, &baseline));
    }

    let json = render_json(&cells, quick, budget, replay_mode, reference.as_deref());
    scd_bench::write_artifact(OUT, &json);
    eprintln!("simperf: wrote {OUT}");
}

/// Compares this run against a committed record; only regressions fail.
fn run_check(cells: &[Cell], baseline: &[(String, f64)]) -> i32 {
    const TOLERANCE: f64 = 0.70;
    let mut bad = 0u32;
    let mut matched = 0u32;
    for c in cells {
        let key = c.key();
        let Some((_, ref_mips)) = baseline.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        matched += 1;
        let now = c.mips();
        if now < ref_mips * TOLERANCE {
            eprintln!(
                "simperf --check: REGRESSION {key}: {now:.2} Minst/s < {TOLERANCE} x \
                 baseline {ref_mips:.2}"
            );
            bad += 1;
        }
    }
    if matched == 0 {
        eprintln!("simperf --check: no cells matched the baseline record");
        return 1;
    }
    if bad == 0 {
        eprintln!("simperf --check: {matched} cells within tolerance of the committed baseline");
        0
    } else {
        1
    }
}

fn render_json(
    cells: &[Cell],
    quick: bool,
    budget: u64,
    replay_mode: &str,
    reference: Option<&[(String, f64)]>,
) -> String {
    // v2 added "host_cpus" and "replay_mode": throughput numbers are
    // meaningless without knowing how parallel the host was and which
    // run loop (replay vs interleaved) produced them.
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"scd-simperf-v2\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"budget_insts\": {budget},");
    let _ = writeln!(s, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(s, "  \"replay_mode\": \"{replay_mode}\",");
    let mips: Vec<f64> = cells.iter().map(Cell::mips).collect();
    // A record with a zero geomean would make a later `--check` or
    // `--ref` comparison pass or fail spuriously: refuse to write one.
    let g = geomean(&mips).unwrap_or_else(|| {
        eprintln!("simperf: empty cell set — refusing to write a record with no geomean");
        exit(1);
    });
    let _ = writeln!(s, "  \"geomean_mips\": {g:.3},");
    let mut speedups = Vec::new();
    if let Some(r) = reference {
        for c in cells {
            if let Some((_, m)) = r.iter().find(|(k, _)| *k == c.key()) {
                speedups.push(c.mips() / m.max(1e-12));
            }
        }
        let gs = geomean(&speedups).unwrap_or_else(|| {
            eprintln!(
                "simperf: --ref record shares no cell keys with this run — \
                 speedup would be meaningless"
            );
            exit(1);
        });
        let _ = writeln!(s, "  \"geomean_speedup_vs_ref\": {gs:.3},");
    }
    s.push_str("  \"cells\": [\n");
    let n = cells.len();
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"key\": \"{}\", \"preset\": \"{}\", \"vm\": \"{}\", \"bench\": \"{}\", \
             \"scheme\": \"{}\", \"insts\": {}, \"wall_ms\": {:.3}, \"mips\": {:.3}",
            c.key(),
            c.preset,
            c.vm.name(),
            c.bench,
            c.scheme.name(),
            c.insts,
            c.wall_s * 1e3,
            c.mips(),
        );
        if let Some(r) = reference {
            if let Some((_, m)) = r.iter().find(|(k, _)| *k == c.key()) {
                let _ = write!(
                    s,
                    ", \"ref_mips\": {:.3}, \"speedup\": {:.3}",
                    m,
                    c.mips() / m.max(1e-12)
                );
            }
        }
        s.push('}');
        s.push_str(if i + 1 == n { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal reader for this tool's own output format: pulls
/// `(key, mips)` pairs out of the `"cells"` array, one cell per line.
/// Not a JSON parser — it only needs to round-trip what
/// [`render_json`] writes (the workspace is serde-free by design).
///
/// Strict where it matters: a line that names a cell (`"key"` present)
/// must carry a well-formed, finite, positive `mips` number. Silently
/// skipping such a line would shrink the baseline and let a regressed
/// cell dodge the `--check` gate.
fn load_record(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("simperf: cannot read reference record {path}: {e}");
        exit(70);
    });
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(key) = field_str(line, "key") else {
            continue;
        };
        // `mips` must be the cell's own measurement, not `ref_mips`.
        let mips = match field_num(line, "mips") {
            Some(m) if m.is_finite() && m > 0.0 => m,
            _ => {
                eprintln!(
                    "simperf: reference record {path} is malformed: cell \"{key}\" \
                     has a missing or invalid \"mips\" field:\n  {line}"
                );
                exit(1);
            }
        };
        out.push((key, mips));
    }
    if out.is_empty() {
        eprintln!("simperf: reference record {path} contains no cells");
        exit(1);
    }
    out
}

fn field_str(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Scans the number following `"name": `. Accepts only the shapes
/// [`render_json`] emits — an optional minus, digits, an optional
/// fractional part — and rejects empty or trailing-garbage matches
/// (`parse` refuses forms like `1.2.3` or `-`), returning `None` so the
/// caller can treat the record as malformed rather than reading 0.0.
fn field_num(line: &str, name: &str) -> Option<f64> {
    let pat = format!("\"{name}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok().filter(|v: &f64| v.is_finite())
}
