//! Simulator-perf harness: measures the *simulator's own* throughput
//! (guest instructions retired per host second) on a fixed workload
//! matrix, so every PR records the cycle model's speed trajectory the
//! same way `BENCH_sweep.json` records the sweep's.
//!
//! ```text
//! cargo run --release -p scd-bench --bin simperf                    # full budget
//! cargo run --release -p scd-bench --bin simperf -- --quick         # CI-sized
//! cargo run --release -p scd-bench --bin simperf -- --ref old.json  # embed speedups
//! cargo run --release -p scd-bench --bin simperf -- --quick --check BENCH_simperf.json
//! cargo run --release -p scd-bench --bin simperf -- --interleaved   # reference loop
//! ```
//!
//! The matrix is the golden-stats trio (fibo / random / spectral-norm)
//! x both VMs x all three dispatch schemes x {embedded-a5, fpga-rocket}
//! — 36 cells. Each cell loads a fresh session, disables the invariant
//! checker and runs *untraced* under a fixed retired-instruction budget,
//! so host wall time is the only free variable. Untraced runs take the
//! execute-ahead replay loop by default; `--interleaved` pins the
//! interleaved reference loop instead (the pre-replay measurement mode,
//! kept for apples-to-apples comparisons). Output goes to
//! `BENCH_simperf.json` (hand-rolled JSON, schema in EXPERIMENTS.md).
//!
//! After the detailed matrix, the warming engines are measured on the
//! same trio (embedded-a5, LVM, SCD). Four cells per benchmark:
//! "drain" (the replay warming consumer alone, all structures on — its
//! marginal cost on a pipelining host), "drain-gated" (the consumer on
//! a split-window leg, cache on only for the last fifth), "replay"
//! (the engine end-to-end: producer + consumer, which a 1-CPU host
//! serializes) and "detailed" (the `WARMING=true` interleaved loop the
//! engine replaced). The v3 record carries the drain geomean as
//! `warming_mips` — `--check` holds it to the same regression floor as
//! the detailed cells, so a slow warming engine cannot quietly eat the
//! sampled sweep's duty-cycle budget.
//!
//! `--ref FILE` copies per-cell `mips` from an earlier record into the
//! output as `ref_mips` plus a per-cell and geomean `speedup` — the
//! honest before/after record for optimization PRs. `--check FILE`
//! compares the current run against a committed record and exits
//! non-zero only when a cell *regresses* below `0.70x` its reference
//! throughput (generous, sized for noisy 1-core CI runners); being
//! faster never fails.

use luma::scripts::BENCHMARKS;
use scd_guest::{GuestOptions, Scheme, Session, Vm};
use scd_sim::{geomean, SimConfig, SimError};
use std::fmt::Write as _;
use std::process::exit;
use std::time::Instant;

/// The pinned golden-stats benchmark trio — cheap, structurally diverse
/// (recursion, RNG + array traffic, FP-heavy).
const BENCHES: [&str; 3] = ["fibo", "random", "spectral-norm"];

/// Retired-instruction budget per cell.
const FULL_BUDGET: u64 = 20_000_000;
const QUICK_BUDGET: u64 = 2_000_000;

const OUT: &str = "BENCH_simperf.json";

struct Cell {
    preset: &'static str,
    vm: Vm,
    bench: &'static str,
    scheme: Scheme,
    insts: u64,
    wall_s: f64,
}

impl Cell {
    fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.preset,
            self.vm.name(),
            self.bench,
            self.scheme.name()
        )
    }

    fn mips(&self) -> f64 {
        self.insts as f64 / self.wall_s.max(1e-12) / 1e6
    }
}

/// One warming-engine measurement: the same benchmark warmed by one of
/// the replay-consumer configurations, the end-to-end replay engine, or
/// the detailed-loop warmer.
struct WarmCell {
    bench: &'static str,
    engine: &'static str,
    insts: u64,
    wall_s: f64,
}

impl WarmCell {
    fn mips(&self) -> f64 {
        self.insts as f64 / self.wall_s.max(1e-12) / 1e6
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| argv.iter().any(|a| a == f);
    let arg_of = |f: &str| {
        argv.iter()
            .position(|a| a == f)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let quick = has("--quick");
    let interleaved = has("--interleaved");
    let budget = if quick { QUICK_BUDGET } else { FULL_BUDGET };
    let reference = arg_of("--ref").map(|p| load_record(&p));
    let check = arg_of("--check").map(|p| load_record(&p));

    let configs = [SimConfig::embedded_a5(), SimConfig::fpga_rocket()];
    let mut cells = Vec::new();
    // Which engine the untraced fast path actually resolves to on this
    // host (ReplayMode::Auto consults host parallelism), recorded so a
    // throughput record names the loop that produced it.
    let mut replay_mode = "unknown";
    // A broken cell must not torpedo the cells already measured: record
    // the failure, finish the matrix so the full picture is reported,
    // then exit non-zero.
    let mut failures: Vec<String> = Vec::new();
    eprintln!(
        "simperf: {} cells, {budget} insts each{}",
        configs.len() * 2 * 3 * BENCHES.len(),
        if interleaved {
            " (interleaved reference loop)"
        } else {
            ""
        }
    );
    for cfg in &configs {
        for vm in Vm::ALL {
            for name in BENCHES {
                let b = BENCHMARKS
                    .iter()
                    .find(|b| b.name == name)
                    .expect("pinned benchmark");
                for scheme in Scheme::ALL {
                    let key = format!("{}/{}/{name}/{}", cfg.name, vm.name(), scheme.name());
                    let mut session = match Session::from_source(
                        cfg.clone(),
                        vm,
                        b.source,
                        &[("N", b.sim_arg)],
                        scheme,
                        GuestOptions::default(),
                    ) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("  {key}: FAILED to load: {e}");
                            failures.push(format!("{key}: {e}"));
                            continue;
                        }
                    };
                    // Untraced, uninstrumented: the release fast path.
                    session.machine.disable_invariants();
                    session.machine.set_replay(!interleaved);
                    replay_mode = session.machine.replay_engine();
                    let started = Instant::now();
                    match session.machine.run(budget) {
                        Ok(_) | Err(SimError::InstLimit { .. }) => {}
                        Err(e) => {
                            eprintln!("  {key}: FAILED: {e}");
                            failures.push(format!("{key}: {e}"));
                            continue;
                        }
                    }
                    let cell = Cell {
                        preset: cfg.name,
                        vm,
                        bench: name,
                        scheme,
                        insts: session.machine.stats.instructions,
                        wall_s: started.elapsed().as_secs_f64(),
                    };
                    eprintln!("  {:<44} {:>8.2} Minst/s", cell.key(), cell.mips());
                    cells.push(cell);
                }
            }
        }
    }

    // Warming-engine throughput: the replay-driven warmer vs the
    // detailed-loop warmer it replaced, on the embedded-a5 / LVM / SCD
    // corner of the trio. Both warm the same structures to the same
    // bits (tests/warm_replay.rs holds them identical); the ratio is
    // the duty-cycle headroom sampled sweeps get back.
    let mut warm_cells: Vec<WarmCell> = Vec::new();
    eprintln!("simperf: warming engines, {budget} insts each");
    for name in BENCHES {
        let b = BENCHMARKS
            .iter()
            .find(|b| b.name == name)
            .expect("pinned benchmark");
        for engine in ["drain", "drain-gated", "replay", "detailed"] {
            let key = format!("embedded-a5/lvm/{name}/scd warming/{engine}");
            let mut session = match Session::from_source(
                SimConfig::embedded_a5(),
                Vm::Lvm,
                b.source,
                &[("N", b.sim_arg)],
                Scheme::Scd,
                GuestOptions::default(),
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("  {key}: FAILED to load: {e}");
                    failures.push(format!("{key}: {e}"));
                    continue;
                }
            };
            session.machine.disable_invariants();
            let started = Instant::now();
            // "drain" times the warming consumer alone via the
            // measurement hook — the leg's marginal cost on a
            // pipelining host, where producer fill overlaps the
            // fast-forward work the schedule owes anyway.
            // "drain-gated" is the same consumer on a split-window
            // leg (cache on only for the last fifth, BTB/predictors
            // the whole leg): the shape a predictor-conservative plan
            // takes, and what per-structure windows make cheap.
            // "replay" is the engine end-to-end (producer + drain,
            // serialized on a 1-CPU host); "detailed" is the
            // WARMING=true interleaved loop both replaced.
            let (insts, wall_s) = match engine {
                "drain" | "drain-gated" => {
                    let windows = if engine == "drain-gated" {
                        (budget / 5, u64::MAX, u64::MAX)
                    } else {
                        (u64::MAX, u64::MAX, u64::MAX)
                    };
                    match session.machine.warm_bench(0, budget, windows) {
                        Ok((n, drain_s)) => (n, drain_s),
                        Err(e) => {
                            eprintln!("  {key}: FAILED: {e}");
                            failures.push(format!("{key}: {e}"));
                            continue;
                        }
                    }
                }
                _ => {
                    let r = match engine {
                        "replay" => session.machine.run_warming_replay(budget),
                        _ => session.machine.run_warming(budget),
                    };
                    match r {
                        Ok(_) | Err(SimError::InstLimit { .. }) => {}
                        Err(e) => {
                            eprintln!("  {key}: FAILED: {e}");
                            failures.push(format!("{key}: {e}"));
                            continue;
                        }
                    }
                    (
                        session.machine.stats.instructions,
                        started.elapsed().as_secs_f64(),
                    )
                }
            };
            let cell = WarmCell {
                bench: name,
                engine,
                insts,
                wall_s,
            };
            eprintln!("  {key:<44} {:>8.2} Minst/s", cell.mips());
            warm_cells.push(cell);
        }
    }

    if !failures.is_empty() {
        eprintln!("simperf: {} cell(s) failed:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        exit(1);
    }

    let mips: Vec<f64> = cells.iter().map(Cell::mips).collect();
    let g = geomean(&mips).unwrap_or_else(|| {
        eprintln!("simperf: no valid throughput measurements — cannot compute geomean");
        exit(1);
    });
    eprintln!("simperf: geomean {g:.2} Minst/s over {} cells", cells.len());
    let warming_mips = warm_geomean(&warm_cells, "drain");
    let warming_detailed = warm_geomean(&warm_cells, "detailed");
    eprintln!(
        "simperf: warming geomean {warming_mips:.2} Minst/s drain vs \
         {warming_detailed:.2} detailed ({:.2}x)",
        warming_mips / warming_detailed.max(1e-12)
    );

    if let Some((baseline, base_warming)) = check {
        exit(run_check(&cells, warming_mips, &baseline, base_warming));
    }

    let json = render_json(
        &cells,
        &warm_cells,
        quick,
        budget,
        replay_mode,
        reference.as_ref().map(|(r, _)| r.as_slice()),
    );
    scd_bench::write_artifact(OUT, &json);
    eprintln!("simperf: wrote {OUT}");
}

/// Geomean throughput of one warming engine's cells.
fn warm_geomean(cells: &[WarmCell], engine: &str) -> f64 {
    let mips: Vec<f64> = cells
        .iter()
        .filter(|c| c.engine == engine)
        .map(WarmCell::mips)
        .collect();
    geomean(&mips).unwrap_or_else(|| {
        eprintln!("simperf: no {engine} warming measurements — cannot compute geomean");
        exit(1);
    })
}

/// Compares this run against a committed record; only regressions fail.
/// The drain-rate warming geomean is held to the same floor as the
/// detailed cells (a pre-v3 baseline without the field skips that leg).
fn run_check(
    cells: &[Cell],
    warming_mips: f64,
    baseline: &[(String, f64)],
    base_warming: Option<f64>,
) -> i32 {
    const TOLERANCE: f64 = 0.70;
    let mut bad = 0u32;
    let mut matched = 0u32;
    for c in cells {
        let key = c.key();
        let Some((_, ref_mips)) = baseline.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        matched += 1;
        let now = c.mips();
        if now < ref_mips * TOLERANCE {
            eprintln!(
                "simperf --check: REGRESSION {key}: {now:.2} Minst/s < {TOLERANCE} x \
                 baseline {ref_mips:.2}"
            );
            bad += 1;
        }
    }
    if matched == 0 {
        eprintln!("simperf --check: no cells matched the baseline record");
        return 1;
    }
    if let Some(base) = base_warming {
        if warming_mips < base * TOLERANCE {
            eprintln!(
                "simperf --check: REGRESSION warming engine: {warming_mips:.2} Minst/s < \
                 {TOLERANCE} x baseline {base:.2}"
            );
            bad += 1;
        }
    }
    if bad == 0 {
        eprintln!("simperf --check: {matched} cells within tolerance of the committed baseline");
        0
    } else {
        1
    }
}

fn render_json(
    cells: &[Cell],
    warm_cells: &[WarmCell],
    quick: bool,
    budget: u64,
    replay_mode: &str,
    reference: Option<&[(String, f64)]>,
) -> String {
    // v2 added "host_cpus" and "replay_mode": throughput numbers are
    // meaningless without knowing how parallel the host was and which
    // run loop (replay vs interleaved) produced them. v3 adds the
    // warming-engine leg: "warming_mips" (the drain-rate geomean — the
    // consumer's marginal cost, and the --check floor), its
    // detailed-loop counterpart and the per-cell "warming" array
    // (which also carries the gated-drain and end-to-end rates).
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"scd-simperf-v3\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"budget_insts\": {budget},");
    let _ = writeln!(s, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(s, "  \"replay_mode\": \"{replay_mode}\",");
    let mips: Vec<f64> = cells.iter().map(Cell::mips).collect();
    // A record with a zero geomean would make a later `--check` or
    // `--ref` comparison pass or fail spuriously: refuse to write one.
    let g = geomean(&mips).unwrap_or_else(|| {
        eprintln!("simperf: empty cell set — refusing to write a record with no geomean");
        exit(1);
    });
    let _ = writeln!(s, "  \"geomean_mips\": {g:.3},");
    let warming = warm_geomean(warm_cells, "drain");
    let warming_detailed = warm_geomean(warm_cells, "detailed");
    let _ = writeln!(s, "  \"warming_mips\": {warming:.3},");
    let _ = writeln!(s, "  \"warming_detailed_mips\": {warming_detailed:.3},");
    let _ = writeln!(
        s,
        "  \"warming_speedup\": {:.3},",
        warming / warming_detailed.max(1e-12)
    );
    let mut speedups = Vec::new();
    if let Some(r) = reference {
        for c in cells {
            if let Some((_, m)) = r.iter().find(|(k, _)| *k == c.key()) {
                speedups.push(c.mips() / m.max(1e-12));
            }
        }
        let gs = geomean(&speedups).unwrap_or_else(|| {
            eprintln!(
                "simperf: --ref record shares no cell keys with this run — \
                 speedup would be meaningless"
            );
            exit(1);
        });
        let _ = writeln!(s, "  \"geomean_speedup_vs_ref\": {gs:.3},");
    }
    s.push_str("  \"warming\": [\n");
    let nw = warm_cells.len();
    for (i, c) in warm_cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"engine\": \"{}\", \"insts\": {}, \
             \"wall_ms\": {:.3}, \"warm_mips\": {:.3}}}",
            c.bench,
            c.engine,
            c.insts,
            c.wall_s * 1e3,
            c.mips(),
        );
        s.push_str(if i + 1 == nw { "\n" } else { ",\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"cells\": [\n");
    let n = cells.len();
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"key\": \"{}\", \"preset\": \"{}\", \"vm\": \"{}\", \"bench\": \"{}\", \
             \"scheme\": \"{}\", \"insts\": {}, \"wall_ms\": {:.3}, \"mips\": {:.3}",
            c.key(),
            c.preset,
            c.vm.name(),
            c.bench,
            c.scheme.name(),
            c.insts,
            c.wall_s * 1e3,
            c.mips(),
        );
        if let Some(r) = reference {
            if let Some((_, m)) = r.iter().find(|(k, _)| *k == c.key()) {
                let _ = write!(
                    s,
                    ", \"ref_mips\": {:.3}, \"speedup\": {:.3}",
                    m,
                    c.mips() / m.max(1e-12)
                );
            }
        }
        s.push('}');
        s.push_str(if i + 1 == n { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal reader for this tool's own output format: pulls
/// `(key, mips)` pairs out of the `"cells"` array, one cell per line,
/// plus the top-level `warming_mips` geomean (absent from pre-v3
/// records, in which case the warming floor is skipped). Not a JSON
/// parser — it only needs to round-trip what [`render_json`] writes
/// (the workspace is serde-free by design).
///
/// Strict where it matters: a line that names a cell (`"key"` present)
/// must carry a well-formed, finite, positive `mips` number. Silently
/// skipping such a line would shrink the baseline and let a regressed
/// cell dodge the `--check` gate.
fn load_record(path: &str) -> (Vec<(String, f64)>, Option<f64>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("simperf: cannot read reference record {path}: {e}");
        exit(70);
    });
    let warming = text
        .lines()
        .find_map(|l| field_num(l.trim_start(), "warming_mips"))
        .filter(|m| m.is_finite() && *m > 0.0);
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(key) = field_str(line, "key") else {
            continue;
        };
        // `mips` must be the cell's own measurement, not `ref_mips`.
        let mips = match field_num(line, "mips") {
            Some(m) if m.is_finite() && m > 0.0 => m,
            _ => {
                eprintln!(
                    "simperf: reference record {path} is malformed: cell \"{key}\" \
                     has a missing or invalid \"mips\" field:\n  {line}"
                );
                exit(1);
            }
        };
        out.push((key, mips));
    }
    if out.is_empty() {
        eprintln!("simperf: reference record {path} contains no cells");
        exit(1);
    }
    (out, warming)
}

fn field_str(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Scans the number following `"name": `. Accepts only the shapes
/// [`render_json`] emits — an optional minus, digits, an optional
/// fractional part — and rejects empty or trailing-garbage matches
/// (`parse` refuses forms like `1.2.3` or `-`), returning `None` so the
/// caller can treat the record as malformed rather than reading 0.0.
fn field_num(line: &str, name: &str) -> Option<f64> {
    let pat = format!("\"{name}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok().filter(|v: &f64| v.is_finite())
}
