//! Architectural-oracle matrix: lockstep co-simulation plus the
//! reference-ISS speed measurement.
//!
//! Two halves:
//!
//! 1. **Lockstep matrix** — three structurally diverse seed benchmarks ×
//!    both VMs × {baseline, scd} × {embedded_a5, fpga_rocket}, each run
//!    with a [`scd_sim::LockstepSink`] attached. Every retired
//!    instruction's architectural effects must match the `scd-ref` ISS
//!    bit for bit; any divergence fails the binary. The rendered report
//!    (`results/oracle.txt`) contains only deterministic quantities
//!    (instructions checked per cell), so it is byte-stable across hosts.
//!
//! 2. **Speed** — for each (benchmark, vm), the cycle model (no sink)
//!    and the reference ISS each run the same loaded guest standalone,
//!    and host inst/s are compared. The reference core exists so future
//!    sampled-simulation PRs can fast-forward through billions of
//!    instructions; the ≥50x target is recorded in `BENCH_oracle.json`
//!    (host timings live only there, never in `results/`).
//!
//! ```text
//! cargo run --release -p scd-bench --bin oracle             # sim-scale
//! cargo run -p scd-bench --bin oracle -- --quick            # tiny inputs
//! cargo run --release -p scd-bench --bin oracle -- --threads 4
//! ```

use scd_bench::{arg_scale_from_cli, emit_report, parallel_map, threads_from_cli, ArgScale};
use scd_guest::{lockstep_check, RunRequest, Scheme, Vm};
use scd_sim::lockstep::snapshot_core;
use scd_sim::SimConfig;
use std::fmt::Write as _;
use std::time::Instant;

/// Structurally diverse seed benchmarks: pointer-chasing allocation,
/// FP-heavy arithmetic, and table/string-heavy dispatch.
const BENCHES: [&str; 3] = ["binary-trees", "mandelbrot", "k-nucleotide"];

const MAX_INSTS: u64 = 2_000_000_000;

fn config(name: &str) -> SimConfig {
    match name {
        "a5" => SimConfig::embedded_a5(),
        "rocket" => SimConfig::fpga_rocket(),
        other => unreachable!("unknown config {other}"),
    }
}

fn main() {
    let scale = arg_scale_from_cli(ArgScale::Sim);
    let threads = threads_from_cli();

    let benches: Vec<_> = luma::scripts::BENCHMARKS
        .iter()
        .filter(|b| BENCHES.contains(&b.name))
        .collect();
    assert_eq!(benches.len(), BENCHES.len(), "seed benchmark went missing");

    // ---- lockstep matrix ----
    let mut work = Vec::new();
    for b in &benches {
        for vm in [Vm::Lvm, Vm::Svm] {
            for scheme in [Scheme::Baseline, Scheme::Scd] {
                for cfg_name in ["a5", "rocket"] {
                    work.push((*b, vm, scheme, cfg_name));
                }
            }
        }
    }

    let rows = parallel_map(&work, threads, |(b, vm, scheme, cfg_name)| {
        let args = [("N", scale.arg(b))];
        let req = RunRequest::new(config(cfg_name), *vm, b.source)
            .predefined(&args)
            .scheme(*scheme)
            .max_insts(MAX_INSTS);
        let t0 = Instant::now();
        match lockstep_check(&req) {
            Ok(r) => {
                let line = format!(
                    "{:<14}{:<5}{:<10}{:<8}{:>14}{:>13}",
                    b.name,
                    vm.name(),
                    scheme.name(),
                    cfg_name,
                    r.checked,
                    0,
                );
                (line, t0.elapsed(), r.checked, false)
            }
            Err(e) => {
                let line = format!(
                    "{:<14}{:<5}{:<10}{:<8}  FAILED: {e}",
                    b.name,
                    vm.name(),
                    scheme.name(),
                    cfg_name
                );
                (line, t0.elapsed(), 0, true)
            }
        }
    });

    let mut out = String::new();
    let _ = writeln!(out, "Architectural-oracle lockstep matrix ({scale:?})");
    let _ = writeln!(
        out,
        "{:<14}{:<5}{:<10}{:<8}{:>14}{:>13}",
        "benchmark", "vm", "scheme", "config", "checked-insts", "divergences"
    );
    let mut failures = 0u32;
    for (line, _, _, failed) in &rows {
        let _ = writeln!(out, "{line}");
        failures += u32::from(*failed);
    }
    let _ = writeln!(out, "\ndivergences: {failures}");
    emit_report("oracle", &out);

    // ---- reference-ISS speed ----
    // Scd scheme on embedded_a5: the configuration every later
    // sampled-simulation PR will fast-forward under.
    let mut speed = Vec::new();
    for b in &benches {
        for vm in [Vm::Lvm, Vm::Svm] {
            let args = [("N", scale.arg(b))];
            let req = RunRequest::new(SimConfig::embedded_a5(), vm, b.source)
                .predefined(&args)
                .scheme(Scheme::Scd)
                .max_insts(MAX_INSTS);

            let mut sess = req.session().expect("guest builds");
            let t0 = Instant::now();
            let exit = sess.machine.run(MAX_INSTS).expect("cycle model runs");
            let machine_wall = t0.elapsed().as_secs_f64();
            let machine_insts = sess.machine.stats.instructions;

            let mut core = snapshot_core(&req.session().expect("guest builds").machine);
            let t0 = Instant::now();
            let code = core
                .run(MAX_INSTS)
                .unwrap_or_else(|e| panic!("{}/{}: reference ISS failed: {e}", b.name, vm.name()));
            let ref_wall = t0.elapsed().as_secs_f64();
            let ref_insts = core.instructions;
            assert_eq!(
                code,
                exit.code,
                "{}/{}: executors disagree on the exit checksum",
                b.name,
                vm.name()
            );

            let machine_ips = machine_insts as f64 / machine_wall.max(1e-9);
            let ref_ips = ref_insts as f64 / ref_wall.max(1e-9);
            eprintln!(
                "speed {:<14}{:<5} machine {:>7.2} Minst/s, ref {:>8.2} Minst/s, {:>6.1}x",
                b.name,
                vm.name(),
                machine_ips / 1e6,
                ref_ips / 1e6,
                ref_ips / machine_ips
            );
            speed.push((b.name, vm.name(), machine_insts, machine_ips, ref_insts, ref_ips));
        }
    }

    let min_speedup = speed
        .iter()
        .map(|(_, _, _, m, _, r)| r / m)
        .fold(f64::INFINITY, f64::min);
    let json = bench_json(&rows, &work, &speed, min_speedup, scale);
    scd_bench::write_artifact("BENCH_oracle.json", &json);
    eprintln!("oracle: min ref-vs-machine speedup {min_speedup:.1}x -> BENCH_oracle.json");

    if failures > 0 {
        std::process::exit(1);
    }
}

type LockstepRow = (String, std::time::Duration, u64, bool);
type SpeedRow = (&'static str, &'static str, u64, f64, u64, f64);

/// Hand-rolled JSON (workspace rule: no serde). Host timings and the
/// speedup distribution live here; `results/oracle.txt` stays
/// deterministic.
fn bench_json(
    rows: &[LockstepRow],
    work: &[(&luma::scripts::Benchmark, Vm, Scheme, &'static str)],
    speed: &[SpeedRow],
    min_speedup: f64,
    scale: ArgScale,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"scd-oracle-bench-v1\",");
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"min_ref_speedup\": {min_speedup:.3},");
    s.push_str("  \"lockstep\": [\n");
    for (i, ((b, vm, scheme, cfg), (_, wall, checked, failed))) in
        work.iter().zip(rows).enumerate()
    {
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"vm\": \"{}\", \"scheme\": \"{}\", \"config\": \"{cfg}\", \
             \"checked\": {checked}, \"diverged\": {failed}, \"wall_ms\": {:.3}}}",
            b.name,
            vm.name(),
            scheme.name(),
            wall.as_secs_f64() * 1e3,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"speed\": [\n");
    for (i, (bench, vm, mi, mips, ri, rips)) in speed.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"bench\": \"{bench}\", \"vm\": \"{vm}\", \
             \"machine_insts\": {mi}, \"machine_inst_per_s\": {mips:.0}, \
             \"ref_insts\": {ri}, \"ref_inst_per_s\": {rips:.0}, \
             \"speedup\": {:.3}}}",
            rips / mips,
        );
        s.push_str(if i + 1 == speed.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
