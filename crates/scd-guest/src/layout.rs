//! Guest address-space layout and image serialization.
//!
//! The host compiles a Luma script, serializes the resulting bytecode
//! program into a flat image, and the guest interpreter (assembled with
//! these constants baked in) runs it.

use luma::lvm::LvmProgram;
use luma::svm::SvmProgram;

/// Base of the interpreter's text section.
pub const TEXT_BASE: u64 = 0x0001_0000;
/// Base of the program image (bytecode, constants, function table).
pub const IMAGE_BASE: u64 = 0x1000_0000;
/// Base of the globals area (8 bytes per slot).
pub const GLOBALS_BASE: u64 = 0x2000_0000;
/// Base of the value stack.
pub const VSTACK_BASE: u64 = 0x3000_0000;
/// Value stack size in bytes.
pub const VSTACK_SIZE: u64 = 4 << 20;
/// The VM control block sits right past the value-stack limit, so the
/// reserved `tp` register doubles as both the stack-overflow bound and
/// the control-block pointer.
pub const VMCTL_BASE: u64 = VSTACK_BASE + VSTACK_SIZE;
/// Control block size (hook flag, retired-bytecode counter).
pub const VMCTL_SIZE: u64 = 4096;
/// Base of the call-frame stack.
pub const FRAME_BASE: u64 = 0x3800_0000;
/// Frame stack size in bytes.
pub const FRAME_SIZE: u64 = 4 << 20;
/// Base of the bump-allocated heap (GC is off, as in the paper).
pub const HEAP_BASE: u64 = 0x4000_0000;
/// Heap size in bytes.
pub const HEAP_SIZE: u64 = 192 << 20;

/// Offset of the hook flag within the control block.
pub const CTL_HOOK_FLAG: i64 = 0;
/// Offset of the retired-bytecode counter within the control block.
pub const CTL_DISPATCH_COUNT: i64 = 8;

/// A serialized program image plus the addresses the interpreter needs.
#[derive(Debug, Clone)]
pub struct Image {
    /// Bytes to load at [`IMAGE_BASE`].
    pub bytes: Vec<u8>,
    /// Address of the bytecode (start of the image).
    pub code_base: u64,
    /// Address of the constant pool.
    pub consts_base: u64,
    /// Address of the function table (16-byte entries).
    pub functab_base: u64,
    /// Byte offset of main's first instruction within the code.
    pub main_off: u64,
    /// Main frame size: registers (LVM) or local slots (SVM).
    pub main_frame_slots: u64,
    /// Initial global values (written at [`GLOBALS_BASE`]).
    pub global_init: Vec<u64>,
}

fn align8(v: &mut Vec<u8>) {
    while !v.len().is_multiple_of(8) {
        v.push(0);
    }
}

/// Serializes an LVM program.
///
/// Function-table entry layout (16 bytes):
/// `{ code_off_bytes: u32, nparams: u32, nregs: u32, pad: u32 }`.
pub fn build_lvm_image(p: &LvmProgram, global_init: &[u64]) -> Image {
    let mut bytes = Vec::new();
    for w in &p.code {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    align8(&mut bytes);
    let consts_off = bytes.len() as u64;
    for c in &p.consts {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    let functab_off = bytes.len() as u64;
    for f in &p.funcs {
        bytes.extend_from_slice(&(f.code_off * 4).to_le_bytes());
        bytes.extend_from_slice(&f.nparams.to_le_bytes());
        bytes.extend_from_slice(&f.nregs.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
    }
    Image {
        code_base: IMAGE_BASE,
        consts_base: IMAGE_BASE + consts_off,
        functab_base: IMAGE_BASE + functab_off,
        main_off: p.funcs[0].code_off as u64 * 4,
        main_frame_slots: p.funcs[0].nregs as u64,
        global_init: global_init.to_vec(),
        bytes,
    }
}

/// Serializes an SVM program (same entry layout; the third field is
/// `nlocals`).
pub fn build_svm_image(p: &SvmProgram, global_init: &[u64]) -> Image {
    let mut bytes = p.code.clone();
    align8(&mut bytes);
    let consts_off = bytes.len() as u64;
    for c in &p.consts {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    let functab_off = bytes.len() as u64;
    for f in &p.funcs {
        bytes.extend_from_slice(&f.code_off.to_le_bytes());
        bytes.extend_from_slice(&f.nparams.to_le_bytes());
        bytes.extend_from_slice(&f.nlocals.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
    }
    Image {
        code_base: IMAGE_BASE,
        consts_base: IMAGE_BASE + consts_off,
        functab_base: IMAGE_BASE + functab_off,
        main_off: p.funcs[0].code_off as u64,
        main_frame_slots: p.funcs[0].nlocals as u64,
        global_init: global_init.to_vec(),
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use luma::parser::parse;

    #[test]
    fn lvm_image_layout() {
        let script = parse("var x = 1.5; emit(x);").unwrap();
        let (p, init) = luma::lvm::compile_lvm(&script, &[]).unwrap();
        let img = build_lvm_image(&p, &init);
        assert_eq!(img.code_base, IMAGE_BASE);
        assert_eq!(img.consts_base % 8, 0);
        assert!(img.functab_base >= img.consts_base);
        // Function table holds one entry (main).
        assert_eq!(img.bytes.len() as u64, img.functab_base - IMAGE_BASE + 16);
        // The constant 1.5 is in the pool region.
        let off = (img.consts_base - IMAGE_BASE) as usize;
        let k = u64::from_le_bytes(img.bytes[off..off + 8].try_into().unwrap());
        assert_eq!(f64::from_bits(k), 1.5);
    }

    #[test]
    fn svm_image_layout() {
        let script = parse("fn f(x) { return x; } emit(f(2));").unwrap();
        let (p, init) = luma::svm::compile_svm(&script, &[]).unwrap();
        let img = build_svm_image(&p, &init);
        // Two functions -> 32 bytes of table.
        assert_eq!(img.bytes.len() as u64, img.functab_base - IMAGE_BASE + 32);
        assert_eq!(img.main_off, 0);
    }

    #[test]
    fn address_map_is_disjoint() {
        let regions = [
            (IMAGE_BASE, IMAGE_BASE + (64 << 20)),
            (GLOBALS_BASE, GLOBALS_BASE + (1 << 20)),
            (VSTACK_BASE, VMCTL_BASE + VMCTL_SIZE),
            (FRAME_BASE, FRAME_BASE + FRAME_SIZE),
            (HEAP_BASE, HEAP_BASE + HEAP_SIZE),
        ];
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(a.1 <= b.0 || b.1 <= a.0, "{a:?} overlaps {b:?}");
            }
        }
    }
}
