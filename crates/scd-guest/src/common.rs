//! Shared definitions for the guest interpreter builders.

use scd_isa::Reg;

/// A built guest interpreter: the assembled program plus the simulator
/// annotations (dispatch PC ranges, dispatch jump PCs, VBBI hints).
#[derive(Debug)]
pub struct Guest {
    /// The assembled interpreter binary.
    pub program: scd_isa::Program,
    /// Dispatch ranges / jump PCs / VBBI hints for the simulator.
    pub annotations: scd_sim::Annotations,
}

/// Dispatch scheme of a guest interpreter build (the three bars of the
/// paper's Fig. 7, minus VBBI which is a *hardware* configuration run on
/// the Baseline binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::exhaustive_enums)]
pub enum Scheme {
    /// Canonical shared dispatcher with a jump table (Fig. 1a/b).
    Baseline,
    /// Jump threading: the dispatcher is replicated at the tail of every
    /// handler (Fig. 1c).
    Threaded,
    /// Short-Circuit Dispatch: `.op`-suffixed fetch, `bop` fast path,
    /// `jru` slow path (Fig. 4).
    Scd,
}

impl Scheme {
    /// All three schemes, in presentation order.
    pub const ALL: [Scheme; 3] = [Scheme::Baseline, Scheme::Threaded, Scheme::Scd];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Threaded => "jump-threading",
            Scheme::Scd => "scd",
        }
    }
}

/// Build-time options for the guest interpreters.
#[derive(Debug, Clone, Copy)]
pub struct GuestOptions {
    /// Emit production-interpreter bookkeeping in the fetch block: a hook
    /// check (like Lua's `vmfetch` trace hook) and a retired-bytecode
    /// counter, plus a cold hook stub per fetch site. This is what gives
    /// the dispatcher its paper-like weight; disable for the "lean"
    /// ablation.
    pub production_weight: bool,
    /// Schedule the bookkeeping *between* the `.op` fetch and `bop`
    /// so Rop is ready by the time `bop` reaches fetch (removes the
    /// stall bubbles of Section III-B). Off by default: the paper's
    /// transformation keeps the hook check ahead of the fetch.
    pub scheduled_fetch: bool,
}

impl Default for GuestOptions {
    fn default() -> Self {
        GuestOptions { production_weight: true, scheduled_fetch: false }
    }
}

/// Register conventions shared by both guest interpreters.
///
/// | reg | LVM                      | SVM                       |
/// |-----|--------------------------|---------------------------|
/// | s0  | 0xFFFF3 (array-tag >>44) | same                      |
/// | s1  | virtual PC               | virtual PC (byte pointer) |
/// | s2  | frame base (R\[0\])      | locals base               |
/// | s3  | constants base           | operand stack pointer     |
/// | s4  | jump table base          | same                      |
/// | s5  | heap bump pointer        | same                      |
/// | s6  | frame-stack pointer      | same                      |
/// | s7  | globals base             | same                      |
/// | s8  | BOX (0xFFFF<<48) = nil   | same                      |
/// | s9  | function table base      | same                      |
/// | s10 | checksum accumulator     | same                      |
/// | s11 | bytecode base            | same                      |
/// | gp  | FALSE bits               | same                      |
/// | tp  | stack limit / VM control | same                      |
/// | a6  | —                        | constants base            |
pub mod regs {
    use super::Reg;
    /// Array-tag prefix constant (`0xFFFF3`).
    pub const TAG_ARR_HI: Reg = Reg::S0;
    /// Virtual program counter.
    pub const VPC: Reg = Reg::S1;
    /// Frame base (LVM) / locals base (SVM).
    pub const BASE: Reg = Reg::S2;
    /// Constant-pool base (LVM).
    pub const KBASE: Reg = Reg::S3;
    /// Operand stack pointer (SVM only; aliases KBASE, unused there).
    pub const SP: Reg = Reg::S3;
    /// Jump table base.
    pub const JT: Reg = Reg::S4;
    /// Heap bump pointer.
    pub const HEAP: Reg = Reg::S5;
    /// Call-frame stack pointer.
    pub const FRAMES: Reg = Reg::S6;
    /// Globals base.
    pub const GLOBALS: Reg = Reg::S7;
    /// The NaN-box prefix (also the `nil` bit pattern).
    pub const BOX: Reg = Reg::S8;
    /// Function table base.
    pub const FUNCTAB: Reg = Reg::S9;
    /// Checksum accumulator.
    pub const CHK: Reg = Reg::S10;
    /// Bytecode base address.
    pub const CODE: Reg = Reg::S11;
    /// The boxed `false` bit pattern.
    pub const FALSE: Reg = Reg::GP;
    /// VM control block pointer / value-stack limit.
    pub const CTL: Reg = Reg::TP;
    /// Constant-pool base (SVM).
    pub const SVM_KBASE: Reg = Reg::A6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Baseline.name(), "baseline");
        assert_eq!(Scheme::Threaded.name(), "jump-threading");
        assert_eq!(Scheme::Scd.name(), "scd");
        assert_eq!(Scheme::ALL.len(), 3);
    }

    #[test]
    fn default_options_are_production() {
        let o = GuestOptions::default();
        assert!(o.production_weight);
        assert!(!o.scheduled_fetch);
    }
}
