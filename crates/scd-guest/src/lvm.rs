//! The LVM guest interpreter, written in simulated assembly.
//!
//! This is the reproduction of the paper's Lua interpreter: a canonical
//! fetch/decode/bound-check/table-jump dispatch loop (Fig. 1b) over 47
//! register-bytecode handlers, in three builds — baseline, jump-threaded
//! (Fig. 1c) and SCD-transformed (Fig. 4).

use crate::common::{regs, Guest, GuestOptions, Scheme};
use crate::layout::{self, Image};
use luma::lvm::bytecode::{builtin_id, Op, NUM_OPS};
use scd_isa::{Asm, FReg, LoadOp, Reg, Rounding};
use scd_sim::{Annotations, VbbiHint};

const A0: Reg = Reg::A0;
const A1: Reg = Reg::A1;
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const T2: Reg = Reg::T2;
const T3: Reg = Reg::T3;
const T4: Reg = Reg::T4;
const T5: Reg = Reg::T5;
const T6: Reg = Reg::T6;
const FT0: FReg = FReg::FT0;
const FT1: FReg = FReg::FT1;
const FT2: FReg = FReg::FT2;
const FT3: FReg = FReg::FT3;
const FT4: FReg = FReg::FT4;

/// Raw bits of 2^53 as f64 (the integral-float threshold used by the
/// convert-based floor).
const TWO_POW_53_BITS: i64 = 0x4340_0000_0000_0000;

struct Builder<'i> {
    a: Asm,
    img: &'i Image,
    scheme: Scheme,
    opts: GuestOptions,
    fresh: u32,
    ann: Annotations,
}

impl<'i> Builder<'i> {
    fn fresh(&mut self, p: &str) -> String {
        self.fresh += 1;
        format!("{p}_{}", self.fresh)
    }

    /// The production-weight bookkeeping of the fetch block: hook check
    /// (Lua's `vmfetch` trace hook) + retired-bytecode counter. The hook
    /// stub is emitted later, after the enclosing site's terminal jump.
    fn emit_bookkeeping(&mut self, stub: &str) {
        self.a.lbu(T6, layout::CTL_HOOK_FLAG, regs::CTL);
        self.a.bnez(T6, stub);
        self.a.ld(T6, layout::CTL_DISPATCH_COUNT, regs::CTL);
        self.a.addi(T6, T6, 1);
        self.a.sd(T6, layout::CTL_DISPATCH_COUNT, regs::CTL);
    }

    /// The cold hook stub: stands in for the out-of-line hook machinery
    /// a production interpreter carries next to every fetch site. It is
    /// never executed with the hook flag off (and traps if it ever is),
    /// but it occupies instruction-cache space, as the real thing does.
    fn emit_hook_stub(&mut self, stub: &str) {
        self.a.label(stub);
        // Plausible spill sequence (cold).
        for k in 0..6 {
            self.a.sd(Reg::new(10 + k), -8 * (k as i64 + 1), Reg::SP);
        }
        for k in 0..6 {
            self.a.li(Reg::new(10 + k), k as i64);
        }
        for k in 0..6 {
            self.a.ld(Reg::new(10 + k), -8 * (k as i64 + 1), Reg::SP);
        }
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    /// Emits one dispatch site. `site` must be unique; the common site is
    /// named `dispatch`. Returns nothing; updates annotations.
    fn emit_dispatch_site(&mut self, site: &str) {
        let start = self.a.here();
        let stub = self.fresh(&format!("hookstub_{site}"));
        let bad = self.fresh(&format!("badop_{site}"));
        let scd = self.scheme == Scheme::Scd;

        if self.opts.production_weight && !(scd && self.opts.scheduled_fetch) {
            self.emit_bookkeeping(&stub);
        }
        // Fetch (Fig. 1b lines 2-5 / Fig. 4 line 3): the bytecode load
        // carries the `.op` suffix in the SCD build.
        if scd {
            self.a.load_op(LoadOp::Lwu, 0, A0, 0, regs::VPC);
        } else {
            self.a.lwu(A0, 0, regs::VPC);
        }
        self.a.addi(regs::VPC, regs::VPC, 4);
        if self.opts.production_weight && scd && self.opts.scheduled_fetch {
            // Scheduled variant: bookkeeping fills the load-to-bop
            // distance so Rop is ready at bop's fetch.
            self.emit_bookkeeping(&stub);
        }
        if scd {
            self.a.bop(0);
        }
        // Slow path: decode, bound check, target address calculation
        // (the shaded lines of Fig. 1b).
        self.a.andi(A1, A0, 0x3F);
        self.a.sltiu(T0, A1, NUM_OPS as i64);
        self.a.beqz(T0, &bad);
        self.a.slli(T1, A1, 3);
        self.a.add(T1, T1, regs::JT);
        self.a.ld(T2, 0, T1);
        let jump_pc = self.a.here();
        if scd {
            self.a.jru(0, T2);
        } else {
            self.a.jr(T2);
        }
        let end = self.a.here();
        self.ann.dispatch_ranges.push((start, end));
        self.ann.dispatch_jumps.push(jump_pc);
        self.ann.vbbi_hints.push(VbbiHint { jump_pc, hint_reg: A1, mask: 0x3F });

        self.a.label(&bad);
        self.a.inst(scd_isa::Inst::Ebreak);
        if self.opts.production_weight {
            self.emit_hook_stub(&stub);
        }
    }

    /// Handler epilogue: jump back to the common dispatcher, or (jump
    /// threading) replicate the dispatcher in place.
    fn next(&mut self) {
        if self.scheme == Scheme::Threaded {
            let site = self.fresh("tail");
            self.emit_dispatch_site(&site);
        } else {
            self.a.j("dispatch");
        }
    }

    // ---- field decoding (operands of the 32-bit bytecode in a0) ----

    fn dec_a(&mut self, dst: Reg) {
        self.a.srli(dst, A0, 6);
        self.a.andi(dst, dst, 0xFF);
    }
    fn dec_b(&mut self, dst: Reg) {
        self.a.srli(dst, A0, 23);
    }
    fn dec_c(&mut self, dst: Reg) {
        self.a.srli(dst, A0, 14);
        self.a.andi(dst, dst, 0x1FF);
    }
    fn dec_bx(&mut self, dst: Reg) {
        self.a.srli(dst, A0, 14);
    }
    fn dec_sbx(&mut self, dst: Reg) {
        self.a.srli(dst, A0, 14);
        self.a.li(T6, 131071);
        self.a.sub(dst, dst, T6);
    }

    /// dst = address of R[field] (field already in dst).
    fn reg_addr(&mut self, dst: Reg) {
        self.a.slli(dst, dst, 3);
        self.a.add(dst, dst, regs::BASE);
    }

    /// Loads R[A]'s address into `dst`.
    fn ra_addr(&mut self, dst: Reg) {
        self.dec_a(dst);
        self.reg_addr(dst);
    }

    /// Loads R[B]'s value into `val` (clobbers `addr`).
    fn load_rb(&mut self, val: Reg, addr: Reg) {
        self.dec_b(addr);
        self.reg_addr(addr);
        self.a.ld(val, 0, addr);
    }

    /// Loads R[C]'s value into `val` (clobbers `addr`).
    fn load_rc(&mut self, val: Reg, addr: Reg) {
        self.dec_c(addr);
        self.reg_addr(addr);
        self.a.ld(val, 0, addr);
    }

    /// Loads K[C]'s value into `val` (clobbers `addr`).
    fn load_kc(&mut self, val: Reg, addr: Reg) {
        self.dec_c(addr);
        self.a.slli(addr, addr, 3);
        self.a.add(addr, addr, regs::KBASE);
        self.a.ld(val, 0, addr);
    }

    /// Traps unless `v` is a number (clobbers `tmp`).
    fn check_num(&mut self, v: Reg, tmp: Reg, trap: &str) {
        self.a.and(tmp, v, regs::BOX);
        self.a.beq(tmp, regs::BOX, trap);
    }

    /// Traps unless `v` is an array reference (clobbers `tmp`).
    fn check_array(&mut self, v: Reg, tmp: Reg, trap: &str) {
        self.a.srli(tmp, v, 44);
        self.a.bne(tmp, regs::TAG_ARR_HI, trap);
    }

    /// dst = payload (low 44 bits) of boxed value `v`.
    fn payload(&mut self, dst: Reg, v: Reg) {
        self.a.slli(dst, v, 20);
        self.a.srli(dst, dst, 20);
    }

    /// dst = boolean value from 0/1 flag in `flag` (clobbers flag).
    fn bool_value(&mut self, dst: Reg, flag: Reg) {
        self.a.slli(flag, flag, 44);
        self.a.add(dst, regs::FALSE, flag);
    }

    /// Stores `val` into R[A] (clobbers `tmp`).
    fn store_ra(&mut self, val: Reg, tmp: Reg) {
        self.ra_addr(tmp);
        self.a.sd(val, 0, tmp);
    }

    /// vpc += sBx * 4 (clobbers `tmp` and t6).
    fn vpc_add_sbx(&mut self, tmp: Reg) {
        self.dec_sbx(tmp);
        self.a.slli(tmp, tmp, 2);
        self.a.add(regs::VPC, regs::VPC, tmp);
    }

    /// ft_dst = floor(ft_x), robust to already-integral huge values
    /// (|x| >= 2^53 is its own floor). Clobbers tmp, FT3, FT4.
    fn floor_fp(&mut self, dst: FReg, x: FReg, tmp: Reg, skip: &str) {
        self.a.fop(scd_isa::FpOp::FsgnjD, dst, x, x); // dst = x (default)
        self.a.li(tmp, TWO_POW_53_BITS);
        self.a.fmv_d_x(FT3, tmp);
        self.a.fop(scd_isa::FpOp::FsgnjxD, FT4, x, x); // |x|
        self.a.flt(tmp, FT4, FT3);
        self.a.beqz(tmp, skip); // huge: already integral
        self.a.fcvt_l_d(tmp, x, Rounding::Rdn);
        self.a.fcvt_d_l(dst, tmp);
        self.a.label(skip);
    }

    // ---- handlers ----

    fn arith_rr(&mut self, op: Op) {
        let trap = self.fresh("trap");
        self.load_rb(T2, T0);
        self.load_rc(T3, T1);
        self.arith_common(op, &trap);
    }

    fn arith_rk(&mut self, op: Op) {
        let trap = self.fresh("trap");
        self.load_rb(T2, T0);
        self.load_kc(T3, T1);
        self.arith_common(op, &trap);
    }

    /// Shared arithmetic tail: operands in t2/t3.
    fn arith_common(&mut self, op: Op, trap: &str) {
        self.check_num(T2, T4, trap);
        self.check_num(T3, T4, trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fmv_d_x(FT1, T3);
        match op {
            Op::Add | Op::AddK => {
                self.a.fadd(FT2, FT0, FT1);
            }
            Op::Sub | Op::SubK => {
                self.a.fsub(FT2, FT0, FT1);
            }
            Op::Mul | Op::MulK => {
                self.a.fmul(FT2, FT0, FT1);
            }
            Op::Div | Op::DivK => {
                self.a.fdiv(FT2, FT0, FT1);
            }
            Op::Mod | Op::ModK => {
                // x - floor(x/y)*y
                self.a.fdiv(FT2, FT0, FT1);
                let skip = self.fresh("modfl");
                self.floor_fp(FT2, FT2, T4, &skip);
                self.a.fmul(FT2, FT2, FT1);
                self.a.fsub(FT2, FT0, FT2);
            }
            _ => unreachable!("not an arithmetic opcode"),
        }
        self.a.fmv_x_d(T5, FT2);
        self.store_ra(T5, T0);
        self.next();
        self.a.label(trap);
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    fn compare(&mut self, op: Op) {
        let trap = self.fresh("trap");
        let boxed = self.fresh("cmpbox");
        let join = self.fresh("cmpj");
        self.load_rb(T2, T0);
        match op {
            Op::EqK | Op::NeK | Op::LtK | Op::LeK => self.load_kc(T3, T1),
            _ => self.load_rc(T3, T1),
        }
        match op {
            Op::Eq | Op::Ne | Op::EqK | Op::NeK => {
                // Numbers compare by IEEE ==, everything else by identity.
                self.a.and(T4, T2, regs::BOX);
                self.a.beq(T4, regs::BOX, &boxed);
                self.a.and(T4, T3, regs::BOX);
                self.a.beq(T4, regs::BOX, &boxed);
                self.a.fmv_d_x(FT0, T2);
                self.a.fmv_d_x(FT1, T3);
                self.a.feq(T5, FT0, FT1);
                self.a.j(&join);
                self.a.label(&boxed);
                self.a.xor(T5, T2, T3);
                self.a.sltiu(T5, T5, 1);
                self.a.label(&join);
                if matches!(op, Op::Ne | Op::NeK) {
                    self.a.xori(T5, T5, 1);
                }
            }
            Op::Lt | Op::LtK | Op::Le | Op::LeK => {
                self.check_num(T2, T4, &trap);
                self.check_num(T3, T4, &trap);
                self.a.fmv_d_x(FT0, T2);
                self.a.fmv_d_x(FT1, T3);
                if matches!(op, Op::Lt | Op::LtK) {
                    self.a.flt(T5, FT0, FT1);
                } else {
                    self.a.fle(T5, FT0, FT1);
                }
            }
            _ => unreachable!("not a comparison"),
        }
        self.bool_value(T5, T5);
        self.store_ra(T5, T0);
        self.next();
        if matches!(op, Op::Lt | Op::LtK | Op::Le | Op::LeK) {
            self.a.label(&trap);
            self.a.inst(scd_isa::Inst::Ebreak);
        }
    }

    /// Allocation tail shared by NewArr/NewArrI: element count in `len`
    /// (a plain integer register). Clobbers t3..t6; result stored to
    /// R[A].
    fn alloc_array(&mut self, len: Reg) {
        let trap = self.fresh("trap");
        let fill = self.fresh("fill");
        let done = self.fresh("filldone");
        // bytes = 16 + len*8; bump the heap pointer.
        self.a.slli(T3, len, 3);
        self.a.addi(T3, T3, 16);
        self.a.mv(T4, regs::HEAP);
        self.a.add(regs::HEAP, regs::HEAP, T3);
        self.a.li(T5, (layout::HEAP_BASE + layout::HEAP_SIZE) as i64);
        self.a.bltu(T5, regs::HEAP, &trap); // out of memory
        self.a.sd(len, 0, T4); // length
        self.a.sd(len, 8, T4); // capacity (== length; arrays are fixed)
        // Fill with nil (the nil bit pattern is exactly BOX).
        self.a.addi(T5, T4, 16);
        self.a.add(T6, T5, T3);
        self.a.addi(T6, T6, -16);
        self.a.label(&fill);
        self.a.beq(T5, T6, &done);
        self.a.sd(regs::BOX, 0, T5);
        self.a.addi(T5, T5, 8);
        self.a.j(&fill);
        self.a.label(&done);
        // Box the pointer: value = ptr | (0xFFFF3 << 44).
        self.a.slli(T5, regs::TAG_ARR_HI, 44);
        self.a.or(T5, T5, T4);
        self.store_ra(T5, T0);
        self.next();
        self.a.label(&trap);
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    /// Element address calculation shared by the index handlers: array
    /// value in `arr`, f64 index value in `idx`; leaves the element
    /// address in t4. Clobbers t4..t6.
    fn elem_addr(&mut self, arr: Reg, idx: Reg, trap: &str) {
        self.check_array(arr, T4, trap);
        self.check_num(idx, T4, trap);
        self.payload(T4, arr); // array header pointer
        self.a.fmv_d_x(FT0, idx);
        self.a.fcvt_l_d(T5, FT0, Rounding::Rtz);
        self.a.ld(T6, 0, T4); // length
        self.a.bgeu(T5, T6, trap); // unsigned: negatives trap too
        self.a.slli(T5, T5, 3);
        self.a.add(T4, T4, T5);
        self.a.addi(T4, T4, 16);
    }

    fn emit_handler(&mut self, op: Op) {
        let trap = self.fresh("trap");
        match op {
            Op::Move => {
                self.load_rb(T2, T0);
                self.store_ra(T2, T0);
                self.next();
            }
            Op::LoadK => {
                self.dec_bx(T0);
                self.a.slli(T0, T0, 3);
                self.a.add(T0, T0, regs::KBASE);
                self.a.ld(T2, 0, T0);
                self.store_ra(T2, T0);
                self.next();
            }
            Op::LoadNil => {
                self.store_ra(regs::BOX, T0);
                self.next();
            }
            Op::LoadBool => {
                self.dec_b(T1);
                self.a.sltiu(T1, T1, 1);
                self.a.xori(T1, T1, 1); // normalize to 0/1
                self.bool_value(T2, T1);
                self.store_ra(T2, T0);
                self.next();
            }
            Op::LoadInt => {
                self.dec_sbx(T1);
                self.a.fcvt_d_l(FT0, T1);
                self.a.fmv_x_d(T2, FT0);
                self.store_ra(T2, T0);
                self.next();
            }
            Op::GetGlobal => {
                self.dec_bx(T0);
                self.a.slli(T0, T0, 3);
                self.a.add(T0, T0, regs::GLOBALS);
                self.a.ld(T2, 0, T0);
                self.store_ra(T2, T0);
                self.next();
            }
            Op::SetGlobal => {
                self.ra_addr(T0);
                self.a.ld(T2, 0, T0);
                self.dec_bx(T1);
                self.a.slli(T1, T1, 3);
                self.a.add(T1, T1, regs::GLOBALS);
                self.a.sd(T2, 0, T1);
                self.next();
            }
            Op::NewArr => {
                self.load_rb(T2, T0);
                self.check_num(T2, T4, &trap);
                self.a.fmv_d_x(FT0, T2);
                self.a.fcvt_l_d(T2, FT0, Rounding::Rtz);
                // Negative lengths become huge unsigned values and are
                // caught by the heap-overflow check inside alloc_array.
                self.alloc_array(T2);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::NewArrI => {
                self.dec_bx(T2);
                self.alloc_array(T2);
            }
            Op::GetIdx => {
                self.load_rb(T2, T0);
                self.load_rc(T3, T1);
                self.elem_addr(T2, T3, &trap);
                self.a.ld(T2, 0, T4);
                self.store_ra(T2, T0);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::SetIdx => {
                // R[A][R[B]] = R[C]
                self.ra_addr(T0);
                self.a.ld(T2, 0, T0); // array
                self.load_rb(T3, T1); // index
                self.elem_addr(T2, T3, &trap);
                self.load_rc(T3, T1); // value
                self.a.sd(T3, 0, T4);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::GetIdxI => {
                self.load_rb(T2, T0);
                self.dec_c(T3);
                self.a.fcvt_d_l(FT0, T3);
                self.a.fmv_x_d(T3, FT0);
                self.elem_addr(T2, T3, &trap);
                self.a.ld(T2, 0, T4);
                self.store_ra(T2, T0);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::SetIdxI => {
                self.ra_addr(T0);
                self.a.ld(T2, 0, T0);
                self.dec_b(T3);
                self.a.fcvt_d_l(FT0, T3);
                self.a.fmv_x_d(T3, FT0);
                self.elem_addr(T2, T3, &trap);
                self.load_rc(T3, T1);
                self.a.sd(T3, 0, T4);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Len => {
                self.load_rb(T2, T0);
                self.check_array(T2, T4, &trap);
                self.payload(T4, T2);
                self.a.ld(T5, 0, T4);
                self.a.fcvt_d_l(FT0, T5);
                self.a.fmv_x_d(T5, FT0);
                self.store_ra(T5, T0);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => self.arith_rr(op),
            Op::AddK | Op::SubK | Op::MulK | Op::DivK | Op::ModK => self.arith_rk(op),
            Op::AddI => {
                self.load_rb(T2, T0);
                self.check_num(T2, T4, &trap);
                self.dec_c(T3);
                self.a.addi(T3, T3, -256);
                self.a.fmv_d_x(FT0, T2);
                self.a.fcvt_d_l(FT1, T3);
                self.a.fadd(FT2, FT0, FT1);
                self.a.fmv_x_d(T5, FT2);
                self.store_ra(T5, T0);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Unm => {
                self.load_rb(T2, T0);
                self.check_num(T2, T4, &trap);
                self.a.fmv_d_x(FT0, T2);
                self.a.fop(scd_isa::FpOp::FsgnjnD, FT1, FT0, FT0);
                self.a.fmv_x_d(T5, FT1);
                self.store_ra(T5, T0);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Not => {
                let one = self.fresh("notf");
                let done = self.fresh("notd");
                self.load_rb(T2, T0);
                // result = truthy(v) ? false : true
                self.a.beq(T2, regs::BOX, &one); // nil -> true
                self.a.beq(T2, regs::FALSE, &one); // false -> true
                self.a.li(T5, 0);
                self.a.j(&done);
                self.a.label(&one);
                self.a.li(T5, 1);
                self.a.label(&done);
                self.bool_value(T5, T5);
                self.store_ra(T5, T0);
                self.next();
            }
            Op::Jmp => {
                self.vpc_add_sbx(T0);
                self.next();
            }
            Op::Eq | Op::Ne | Op::EqK | Op::NeK | Op::Lt | Op::Le | Op::LtK | Op::LeK => {
                self.compare(op);
            }
            Op::TestT | Op::TestF => {
                let taken = self.fresh("tsttk");
                let fall = self.fresh("tstft");
                self.ra_addr(T0);
                self.a.ld(T2, 0, T0);
                // falsey iff nil or false
                if op == Op::TestT {
                    self.a.beq(T2, regs::BOX, &fall);
                    self.a.beq(T2, regs::FALSE, &fall);
                    self.vpc_add_sbx(T0);
                    self.a.label(&fall);
                } else {
                    self.a.beq(T2, regs::BOX, &taken);
                    self.a.beq(T2, regs::FALSE, &taken);
                    self.a.j(&fall);
                    self.a.label(&taken);
                    self.vpc_add_sbx(T0);
                    self.a.label(&fall);
                }
                self.next();
            }
            Op::Call => {
                self.ra_addr(T0); // address of R[A]
                self.a.ld(T1, 0, T0); // function value
                self.a.srli(T4, T1, 44);
                self.a.addi(T5, regs::TAG_ARR_HI, 1); // function tag prefix
                self.a.bne(T4, T5, &trap);
                self.payload(T2, T1); // function index
                self.a.slli(T2, T2, 4);
                self.a.add(T2, T2, regs::FUNCTAB);
                self.a.lwu(T3, 0, T2); // code_off (bytes)
                self.a.lwu(T4, 8, T2); // nregs
                // Push the CallInfo record.
                self.a.sd(regs::VPC, 0, regs::FRAMES);
                self.a.sd(regs::BASE, 8, regs::FRAMES);
                self.a.sd(T0, 16, regs::FRAMES); // result slot address
                self.dec_c(T5);
                self.a.addi(T5, T5, -1); // nresults
                self.a.sd(T5, 24, regs::FRAMES);
                self.a.addi(regs::FRAMES, regs::FRAMES, 32);
                self.a
                    .li(T5, (layout::FRAME_BASE + layout::FRAME_SIZE) as i64);
                self.a.bgeu(regs::FRAMES, T5, &trap); // frame overflow
                // New frame: base = &R[A] + 8 (the first argument).
                self.a.addi(regs::BASE, T0, 8);
                self.a.slli(T4, T4, 3);
                self.a.add(T4, T4, regs::BASE);
                self.a.bltu(regs::CTL, T4, &trap); // value-stack overflow
                self.a.add(regs::VPC, regs::CODE, T3);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Return => {
                let noval = self.fresh("retnv");
                let store = self.fresh("retst");
                let halt = self.fresh("retha");
                // Value (before the frame switch): R[A] if B == 2.
                self.dec_b(T0);
                self.a.addi(T1, Reg::ZERO, 2);
                self.a.bne(T0, T1, &noval);
                self.ra_addr(T2);
                self.a.ld(T2, 0, T2);
                self.a.j(&store);
                self.a.label(&noval);
                self.a.mv(T2, regs::BOX); // nil
                self.a.label(&store);
                // Returning from main halts the interpreter.
                self.a.li(T3, layout::FRAME_BASE as i64);
                self.a.beq(regs::FRAMES, T3, &halt);
                // Pop the CallInfo record.
                self.a.addi(regs::FRAMES, regs::FRAMES, -32);
                self.a.ld(regs::VPC, 0, regs::FRAMES);
                self.a.ld(regs::BASE, 8, regs::FRAMES);
                self.a.ld(T4, 16, regs::FRAMES); // result slot
                self.a.ld(T5, 24, regs::FRAMES); // nresults
                let skip = self.fresh("retsk");
                self.a.beqz(T5, &skip);
                self.a.sd(T2, 0, T4);
                self.a.label(&skip);
                self.next();
                self.a.label(&halt);
                self.a.j("interp_exit");
            }
            Op::ForPrep => {
                self.ra_addr(T0);
                self.a.ld(T1, 0, T0); // index
                self.check_num(T1, T4, &trap);
                self.a.ld(T2, 8, T0); // limit
                self.check_num(T2, T4, &trap);
                self.a.ld(T3, 16, T0); // step
                self.check_num(T3, T4, &trap);
                self.a.fmv_d_x(FT0, T1);
                self.a.fmv_d_x(FT1, T3);
                self.a.fsub(FT2, FT0, FT1); // index -= step
                self.a.fmv_x_d(T5, FT2);
                self.a.sd(T5, 0, T0);
                self.vpc_add_sbx(T1);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::ForLoop => {
                let neg = self.fresh("flng");
                let join = self.fresh("fljn");
                let exit = self.fresh("flex");
                self.ra_addr(T0);
                self.a.ld(T1, 0, T0); // index (numbers since ForPrep)
                self.a.ld(T2, 8, T0); // limit
                self.a.ld(T3, 16, T0); // step
                self.a.fmv_d_x(FT0, T1);
                self.a.fmv_d_x(FT1, T2);
                self.a.fmv_d_x(FT2, T3);
                self.a.fadd(FT0, FT0, FT2); // index += step
                self.a.fmv_x_d(T5, FT0);
                self.a.sd(T5, 0, T0);
                // continue iff step > 0 ? index <= limit : index >= limit
                self.a.fmv_d_x(FT3, Reg::ZERO); // +0.0
                self.a.flt(T4, FT3, FT2);
                self.a.beqz(T4, &neg);
                self.a.fle(T4, FT0, FT1);
                self.a.j(&join);
                self.a.label(&neg);
                self.a.fle(T4, FT1, FT0);
                self.a.label(&join);
                self.a.beqz(T4, &exit);
                self.a.sd(T5, 24, T0); // R[A+3] = index
                self.vpc_add_sbx(T1);
                self.a.label(&exit);
                self.next();
            }
            Op::Closure => {
                self.dec_bx(T1);
                self.a.addi(T2, regs::TAG_ARR_HI, 1);
                self.a.slli(T2, T2, 44);
                self.a.or(T2, T2, T1);
                self.store_ra(T2, T0);
                self.next();
            }
            Op::CallB => self.emit_callb(),
            Op::Sqrt => {
                self.load_rb(T2, T0);
                self.check_num(T2, T4, &trap);
                self.a.fmv_d_x(FT0, T2);
                self.a.fsqrt(FT1, FT0);
                self.a.fmv_x_d(T5, FT1);
                self.store_ra(T5, T0);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Floor => {
                self.load_rb(T2, T0);
                self.check_num(T2, T4, &trap);
                self.a.fmv_d_x(FT0, T2);
                let skip = self.fresh("flfl");
                self.floor_fp(FT1, FT0, T4, &skip);
                self.a.fmv_x_d(T5, FT1);
                self.store_ra(T5, T0);
                self.next();
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Halt => {
                self.a.j("interp_exit");
            }
        }
    }

    /// The CallB handler: a branch tree over the builtin id in B, each
    /// arm operating on the register window at R[A].
    fn emit_callb(&mut self) {
        let trap = self.fresh("trap");
        self.ra_addr(T0); // address of R[A] (first argument / result)
        self.a.ld(T2, 0, T0); // first argument
        self.dec_b(T1); // builtin id

        let mk = |i: u32| format!("cb_{i}_");
        // Dispatch tree.
        for id in 0..builtin_id::COUNT {
            self.a.addi(T3, Reg::ZERO, id as i64);
            self.a.beq(T1, T3, &format!("{}{}", mk(id), self.fresh));
        }
        self.a.inst(scd_isa::Inst::Ebreak); // unknown builtin

        let tag = self.fresh;

        // floor
        self.a.label(&format!("{}{}", mk(builtin_id::FLOOR), tag));
        self.check_num(T2, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        let skip = self.fresh("cbfl");
        self.floor_fp(FT1, FT0, T4, &skip);
        self.a.fmv_x_d(T5, FT1);
        self.a.sd(T5, 0, T0);
        self.next();

        // sqrt
        self.a.label(&format!("{}{}", mk(builtin_id::SQRT), tag));
        self.check_num(T2, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fsqrt(FT1, FT0);
        self.a.fmv_x_d(T5, FT1);
        self.a.sd(T5, 0, T0);
        self.next();

        // abs
        self.a.label(&format!("{}{}", mk(builtin_id::ABS), tag));
        self.check_num(T2, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fop(scd_isa::FpOp::FsgnjxD, FT1, FT0, FT0);
        self.a.fmv_x_d(T5, FT1);
        self.a.sd(T5, 0, T0);
        self.next();

        // min / max (second argument at R[A+1])
        for id in [builtin_id::MIN, builtin_id::MAX] {
            self.a.label(&format!("{}{}", mk(id), tag));
            self.a.ld(T3, 8, T0);
            self.check_num(T2, T4, &trap);
            self.check_num(T3, T4, &trap);
            self.a.fmv_d_x(FT0, T2);
            self.a.fmv_d_x(FT1, T3);
            let op = if id == builtin_id::MIN {
                scd_isa::FpOp::FminD
            } else {
                scd_isa::FpOp::FmaxD
            };
            self.a.fop(op, FT2, FT0, FT1);
            self.a.fmv_x_d(T5, FT2);
            self.a.sd(T5, 0, T0);
            self.next();
        }

        // emit: checksum = rotl(checksum, 1) ^ value
        self.a.label(&format!("{}{}", mk(builtin_id::EMIT), tag));
        self.a.slli(T4, regs::CHK, 1);
        self.a.srli(T5, regs::CHK, 63);
        self.a.or(T4, T4, T5);
        self.a.xor(regs::CHK, T4, T2);
        self.next();

        // len
        self.a.label(&format!("{}{}", mk(builtin_id::LEN), tag));
        self.check_array(T2, T4, &trap);
        self.payload(T4, T2);
        self.a.ld(T5, 0, T4);
        self.a.fcvt_d_l(FT0, T5);
        self.a.fmv_x_d(T5, FT0);
        self.a.sd(T5, 0, T0);
        self.next();

        // array
        self.a.label(&format!("{}{}", mk(builtin_id::ARRAY), tag));
        self.check_num(T2, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fcvt_l_d(T2, FT0, Rounding::Rtz);
        self.alloc_array(T2);

        self.a.label(&trap);
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    fn build(mut self) -> Guest {
        let img = self.img;
        // ---- prologue ----
        self.a.label("entry");
        self.a.li(regs::TAG_ARR_HI, 0xFFFF3);
        self.a.li(regs::KBASE, img.consts_base as i64);
        self.a.li(regs::HEAP, layout::HEAP_BASE as i64);
        self.a.li(regs::FRAMES, layout::FRAME_BASE as i64);
        self.a.li(regs::GLOBALS, layout::GLOBALS_BASE as i64);
        self.a.li(regs::BOX, luma::value::BOX as i64);
        self.a.li(regs::FUNCTAB, img.functab_base as i64);
        self.a.li(regs::CHK, 0);
        self.a.li(regs::CODE, img.code_base as i64);
        self.a.li(regs::CTL, layout::VMCTL_BASE as i64);
        self.a.li(regs::FALSE, luma::value::FALSE as i64);
        self.a.la(regs::JT, "jt");
        self.a.li(regs::BASE, layout::VSTACK_BASE as i64);
        self.a.li(regs::VPC, (img.code_base + img.main_off) as i64);
        if self.scheme == Scheme::Scd {
            // Fig. 4: the mask register is set once, before the loop.
            self.a.li(T0, 0x3F);
            self.a.setmask(0, T0);
        }
        self.a.li(Reg::SP, (layout::VMCTL_BASE + layout::VMCTL_SIZE) as i64);
        self.a.j("dispatch");

        // ---- the common dispatcher ----
        self.a.label("dispatch");
        self.emit_dispatch_site("dispatch_main");

        // ---- handlers ----
        for op in Op::ALL {
            self.a.label(&format!("h_{}", op as u32));
            self.emit_handler(op);
        }

        // ---- exit ----
        self.a.label("interp_exit");
        if self.scheme == Scheme::Scd {
            // Invalidate all JTEs on loop exit (Section III-A).
            self.a.jte_flush();
        }
        self.a.mv(Reg::A0, regs::CHK);
        self.a.li(Reg::A7, 0);
        self.a.ecall();

        // ---- jump table ----
        self.a.ro_label("jt");
        for op in Op::ALL {
            self.a.ro_addr(&format!("h_{}", op as u32));
        }

        let program = self.a.finish().expect("LVM guest assembles");
        Guest { program, annotations: self.ann }
    }
}

/// Builds the LVM guest interpreter for `scheme` against a program image.
pub fn build_lvm_guest(img: &Image, scheme: Scheme, opts: GuestOptions) -> Guest {
    Builder {
        a: Asm::new(layout::TEXT_BASE),
        img,
        scheme,
        opts,
        fresh: 0,
        ann: Annotations::default(),
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::build_lvm_image;
    use luma::parser::parse;

    fn guest_for(src: &str, scheme: Scheme) -> Guest {
        let script = parse(src).unwrap();
        let (p, init) = luma::lvm::compile_lvm(&script, &[]).unwrap();
        let img = build_lvm_image(&p, &init);
        build_lvm_guest(&img, scheme, GuestOptions::default())
    }

    #[test]
    fn assembles_for_all_schemes() {
        for scheme in Scheme::ALL {
            let g = guest_for("emit(1 + 2);", scheme);
            assert!(g.program.insts.len() > 300, "{scheme:?} suspiciously small");
            assert!(!g.annotations.dispatch_jumps.is_empty());
        }
    }

    #[test]
    fn baseline_has_one_dispatch_site_threaded_many() {
        let base = guest_for("emit(1);", Scheme::Baseline);
        let jt = guest_for("emit(1);", Scheme::Threaded);
        assert_eq!(base.annotations.dispatch_jumps.len(), 1);
        // Threaded: one replicated dispatcher per handler exit point
        // (handlers with several exits, like CallB's builtin arms, get
        // several), plus the common entry site.
        assert!(jt.annotations.dispatch_jumps.len() > NUM_OPS as usize);
        // Jump threading bloats the code, as Fig. 1c implies.
        assert!(jt.program.insts.len() > base.program.insts.len() + 300);
    }

    #[test]
    fn scd_build_contains_extension_instructions() {
        let g = guest_for("emit(1);", Scheme::Scd);
        let has = |pred: &dyn Fn(&scd_isa::Inst) -> bool| g.program.insts.iter().any(pred);
        assert!(has(&|i| matches!(i, scd_isa::Inst::Bop { .. })));
        assert!(has(&|i| matches!(i, scd_isa::Inst::Jru { .. })));
        assert!(has(&|i| matches!(i, scd_isa::Inst::SetMask { .. })));
        assert!(has(&|i| matches!(i, scd_isa::Inst::JteFlush)));
        assert!(has(&|i| matches!(i, scd_isa::Inst::LoadOp { .. })));
        let base = guest_for("emit(1);", Scheme::Baseline);
        assert!(!base.program.insts.iter().any(|i| matches!(i, scd_isa::Inst::Bop { .. })));
    }

    #[test]
    fn jump_table_covers_all_opcodes() {
        let g = guest_for("emit(1);", Scheme::Baseline);
        assert_eq!(g.program.rodata.len(), 8 * NUM_OPS as usize);
        // Every entry points into the text section.
        for chunk in g.program.rodata.chunks(8) {
            let addr = u64::from_le_bytes(chunk.try_into().unwrap());
            assert!(addr >= g.program.text_base && addr < g.program.text_end());
        }
    }
}
