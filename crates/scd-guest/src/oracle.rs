//! Oracle-checked guest runs: lockstep co-simulation of a full VM
//! interpreter benchmark against the `scd-ref` architectural ISS.
//!
//! [`differential_check`](crate::differential_check) proves the *faulted*
//! machine matches the *clean* machine; this module proves the clean
//! machine matches the *architecture*. Together they close the loop: the
//! cycle model agrees with a 300-line interpreter that shares nothing
//! with it but the `scd_isa::exec` semantics table, and fault injection
//! cannot push it off that baseline.

use crate::runner::{GuestRun, RunRequest};
use scd_sim::LockstepSink;

/// A passed lockstep check.
#[derive(Debug)]
pub struct LockstepReport {
    /// The validated guest run (checksum already checked by the host
    /// oracle inside [`RunRequest::run_with`]'s validation).
    pub run: GuestRun,
    /// Retired instructions compared bit-for-bit against the reference.
    pub checked: u64,
}

/// Runs `req` with a [`LockstepSink`] installed and fails on the first
/// instruction whose architectural effects differ from the reference ISS.
///
/// # Errors
/// A human-readable message: guest setup/validation failure, or the first
/// lockstep divergence (with a trace-window dump path when writable).
pub fn lockstep_check(req: &RunRequest<'_>) -> Result<LockstepReport, String> {
    let mut run = req.run_with(|m| m.set_trace_sink(Box::new(LockstepSink::new(m))))?;
    let sink = run
        .take_sink::<LockstepSink>()
        .ok_or("lockstep sink went missing (machine replaced its tracer?)")?;
    if let Some(d) = sink.divergence() {
        let mut msg = d.to_string();
        if let Some(p) = sink.dump("lockstep") {
            msg.push_str(&format!(" (trace window: {})", p.display()));
        }
        return Err(msg);
    }
    if sink.checked() == 0 {
        return Err("lockstep checked zero instructions (no arch records in trace?)".to_string());
    }
    Ok(LockstepReport { checked: sink.checked(), run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scheme;
    use crate::runner::Vm;
    use scd_sim::SimConfig;

    const SRC: &str = "var s = 0; for i = 1, N { s = s + i * (i + 3) % 17; } emit(s);";
    const N: [(&str, f64); 1] = [("N", 200.0)];

    #[test]
    fn interpreter_guests_run_in_lockstep() {
        for vm in Vm::ALL {
            for scheme in [Scheme::Baseline, Scheme::Scd] {
                let req = RunRequest::new(SimConfig::embedded_a5(), vm, SRC)
                    .predefined(&N)
                    .scheme(scheme)
                    .max_insts(200_000_000);
                let report = lockstep_check(&req)
                    .unwrap_or_else(|e| panic!("{vm:?}/{scheme:?}: {e}"));
                assert!(report.checked > 10_000, "{vm:?}/{scheme:?}: {}", report.checked);
                assert_eq!(report.checked, report.run.stats.instructions);
            }
        }
    }
}
