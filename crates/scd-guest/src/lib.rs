#![warn(missing_docs)]

//! # scd-guest — the interpreters that run *on* the simulated core
//!
//! The paper's measurements are about the machine code of a bytecode
//! interpreter; this crate authors that machine code. It builds the LVM
//! (Lua-like) and SVM (SpiderMonkey-like) interpreters in simulated
//! RV64 assembly, in three dispatch schemes each (baseline,
//! jump-threaded, SCD), lays out the guest address space, serializes
//! compiled Luma programs into guest images, and runs the whole stack on
//! `scd-sim`, validating every run bit-for-bit against the host oracle.
//!
//! ```
//! use scd_guest::{run_source, GuestOptions, Scheme, Vm};
//! use scd_sim::SimConfig;
//!
//! # fn main() -> Result<(), String> {
//! let run = run_source(
//!     SimConfig::embedded_a5(),
//!     Vm::Lvm,
//!     "var s = 0; for i = 1, N { s = s + i; } emit(s);",
//!     &[("N", 100.0)],
//!     Scheme::Scd,
//!     GuestOptions::default(),
//!     10_000_000,
//! )?;
//! assert!(run.stats.bop_hits > 0); // short-circuited dispatches
//! # Ok(())
//! # }
//! ```

pub mod common;
pub mod differential;
pub mod layout;
pub mod lvm;
pub mod oracle;
pub mod runner;
pub mod svm;

pub use common::{Guest, GuestOptions, Scheme};
pub use differential::{differential_check, DifferentialError, DifferentialReport};
pub use layout::{build_lvm_image, build_svm_image, Image};
pub use lvm::build_lvm_guest;
pub use oracle::{lockstep_check, LockstepReport};
pub use runner::{
    run_lvm, run_lvm_with, run_source, run_source_with, run_svm, run_svm_with, GuestError,
    GuestRun, RunRequest, Session, Vm,
};
pub use svm::build_svm_guest;
