//! Builds a machine, loads a guest interpreter + program image, runs to
//! completion and validates the result against the host oracle.

use crate::common::{Guest, GuestOptions, Scheme};
use crate::layout::{self, Image};
use luma::lvm::LvmProgram;
use luma::svm::SvmProgram;
use scd_sim::{
    downcast_sink, Exit, Machine, SampleReport, SamplingPlan, SimConfig, SimError, SimStats,
    TraceSink,
};
use std::fmt;

/// Which guest VM to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vm {
    /// Register-based, Lua-like (47 opcodes).
    Lvm,
    /// Stack-based, SpiderMonkey-like (229-opcode space).
    Svm,
}

impl Vm {
    /// Both VMs, in the paper's presentation order.
    pub const ALL: [Vm; 2] = [Vm::Lvm, Vm::Svm];

    /// Report name, using the paper's language labels.
    pub fn name(self) -> &'static str {
        match self {
            Vm::Lvm => "lvm",
            Vm::Svm => "svm",
        }
    }
}

/// Error from a guest run.
#[derive(Debug)]
pub enum GuestError {
    /// The simulated machine faulted.
    Sim(SimError),
    /// The guest finished but its checksum differs from the oracle's.
    ChecksumMismatch {
        /// The guest's checksum.
        guest: u64,
        /// The oracle's checksum.
        oracle: u64,
    },
    /// The guest's retired-bytecode count differs from the oracle's.
    DispatchMismatch {
        /// The guest's retired-bytecode count.
        guest: u64,
        /// The oracle's bytecode count.
        oracle: u64,
    },
}

impl fmt::Display for GuestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestError::Sim(e) => write!(f, "simulation error: {e}"),
            GuestError::ChecksumMismatch { guest, oracle } => {
                write!(f, "checksum mismatch: guest {guest:#x}, oracle {oracle:#x}")
            }
            GuestError::DispatchMismatch { guest, oracle } => {
                write!(f, "dispatch-count mismatch: guest {guest}, oracle {oracle}")
            }
        }
    }
}

impl std::error::Error for GuestError {}

impl From<SimError> for GuestError {
    fn from(e: SimError) -> Self {
        GuestError::Sim(e)
    }
}

/// Result of a validated guest run.
pub struct GuestRun {
    /// The `emit` checksum computed by the guest.
    pub checksum: u64,
    /// Bytecodes dispatched (from the guest's own retired counter).
    pub dispatches: u64,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// The trace sink the setup hook installed, handed back with its
    /// accumulated state once the machine is done with it (`None` when
    /// no sink was installed, or when the caller still holds the
    /// [`Session`] and can take it from the machine directly). Owned,
    /// not shared: this is what lets traced runs execute on worker
    /// threads.
    pub sink: Option<Box<dyn TraceSink>>,
    /// Sampling metadata when the run executed in sampled mode (`stats`
    /// then holds the scaled estimate; checksum and dispatch count stay
    /// exact either way).
    pub sample: Option<SampleReport>,
}

impl GuestRun {
    /// Takes the run's sink back as its concrete type (consuming the
    /// sink either way — see [`downcast_sink`]).
    pub fn take_sink<T: TraceSink>(&mut self) -> Option<Box<T>> {
        self.sink.take().and_then(downcast_sink::<T>)
    }
}

impl fmt::Debug for GuestRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GuestRun")
            .field("checksum", &self.checksum)
            .field("dispatches", &self.dispatches)
            .field("stats", &self.stats)
            .field("sink", &self.sink.as_ref().map(|_| "<trace sink>"))
            .finish()
    }
}

/// Builds a machine with the guest interpreter installed and the
/// program image, globals, stacks and heap mapped — loaded but not yet
/// run.
fn build_machine(cfg: SimConfig, guest: &Guest, img: &Image) -> Machine {
    let mut m = Machine::new(cfg, &guest.program);
    m.set_annotations(guest.annotations.clone());
    m.map(
        "image",
        layout::IMAGE_BASE,
        (img.bytes.len() as u64 + 4095) & !4095,
    );
    m.mem.write_bytes(layout::IMAGE_BASE, &img.bytes);
    m.map("globals", layout::GLOBALS_BASE, 1 << 20);
    for (i, g) in img.global_init.iter().enumerate() {
        m.mem
            .write_u64(layout::GLOBALS_BASE + 8 * i as u64, *g)
            .expect("globals segment mapped");
    }
    m.map(
        "vstack+ctl",
        layout::VSTACK_BASE,
        layout::VSTACK_SIZE + layout::VMCTL_SIZE,
    );
    m.map("frames", layout::FRAME_BASE, layout::FRAME_SIZE);
    m.map("heap", layout::HEAP_BASE, layout::HEAP_SIZE);
    m
}

fn run_image(
    cfg: SimConfig,
    guest: &Guest,
    img: &Image,
    max_insts: u64,
    setup: impl FnOnce(&mut Machine),
) -> Result<GuestRun, GuestError> {
    let mut m = build_machine(cfg, guest, img);
    setup(&mut m);
    let exit = m.run(max_insts)?;
    let dispatches = m
        .mem
        .read_u64(layout::VMCTL_BASE + layout::CTL_DISPATCH_COUNT as u64)
        .expect("ctl mapped");
    Ok(GuestRun {
        checksum: exit.code,
        dispatches,
        stats: m.stats.clone(),
        sink: m.take_trace_sink(),
        sample: None,
    })
}

/// The compiled guest program plus everything the oracle needs.
enum Compiled {
    Lvm {
        /// Register-VM bytecode.
        program: LvmProgram,
        /// Initial global values.
        init: Vec<u64>,
    },
    Svm {
        /// Stack-VM bytecode.
        program: SvmProgram,
        /// Initial global values.
        init: Vec<u64>,
    },
}

/// A loaded guest run whose [`Machine`] is exposed for stepwise control.
///
/// Where [`run_source`] runs a guest in one shot, a `Session` separates
/// *loading* from *running* so the caller can install fault plans, trace
/// sinks, watchdog budgets or checkpoints on [`Session::machine`] before
/// (or between) runs, then have the result checked against the host
/// oracle with [`Session::validate`].
pub struct Session {
    /// The fully loaded simulated machine. Drive it directly:
    /// `machine.set_fault_plan(..)`, `machine.snapshot()`,
    /// `machine.run(..)`, ...
    pub machine: Machine,
    compiled: Compiled,
    opts: GuestOptions,
}

impl Session {
    /// Parses and compiles `src` for `vm`, builds the guest interpreter
    /// under `scheme` and loads everything into a fresh machine.
    ///
    /// # Errors
    /// Returns a string describing parse or compile errors.
    pub fn from_source(
        cfg: SimConfig,
        vm: Vm,
        src: &str,
        predefined: &[(&str, f64)],
        scheme: Scheme,
        opts: GuestOptions,
    ) -> Result<Session, String> {
        let script = luma::parser::parse(src).map_err(|e| e.to_string())?;
        let (compiled, img, guest) = match vm {
            Vm::Lvm => {
                let (p, init) =
                    luma::lvm::compile_lvm(&script, predefined).map_err(|e| e.to_string())?;
                let img = layout::build_lvm_image(&p, &init);
                let guest = crate::lvm::build_lvm_guest(&img, scheme, opts);
                (Compiled::Lvm { program: p, init }, img, guest)
            }
            Vm::Svm => {
                let (p, init) =
                    luma::svm::compile_svm(&script, predefined).map_err(|e| e.to_string())?;
                let img = layout::build_svm_image(&p, &init);
                let guest = crate::svm::build_svm_guest(&img, scheme, opts);
                (Compiled::Svm { program: p, init }, img, guest)
            }
        };
        Ok(Session {
            machine: build_machine(cfg, &guest, &img),
            compiled,
            opts,
        })
    }

    /// Runs the machine to completion and validates the result; the
    /// one-shot convenience over [`Session::validate`].
    ///
    /// # Errors
    /// Returns [`GuestError`] on simulator faults or oracle mismatches.
    pub fn run_and_validate(&mut self, max_insts: u64) -> Result<GuestRun, GuestError> {
        let exit = self.machine.run(max_insts)?;
        self.validate(&exit)
    }

    /// Checks a completed run (its halting [`Exit`]) against the host
    /// oracle: the `emit` checksum must match, and with production
    /// weight the retired-dispatch count must too.
    ///
    /// # Errors
    /// Returns [`GuestError::ChecksumMismatch`] or
    /// [`GuestError::DispatchMismatch`] when the guest and oracle
    /// disagree.
    pub fn validate(&mut self, exit: &Exit) -> Result<GuestRun, GuestError> {
        let checksum = exit.code;
        let dispatches = self
            .machine
            .mem
            .read_u64(layout::VMCTL_BASE + layout::CTL_DISPATCH_COUNT as u64)
            .expect("ctl mapped");
        let oracle = match &self.compiled {
            Compiled::Lvm { program, init } => luma::lvm::LvmInterp::new(program, init)
                .run(u64::MAX)
                .expect("oracle agrees the program terminates"),
            Compiled::Svm { program, init } => luma::svm::SvmInterp::new(program, init)
                .run(u64::MAX)
                .expect("oracle agrees the program terminates"),
        };
        if oracle.checksum != checksum {
            return Err(GuestError::ChecksumMismatch {
                guest: checksum,
                oracle: oracle.checksum,
            });
        }
        if self.opts.production_weight && dispatches != oracle.steps {
            return Err(GuestError::DispatchMismatch {
                guest: dispatches,
                oracle: oracle.steps,
            });
        }
        // The sink (if any) stays on the machine: the caller holds the
        // session and takes it from there.
        Ok(GuestRun {
            checksum,
            dispatches,
            stats: self.machine.stats.clone(),
            sink: None,
            sample: None,
        })
    }

    /// Runs the machine in sampled mode (fast-forward → warm → measure
    /// under `plan`) and validates the architectural results against the
    /// oracle exactly as [`Session::run_and_validate`] does — checksum
    /// and dispatch counts are exact in every execution mode, only the
    /// timing counters are estimates. The returned run carries the
    /// [`SampleReport`] and its `stats` hold the scaled estimate.
    ///
    /// # Errors
    /// Returns [`GuestError`] on simulator faults or oracle mismatches.
    pub fn run_sampled_and_validate(
        &mut self,
        max_insts: u64,
        plan: &SamplingPlan,
    ) -> Result<GuestRun, GuestError> {
        let (exit, report) = self.machine.run_sampled(max_insts, plan)?;
        let mut run = self.validate(&exit)?;
        run.sample = Some(report);
        Ok(run)
    }
}

/// Runs an LVM program on the simulated core under `scheme` and checks
/// the checksum (and, with production weight, the dispatch count)
/// against the host oracle.
///
/// # Errors
/// Returns [`GuestError`] on simulator faults or oracle mismatches.
pub fn run_lvm(
    cfg: SimConfig,
    program: &LvmProgram,
    global_init: &[u64],
    scheme: Scheme,
    opts: GuestOptions,
    max_insts: u64,
) -> Result<GuestRun, GuestError> {
    run_lvm_with(cfg, program, global_init, scheme, opts, max_insts, |_| {})
}

/// [`run_lvm`] with a `setup` hook run on the machine just before
/// execution — the place to install a trace sink or tune the invariant
/// checker.
///
/// # Errors
/// Returns [`GuestError`] on simulator faults or oracle mismatches.
pub fn run_lvm_with(
    cfg: SimConfig,
    program: &LvmProgram,
    global_init: &[u64],
    scheme: Scheme,
    opts: GuestOptions,
    max_insts: u64,
    setup: impl FnOnce(&mut Machine),
) -> Result<GuestRun, GuestError> {
    let img = layout::build_lvm_image(program, global_init);
    let guest = crate::lvm::build_lvm_guest(&img, scheme, opts);
    let run = run_image(cfg, &guest, &img, max_insts, setup)?;

    let oracle = luma::lvm::LvmInterp::new(program, global_init)
        .run(max_insts)
        .expect("oracle agrees the program terminates");
    if oracle.checksum != run.checksum {
        return Err(GuestError::ChecksumMismatch {
            guest: run.checksum,
            oracle: oracle.checksum,
        });
    }
    if opts.production_weight && run.dispatches != oracle.steps {
        return Err(GuestError::DispatchMismatch {
            guest: run.dispatches,
            oracle: oracle.steps,
        });
    }
    Ok(run)
}

/// Runs an SVM program on the simulated core under `scheme` and checks
/// it against the host oracle.
///
/// # Errors
/// Returns [`GuestError`] on simulator faults or oracle mismatches.
pub fn run_svm(
    cfg: SimConfig,
    program: &SvmProgram,
    global_init: &[u64],
    scheme: Scheme,
    opts: GuestOptions,
    max_insts: u64,
) -> Result<GuestRun, GuestError> {
    run_svm_with(cfg, program, global_init, scheme, opts, max_insts, |_| {})
}

/// [`run_svm`] with a `setup` hook run on the machine just before
/// execution — the place to install a trace sink or tune the invariant
/// checker.
///
/// # Errors
/// Returns [`GuestError`] on simulator faults or oracle mismatches.
pub fn run_svm_with(
    cfg: SimConfig,
    program: &SvmProgram,
    global_init: &[u64],
    scheme: Scheme,
    opts: GuestOptions,
    max_insts: u64,
    setup: impl FnOnce(&mut Machine),
) -> Result<GuestRun, GuestError> {
    let img = layout::build_svm_image(program, global_init);
    let guest = crate::svm::build_svm_guest(&img, scheme, opts);
    let run = run_image(cfg, &guest, &img, max_insts, setup)?;

    let oracle = luma::svm::SvmInterp::new(program, global_init)
        .run(max_insts)
        .expect("oracle agrees the program terminates");
    if oracle.checksum != run.checksum {
        return Err(GuestError::ChecksumMismatch {
            guest: run.checksum,
            oracle: oracle.checksum,
        });
    }
    if opts.production_weight && run.dispatches != oracle.steps {
        return Err(GuestError::DispatchMismatch {
            guest: run.dispatches,
            oracle: oracle.steps,
        });
    }
    Ok(run)
}

/// Everything that identifies one guest run — one *cell* of the paper's
/// run matrix: hardware configuration, VM, program, inputs, dispatch
/// scheme, build options and instruction budget.
///
/// The free functions below ([`run_source`], [`run_lvm`], ...) thread
/// these through as positional arguments, which was tolerable for two
/// call sites and is not for a sweep driver that builds hundreds of
/// cells. A `RunRequest` is the named bundle: build it once, then
/// [`RunRequest::run`] it, open a [`Session`](RunRequest::session) for
/// stepwise control, or hand it to
/// [`differential_check`](crate::differential_check) for the fault
/// guard.
#[derive(Debug, Clone)]
pub struct RunRequest<'a> {
    /// Simulated-core configuration.
    pub cfg: SimConfig,
    /// Which guest VM interprets the program.
    pub vm: Vm,
    /// Benchmark source text.
    pub src: &'a str,
    /// Predefined variables (e.g. `[("N", 1000.0)]`).
    pub predefined: &'a [(&'a str, f64)],
    /// Dispatch scheme of the interpreter build.
    pub scheme: Scheme,
    /// Interpreter build options.
    pub opts: GuestOptions,
    /// Retired-instruction budget (`u64::MAX` = unbounded).
    pub max_insts: u64,
    /// Run in sampled mode under this plan instead of full detail.
    pub sample: Option<SamplingPlan>,
}

impl<'a> RunRequest<'a> {
    /// A request with the common defaults: no predefined variables,
    /// baseline scheme, default build options, unbounded budget.
    pub fn new(cfg: SimConfig, vm: Vm, src: &'a str) -> Self {
        RunRequest {
            cfg,
            vm,
            src,
            predefined: &[],
            scheme: Scheme::Baseline,
            opts: GuestOptions::default(),
            max_insts: u64::MAX,
            sample: None,
        }
    }

    /// Sets the predefined variables.
    #[must_use]
    pub fn predefined(mut self, predefined: &'a [(&'a str, f64)]) -> Self {
        self.predefined = predefined;
        self
    }

    /// Sets the dispatch scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the interpreter build options.
    #[must_use]
    pub fn opts(mut self, opts: GuestOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the retired-instruction budget.
    #[must_use]
    pub fn max_insts(mut self, max_insts: u64) -> Self {
        self.max_insts = max_insts;
        self
    }

    /// Selects sampled execution under `plan` (`None` = full detail).
    #[must_use]
    pub fn sample(mut self, plan: Option<SamplingPlan>) -> Self {
        self.sample = plan;
        self
    }

    /// The canonical identity manifest for content-addressed result
    /// caching: a versioned, deterministic text rendering of everything
    /// that can change the simulated outcome — the full [`SimConfig`]
    /// (its `Debug` form, the same canonicalization the snapshot
    /// fingerprint relies on), VM, dispatch scheme, build options,
    /// instruction budget, the predefined variables (f64s by bit
    /// pattern, so `-0.0` and NaN payloads stay distinct) and the
    /// program source itself. Cache layers hash this text to derive the
    /// entry key; the leading version line must be bumped whenever the
    /// simulator's timing model changes meaning without any field here
    /// changing, which invalidates every stale entry at once.
    pub fn cache_manifest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("scd-run-request-v1\n");
        let _ = writeln!(s, "cfg {:?}", self.cfg);
        let _ = writeln!(s, "vm {}", self.vm.name());
        let _ = writeln!(s, "scheme {}", self.scheme.name());
        let _ = writeln!(s, "opts {:?}", self.opts);
        let _ = writeln!(s, "max_insts {}", self.max_insts);
        // Only present for sampled runs, so every full-detail manifest
        // (and thus every existing cache entry) is byte-identical to
        // what it was before sampling existed.
        if let Some(plan) = &self.sample {
            let _ = writeln!(s, "{}", plan.manifest());
        }
        let _ = writeln!(s, "predefined {}", self.predefined.len());
        for (k, v) in self.predefined {
            let _ = writeln!(s, "  {} {:#018x}", k, v.to_bits());
        }
        let _ = writeln!(s, "src {}", self.src.len());
        s.push_str(self.src);
        s
    }

    /// Loads the request into a [`Session`] (machine built, not run).
    ///
    /// # Errors
    /// Returns a string describing parse or compile errors.
    pub fn session(&self) -> Result<Session, String> {
        Session::from_source(
            self.cfg.clone(),
            self.vm,
            self.src,
            self.predefined,
            self.scheme,
            self.opts,
        )
    }

    /// Runs the request end to end and validates against the oracle.
    ///
    /// # Errors
    /// Returns a string describing parse/compile errors or a
    /// [`GuestError`].
    pub fn run(&self) -> Result<GuestRun, String> {
        self.run_with(|_| {})
    }

    /// [`RunRequest::run`] with a `setup` hook run on the machine just
    /// before execution — the place to install a trace sink or tune the
    /// invariant checker.
    ///
    /// # Errors
    /// Returns a string describing parse/compile errors or a
    /// [`GuestError`].
    pub fn run_with(&self, setup: impl FnOnce(&mut Machine)) -> Result<GuestRun, String> {
        if let Some(plan) = &self.sample {
            let mut session = self.session()?;
            setup(&mut session.machine);
            return session
                .run_sampled_and_validate(self.max_insts, plan)
                .map_err(|e| e.to_string());
        }
        run_source_with(
            self.cfg.clone(),
            self.vm,
            self.src,
            self.predefined,
            self.scheme,
            self.opts,
            self.max_insts,
            setup,
        )
    }
}

/// Compiles a benchmark source for the given VM and runs it end to end.
///
/// # Errors
/// Returns a string describing parse/compile errors or a [`GuestError`].
pub fn run_source(
    cfg: SimConfig,
    vm: Vm,
    src: &str,
    predefined: &[(&str, f64)],
    scheme: Scheme,
    opts: GuestOptions,
    max_insts: u64,
) -> Result<GuestRun, String> {
    run_source_with(cfg, vm, src, predefined, scheme, opts, max_insts, |_| {})
}

/// [`run_source`] with a `setup` hook run on the machine just before
/// execution — the place to install a trace sink or tune the invariant
/// checker.
///
/// # Errors
/// Returns a string describing parse/compile errors or a [`GuestError`].
#[allow(clippy::too_many_arguments)]
pub fn run_source_with(
    cfg: SimConfig,
    vm: Vm,
    src: &str,
    predefined: &[(&str, f64)],
    scheme: Scheme,
    opts: GuestOptions,
    max_insts: u64,
    setup: impl FnOnce(&mut Machine),
) -> Result<GuestRun, String> {
    let script = luma::parser::parse(src).map_err(|e| e.to_string())?;
    match vm {
        Vm::Lvm => {
            let (p, init) =
                luma::lvm::compile_lvm(&script, predefined).map_err(|e| e.to_string())?;
            run_lvm_with(cfg, &p, &init, scheme, opts, max_insts, setup).map_err(|e| e.to_string())
        }
        Vm::Svm => {
            let (p, init) =
                luma::svm::compile_svm(&script, predefined).map_err(|e| e.to_string())?;
            run_svm_with(cfg, &p, &init, scheme, opts, max_insts, setup).map_err(|e| e.to_string())
        }
    }
}
