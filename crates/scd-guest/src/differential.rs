//! The fault-injection differential guard.
//!
//! SCD's entire safety argument is that its micro-architectural state —
//! JTEs overlaid on the BTB, predictors, caches, TLBs — is a *hint*,
//! never an oracle: corrupting or losing any of it may change timing but
//! can never change what the guest computes. This module turns that
//! argument into an executable check. It runs the same guest twice, once
//! clean and once under a seeded [`FaultPlan`], validates both runs
//! against the host oracle, and then compares the two machines'
//! architectural state bit for bit with
//! [`diff_architectural`](scd_sim::diff_architectural).
//!
//! On divergence the guard dumps the tail of the faulted run's trace (a
//! bounded [`RingSink`] window ending at the divergence) to a JSONL file
//! so the failure can be replayed and minimized offline.

use crate::runner::{GuestRun, RunRequest};
use scd_sim::report::take_and_dump;
use scd_sim::{diff_architectural, FaultPlan, LockstepSink, RingSink};
use std::fmt;
use std::path::PathBuf;

/// A passed differential check: both runs validated against the oracle
/// and their architectural state is bit-identical.
#[derive(Debug)]
pub struct DifferentialReport {
    /// The fault plan's name.
    pub plan: &'static str,
    /// Faults actually injected into the faulted run.
    pub injected: u64,
    /// The clean run's validated result.
    pub clean: GuestRun,
    /// The faulted run's validated result (timing stats may differ from
    /// `clean`; architectural results do not).
    pub faulted: GuestRun,
}

/// A failed differential check.
#[derive(Debug)]
pub enum DifferentialError {
    /// The guest would not load (parse/compile failure).
    Setup(String),
    /// The clean (no-fault) run itself failed — not a fault-injection
    /// finding, the baseline is broken.
    Clean(String),
    /// The faulted run trapped or failed oracle validation.
    Faulted {
        /// The fault plan's name.
        plan: &'static str,
        /// What went wrong.
        detail: String,
        /// Where the trace window was dumped, if writable.
        dump: Option<PathBuf>,
    },
    /// Both runs completed but architectural state differs — the
    /// hint-not-oracle property is violated.
    Divergence {
        /// The fault plan's name.
        plan: &'static str,
        /// First architectural difference found.
        detail: String,
        /// Where the trace window was dumped, if writable.
        dump: Option<PathBuf>,
    },
}

impl fmt::Display for DifferentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DifferentialError::Setup(e) => write!(f, "differential setup failed: {e}"),
            DifferentialError::Clean(e) => write!(f, "clean run failed: {e}"),
            DifferentialError::Faulted { plan, detail, dump } => {
                write!(f, "faulted run under plan `{plan}` failed: {detail}")?;
                if let Some(p) = dump {
                    write!(f, " (trace window: {})", p.display())?;
                }
                Ok(())
            }
            DifferentialError::Divergence { plan, detail, dump } => {
                write!(f, "architectural divergence under plan `{plan}`: {detail}")?;
                if let Some(p) = dump {
                    write!(f, " (trace window: {})", p.display())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DifferentialError {}

/// Runs `req` clean and under `plan`, proving the faulted run
/// architecturally identical.
///
/// The faulted machine carries a [`RingSink`] of the last `window`
/// retirement events (fault injections included); on any failure the
/// window is dumped next to the error. Timing statistics are allowed —
/// expected, even — to differ: a lost JTE sends its dispatch down the
/// slow path, so the faulted run retires *at least* as many instructions
/// as the clean one.
///
/// # Errors
/// Returns a [`DifferentialError`] describing the first failed stage.
pub fn differential_check(
    req: &RunRequest<'_>,
    plan: FaultPlan,
    window: usize,
) -> Result<DifferentialReport, DifferentialError> {
    let plan_name = plan.name();
    let max_insts = req.max_insts;

    // The clean run carries the architectural oracle: a lockstep
    // divergence here means the cycle model itself is wrong, which would
    // make the clean-vs-faulted comparison below meaningless.
    let mut clean = req.session().map_err(DifferentialError::Setup)?;
    clean.machine.set_trace_sink(Box::new(LockstepSink::new(&clean.machine)));
    let clean_run =
        clean.run_and_validate(max_insts).map_err(|e| DifferentialError::Clean(e.to_string()))?;
    if let Some(sink) = clean
        .machine
        .take_trace_sink()
        .and_then(scd_sim::downcast_sink::<LockstepSink>)
    {
        if let Some(d) = sink.divergence() {
            let dump = sink.dump("clean-lockstep");
            let mut detail = format!("clean run diverged from the oracle: {d}");
            if let Some(p) = &dump {
                detail.push_str(&format!(" (trace window: {})", p.display()));
            }
            return Err(DifferentialError::Clean(detail));
        }
    }

    let mut faulted = req.session().map_err(DifferentialError::Setup)?;
    faulted.machine.set_trace_sink(Box::new(RingSink::new(window.max(1))));
    faulted.machine.set_fault_plan(plan);

    let faulted_run = match faulted.machine.run(max_insts) {
        Ok(exit) => match faulted.validate(&exit) {
            Ok(run) => run,
            Err(e) => {
                return Err(DifferentialError::Faulted {
                    plan: plan_name,
                    detail: e.to_string(),
                    dump: take_and_dump(plan_name, &mut faulted.machine),
                })
            }
        },
        Err(e) => {
            return Err(DifferentialError::Faulted {
                plan: plan_name,
                detail: e.to_string(),
                dump: take_and_dump(plan_name, &mut faulted.machine),
            })
        }
    };

    if let Some(detail) = diff_architectural(&clean.machine, &faulted.machine) {
        return Err(DifferentialError::Divergence {
            plan: plan_name,
            detail,
            dump: take_and_dump(plan_name, &mut faulted.machine),
        });
    }

    let injected = faulted.machine.fault_plan().map_or(0, |p| p.injected());
    Ok(DifferentialReport { plan: plan_name, injected, clean: clean_run, faulted: faulted_run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scheme;
    use crate::runner::Vm;

    const SRC: &str = "var s = 0; for i = 1, N { s = s + i * i % 13; } emit(s);";
    const N: [(&str, f64); 1] = [("N", 300.0)];

    fn req(vm: Vm) -> RunRequest<'static> {
        RunRequest::new(scd_sim::SimConfig::embedded_a5(), vm, SRC)
            .predefined(&N)
            .scheme(Scheme::Scd)
            .max_insts(200_000_000)
    }

    #[test]
    fn guard_passes_on_clean_guest() {
        for plan in FaultPlan::standard_plans(42) {
            let report = differential_check(&req(Vm::Lvm), plan, 256)
                .expect("fault injection must not change architectural results");
            assert!(report.injected > 0, "plan never fired; weaken the period");
            assert_eq!(report.clean.checksum, report.faulted.checksum);
        }
    }

    #[test]
    fn faults_never_shorten_the_retired_path() {
        let report =
            differential_check(&req(Vm::Svm), FaultPlan::jte_corruption(7), 256).unwrap();
        assert!(report.faulted.stats.instructions >= report.clean.stats.instructions);
    }
}
