//! The SVM guest interpreter: the reproduction of the paper's
//! SpiderMonkey interpreter. Stack-based, one-byte opcodes,
//! variable-length instructions, a 229-entry dispatch table, and —
//! crucially — *multiple paths to the dispatcher*: several handlers
//! (Call, Jump, JumpIfFalse/True, Lt, Le) fetch the next bytecode at
//! their own tail, like SpiderMonkey's FUNCALL/BRANCH/LT. In the SCD
//! build only some of those early-fetch sites get the `.op` suffix
//! (Section III-C), which is why the stack VM benefits less from SCD
//! than the register VM, exactly as in the paper.

use crate::common::{regs, Guest, GuestOptions, Scheme};
use crate::layout::{self, Image};
use luma::svm::bytecode::{builtin_id, Op, NUM_IMPLEMENTED, NUM_OPS};
use scd_isa::{Asm, FReg, LoadOp, Reg, Rounding};
use scd_sim::{Annotations, VbbiHint};

const A0: Reg = Reg::A0;
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const T2: Reg = Reg::T2;
const T3: Reg = Reg::T3;
const T4: Reg = Reg::T4;
const T5: Reg = Reg::T5;
const T6: Reg = Reg::T6;
const FT0: FReg = FReg::FT0;
const FT1: FReg = FReg::FT1;
const FT2: FReg = FReg::FT2;
const FT3: FReg = FReg::FT3;
const FT4: FReg = FReg::FT4;

const SP: Reg = regs::SP; // operand stack pointer (s3)
const KB: Reg = regs::SVM_KBASE; // constants base (a6)

const TWO_POW_53_BITS: i64 = 0x4340_0000_0000_0000;

/// The early-fetch sites that receive the `.op` suffix in the SCD build.
/// The paper patched three locations in SpiderMonkey: the default fetch,
/// FUNCALL's tail, and the common macro shared by frequent bytecodes;
/// the remaining private tails (branches, compares, the rarer
/// variable-length forms) stay uncovered, which is why the stack VM
/// benefits less from SCD than the register VM.
fn scd_patched(op: Op) -> bool {
    matches!(op, Op::Call | Op::GetLocal | Op::SetLocal | Op::PushConst)
}

struct Builder<'i> {
    a: Asm,
    img: &'i Image,
    scheme: Scheme,
    opts: GuestOptions,
    fresh: u32,
    ann: Annotations,
}

impl<'i> Builder<'i> {
    fn fresh(&mut self, p: &str) -> String {
        self.fresh += 1;
        format!("{p}_{}", self.fresh)
    }

    fn emit_bookkeeping(&mut self, stub: &str) {
        self.a.lbu(T6, layout::CTL_HOOK_FLAG, regs::CTL);
        self.a.bnez(T6, stub);
        self.a.ld(T6, layout::CTL_DISPATCH_COUNT, regs::CTL);
        self.a.addi(T6, T6, 1);
        self.a.sd(T6, layout::CTL_DISPATCH_COUNT, regs::CTL);
    }

    fn emit_hook_stub(&mut self, stub: &str) {
        self.a.label(stub);
        for k in 0..6 {
            self.a.sd(Reg::new(10 + k), -8 * (k as i64 + 1), Reg::SP);
        }
        for k in 0..6 {
            self.a.li(Reg::new(10 + k), k as i64);
        }
        for k in 0..6 {
            self.a.ld(Reg::new(10 + k), -8 * (k as i64 + 1), Reg::SP);
        }
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    /// A full dispatch site: bookkeeping + fetch + decode + table jump.
    /// `use_scd` selects the `.op`/`bop`/`jru` form (only the common
    /// dispatcher uses it; uncovered private tails always pass false).
    fn emit_dispatch_site(&mut self, use_scd: bool) {
        let start = self.a.here();
        let stub = self.fresh("hookstub");
        let bad = self.fresh("badop");

        if self.opts.production_weight {
            self.emit_bookkeeping(&stub);
        }
        if use_scd {
            self.a.load_op(LoadOp::Lbu, 0, A0, 0, regs::VPC);
        } else {
            self.a.lbu(A0, 0, regs::VPC);
        }
        self.a.addi(regs::VPC, regs::VPC, 1);
        if use_scd {
            self.a.label("decode"); // re-entry point for patched tails
            self.a.bop(0);
        }
        self.a.sltiu(T0, A0, NUM_OPS as i64);
        self.a.beqz(T0, &bad);
        self.a.slli(T1, A0, 3);
        self.a.add(T1, T1, regs::JT);
        self.a.ld(T2, 0, T1);
        let jump_pc = self.a.here();
        if use_scd {
            self.a.jru(0, T2);
        } else {
            self.a.jr(T2);
        }
        let end = self.a.here();
        self.ann.dispatch_ranges.push((start, end));
        self.ann.dispatch_jumps.push(jump_pc);
        self.ann.vbbi_hints.push(VbbiHint { jump_pc, hint_reg: A0, mask: 0xFF });

        self.a.label(&bad);
        self.a.inst(scd_isa::Inst::Ebreak);
        if self.opts.production_weight {
            self.emit_hook_stub(&stub);
        }
    }

    /// A *patched* private tail in the SCD build: `.op` fetch, then
    /// re-enter the common dispatcher at its `bop`.
    fn emit_patched_tail(&mut self) {
        let start = self.a.here();
        let stub = self.fresh("hookstub");
        if self.opts.production_weight {
            self.emit_bookkeeping(&stub);
        }
        self.a.load_op(LoadOp::Lbu, 0, A0, 0, regs::VPC);
        self.a.addi(regs::VPC, regs::VPC, 1);
        let end = self.a.here();
        self.ann.dispatch_ranges.push((start, end));
        self.a.j("decode");
        if self.opts.production_weight {
            self.emit_hook_stub(&stub);
        }
    }

    /// Handler epilogue for `op`.
    fn next(&mut self, op: Op) {
        match self.scheme {
            Scheme::Threaded => self.emit_dispatch_site(false),
            Scheme::Scd => {
                if op.has_private_tail() {
                    if scd_patched(op) {
                        self.emit_patched_tail();
                    } else {
                        // Uncovered path: plain private dispatch.
                        self.emit_dispatch_site(false);
                    }
                } else {
                    self.a.j("dispatch");
                }
            }
            Scheme::Baseline => {
                if op.has_private_tail() {
                    self.emit_dispatch_site(false);
                } else {
                    self.a.j("dispatch");
                }
            }
        }
    }

    // ---- stack & operand helpers ----

    fn push(&mut self, v: Reg) {
        self.a.sd(v, 0, SP);
        self.a.addi(SP, SP, 8);
    }

    fn pop(&mut self, v: Reg) {
        self.a.addi(SP, SP, -8);
        self.a.ld(v, 0, SP);
    }

    fn rd_u8(&mut self, dst: Reg) {
        self.a.lbu(dst, 0, regs::VPC);
        self.a.addi(regs::VPC, regs::VPC, 1);
    }

    fn rd_i8(&mut self, dst: Reg) {
        self.a.lb(dst, 0, regs::VPC);
        self.a.addi(regs::VPC, regs::VPC, 1);
    }

    fn rd_u16(&mut self, dst: Reg) {
        self.a.lhu(dst, 0, regs::VPC);
        self.a.addi(regs::VPC, regs::VPC, 2);
    }

    fn rd_i16(&mut self, dst: Reg) {
        self.a.lh(dst, 0, regs::VPC);
        self.a.addi(regs::VPC, regs::VPC, 2);
    }

    fn check_num(&mut self, v: Reg, tmp: Reg, trap: &str) {
        self.a.and(tmp, v, regs::BOX);
        self.a.beq(tmp, regs::BOX, trap);
    }

    fn check_array(&mut self, v: Reg, tmp: Reg, trap: &str) {
        self.a.srli(tmp, v, 44);
        self.a.bne(tmp, regs::TAG_ARR_HI, trap);
    }

    fn payload(&mut self, dst: Reg, v: Reg) {
        self.a.slli(dst, v, 20);
        self.a.srli(dst, dst, 20);
    }

    fn bool_value(&mut self, dst: Reg, flag: Reg) {
        self.a.slli(flag, flag, 44);
        self.a.add(dst, regs::FALSE, flag);
    }

    fn floor_fp(&mut self, dst: FReg, x: FReg, tmp: Reg, skip: &str) {
        self.a.fop(scd_isa::FpOp::FsgnjD, dst, x, x);
        self.a.li(tmp, TWO_POW_53_BITS);
        self.a.fmv_d_x(FT3, tmp);
        self.a.fop(scd_isa::FpOp::FsgnjxD, FT4, x, x);
        self.a.flt(tmp, FT4, FT3);
        self.a.beqz(tmp, skip);
        self.a.fcvt_l_d(tmp, x, Rounding::Rdn);
        self.a.fcvt_d_l(dst, tmp);
        self.a.label(skip);
    }

    /// Binary numeric op over the top two stack slots; the result
    /// replaces them. `f` emits the FP computation FT0 (x) op FT1 (y)
    /// into FT2.
    fn binop(&mut self, op: Op, f: impl FnOnce(&mut Self)) {
        let trap = self.fresh("trap");
        self.a.ld(T3, -8, SP); // y
        self.a.ld(T2, -16, SP); // x
        self.check_num(T2, T4, &trap);
        self.check_num(T3, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fmv_d_x(FT1, T3);
        f(self);
        self.a.fmv_x_d(T5, FT2);
        self.a.sd(T5, -16, SP);
        self.a.addi(SP, SP, -8);
        self.next(op);
        self.a.label(&trap);
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    /// Numeric comparison over the top two slots, boolean result.
    fn cmpop(&mut self, op: Op) {
        let trap = self.fresh("trap");
        self.a.ld(T3, -8, SP);
        self.a.ld(T2, -16, SP);
        self.check_num(T2, T4, &trap);
        self.check_num(T3, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fmv_d_x(FT1, T3);
        match op {
            Op::Lt => self.a.flt(T5, FT0, FT1),
            Op::Le => self.a.fle(T5, FT0, FT1),
            Op::Gt => self.a.flt(T5, FT1, FT0),
            Op::Ge => self.a.fle(T5, FT1, FT0),
            _ => unreachable!("not an ordering comparison"),
        };
        self.bool_value(T5, T5);
        self.a.sd(T5, -16, SP);
        self.a.addi(SP, SP, -8);
        self.next(op);
        self.a.label(&trap);
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    /// Array-allocation tail: length (integer) in `len`; pushes the boxed
    /// reference. Clobbers t3..t6.
    fn alloc_array(&mut self, len: Reg, op: Op) {
        let trap = self.fresh("trap");
        let fill = self.fresh("fill");
        let done = self.fresh("filldone");
        self.a.slli(T3, len, 3);
        self.a.addi(T3, T3, 16);
        self.a.mv(T4, regs::HEAP);
        self.a.add(regs::HEAP, regs::HEAP, T3);
        self.a.li(T5, (layout::HEAP_BASE + layout::HEAP_SIZE) as i64);
        self.a.bltu(T5, regs::HEAP, &trap);
        self.a.sd(len, 0, T4);
        self.a.sd(len, 8, T4);
        self.a.addi(T5, T4, 16);
        self.a.add(T6, T5, T3);
        self.a.addi(T6, T6, -16);
        self.a.label(&fill);
        self.a.beq(T5, T6, &done);
        self.a.sd(regs::BOX, 0, T5);
        self.a.addi(T5, T5, 8);
        self.a.j(&fill);
        self.a.label(&done);
        self.a.slli(T5, regs::TAG_ARR_HI, 44);
        self.a.or(T5, T5, T4);
        self.push(T5);
        self.next(op);
        self.a.label(&trap);
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    /// Element address: array value in `arr`, *integer* index in `idx`;
    /// leaves the element address in t4. Clobbers t4..t6.
    fn elem_addr_int(&mut self, arr: Reg, idx: Reg, trap: &str) {
        self.check_array(arr, T4, trap);
        self.payload(T4, arr);
        self.a.ld(T6, 0, T4);
        self.a.bgeu(idx, T6, trap);
        self.a.slli(T5, idx, 3);
        self.a.add(T4, T4, T5);
        self.a.addi(T4, T4, 16);
    }

    fn emit_handler(&mut self, op: Op) {
        let trap = self.fresh("trap");
        match op {
            Op::Nop => self.next(op),
            Op::PushConst => {
                self.rd_u16(T0);
                self.a.slli(T0, T0, 3);
                self.a.add(T0, T0, KB);
                self.a.ld(T2, 0, T0);
                self.push(T2);
                self.next(op);
            }
            Op::PushInt8 => {
                self.rd_i8(T0);
                self.a.fcvt_d_l(FT0, T0);
                self.a.fmv_x_d(T2, FT0);
                self.push(T2);
                self.next(op);
            }
            Op::PushInt16 => {
                self.rd_i16(T0);
                self.a.fcvt_d_l(FT0, T0);
                self.a.fmv_x_d(T2, FT0);
                self.push(T2);
                self.next(op);
            }
            Op::PushNil => {
                self.push(regs::BOX);
                self.next(op);
            }
            Op::PushTrue => {
                self.a.addi(T0, regs::TAG_ARR_HI, -1); // 0xFFFF2 = true prefix
                self.a.slli(T0, T0, 44);
                self.push(T0);
                self.next(op);
            }
            Op::PushFalse => {
                self.push(regs::FALSE);
                self.next(op);
            }
            Op::PushConst0
            | Op::PushConst1
            | Op::PushConst2
            | Op::PushConst3
            | Op::PushConst4
            | Op::PushConst5
            | Op::PushConst6
            | Op::PushConst7 => {
                let k = (op as u8 - Op::PushConst0 as u8) as i64;
                self.a.ld(T2, 8 * k, KB);
                self.push(T2);
                self.next(op);
            }
            Op::GetLocal => {
                self.rd_u8(T0);
                self.a.slli(T0, T0, 3);
                self.a.add(T0, T0, regs::BASE);
                self.a.ld(T2, 0, T0);
                self.push(T2);
                self.next(op);
            }
            Op::SetLocal => {
                self.rd_u8(T0);
                self.a.slli(T0, T0, 3);
                self.a.add(T0, T0, regs::BASE);
                self.pop(T2);
                self.a.sd(T2, 0, T0);
                self.next(op);
            }
            Op::GetLocal0
            | Op::GetLocal1
            | Op::GetLocal2
            | Op::GetLocal3
            | Op::GetLocal4
            | Op::GetLocal5
            | Op::GetLocal6
            | Op::GetLocal7 => {
                let n = (op as u8 - Op::GetLocal0 as u8) as i64;
                self.a.ld(T2, 8 * n, regs::BASE);
                self.push(T2);
                self.next(op);
            }
            Op::SetLocal0 | Op::SetLocal1 | Op::SetLocal2 | Op::SetLocal3 => {
                let n = (op as u8 - Op::SetLocal0 as u8) as i64;
                self.pop(T2);
                self.a.sd(T2, 8 * n, regs::BASE);
                self.next(op);
            }
            Op::GetGlobal => {
                self.rd_u16(T0);
                self.a.slli(T0, T0, 3);
                self.a.add(T0, T0, regs::GLOBALS);
                self.a.ld(T2, 0, T0);
                self.push(T2);
                self.next(op);
            }
            Op::SetGlobal => {
                self.rd_u16(T0);
                self.a.slli(T0, T0, 3);
                self.a.add(T0, T0, regs::GLOBALS);
                self.pop(T2);
                self.a.sd(T2, 0, T0);
                self.next(op);
            }
            Op::Pop => {
                self.a.addi(SP, SP, -8);
                self.next(op);
            }
            Op::Dup => {
                self.a.ld(T2, -8, SP);
                self.push(T2);
                self.next(op);
            }
            Op::Add => self.binop(op, |b| {
                b.a.fadd(FT2, FT0, FT1);
            }),
            Op::Sub => self.binop(op, |b| {
                b.a.fsub(FT2, FT0, FT1);
            }),
            Op::Mul => self.binop(op, |b| {
                b.a.fmul(FT2, FT0, FT1);
            }),
            Op::Div => self.binop(op, |b| {
                b.a.fdiv(FT2, FT0, FT1);
            }),
            Op::Mod => {
                let skip = self.fresh("modfl");
                self.binop(op, |b| {
                    b.a.fdiv(FT2, FT0, FT1);
                    b.floor_fp(FT2, FT2, T6, &skip);
                    b.a.fmul(FT2, FT2, FT1);
                    b.a.fsub(FT2, FT0, FT2);
                });
            }
            Op::Neg => {
                self.a.ld(T2, -8, SP);
                self.check_num(T2, T4, &trap);
                self.a.fmv_d_x(FT0, T2);
                self.a.fop(scd_isa::FpOp::FsgnjnD, FT1, FT0, FT0);
                self.a.fmv_x_d(T5, FT1);
                self.a.sd(T5, -8, SP);
                self.next(op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Not => {
                let one = self.fresh("notf");
                let done = self.fresh("notd");
                self.a.ld(T2, -8, SP);
                self.a.beq(T2, regs::BOX, &one);
                self.a.beq(T2, regs::FALSE, &one);
                self.a.li(T5, 0);
                self.a.j(&done);
                self.a.label(&one);
                self.a.li(T5, 1);
                self.a.label(&done);
                self.bool_value(T5, T5);
                self.a.sd(T5, -8, SP);
                self.next(op);
            }
            Op::Eq | Op::Ne => {
                let boxed = self.fresh("eqbx");
                let join = self.fresh("eqjn");
                self.a.ld(T3, -8, SP);
                self.a.ld(T2, -16, SP);
                self.a.and(T4, T2, regs::BOX);
                self.a.beq(T4, regs::BOX, &boxed);
                self.a.and(T4, T3, regs::BOX);
                self.a.beq(T4, regs::BOX, &boxed);
                self.a.fmv_d_x(FT0, T2);
                self.a.fmv_d_x(FT1, T3);
                self.a.feq(T5, FT0, FT1);
                self.a.j(&join);
                self.a.label(&boxed);
                self.a.xor(T5, T2, T3);
                self.a.sltiu(T5, T5, 1);
                self.a.label(&join);
                if op == Op::Ne {
                    self.a.xori(T5, T5, 1);
                }
                self.bool_value(T5, T5);
                self.a.sd(T5, -16, SP);
                self.a.addi(SP, SP, -8);
                self.next(op);
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge => self.cmpop(op),
            Op::Jump => {
                self.rd_i16(T0);
                self.a.add(regs::VPC, regs::VPC, T0);
                self.next(op);
            }
            Op::JumpIfFalse | Op::JumpIfTrue => {
                let taken = self.fresh("jtk");
                let fall = self.fresh("jft");
                self.rd_i16(T0);
                self.pop(T2);
                if op == Op::JumpIfFalse {
                    self.a.beq(T2, regs::BOX, &taken);
                    self.a.beq(T2, regs::FALSE, &taken);
                    self.a.j(&fall);
                } else {
                    self.a.beq(T2, regs::BOX, &fall);
                    self.a.beq(T2, regs::FALSE, &fall);
                }
                self.a.label(&taken);
                self.a.add(regs::VPC, regs::VPC, T0);
                self.a.label(&fall);
                self.next(op);
            }
            Op::PushFn => {
                self.rd_u16(T0);
                self.a.addi(T1, regs::TAG_ARR_HI, 1);
                self.a.slli(T1, T1, 44);
                self.a.or(T1, T1, T0);
                self.push(T1);
                self.next(op);
            }
            Op::Call => {
                let fill = self.fresh("cfill");
                let done = self.fresh("cfdone");
                self.rd_u8(T0); // argc
                self.a.slli(T1, T0, 3);
                self.a.sub(T2, SP, T1); // t2 = &arg0 = new locals base
                self.a.ld(T3, -8, T2); // function value
                self.a.srli(T4, T3, 44);
                self.a.addi(T5, regs::TAG_ARR_HI, 1);
                self.a.bne(T4, T5, &trap);
                self.payload(T4, T3);
                self.a.slli(T4, T4, 4);
                self.a.add(T4, T4, regs::FUNCTAB);
                self.a.lwu(T5, 0, T4); // code_off
                self.a.lwu(T6, 8, T4); // nlocals
                // Push the frame record.
                self.a.sd(regs::VPC, 0, regs::FRAMES);
                self.a.sd(regs::BASE, 8, regs::FRAMES);
                self.a.addi(T4, T2, -8);
                self.a.sd(T4, 16, regs::FRAMES); // fun slot address
                self.a.addi(regs::FRAMES, regs::FRAMES, 24);
                self.a
                    .li(T4, (layout::FRAME_BASE + layout::FRAME_SIZE) as i64);
                self.a.bgeu(regs::FRAMES, T4, &trap);
                // Switch frames.
                self.a.mv(regs::BASE, T2);
                self.a.slli(T6, T6, 3);
                self.a.add(T6, T6, regs::BASE); // new sp = locals + nlocals*8
                self.a.bltu(regs::CTL, T6, &trap); // stack overflow
                // Nil-fill the non-parameter locals (from sp to new sp).
                self.a.label(&fill);
                self.a.beq(SP, T6, &done);
                self.a.sd(regs::BOX, 0, SP);
                self.a.addi(SP, SP, 8);
                self.a.j(&fill);
                self.a.label(&done);
                self.a.add(regs::VPC, regs::CODE, T5);
                self.next(op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Return | Op::ReturnVal => {
                let halt = self.fresh("retha");
                if op == Op::ReturnVal {
                    self.pop(T2);
                } else {
                    self.a.mv(T2, regs::BOX);
                }
                self.a.li(T3, layout::FRAME_BASE as i64);
                self.a.beq(regs::FRAMES, T3, &halt);
                self.a.addi(regs::FRAMES, regs::FRAMES, -24);
                self.a.ld(regs::VPC, 0, regs::FRAMES);
                self.a.ld(regs::BASE, 8, regs::FRAMES);
                self.a.ld(T4, 16, regs::FRAMES); // fun slot
                self.a.sd(T2, 0, T4); // result replaces the callee
                self.a.addi(SP, T4, 8);
                self.next(op);
                self.a.label(&halt);
                self.a.j("interp_exit");
            }
            Op::NewArray => {
                self.pop(T2);
                self.check_num(T2, T4, &trap);
                self.a.fmv_d_x(FT0, T2);
                self.a.fcvt_l_d(T2, FT0, Rounding::Rtz);
                self.alloc_array(T2, op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::GetElem => {
                self.pop(T3); // index value
                self.pop(T2); // array
                self.check_num(T3, T4, &trap);
                self.a.fmv_d_x(FT0, T3);
                self.a.fcvt_l_d(T3, FT0, Rounding::Rtz);
                self.elem_addr_int(T2, T3, &trap);
                self.a.ld(T2, 0, T4);
                self.push(T2);
                self.next(op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::SetElem => {
                self.pop(T0); // value
                self.pop(T3); // index
                self.pop(T2); // array
                self.check_num(T3, T4, &trap);
                self.a.fmv_d_x(FT0, T3);
                self.a.fcvt_l_d(T3, FT0, Rounding::Rtz);
                self.elem_addr_int(T2, T3, &trap);
                self.a.sd(T0, 0, T4);
                self.next(op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::GetElemI => {
                self.rd_u8(T3);
                self.pop(T2);
                self.elem_addr_int(T2, T3, &trap);
                self.a.ld(T2, 0, T4);
                self.push(T2);
                self.next(op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::SetElemI => {
                self.rd_u8(T3);
                self.pop(T0); // value
                self.pop(T2); // array
                self.elem_addr_int(T2, T3, &trap);
                self.a.sd(T0, 0, T4);
                self.next(op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Len => {
                self.pop(T2);
                self.check_array(T2, T4, &trap);
                self.payload(T4, T2);
                self.a.ld(T5, 0, T4);
                self.a.fcvt_d_l(FT0, T5);
                self.a.fmv_x_d(T5, FT0);
                self.push(T5);
                self.next(op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Builtin => self.emit_builtin(),
            Op::Inc | Op::Dec => {
                self.a.ld(T2, -8, SP);
                self.check_num(T2, T4, &trap);
                self.a.fmv_d_x(FT0, T2);
                self.a.li(T0, 0x3FF0_0000_0000_0000); // 1.0
                self.a.fmv_d_x(FT1, T0);
                if op == Op::Inc {
                    self.a.fadd(FT2, FT0, FT1);
                } else {
                    self.a.fsub(FT2, FT0, FT1);
                }
                self.a.fmv_x_d(T5, FT2);
                self.a.sd(T5, -8, SP);
                self.next(op);
                self.a.label(&trap);
                self.a.inst(scd_isa::Inst::Ebreak);
            }
            Op::Halt => {
                self.a.j("interp_exit");
            }
        }
    }

    fn emit_builtin(&mut self) {
        let trap = self.fresh("trap");
        self.rd_u8(T1); // builtin id
        let tag = self.fresh;
        let arm = |id: u32, tag: u32| format!("bi_{id}_{tag}");
        for id in 0..builtin_id::COUNT {
            self.a.addi(T3, Reg::ZERO, id as i64);
            self.a.beq(T1, T3, &arm(id, tag));
        }
        self.a.inst(scd_isa::Inst::Ebreak);

        // floor
        self.a.label(&arm(builtin_id::FLOOR, tag));
        self.a.ld(T2, -8, SP);
        self.check_num(T2, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        let skip = self.fresh("bifl");
        self.floor_fp(FT1, FT0, T4, &skip);
        self.a.fmv_x_d(T5, FT1);
        self.a.sd(T5, -8, SP);
        self.next(Op::Builtin);

        // sqrt
        self.a.label(&arm(builtin_id::SQRT, tag));
        self.a.ld(T2, -8, SP);
        self.check_num(T2, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fsqrt(FT1, FT0);
        self.a.fmv_x_d(T5, FT1);
        self.a.sd(T5, -8, SP);
        self.next(Op::Builtin);

        // abs
        self.a.label(&arm(builtin_id::ABS, tag));
        self.a.ld(T2, -8, SP);
        self.check_num(T2, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fop(scd_isa::FpOp::FsgnjxD, FT1, FT0, FT0);
        self.a.fmv_x_d(T5, FT1);
        self.a.sd(T5, -8, SP);
        self.next(Op::Builtin);

        // min / max
        for id in [builtin_id::MIN, builtin_id::MAX] {
            self.a.label(&arm(id, tag));
            self.a.ld(T3, -8, SP);
            self.a.ld(T2, -16, SP);
            self.check_num(T2, T4, &trap);
            self.check_num(T3, T4, &trap);
            self.a.fmv_d_x(FT0, T2);
            self.a.fmv_d_x(FT1, T3);
            let op = if id == builtin_id::MIN {
                scd_isa::FpOp::FminD
            } else {
                scd_isa::FpOp::FmaxD
            };
            self.a.fop(op, FT2, FT0, FT1);
            self.a.fmv_x_d(T5, FT2);
            self.a.sd(T5, -16, SP);
            self.a.addi(SP, SP, -8);
            self.next(Op::Builtin);
        }

        // emit (value stays on the stack)
        self.a.label(&arm(builtin_id::EMIT, tag));
        self.a.ld(T2, -8, SP);
        self.a.slli(T4, regs::CHK, 1);
        self.a.srli(T5, regs::CHK, 63);
        self.a.or(T4, T4, T5);
        self.a.xor(regs::CHK, T4, T2);
        self.next(Op::Builtin);

        // len / array: not routed here by the compiler, but implemented
        // for completeness.
        self.a.label(&arm(builtin_id::LEN, tag));
        self.pop(T2);
        self.check_array(T2, T4, &trap);
        self.payload(T4, T2);
        self.a.ld(T5, 0, T4);
        self.a.fcvt_d_l(FT0, T5);
        self.a.fmv_x_d(T5, FT0);
        self.push(T5);
        self.next(Op::Builtin);

        self.a.label(&arm(builtin_id::ARRAY, tag));
        self.pop(T2);
        self.check_num(T2, T4, &trap);
        self.a.fmv_d_x(FT0, T2);
        self.a.fcvt_l_d(T2, FT0, Rounding::Rtz);
        self.alloc_array(T2, Op::Builtin);

        self.a.label(&trap);
        self.a.inst(scd_isa::Inst::Ebreak);
    }

    fn build(mut self) -> Guest {
        let img = self.img;
        self.a.label("entry");
        self.a.li(regs::TAG_ARR_HI, 0xFFFF3);
        self.a.li(KB, img.consts_base as i64);
        self.a.li(regs::HEAP, layout::HEAP_BASE as i64);
        self.a.li(regs::FRAMES, layout::FRAME_BASE as i64);
        self.a.li(regs::GLOBALS, layout::GLOBALS_BASE as i64);
        self.a.li(regs::BOX, luma::value::BOX as i64);
        self.a.li(regs::FUNCTAB, img.functab_base as i64);
        self.a.li(regs::CHK, 0);
        self.a.li(regs::CODE, img.code_base as i64);
        self.a.li(regs::CTL, layout::VMCTL_BASE as i64);
        self.a.li(regs::FALSE, luma::value::FALSE as i64);
        self.a.la(regs::JT, "jt");
        self.a.li(regs::BASE, layout::VSTACK_BASE as i64);
        self.a
            .li(SP, (layout::VSTACK_BASE + 8 * img.main_frame_slots) as i64);
        self.a.li(regs::VPC, (img.code_base + img.main_off) as i64);
        if self.scheme == Scheme::Scd {
            self.a.li(T0, 0xFF);
            self.a.setmask(0, T0);
        }
        self.a.li(Reg::SP, (layout::VMCTL_BASE + layout::VMCTL_SIZE) as i64);
        self.a.j("dispatch");

        self.a.label("dispatch");
        self.emit_dispatch_site(self.scheme == Scheme::Scd);

        for n in 0..NUM_IMPLEMENTED {
            let op = Op::from_u8(n as u8).expect("dense opcode numbering");
            self.a.label(&format!("h_{n}"));
            self.emit_handler(op);
        }
        // Reserved opcodes share one trapping handler.
        self.a.label("h_reserved");
        self.a.inst(scd_isa::Inst::Ebreak);

        self.a.label("interp_exit");
        if self.scheme == Scheme::Scd {
            self.a.jte_flush();
        }
        self.a.mv(Reg::A0, regs::CHK);
        self.a.li(Reg::A7, 0);
        self.a.ecall();

        self.a.ro_label("jt");
        for n in 0..NUM_OPS {
            if n < NUM_IMPLEMENTED {
                self.a.ro_addr(&format!("h_{n}"));
            } else {
                self.a.ro_addr("h_reserved");
            }
        }

        let program = self.a.finish().expect("SVM guest assembles");
        Guest { program, annotations: self.ann }
    }
}

/// Builds the SVM guest interpreter for `scheme` against a program image.
pub fn build_svm_guest(img: &Image, scheme: Scheme, opts: GuestOptions) -> Guest {
    Builder {
        a: Asm::new(layout::TEXT_BASE),
        img,
        scheme,
        opts,
        fresh: 0,
        ann: Annotations::default(),
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::build_svm_image;
    use luma::parser::parse;

    fn guest_for(src: &str, scheme: Scheme) -> Guest {
        let script = parse(src).unwrap();
        let (p, init) = luma::svm::compile_svm(&script, &[]).unwrap();
        let img = build_svm_image(&p, &init);
        build_svm_guest(&img, scheme, GuestOptions::default())
    }

    #[test]
    fn assembles_for_all_schemes() {
        for scheme in Scheme::ALL {
            let g = guest_for("emit(2 * 3);", scheme);
            assert!(g.program.insts.len() > 400);
        }
    }

    #[test]
    fn jump_table_has_229_entries() {
        let g = guest_for("emit(1);", Scheme::Baseline);
        assert_eq!(g.program.rodata.len(), 8 * NUM_OPS as usize);
        // Reserved entries all point at the shared trap handler.
        let reserved = g.program.sym("h_reserved");
        let last = u64::from_le_bytes(g.program.rodata[8 * 228..].try_into().unwrap());
        assert_eq!(last, reserved);
    }

    #[test]
    fn baseline_has_private_tails() {
        // Baseline: common site + one per private-tail handler.
        let g = guest_for("emit(1);", Scheme::Baseline);
        let privates = (0..NUM_IMPLEMENTED)
            .filter(|&n| Op::from_u8(n as u8).unwrap().has_private_tail())
            .count();
        // At least one site per private-tail handler (handlers with
        // several exit points, e.g. Builtin's arms, replicate more).
        assert!(g.annotations.dispatch_jumps.len() > privates);
    }

    #[test]
    fn scd_covers_only_patched_paths() {
        let g = guest_for("emit(1);", Scheme::Scd);
        // jru appears exactly once (common dispatcher).
        let jrus = g
            .program
            .insts
            .iter()
            .filter(|i| matches!(i, scd_isa::Inst::Jru { .. }))
            .count();
        assert_eq!(jrus, 1);
        // .op loads: common + the patched tails.
        let ops = g
            .program
            .insts
            .iter()
            .filter(|i| matches!(i, scd_isa::Inst::LoadOp { .. }))
            .count();
        let patched = (0..NUM_IMPLEMENTED)
            .filter(|&n| scd_patched(Op::from_u8(n as u8).unwrap()))
            .count();
        assert_eq!(ops, 1 + patched);
        // Uncovered private tails still use plain indirect jumps.
        let plain_jr = g
            .annotations
            .dispatch_jumps
            .len();
        assert!(plain_jr > 1);
    }
}
