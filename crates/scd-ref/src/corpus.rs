//! On-disk reproducer format for fuzz findings.
//!
//! A reproducer pins the *assembled artifact* — text words, rodata bytes,
//! section bases, and the data segment the program expects — not the
//! generator config that produced it. Regenerating from `(seed, blocks)`
//! would silently change the program whenever the generator evolves; a
//! pinned word list keeps `tests/golden/lockstep/` reproducers meaningful
//! forever.
//!
//! The format is a line-oriented text file (easy to diff and review):
//!
//! ```text
//! # scd-ref reproducer v1
//! seed=42
//! text_base=0x10000
//! rodata_base=0x10a40
//! data_base=0x100000
//! data_size=0x800
//! text
//! 00000517
//! ...
//! rodata
//! 00
//! ...
//! ```
//!
//! `seed` is provenance only — loading never re-runs the generator.

use scd_isa::Program;

/// A self-contained reproducer: everything needed to run the program on
/// both executors.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Generator seed that originally produced this program (provenance).
    pub seed: u64,
    /// The pinned program.
    pub program: Program,
    /// Base of the zero-filled scratch segment.
    pub data_base: u64,
    /// Size in bytes of that segment.
    pub data_size: u64,
}

/// Serializes a reproducer to the text format.
pub fn save(repro: &Repro) -> String {
    let mut s = String::new();
    s.push_str("# scd-ref reproducer v1\n");
    s.push_str(&format!("seed={}\n", repro.seed));
    s.push_str(&format!("text_base={:#x}\n", repro.program.text_base));
    s.push_str(&format!("rodata_base={:#x}\n", repro.program.rodata_base));
    s.push_str(&format!("data_base={:#x}\n", repro.data_base));
    s.push_str(&format!("data_size={:#x}\n", repro.data_size));
    s.push_str("text\n");
    for w in &repro.program.words {
        s.push_str(&format!("{w:08x}\n"));
    }
    s.push_str("rodata\n");
    for b in &repro.program.rodata {
        s.push_str(&format!("{b:02x}\n"));
    }
    s
}

fn parse_num(v: &str) -> Result<u64, String> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad hex `{v}`: {e}"))
    } else {
        v.parse().map_err(|e| format!("bad number `{v}`: {e}"))
    }
}

/// Parses a reproducer from the text format.
///
/// # Errors
/// A human-readable message naming the offending line.
pub fn load(text: &str) -> Result<Repro, String> {
    let mut seed = 0u64;
    let mut text_base = None;
    let mut rodata_base = None;
    let mut data_base = None;
    let mut data_size = None;
    let mut words: Vec<u32> = Vec::new();
    let mut rodata: Vec<u8> = Vec::new();
    #[derive(PartialEq)]
    enum Mode {
        Header,
        Text,
        Rodata,
    }
    let mut mode = Mode::Header;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "text" => {
                mode = Mode::Text;
                continue;
            }
            "rodata" => {
                mode = Mode::Rodata;
                continue;
            }
            _ => {}
        }
        match mode {
            Mode::Header => {
                let (k, v) = line
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: expected key=value", i + 1))?;
                let v = parse_num(v).map_err(|e| format!("line {}: {e}", i + 1))?;
                match k.trim() {
                    "seed" => seed = v,
                    "text_base" => text_base = Some(v),
                    "rodata_base" => rodata_base = Some(v),
                    "data_base" => data_base = Some(v),
                    "data_size" => data_size = Some(v),
                    other => return Err(format!("line {}: unknown key `{other}`", i + 1)),
                }
            }
            Mode::Text => {
                let w = u32::from_str_radix(line, 16)
                    .map_err(|e| format!("line {}: bad word: {e}", i + 1))?;
                words.push(w);
            }
            Mode::Rodata => {
                let b = u8::from_str_radix(line, 16)
                    .map_err(|e| format!("line {}: bad byte: {e}", i + 1))?;
                rodata.push(b);
            }
        }
    }
    let text_base = text_base.ok_or("missing text_base")?;
    let insts = words
        .iter()
        .enumerate()
        .map(|(k, w)| {
            scd_isa::decode(*w).map_err(|e| {
                format!("word {k} ({w:08x}) at {:#x}: {e:?}", text_base + 4 * k as u64)
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Repro {
        seed,
        program: Program {
            text_base,
            words,
            insts: insts.into(),
            rodata_base: rodata_base.ok_or("missing rodata_base")?,
            rodata,
            symbols: Default::default(),
        },
        data_base: data_base.ok_or("missing data_base")?,
        data_size: data_size.ok_or("missing data_size")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::RefCore;

    #[test]
    fn roundtrip_preserves_the_program_and_its_behavior() {
        let g = generate(&GenConfig::from_seed(9));
        let saved = save(&Repro {
            seed: 9,
            program: g.program.clone(),
            data_base: g.data_base,
            data_size: g.data_size,
        });
        let back = load(&saved).unwrap();
        assert_eq!(back.seed, 9);
        assert_eq!(back.program.words, g.program.words);
        assert_eq!(back.program.rodata, g.program.rodata);
        assert_eq!(back.program.text_base, g.program.text_base);
        assert_eq!(back.program.rodata_base, g.program.rodata_base);

        let run = |p: &scd_isa::Program| {
            let mut c = RefCore::from_program(p, true, 4);
            c.map("fuzzdata", g.data_base, g.data_size);
            c.run(2_000_000).unwrap()
        };
        assert_eq!(run(&g.program), run(&back.program));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load("nonsense\n").is_err());
        assert!(load("seed=1\ntext\nzz\n").is_err());
    }
}
