//! Seeded random-program generator for differential fuzzing.
//!
//! Programs are *interpreter-shaped* on purpose: the SCD extension only
//! fires on the `<load>.op` / `bop` / `jru` dispatch idiom (Figure 1 of
//! the paper), so uniform random instruction soup would never exercise
//! the JTE path. Each generated program is a bytecode loop — a rodata
//! bytecode array, a software jump table, and `blocks` random handler
//! bodies — whose dispatch tail is exactly the paper's short-circuit
//! sequence, plus enough ALU / memory / FP / call noise in the handlers
//! to stress the rest of the architectural state.
//!
//! Determinism: the only entropy source is an explicit `u64` seed fed to
//! a splitmix64 stream. Same seed, same program, bit for bit.

use scd_isa::{Asm, FReg, LoadOp, Program, Reg, Rounding, StoreOp};

/// splitmix64: tiny, seedable, and good enough for program shapes.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a stream from an explicit seed (no ambient entropy).
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)] // infallible, unlike Iterator::next
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Program-shape bias for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenBias {
    /// Default interpreter shape: a dense opcode alphabet `1..=blocks`.
    Uniform,
    /// Adversarial BTB aliasing: opcodes stride by
    /// [`ALIAS_OPCODE_STRIDE`] so every JTE of a given bid folds into a
    /// single L0 set of the two-level BTB organization, and all four
    /// Rop masks are full-width so each hostile opcode stays a distinct
    /// JTE key.
    Aliasing,
}

/// Aliasing-bias opcode stride. Under the simulator's `arm_like`
/// two-level BTB geometry (32-entry 2-way L0 = 16 sets, fold width 8) a
/// JTE's raw key is `opcode ^ (bid << 56)`, whose 8-bit XOR-fold is
/// `opcode ^ bid` for opcodes below 256. A stride-16 opcode has a zero
/// low nibble, so the fold's low nibble — the L0 set index — is just
/// `bid`: every JTE of a given bid contends for one 2-way set. (The
/// geometry constants are restated here because scd-ref depends only on
/// scd-isa, not scd-sim.)
pub const ALIAS_OPCODE_STRIDE: u64 = 16;

/// Aliasing-bias block ceiling, keeping the largest opcode
/// (`blocks * 16 = 240`) below 256 so even the narrowest `.op` load
/// width reads the whole opcode.
const ALIAS_MAX_BLOCKS: u32 = 15;

/// Knobs for one generated program.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of distinct handler blocks (= dynamic opcode alphabet).
    /// Clamped to `1..=200` (`1..=15` under the aliasing bias).
    /// Shrinking reduces this.
    pub blocks: u32,
    /// Outer iterations of the whole bytecode string.
    pub outer_iters: u32,
    /// Size of the scratch data segment in 8-byte words (power of two
    /// enforced).
    pub data_words: u32,
    /// The seed. The program is a pure function of this config.
    pub seed: u64,
    /// Program-shape bias.
    pub bias: GenBias,
}

impl GenConfig {
    /// The fuzzer's default shape for a given seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut r = Rng::new(seed ^ 0xC0FF_EE00_D15E_A5E5);
        GenConfig {
            blocks: 2 + r.below(30) as u32,
            outer_iters: 2 + r.below(6) as u32,
            data_words: 64 << r.below(3),
            seed,
            bias: GenBias::Uniform,
        }
    }

    /// The adversarial-aliasing shape for a given seed: fewer handler
    /// blocks (the strided alphabet tops out at 15), a longer bytecode
    /// string and more outer iterations so the engineered BTB
    /// contention gets hot.
    pub fn aliasing_from_seed(seed: u64) -> Self {
        let mut r = Rng::new(seed ^ 0xA11A_5ED0_BAD5_EED5);
        GenConfig {
            blocks: 4 + r.below(12) as u32,
            outer_iters: 4 + r.below(8) as u32,
            data_words: 64 << r.below(3),
            seed,
            bias: GenBias::Aliasing,
        }
    }
}

/// A generated program plus the data segment it expects mapped.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The assembled program (text + rodata).
    pub program: Program,
    /// Base of the zero-filled scratch segment the harness must map.
    pub data_base: u64,
    /// Size in bytes of that segment.
    pub data_size: u64,
}

/// Guest address of the scratch data segment.
pub const DATA_BASE: u64 = 0x10_0000;

// Register conventions inside generated programs (callee-saved so the
// occasional jal/ret pair can't clobber interpreter state):
//   s0 = data segment base     s1 = outer loop counter
//   s2 = bytecode index        s3 = jump table base
//   s4 = bytecode array base   a0 = running checksum
const DATA: Reg = Reg::S0;
const OUTER: Reg = Reg::S1;
const IDX: Reg = Reg::S2;
const TABLE: Reg = Reg::S3;
const CODE: Reg = Reg::S4;
const SUM: Reg = Reg::A0;

/// Scratch registers handler bodies may clobber freely.
const SCRATCH: [Reg; 5] = [Reg::T0, Reg::T1, Reg::T2, Reg::T4, Reg::T5];

/// Generates one program from `cfg`. Deterministic in `cfg`.
///
/// # Panics
/// Panics if assembly fails — that is a generator bug (offsets are sized
/// to stay in range), not a caller error.
pub fn generate(cfg: &GenConfig) -> Generated {
    let aliasing = cfg.bias == GenBias::Aliasing;
    let max_blocks = if aliasing { ALIAS_MAX_BLOCKS } else { 200 };
    // Opcode `j` dispatches handler `j` in uniform mode; the aliasing
    // bias spreads the alphabet to `j * stride` (jump-table slots
    // between strides fall back to handler 0, which uniform-mode
    // programs use as the string terminator and never reach here).
    let stride = if aliasing { ALIAS_OPCODE_STRIDE } else { 1 };
    let blocks = cfg.blocks.clamp(1, max_blocks) as u64;
    // Cap at 256 words so `addr_mask` (at most 2040) stays inside the
    // 12-bit signed immediate `andi` can encode.
    let data_words = (cfg.data_words.clamp(8, 256) as u64).next_power_of_two();
    let data_size = data_words * 8;
    // Mask producing 8-aligned in-segment offsets.
    let addr_mask = (data_size - 1) & !7;
    let mut r = Rng::new(cfg.seed);

    let mut a = Asm::new(0x1_0000);

    // ---- prologue ----
    a.la(DATA, "data_base_lit");
    a.ld(DATA, 0, DATA);
    a.li(OUTER, cfg.outer_iters.clamp(1, 64) as i64);
    a.la(TABLE, "table");
    a.la(CODE, "bytes");
    a.li(SUM, 0x5EED);
    // Rmask per bid: bid 2 and 3 get narrower masks so high block counts
    // alias distinct opcodes onto one Rop value — the JTE map and the BTB
    // must both tolerate that (lockstep follows the DUT's hit pattern).
    // The aliasing bias instead keeps every mask full-width: its strided
    // opcodes must reach the JTE key un-truncated so each (bid, opcode)
    // pair stays a distinct entry fighting for the same hashed set.
    let masks: [(u8, i64); 4] =
        if aliasing { [(0, 0xFF), (1, 0xFF), (2, 0xFF), (3, 0xFF)] } else { [(0, 0xFF), (1, 0xFF), (2, 0x3F), (3, 0x1F)] };
    for (bid, mask) in masks {
        a.li(Reg::T6, mask);
        a.setmask(bid, Reg::T6);
    }
    a.j("outer_head");

    // Exit sits right after the prologue so `beqz OUTER, exit` from
    // outer_head is a short backward-free branch well inside ±4 KiB.
    a.label("exit");
    a.li(Reg::A7, 0);
    a.ecall();

    a.label("outer_head");
    a.beqz(OUTER, "exit");
    a.addi(OUTER, OUTER, -1);
    a.li(IDX, 0);
    gen_dispatch(&mut a, &mut r, 0);

    // Handler 0 ends the bytecode string: back to the outer loop.
    a.label("handler0");
    a.j("outer_head");

    let mut uniq = 0u64;
    for h in 1..=blocks {
        a.label(&format!("handler{h}"));
        gen_body(&mut a, &mut r, addr_mask, &mut uniq);
        // Advance the bytecode cursor and dispatch the next opcode with
        // this handler's bid (bids rotate so all four register sets and
        // both wide and narrow masks stay hot).
        a.addi(IDX, IDX, 1);
        gen_dispatch(&mut a, &mut r, (h % 4) as u8);
    }

    // ---- rodata ----
    a.ro_label("data_base_lit");
    a.ro_word(DATA_BASE);
    // Bytecode string: random opcodes 1..=blocks, handler 0 terminates.
    // One opcode per 8-byte word; the narrow loads in the dispatch tail
    // read the low byte(s).
    a.ro_label("bytes");
    // The aliasing bias runs a longer string: set thrash only shows
    // once the working set of strided opcodes cycles a few times.
    let len = if aliasing { 24 + r.below(40) } else { 4 + r.below(28) };
    for _ in 0..len {
        a.ro_word((1 + r.below(blocks)) * stride);
    }
    a.ro_word(0);
    a.ro_label("table");
    for idx in 0..=blocks * stride {
        let h = if idx % stride == 0 { idx / stride } else { 0 };
        a.ro_addr(&format!("handler{h}"));
    }

    let program = a.finish().expect("generated program must assemble");
    Generated { program, data_base: DATA_BASE, data_size }
}

/// Emits the paper's dispatch tail: fetch the next opcode with a `.op`
/// load, `bop`, recompute the target from the software jump table, `jru`.
fn gen_dispatch(a: &mut Asm, r: &mut Rng, bid: u8) {
    a.slli(Reg::T0, IDX, 3);
    a.add(Reg::T0, CODE, Reg::T0);
    // Vary the load width: all see the same low byte (opcodes < 256 and
    // words are little-endian), but width variety exercises load_extend
    // on the .op path.
    let op = match r.below(3) {
        0 => LoadOp::Lbu,
        1 => LoadOp::Lhu,
        _ => LoadOp::Lwu,
    };
    a.load_op(op, bid, Reg::T1, 0, Reg::T0);
    a.bop(bid);
    a.slli(Reg::T2, Reg::T1, 3);
    a.add(Reg::T2, Reg::T2, TABLE);
    a.ld(Reg::T3, 0, Reg::T2);
    a.jru(bid, Reg::T3);
}

/// Emits one random handler body. Must preserve the interpreter registers
/// (DATA/OUTER/IDX/TABLE/CODE) and may do anything else architectural.
/// `uniq` numbers local labels so repeated shapes never collide.
fn gen_body(a: &mut Asm, r: &mut Rng, addr_mask: u64, uniq: &mut u64) {
    let n = 1 + r.below(8);
    for _ in 0..n {
        *uniq += 1;
        let h = *uniq;
        let rd = SCRATCH[r.below(SCRATCH.len() as u64) as usize];
        let rs = SCRATCH[r.below(SCRATCH.len() as u64) as usize];
        match r.below(12) {
            0 => {
                a.li(rd, (r.next() & 0x7FFF_FFFF) as i64 - 0x4000_0000);
            }
            1 => {
                a.add(rd, rs, SUM);
            }
            2 => {
                a.xor(rd, rs, rs);
                a.ori(rd, rd, (r.below(2047) as i64) + 1);
            }
            3 => {
                a.mul(rd, rs, SUM);
            }
            4 => {
                // div/rem with a possibly-zero divisor: the fixup
                // semantics (x/0 = -1, x%0 = x) must match bit-for-bit.
                if r.chance(1, 2) {
                    a.div(rd, SUM, rs);
                } else {
                    a.rem(rd, SUM, rs);
                }
            }
            5 => {
                // Masked store then load back.
                gen_addr(a, r, rd, addr_mask);
                let (st, ld) = match r.below(4) {
                    0 => (StoreOp::Sb, LoadOp::Lb),
                    1 => (StoreOp::Sh, LoadOp::Lh),
                    2 => (StoreOp::Sw, LoadOp::Lw),
                    _ => (StoreOp::Sd, LoadOp::Ld),
                };
                a.store(st, SUM, 0, rd);
                a.load(ld, rs, 0, rd);
            }
            6 => {
                // Sign-extending narrow load from the data segment.
                gen_addr(a, r, rd, addr_mask);
                a.lb(rs, 0, rd);
            }
            7 => {
                // FP round-trip: int -> double -> arithmetic -> int.
                a.fcvt_d_l(FReg::FT0, SUM);
                a.fcvt_d_l(FReg::FT1, rs);
                if r.chance(1, 2) {
                    a.fadd(FReg::FT2, FReg::FT0, FReg::FT1);
                } else {
                    a.fmul(FReg::FT2, FReg::FT0, FReg::FT1);
                }
                let rm = match r.below(3) {
                    0 => Rounding::Rne,
                    1 => Rounding::Rtz,
                    _ => Rounding::Rdn,
                };
                a.fcvt_l_d(rd, FReg::FT2, rm);
            }
            8 => {
                // Call/return through a tiny leaf: RAS + jalr traffic.
                a.call(&format!("leaf{h}"));
                a.j(&format!("after_leaf{h}"));
                a.label(&format!("leaf{h}"));
                a.xori(Reg::T3, SUM, 0x155);
                a.ret();
                a.label(&format!("after_leaf{h}"));
                a.add(rd, Reg::T3, rs);
            }
            9 => {
                // Small counted inner loop (conditional branch traffic).
                a.li(rd, (1 + r.below(6)) as i64);
                a.label(&format!("inner{h}"));
                a.addi(rd, rd, -1);
                a.add(SUM, SUM, rd);
                a.bnez(rd, &format!("inner{h}"));
            }
            10 => {
                // Occasional jte.flush mid-handler: every Rop valid bit
                // drops, so the very next dispatch must miss.
                if r.chance(1, 4) {
                    a.jte_flush();
                } else {
                    a.slli(rd, rs, r.below(63) as i64);
                }
            }
            _ => {
                a.srli(rd, SUM, r.below(63) as i64);
            }
        }
        // Fold the result into the checksum so divergent values cascade
        // into divergent control flow downstream.
        let rd2 = SCRATCH[r.below(SCRATCH.len() as u64) as usize];
        a.add(SUM, SUM, rd2);
    }
}

/// Emits `rd = DATA + (mix & addr_mask)` — an always-in-segment, 8-aligned
/// scratch address derived from the checksum.
fn gen_addr(a: &mut Asm, r: &mut Rng, rd: Reg, addr_mask: u64) {
    a.srli(rd, SUM, r.below(5) as i64);
    a.andi(rd, rd, addr_mask as i64);
    a.add(rd, DATA, rd);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BopHint, RefCore};

    #[test]
    fn same_seed_same_words() {
        let g1 = generate(&GenConfig::from_seed(42));
        let g2 = generate(&GenConfig::from_seed(42));
        assert_eq!(g1.program.words, g2.program.words);
        assert_eq!(g1.program.rodata, g2.program.rodata);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = generate(&GenConfig::from_seed(1));
        let g2 = generate(&GenConfig::from_seed(2));
        assert_ne!(g1.program.words, g2.program.words);
    }

    #[test]
    fn generated_programs_run_to_exit_on_the_ref() {
        for seed in 0..32u64 {
            let g = generate(&GenConfig::from_seed(seed));
            let mut c = RefCore::from_program(&g.program, true, 4);
            c.map("fuzzdata", g.data_base, g.data_size);
            match c.run(2_000_000) {
                Ok(_) => {}
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
    }

    #[test]
    fn aliasing_bias_is_deterministic_and_runs_to_exit() {
        let g1 = generate(&GenConfig::aliasing_from_seed(42));
        let g2 = generate(&GenConfig::aliasing_from_seed(42));
        assert_eq!(g1.program.words, g2.program.words);
        assert_eq!(g1.program.rodata, g2.program.rodata);
        for seed in 0..8u64 {
            let g = generate(&GenConfig::aliasing_from_seed(seed));
            let mut c = RefCore::from_program(&g.program, true, 4);
            c.map("fuzzdata", g.data_base, g.data_size);
            if let Err(e) = c.run(4_000_000) {
                panic!("aliasing seed {seed}: {e}");
            }
        }
    }

    #[test]
    fn aliasing_bias_differs_from_uniform() {
        let u = generate(&GenConfig::from_seed(5));
        let a = generate(&GenConfig::aliasing_from_seed(5));
        assert_ne!(u.program.words, a.program.words);
    }

    #[test]
    fn generated_programs_exercise_the_scd_idiom() {
        let g = generate(&GenConfig::from_seed(7));
        let mut c = RefCore::from_program(&g.program, true, 4);
        c.map("fuzzdata", g.data_base, g.data_size);
        let mut bops = 0u64;
        loop {
            let before_pc = c.pc;
            let arch = c.step(BopHint::Auto).expect("runs clean");
            // Count bop retirements by decode class: a step whose pc
            // advanced non-sequentially from a bop site is fine too; we
            // just need evidence the idiom executes.
            let _ = before_pc;
            if let Some(i) = c.inst_at(arch.pc) {
                if matches!(i, scd_isa::Inst::Bop { .. }) {
                    bops += 1;
                }
            }
            if arch.exited.is_some() {
                break;
            }
            if c.instructions > 2_000_000 {
                panic!("runaway");
            }
        }
        assert!(bops > 10, "only {bops} bop retirements");
    }
}
