#![warn(missing_docs)]

//! # scd-ref — the architectural oracle
//!
//! A timing-free reference ISS for the scd-isa subset: one [`RefCore::step`]
//! per instruction, no pipeline, no caches, no predictors. Every data
//! result comes from the same [`scd_isa::exec`] semantics table the cycle
//! model uses, so the two executors cannot drift apart on value semantics —
//! any lockstep divergence is by construction a *plumbing* bug (register
//! file, memory, control flow, SCD state), never a table disagreement.
//!
//! The crate also hosts the seeded random-program generator ([`gen`]) and
//! the on-disk reproducer corpus format ([`corpus`]) used by `scd-cli fuzz`.
//!
//! ## Micro-architecture-dependent control flow
//!
//! `bop` is the one instruction whose *architectural* outcome depends on
//! micro-architectural state (a JTE hit redirects, a miss falls through —
//! Section III of the paper). The reference core therefore accepts a
//! per-step [`BopHint`] so a lockstep driver can replay the DUT's observed
//! hit/miss pattern; the oracle still independently computes the *target*
//! of a claimed hit from its own architectural `(bid, Rop)` → target map
//! (trained on retired `jru`s) and rejects hits the SCD register state
//! cannot justify. Running standalone ([`RefCore::run`]) uses
//! [`BopHint::Auto`]: hit whenever the oracle itself could.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use scd_isa::{exec, Inst, Program, Reg};

/// A multiply-xor hasher for the `(bid, Rop)` JTE key. The default
/// SipHash is DoS-hardened, which the oracle does not need — keys come
/// from the guest's own jump tables — and its latency shows up directly
/// in the dispatch-heavy fast path.
#[derive(Default)]
struct JteHasher(u64);

impl Hasher for JteHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        let x = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 32);
    }
}

type JteMap = HashMap<(u8, u64), u64, BuildHasherDefault<JteHasher>>;

pub mod corpus;
pub mod gen;

/// One SCD branch-id register set: `Rop[bid]`, its valid bit, and
/// `Rmask[bid]` (Table I of the paper).
#[derive(Debug, Clone, Copy, Default)]
struct ScdReg {
    rop_v: bool,
    rop_d: u64,
    rmask: u64,
}

/// A guest memory segment (base + backing bytes).
#[derive(Debug, Clone)]
pub struct Segment {
    /// Segment name (diagnostics only).
    pub name: String,
    /// Guest base address.
    pub base: u64,
    /// Backing bytes.
    pub data: Vec<u8>,
}

/// Why the reference core stopped or refused to step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefError {
    /// Memory access outside any segment (or straddling a segment end).
    Mem {
        /// PC of the faulting instruction.
        pc: u64,
        /// Faulting guest address.
        addr: u64,
        /// True for stores.
        write: bool,
    },
    /// PC left the text section or lost 4-byte alignment.
    PcOutOfRange {
        /// The bad PC.
        pc: u64,
    },
    /// The word at PC did not decode (possible with [`RefCore::from_state`]).
    BadInst {
        /// PC of the undecodable word.
        pc: u64,
    },
    /// `ebreak` or an unknown `ecall` service — a guest trap.
    Break {
        /// PC of the trapping instruction.
        pc: u64,
    },
    /// A [`BopHint::Hit`] was asserted for a `(bid, Rop)` pair the oracle's
    /// architectural JTE map has never seen a `jru` train. The DUT's BTB
    /// claims a jump-table entry that architecturally cannot exist.
    BopUntrained {
        /// PC of the `bop`.
        pc: u64,
        /// Branch id (already reduced mod `nbids`).
        bid: u8,
        /// The masked opcode value the hit was keyed on.
        rop_d: u64,
    },
    /// A [`BopHint::Hit`] was asserted while `Rop[bid].v` is clear. A real
    /// SCD front-end can only hit on a valid opcode register (Section III).
    BopNotValid {
        /// PC of the `bop`.
        pc: u64,
        /// Branch id (already reduced mod `nbids`).
        bid: u8,
    },
    /// [`RefCore::run`] hit its instruction budget.
    InstLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl std::fmt::Display for RefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RefError::Mem { pc, addr, write } => write!(
                f,
                "ref: {} fault at {addr:#x} (pc {pc:#x})",
                if write { "store" } else { "load" }
            ),
            RefError::PcOutOfRange { pc } => write!(f, "ref: pc out of range: {pc:#x}"),
            RefError::BadInst { pc } => write!(f, "ref: undecodable word at {pc:#x}"),
            RefError::Break { pc } => write!(f, "ref: guest trap at {pc:#x}"),
            RefError::BopUntrained { pc, bid, rop_d } => write!(
                f,
                "ref: bop hit at {pc:#x} on untrained (bid {bid}, rop {rop_d:#x})"
            ),
            RefError::BopNotValid { pc, bid } => {
                write!(f, "ref: bop hit at {pc:#x} with Rop[{bid}].v clear")
            }
            RefError::InstLimit { limit } => write!(f, "ref: instruction limit {limit} reached"),
        }
    }
}

impl std::error::Error for RefError {}

/// The architectural effects of one retired instruction, shaped to match
/// the cycle model's `ArchInfo` trace record field-for-field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepArch {
    /// PC the instruction retired at.
    pub pc: u64,
    /// PC of the next instruction.
    pub next_pc: u64,
    /// Integer writeback `(reg index, value)`, if any (x0 included, value 0).
    pub wx: Option<(u8, u64)>,
    /// FP writeback `(reg index, raw bits)`, if any.
    pub wf: Option<(u8, u64)>,
    /// Data-memory effective address, if the instruction accessed memory.
    pub ea: Option<u64>,
    /// Store data after width truncation, if the instruction stored.
    pub store: Option<u64>,
    /// `Some(code)` when this instruction was the halting `ecall`.
    pub exited: Option<u64>,
}

/// How to resolve a `bop` whose outcome is micro-architectural.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BopHint {
    /// Hit iff the oracle itself could: `Rop[bid].v` set and the
    /// architectural JTE map knows the target. Used standalone.
    Auto,
    /// The DUT observed a JTE hit; the oracle validates and follows it.
    Hit,
    /// The DUT observed a miss (or fall-through); the oracle falls through.
    Miss,
    /// The DUT observed a JTE hit and resolved this target; the oracle
    /// follows it without consulting its own JTE map. Used by the
    /// execute-ahead replay driver, whose core may have been seeded from
    /// a mid-run checkpoint where the architectural map trained before
    /// the snapshot is unavailable (the cycle model's BTB-resident JTEs
    /// are a lossy cache of it, so it cannot be reconstructed).
    Target(u64),
}

/// The timing-free reference core.
///
/// State is exactly the architectural state of the paper's machine: the
/// integer and FP register files, PC, guest memory, and the SCD register
/// sets — plus the architectural JTE map `(bid, Rop) → target` that a
/// `jru` retirement defines (the BTB-resident JTEs of the cycle model are
/// a lossy cache of this map; the map itself never evicts).
#[derive(Debug, Clone)]
pub struct RefCore {
    /// Integer register file (x0 held at zero by the writeback helper).
    pub regs: [u64; 32],
    /// FP register file (raw f64 bits).
    pub fregs: [u64; 32],
    /// Current PC.
    pub pc: u64,
    /// Bytes the guest printed via the `ecall` putchar service.
    pub output: Vec<u8>,
    /// Instructions retired so far.
    pub instructions: u64,
    text_base: u64,
    text_end: u64,
    insts: Vec<Option<Inst>>,
    segs: Vec<Segment>,
    /// Index of the segment the last access landed in (locality cache).
    last_seg: usize,
    /// Per-segment high-water mark of writes *made by this core* (bytes
    /// from the segment base). Owners of moved-in memory read it back
    /// via [`RefCore::seg_high_waters`] to keep snapshot scans bounded
    /// by written memory.
    seg_hw: Vec<usize>,
    scd: [ScdReg; 4],
    jte_map: JteMap,
    scd_enabled: bool,
    nbids: usize,
}

impl RefCore {
    /// Builds a core from an assembled [`Program`]: text at
    /// `program.text_base`, rodata mapped when non-empty, PC at the text
    /// base, all registers zero.
    pub fn from_program(program: &Program, scd_enabled: bool, nbids: usize) -> Self {
        let mut segs = vec![Segment {
            name: "text".to_string(),
            base: program.text_base,
            data: program.words.iter().flat_map(|w| w.to_le_bytes()).collect(),
        }];
        if !program.rodata.is_empty() {
            segs.push(Segment {
                name: "rodata".to_string(),
                base: program.rodata_base,
                data: program.rodata.clone(),
            });
        }
        let nseg = segs.len();
        RefCore {
            regs: [0; 32],
            fregs: [0; 32],
            pc: program.text_base,
            output: Vec::new(),
            instructions: 0,
            text_base: program.text_base,
            text_end: program.text_base + 4 * program.words.len() as u64,
            insts: program.insts.iter().copied().map(Some).collect(),
            segs,
            last_seg: 0,
            seg_hw: vec![0; nseg],
            scd: [ScdReg::default(); 4],
            jte_map: JteMap::default(),
            scd_enabled,
            nbids: nbids.clamp(1, 4),
        }
    }

    /// Builds a core from raw machine state — the lockstep driver uses
    /// this to snapshot an already-set-up DUT (whose setup may have mapped
    /// extra segments and preloaded registers). Text words that fail to
    /// decode become holes that fault with [`RefError::BadInst`] only if
    /// reached.
    #[allow(clippy::too_many_arguments)]
    pub fn from_state(
        text_base: u64,
        text: &[u8],
        segments: Vec<Segment>,
        regs: [u64; 32],
        fregs: [u64; 32],
        pc: u64,
        scd_enabled: bool,
        nbids: usize,
    ) -> Self {
        let insts = text
            .chunks_exact(4)
            .map(|c| scd_isa::decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])).ok())
            .collect();
        let mut segs = vec![Segment {
            name: "text".to_string(),
            base: text_base,
            data: text.to_vec(),
        }];
        segs.extend(segments.into_iter().filter(|s| s.base != text_base));
        let nseg = segs.len();
        RefCore {
            regs,
            fregs,
            pc,
            output: Vec::new(),
            instructions: 0,
            text_base,
            text_end: text_base + (text.len() as u64 & !3),
            insts,
            segs,
            last_seg: 0,
            seg_hw: vec![0; nseg],
            scd: [ScdReg::default(); 4],
            jte_map: JteMap::default(),
            scd_enabled,
            nbids: nbids.clamp(1, 4),
        }
    }

    /// Builds a core around pre-decoded instructions and *moved-in*
    /// segments (the text segment included). The execute-ahead replay
    /// producer uses this to take ownership of the DUT's guest memory
    /// for the duration of a run — a 200 MB heap must not be cloned per
    /// run — and hands it back via [`RefCore::into_segments`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_owned_state(
        text_base: u64,
        text_end: u64,
        insts: Vec<Option<Inst>>,
        segments: Vec<Segment>,
        regs: [u64; 32],
        fregs: [u64; 32],
        pc: u64,
        scd_enabled: bool,
        nbids: usize,
    ) -> Self {
        let nseg = segments.len();
        RefCore {
            regs,
            fregs,
            pc,
            output: Vec::new(),
            instructions: 0,
            text_base,
            text_end,
            insts,
            segs: segments,
            last_seg: 0,
            seg_hw: vec![0; nseg],
            scd: [ScdReg::default(); 4],
            jte_map: JteMap::default(),
            scd_enabled,
            nbids: nbids.clamp(1, 4),
        }
    }

    /// Per-segment high-water marks of the writes this core has made
    /// (bytes from each segment base), in segment order. An owner moving
    /// memory back out via [`RefCore::into_segments`] merges these into
    /// its own marks so snapshot scans stay bounded by written memory.
    pub fn seg_high_waters(&self) -> &[usize] {
        &self.seg_hw
    }

    /// Consumes the core and returns its segments in construction order.
    /// The counterpart of [`RefCore::from_owned_state`]: the replay
    /// driver moves the guest memory back into the DUT when the run ends.
    pub fn into_segments(self) -> Vec<Segment> {
        self.segs
    }

    /// Like [`RefCore::into_segments`], but also hands back the decoded
    /// text vector. The sampled fast-forward builds a fresh core per
    /// interval leg; recycling the decode (megabytes for a real
    /// interpreter) keeps the per-leg cost at the state sync, not an
    /// allocation.
    pub fn into_insts_and_segments(self) -> (Vec<Option<Inst>>, Vec<Segment>) {
        (self.insts, self.segs)
    }

    /// What a [`BopHint::Auto`] `bop` on `bid` would resolve to right
    /// now: `Some(target)` for a hit, `None` for a fall-through. The
    /// replay producer uses this to *speculate* past `bop`s (recording
    /// the predicted outcome for the timing model to verify) instead of
    /// stopping at every one.
    pub fn bop_auto_target(&self, bid: u8) -> Option<u64> {
        let bid = bid as usize % self.nbids;
        if self.scd_enabled && self.scd[bid].rop_v {
            self.jte_map.get(&(bid as u8, self.scd[bid].rop_d)).copied()
        } else {
            None
        }
    }

    /// Reads `size` bytes little-endian at `addr`, or `None` when the
    /// range is unmapped. The replay producer snapshots the old bytes of
    /// every store (an undo log) so a mis-speculated or interrupted
    /// batch can be rolled back to the consumer's exact point.
    pub fn read_mem(&mut self, addr: u64, size: u64) -> Option<u64> {
        self.read(addr, size, 0).ok()
    }

    /// Writes `size` bytes little-endian at `addr`; panics if unmapped
    /// (undo entries are pre-validated by construction).
    pub fn write_mem(&mut self, addr: u64, size: u64, v: u64) {
        self.write(addr, size, v, 0)
            .expect("undo entry targets mapped memory");
    }

    /// Maps an additional zero-filled segment (stacks, heap, fuzz data).
    pub fn map(&mut self, name: &str, base: u64, size: u64) {
        self.segs.push(Segment {
            name: name.to_string(),
            base,
            data: vec![0; size as usize],
        });
        self.seg_hw.push(0);
    }

    /// The decoded instruction at `pc`, if `pc` is in text and decodable.
    pub fn inst_at(&self, pc: u64) -> Option<Inst> {
        if pc < self.text_base || pc >= self.text_end || !pc.is_multiple_of(4) {
            return None;
        }
        self.insts[((pc - self.text_base) / 4) as usize]
    }

    /// Seeds one SCD register set from externally captured architectural
    /// state. [`RefCore::from_state`] zeroes the SCD registers, which is
    /// only correct when the snapshot was taken before the first
    /// retirement; a driver resuming from a mid-run checkpoint (the
    /// execute-ahead replay path) must carry `Rop`/`Rmask` over or its
    /// `load_op` results and `jru` training would diverge from the DUT.
    pub fn seed_scd(&mut self, bid: usize, rop_v: bool, rop_d: u64, rmask: u64) {
        let s = &mut self.scd[bid % self.nbids.max(1)];
        s.rop_v = rop_v;
        s.rop_d = rop_d;
        s.rmask = rmask;
    }

    /// The masked opcode value `Rop[bid].d` (already `& Rmask[bid]`).
    /// The replay producer records it after each `load_op` because the
    /// register-file writeback alone loses the loaded value when the
    /// destination is `x0`.
    pub fn rop_d(&self, bid: usize) -> u64 {
        self.scd[bid % self.nbids.max(1)].rop_d
    }

    /// The full architectural SCD register view `(rop_v, rop_d, rmask)`
    /// for `bid`. The sampled simulator's fast-forward leg syncs these
    /// back into the cycle model when the reference core hands control
    /// (and the guest memory) back.
    pub fn scd_state(&self, bid: usize) -> (bool, u64, u64) {
        let s = &self.scd[bid % self.nbids.max(1)];
        (s.rop_v, s.rop_d, s.rmask)
    }

    /// Clears every `Rop[bid].v` — the architectural effect of
    /// `jte.flush` and of the cycle model's emulated context-switch flush.
    /// The JTE *map* is untouched: it is architectural ground truth, not a
    /// cache.
    pub fn flush_rop(&mut self) {
        for s in &mut self.scd {
            s.rop_v = false;
        }
    }

    #[inline]
    fn wx(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn find_seg(&mut self, addr: u64, size: u64) -> Option<usize> {
        let fits =
            |s: &Segment| addr >= s.base && addr.wrapping_add(size) <= s.base + s.data.len() as u64;
        if let Some(s) = self.segs.get(self.last_seg) {
            if fits(s) {
                return Some(self.last_seg);
            }
        }
        let i = self.segs.iter().position(fits)?;
        self.last_seg = i;
        Some(i)
    }

    #[inline]
    fn read(&mut self, addr: u64, size: u64, pc: u64) -> Result<u64, RefError> {
        let i = self.find_seg(addr, size).ok_or(RefError::Mem {
            pc,
            addr,
            write: false,
        })?;
        let s = &self.segs[i];
        let off = (addr - s.base) as usize;
        let d = &s.data[off..off + size as usize];
        Ok(match *d {
            [a] => a as u64,
            [a, b] => u16::from_le_bytes([a, b]) as u64,
            [a, b, c, e] => u32::from_le_bytes([a, b, c, e]) as u64,
            _ => u64::from_le_bytes(d.try_into().expect("widths are 1/2/4/8")),
        })
    }

    #[inline]
    fn write(&mut self, addr: u64, size: u64, v: u64, pc: u64) -> Result<(), RefError> {
        let i = self.find_seg(addr, size).ok_or(RefError::Mem {
            pc,
            addr,
            write: true,
        })?;
        let s = &mut self.segs[i];
        let off = (addr - s.base) as usize;
        s.data[off..off + size as usize].copy_from_slice(&v.to_le_bytes()[..size as usize]);
        let end = off + size as usize;
        if end > self.seg_hw[i] {
            self.seg_hw[i] = end;
        }
        Ok(())
    }

    /// Executes one instruction at the current PC and returns its
    /// architectural effects. `hint` resolves `bop` (see [`BopHint`]).
    ///
    /// # Errors
    /// Any [`RefError`]; the core state is unspecified after an error.
    #[inline]
    pub fn step(&mut self, hint: BopHint) -> Result<StepArch, RefError> {
        let mut out = StepArch::default();
        self.step_impl::<true>(hint, &mut out)?;
        Ok(out)
    }

    /// The single execution body behind both [`RefCore::step`] and the
    /// fast [`RefCore::run`] loop. `TRACE` selects (at monomorphization
    /// time) whether the [`StepArch`] record is populated; the semantics
    /// are written exactly once either way. Returns the exit code when
    /// this instruction was the halting `ecall`.
    #[inline(always)]
    fn step_impl<const TRACE: bool>(
        &mut self,
        hint: BopHint,
        out: &mut StepArch,
    ) -> Result<Option<u64>, RefError> {
        let pc = self.pc;
        if pc < self.text_base || pc >= self.text_end || !pc.is_multiple_of(4) {
            return Err(RefError::PcOutOfRange { pc });
        }
        let inst =
            self.insts[((pc - self.text_base) / 4) as usize].ok_or(RefError::BadInst { pc })?;

        let mut next_pc = pc + 4;
        let mut ea = None;
        let mut store = None;
        let mut exited = None;

        match inst {
            Inst::Lui { rd, imm } => self.wx(rd, imm as u64),
            Inst::Auipc { rd, imm } => self.wx(rd, pc.wrapping_add(imm as u64)),
            Inst::Jal { rd, offset } => {
                next_pc = pc.wrapping_add(offset as u64);
                self.wx(rd, pc + 4);
            }
            Inst::Jalr { rd, rs1, offset } => {
                // Target before writeback: `jalr ra, 0(ra)` must use the
                // incoming ra.
                next_pc = self.regs[rs1.index()].wrapping_add(offset as u64) & !1;
                self.wx(rd, pc + 4);
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                if exec::branch_taken(op, self.regs[rs1.index()], self.regs[rs2.index()]) {
                    next_pc = pc.wrapping_add(offset as u64);
                }
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                ea = Some(addr);
                let raw = self.read(addr, exec::load_width(op), pc)?;
                self.wx(rd, exec::load_extend(op, raw));
            }
            Inst::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                ea = Some(addr);
                let v = exec::store_truncate(op, self.regs[rs2.index()]);
                store = Some(v);
                self.write(addr, exec::store_width(op), v, pc)?;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = exec::alu(op, self.regs[rs1.index()], imm as u64);
                self.wx(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = exec::alu(op, self.regs[rs1.index()], self.regs[rs2.index()]);
                self.wx(rd, v);
            }
            Inst::Fld { rd, rs1, offset } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                ea = Some(addr);
                self.fregs[rd.index()] = self.read(addr, 8, pc)?;
            }
            Inst::Fsd { rs2, rs1, offset } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                ea = Some(addr);
                let v = self.fregs[rs2.index()];
                store = Some(v);
                self.write(addr, 8, v, pc)?;
            }
            Inst::FOp { op, rd, rs1, rs2 } => {
                self.fregs[rd.index()] =
                    exec::fp_op(op, self.fregs[rs1.index()], self.fregs[rs2.index()]);
            }
            Inst::FCmp { op, rd, rs1, rs2 } => {
                let v = exec::fcmp(op, self.fregs[rs1.index()], self.fregs[rs2.index()]);
                self.wx(rd, v as u64);
            }
            Inst::FcvtLD { rd, rs1, rm } => {
                self.wx(rd, exec::fcvt_l_d(self.fregs[rs1.index()], rm));
            }
            Inst::FcvtDL { rd, rs1 } => {
                self.fregs[rd.index()] = exec::fcvt_d_l(self.regs[rs1.index()]);
            }
            Inst::FmvXD { rd, rs1 } => self.wx(rd, self.fregs[rs1.index()]),
            Inst::FmvDX { rd, rs1 } => self.fregs[rd.index()] = self.regs[rs1.index()],
            Inst::Ecall => match self.regs[Reg::A7.index()] {
                0 => exited = Some(self.regs[Reg::A0.index()]),
                1 => self.output.push(self.regs[Reg::A0.index()] as u8),
                _ => return Err(RefError::Break { pc }),
            },
            Inst::Ebreak => return Err(RefError::Break { pc }),
            Inst::Fence => {}

            // ---- SCD extension ----
            Inst::SetMask { bid, rs1 } => {
                let bid = bid as usize % self.nbids;
                self.scd[bid].rmask = self.regs[rs1.index()];
            }
            Inst::Bop { bid } => {
                let bid = bid as usize % self.nbids;
                let key = (bid as u8, self.scd[bid].rop_d);
                let target = match hint {
                    BopHint::Auto => {
                        if self.scd_enabled && self.scd[bid].rop_v {
                            self.jte_map.get(&key).copied()
                        } else {
                            None
                        }
                    }
                    BopHint::Hit => {
                        if !self.scd[bid].rop_v {
                            return Err(RefError::BopNotValid { pc, bid: bid as u8 });
                        }
                        Some(
                            self.jte_map
                                .get(&key)
                                .copied()
                                .ok_or(RefError::BopUntrained {
                                    pc,
                                    bid: bid as u8,
                                    rop_d: key.1,
                                })?,
                        )
                    }
                    BopHint::Miss => None,
                    BopHint::Target(t) => Some(t),
                };
                if let Some(t) = target {
                    next_pc = t;
                    self.scd[bid].rop_v = false;
                }
            }
            Inst::Jru { bid, rs1 } => {
                let bid = bid as usize % self.nbids;
                let target = self.regs[rs1.index()] & !1;
                if self.scd_enabled && self.scd[bid].rop_v {
                    // Last write wins, exactly like the cycle model's
                    // update-in-place JTE insert.
                    self.jte_map
                        .insert((bid as u8, self.scd[bid].rop_d), target);
                    self.scd[bid].rop_v = false;
                }
                next_pc = target;
            }
            Inst::JteFlush => self.flush_rop(),
            Inst::LoadOp {
                op,
                bid,
                rd,
                rs1,
                offset,
            } => {
                let bid = bid as usize % self.nbids;
                let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                ea = Some(addr);
                let raw = self.read(addr, exec::load_width(op), pc)?;
                let v = exec::load_extend(op, raw);
                self.wx(rd, v);
                let s = &mut self.scd[bid];
                s.rop_d = v & s.rmask;
                s.rop_v = true;
            }
        }

        if TRACE {
            // Writebacks are re-read from the register files (not captured
            // at the write) to mirror how the cycle model builds ArchInfo
            // in its retire stage — including x0 reading back as 0.
            *out = StepArch {
                pc,
                next_pc,
                wx: inst
                    .def_xreg()
                    .map(|r| (r.index() as u8, self.regs[r.index()])),
                wf: inst
                    .def_freg()
                    .map(|r| (r.index() as u8, self.fregs[r.index()])),
                ea,
                store,
                exited,
            };
        }
        self.instructions += 1;
        self.pc = next_pc;
        Ok(exited)
    }

    /// Runs standalone ([`BopHint::Auto`]) until the guest exits, a guest
    /// error occurs, or `max_insts` instructions retire. This is the fast
    /// path: the `TRACE = false` monomorphization of the shared execute
    /// body, with no per-instruction [`StepArch`] bookkeeping.
    ///
    /// # Errors
    /// [`RefError::InstLimit`] on budget exhaustion, or any stepping error.
    pub fn run(&mut self, max_insts: u64) -> Result<u64, RefError> {
        let mut scratch = StepArch::default();
        while self.instructions < max_insts {
            if let Some(code) = self.step_impl::<false>(BopHint::Auto, &mut scratch)? {
                return Ok(code);
            }
        }
        Err(RefError::InstLimit { limit: max_insts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_isa::{Asm, LoadOp};

    fn asm() -> Asm {
        Asm::new(0x1_0000)
    }

    fn halt(a: &mut Asm, code: i64) {
        a.li(Reg::A0, code);
        a.li(Reg::A7, 0);
        a.ecall();
    }

    #[test]
    fn straight_line_alu_and_exit() {
        let mut a = asm();
        a.li(Reg::T0, 20);
        a.li(Reg::T1, 22);
        a.add(Reg::A0, Reg::T0, Reg::T1);
        a.li(Reg::A7, 0);
        a.ecall();
        let p = a.finish().unwrap();
        let mut c = RefCore::from_program(&p, false, 4);
        assert_eq!(c.run(100).unwrap(), 42);
    }

    #[test]
    fn x0_stays_zero_and_reads_back_zero_in_arch() {
        let mut a = asm();
        a.li(Reg::T0, 7);
        a.add(Reg::ZERO, Reg::T0, Reg::T0);
        halt(&mut a, 0);
        let p = a.finish().unwrap();
        let mut c = RefCore::from_program(&p, false, 4);
        // li expands to one or two insts; step until we see the add's arch.
        let mut saw = false;
        for _ in 0..10 {
            let arch = c.step(BopHint::Auto).unwrap();
            if arch.wx == Some((0, 0)) {
                saw = true;
            }
            if arch.exited.is_some() {
                break;
            }
        }
        assert!(saw, "add to x0 should report wx=(0,0)");
        assert_eq!(c.regs[0], 0);
    }

    #[test]
    fn scd_hint_loop_trains_then_hits() {
        // A two-handler dispatch loop: lbu.op fetches an opcode (one per
        // 8-byte rodata word), jru trains the JTE map, and on later visits
        // bop (Auto) hits.
        let mut a = asm();
        a.la(Reg::S0, "bytes");
        a.la(Reg::S3, "table");
        a.li(Reg::T6, u8::MAX as i64);
        a.setmask(0, Reg::T6);
        a.li(Reg::S2, 0); // bytecode index
        a.label("fetch");
        a.slli(Reg::T0, Reg::S2, 3);
        a.add(Reg::T0, Reg::S0, Reg::T0);
        a.load_op(LoadOp::Lbu, 0, Reg::T1, 0, Reg::T0);
        a.bop(0);
        a.slli(Reg::T2, Reg::T1, 3);
        a.add(Reg::T2, Reg::T2, Reg::S3);
        a.ld(Reg::T3, 0, Reg::T2);
        a.jru(0, Reg::T3);
        a.label("h0"); // opcode 0: halt
        halt(&mut a, 7);
        a.label("h1"); // opcode 1: advance and refetch
        a.addi(Reg::S2, Reg::S2, 1);
        a.j("fetch");
        a.ro_label("bytes");
        for b in [1u64, 1, 1, 0] {
            a.ro_word(b);
        }
        a.ro_label("table");
        a.ro_addr("h0");
        a.ro_addr("h1");
        let p = a.finish().unwrap();
        let mut c = RefCore::from_program(&p, true, 4);
        assert_eq!(c.run(10_000).unwrap(), 7);
        // The map learned both opcodes.
        assert_eq!(c.jte_map.len(), 2);
    }

    #[test]
    fn bop_hit_hint_is_validated() {
        let mut a = asm();
        a.bop(0);
        halt(&mut a, 0);
        let p = a.finish().unwrap();
        let mut c = RefCore::from_program(&p, true, 4);
        assert_eq!(
            c.step(BopHint::Hit),
            Err(RefError::BopNotValid {
                pc: 0x1_0000,
                bid: 0
            })
        );
    }

    #[test]
    fn flush_rop_clears_valid_but_keeps_map() {
        let mut c = RefCore::from_program(
            &{
                let mut a = asm();
                a.nop();
                a.finish().unwrap()
            },
            true,
            4,
        );
        c.scd[1].rop_v = true;
        c.jte_map.insert((1, 3), 0x1_0040);
        c.flush_rop();
        assert!(!c.scd[1].rop_v);
        assert_eq!(c.jte_map.len(), 1);
    }

    #[test]
    fn memory_faults_are_reported() {
        let mut a = asm();
        a.li(Reg::T0, 0x9999);
        a.ld(Reg::T1, 0, Reg::T0);
        halt(&mut a, 0);
        let p = a.finish().unwrap();
        let mut c = RefCore::from_program(&p, false, 4);
        let e = c.run(100).unwrap_err();
        assert!(matches!(e, RefError::Mem { write: false, .. }), "{e:?}");
    }
}
