//! The crate-wide error type.
//!
//! Every stage of the pipeline has its own typed error — [`ParseError`]
//! from the lexer/parser, [`CompileError`] from either compiler,
//! [`RuntimeError`] from either reference interpreter — and [`LumaError`]
//! is their sum. A malformed script must surface as one of these, never
//! as a panic: the simulator treats guest failures as traps, and a host
//! panic would abort the whole simulation instead.

use crate::lexer::ParseError;
use crate::lvm::compile::CompileError;
use crate::lvm::interp::RuntimeError;
use std::fmt;

/// Any error a Luma script can produce, from source text to halt.
#[derive(Debug, Clone, PartialEq)]
pub enum LumaError {
    /// Lexing or parsing failed.
    Parse(ParseError),
    /// Compilation to LVM or SVM bytecode failed.
    Compile(CompileError),
    /// The reference interpreter trapped.
    Runtime(RuntimeError),
}

impl fmt::Display for LumaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LumaError::Parse(e) => e.fmt(f),
            LumaError::Compile(e) => e.fmt(f),
            LumaError::Runtime(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LumaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LumaError::Parse(e) => Some(e),
            LumaError::Compile(e) => Some(e),
            LumaError::Runtime(e) => Some(e),
        }
    }
}

impl From<ParseError> for LumaError {
    fn from(e: ParseError) -> Self {
        LumaError::Parse(e)
    }
}

impl From<CompileError> for LumaError {
    fn from(e: CompileError) -> Self {
        LumaError::Compile(e)
    }
}

impl From<RuntimeError> for LumaError {
    fn from(e: RuntimeError) -> Self {
        LumaError::Runtime(e)
    }
}
