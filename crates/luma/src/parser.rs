//! Recursive-descent parser producing the Luma AST.

use crate::ast::*;
use crate::lexer::{lex, ParseError, Spanned, Tok};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parses a source string into a [`Script`].
///
/// # Errors
/// Returns a [`ParseError`] pointing at the offending line.
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut script = Script::default();
    while !p.check(&Tok::Eof) {
        if p.check(&Tok::Fn) {
            script.functions.push(p.fn_def()?);
        } else {
            script.top_level.push(p.stmt()?);
        }
    }
    Ok(script)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn check(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.check(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { line: self.line(), message }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn fn_def(&mut self) -> Result<FnDef, ParseError> {
        let line = self.line();
        self.expect(&Tok::Fn)?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.check(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(FnDef { name, params, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&Tok::RBrace) && !self.check(&Tok::Eof) {
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Var => {
                self.advance();
                let name = self.ident()?;
                self.expect(&Tok::Assign)?;
                let init = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Var { name, init })
            }
            Tok::If => {
                self.advance();
                let cond = self.expr()?;
                let then_body = self.block()?;
                let else_body = if self.eat(&Tok::Else) {
                    if self.check(&Tok::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_body, else_body })
            }
            Tok::While => {
                self.advance();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::For => {
                self.advance();
                let var = self.ident()?;
                self.expect(&Tok::Assign)?;
                let start = self.expr()?;
                self.expect(&Tok::Comma)?;
                let limit = self.expr()?;
                let step = if self.eat(&Tok::Comma) { self.expr()? } else { Expr::Num(1.0) };
                let body = self.block()?;
                Ok(Stmt::For { var, start, limit, step, body })
            }
            Tok::Return => {
                self.advance();
                let value = if self.check(&Tok::Semi) { None } else { Some(self.expr()?) };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(value))
            }
            Tok::Break => {
                self.advance();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break)
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&Tok::Assign) {
                    match e {
                        Expr::Var(_) | Expr::Index { .. } => {
                            let value = self.expr()?;
                            self.expect(&Tok::Semi)?;
                            Ok(Stmt::Assign { target: e, value })
                        }
                        _ => Err(self.err("invalid assignment target".to_string())),
                    }
                } else {
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::Ne,
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            // Fold negative literals so `-1` is a constant.
            if let Expr::Num(n) = e {
                return Ok(Expr::Num(-n));
            }
            return Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(e) });
        }
        if self.eat(&Tok::Not) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(e) });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(&Tok::LBracket) {
                let index = self.expr()?;
                self.expect(&Tok::RBracket)?;
                e = Expr::Index { array: Box::new(e), index: Box::new(index) };
            } else if self.check(&Tok::LParen) {
                self.advance();
                let mut args = Vec::new();
                if !self.check(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                // Builtins are resolved by name at the call site.
                if let Expr::Var(name) = &e {
                    if let Some(b) = Builtin::from_name(name) {
                        if args.len() != b.arity() {
                            return Err(self.err(format!(
                                "builtin `{name}` takes {} argument(s), got {}",
                                b.arity(),
                                args.len()
                            )));
                        }
                        e = Expr::BuiltinCall { builtin: b, args };
                        continue;
                    }
                }
                e = Expr::Call { callee: Box::new(e), args };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::Nil => Ok(Expr::Nil),
            Tok::Ident(name) => Ok(Expr::Var(name)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                if !self.check(&Tok::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                Ok(Expr::ArrayLit(items))
            }
            other => Err(self.err(format!("unexpected {other} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_and_main() {
        let s = parse("fn add(a, b) { return a + b; } var x = add(1, 2); emit(x);").unwrap();
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].params, vec!["a", "b"]);
        assert_eq!(s.top_level.len(), 2);
    }

    #[test]
    fn precedence() {
        let s = parse("var x = 1 + 2 * 3;").unwrap();
        match &s.top_level[0] {
            Stmt::Var { init: Expr::Binary { op: BinOp::Add, rhs, .. }, .. } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_binds_looser_than_add() {
        let s = parse("var x = 1 + 2 < 4;").unwrap();
        match &s.top_level[0] {
            Stmt::Var { init: Expr::Binary { op: BinOp::Lt, .. }, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_with_default_step() {
        let s = parse("for i = 0, 9 { emit(i); }").unwrap();
        match &s.top_level[0] {
            Stmt::For { step, .. } => assert_eq!(*step, Expr::Num(1.0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let s = parse("if a { } else if b { } else { break; }").unwrap();
        match &s.top_level[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(parse("var x = min(1);").is_err());
        assert!(parse("var x = min(1, 2);").is_ok());
    }

    #[test]
    fn index_and_call_chain() {
        let s = parse("a[i][j] = f(x)[0];").unwrap();
        assert!(matches!(s.top_level[0], Stmt::Assign { .. }));
    }

    #[test]
    fn invalid_assignment_target() {
        assert!(parse("1 + 2 = 3;").is_err());
    }

    #[test]
    fn negative_literal_folded() {
        let s = parse("var x = -1.5;").unwrap();
        match &s.top_level[0] {
            Stmt::Var { init, .. } => assert_eq!(*init, Expr::Num(-1.5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_literal() {
        let s = parse("var a = [1, 2, 3];").unwrap();
        match &s.top_level[0] {
            Stmt::Var { init: Expr::ArrayLit(items), .. } => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
