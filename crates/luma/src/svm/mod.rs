//! SVM: the stack-based bytecode VM (the paper's SpiderMonkey analogue).

pub mod bytecode;
pub mod compile;
pub mod disasm;
pub mod interp;

pub use bytecode::{FuncInfo, Op, SvmProgram, NUM_OPS};
pub use compile::compile_svm;
pub use disasm::{disasm_at, listing};
pub use interp::{run_source, SvmInterp};
