//! Disassembler for SVM's variable-length bytecode.

use super::bytecode::{Op, SvmProgram};
use std::fmt::Write as _;

/// One decoded instruction: `(byte offset, length, rendered text)`.
pub type DisasmLine = (usize, usize, String);

/// Decodes the instruction at `off`, or `None` for a reserved opcode or
/// a truncated stream.
pub fn disasm_at(code: &[u8], off: usize) -> Option<DisasmLine> {
    let byte = *code.get(off)?;
    let op = Op::from_u8(byte)?;
    let len = op.length();
    if off + len > code.len() {
        return None;
    }
    let u8_at = |i: usize| code[off + i] as i64;
    let i8_at = |i: usize| code[off + i] as i8 as i64;
    let u16_at = |i: usize| u16::from_le_bytes([code[off + i], code[off + i + 1]]) as i64;
    let i16_at = |i: usize| i16::from_le_bytes([code[off + i], code[off + i + 1]]) as i64;

    let text = match op {
        Op::PushConst => format!("PushConst k{}", u16_at(1)),
        Op::PushInt8 => format!("PushInt8 {}", i8_at(1)),
        Op::PushInt16 => format!("PushInt16 {}", i16_at(1)),
        Op::GetLocal => format!("GetLocal {}", u8_at(1)),
        Op::SetLocal => format!("SetLocal {}", u8_at(1)),
        Op::GetGlobal => format!("GetGlobal g{}", u16_at(1)),
        Op::SetGlobal => format!("SetGlobal g{}", u16_at(1)),
        Op::PushFn => format!("PushFn f{}", u16_at(1)),
        Op::Call => format!("Call argc={}", u8_at(1)),
        Op::Builtin => format!("Builtin #{}", u8_at(1)),
        Op::GetElemI => format!("GetElemI [{}]", u8_at(1)),
        Op::SetElemI => format!("SetElemI [{}]", u8_at(1)),
        Op::Jump | Op::JumpIfFalse | Op::JumpIfTrue => {
            let rel = i16_at(1);
            let target = (off + len) as i64 + rel;
            format!("{op:?} -> {target:#06x} ({rel:+})")
        }
        _ => format!("{op:?}"),
    };
    Some((off, len, text))
}

/// Renders a full program listing, with function boundaries marked.
pub fn listing(p: &SvmProgram) -> String {
    let mut out = String::new();
    let mut starts: Vec<(u32, usize)> =
        p.funcs.iter().enumerate().map(|(i, f)| (f.code_off, i)).collect();
    starts.sort_unstable();
    let mut off = 0usize;
    while off < p.code.len() {
        for &(fo, fi) in &starts {
            if fo as usize == off {
                let f = p.funcs[fi];
                let _ = writeln!(
                    out,
                    "fn_{fi}:  # params={} locals={}",
                    f.nparams, f.nlocals
                );
            }
        }
        match disasm_at(&p.code, off) {
            Some((_, len, text)) => {
                let _ = writeln!(out, "  {off:#06x}: {text}");
                off += len;
            }
            None => {
                let _ = writeln!(out, "  {off:#06x}: <reserved {:#04x}>", p.code[off]);
                off += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn program(src: &str) -> SvmProgram {
        crate::svm::compile_svm(&parse(src).unwrap(), &[]).unwrap().0
    }

    #[test]
    fn decodes_operands() {
        let p = program("fn f(x) { return x + 1; } emit(f(41));");
        let l = listing(&p);
        assert!(l.contains("PushFn f1"), "{l}");
        assert!(l.contains("Call argc=1"), "{l}");
        assert!(l.contains("Inc"), "{l}");
        assert!(l.contains("Halt"), "{l}");
        assert!(l.contains("fn_1:"), "{l}");
    }

    #[test]
    fn jump_targets_resolve() {
        let p = program("var i = 0; while i < 3 { i = i + 1; } emit(i);");
        let l = listing(&p);
        assert!(l.contains("JumpIfFalse ->"), "{l}");
        assert!(l.contains("Jump ->"), "{l}");
    }

    #[test]
    fn disasm_walks_whole_stream() {
        // Every benchmark's SVM code must decode cleanly from start to
        // end (no reserved bytes in compiler output).
        for b in &crate::scripts::BENCHMARKS {
            let script = parse(b.source).unwrap();
            let (p, _) = crate::svm::compile_svm(&script, &[("N", b.tiny_arg)])
                .or_else(|_| crate::svm::compile_svm(&script, &[]))
                .unwrap();
            let mut off = 0;
            while off < p.code.len() {
                let (_, len, _) = disasm_at(&p.code, off)
                    .unwrap_or_else(|| panic!("{}: reserved byte at {off}", b.name));
                off += len;
            }
        }
    }

    #[test]
    fn truncated_stream_returns_none() {
        // PushConst needs 2 operand bytes.
        let code = [Op::PushConst as u8, 0x01];
        assert!(disasm_at(&code, 0).is_none());
        assert!(disasm_at(&[], 0).is_none());
    }
}
