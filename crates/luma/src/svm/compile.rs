//! AST → SVM stack bytecode compiler.
//!
//! Numeric `for` loops are desugared into `while` form with hidden limit
//! and step locals (the loop variable is the counter itself — scripts in
//! the benchmark corpus never mutate it, so LVM and SVM agree).

use super::bytecode::{builtin_id, FuncInfo, Op, SvmProgram};
use crate::ast::*;
use crate::lvm::compile::CompileError;
use crate::value;
use std::collections::HashMap;

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError { message: msg.into() })
}

struct Shared {
    consts: Vec<u64>,
    const_map: HashMap<u64, u32>,
    globals: Vec<String>,
    global_map: HashMap<String, u32>,
    fn_ids: HashMap<String, u32>,
    fn_arity: Vec<usize>,
}

impl Shared {
    fn const_idx(&mut self, bits: u64) -> Result<u32, CompileError> {
        if let Some(&i) = self.const_map.get(&bits) {
            return Ok(i);
        }
        let i = self.consts.len() as u32;
        if i >= 1 << 16 {
            return err("too many constants");
        }
        self.consts.push(bits);
        self.const_map.insert(bits, i);
        Ok(i)
    }
}

struct FnGen<'s> {
    shared: &'s mut Shared,
    code: Vec<u8>,
    scopes: Vec<Vec<(String, u32)>>,
    nlocals: u32,
    max_locals: u32,
    breaks: Vec<Vec<usize>>,
    is_main: bool,
    hidden: u32,
}

impl<'s> FnGen<'s> {
    fn new(shared: &'s mut Shared, is_main: bool) -> Self {
        FnGen {
            shared,
            code: Vec::new(),
            scopes: vec![Vec::new()],
            nlocals: 0,
            max_locals: 0,
            breaks: Vec::new(),
            is_main,
            hidden: 0,
        }
    }

    fn op(&mut self, op: Op) {
        self.code.push(op as u8);
    }

    fn op_u8(&mut self, op: Op, v: u8) {
        self.code.push(op as u8);
        self.code.push(v);
    }

    fn op_u16(&mut self, op: Op, v: u16) {
        self.code.push(op as u8);
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// Emits a jump with a placeholder; returns the operand position.
    fn jump(&mut self, op: Op) -> usize {
        self.code.push(op as u8);
        let at = self.code.len();
        self.code.extend_from_slice(&[0, 0]);
        at
    }

    fn patch_here(&mut self, operand_at: usize) -> Result<(), CompileError> {
        // rel is measured from the byte after the 2-byte operand.
        let rel = self.code.len() as i64 - (operand_at as i64 + 2);
        let rel16 = i16::try_from(rel)
            .map_err(|_| CompileError { message: format!("jump distance {rel} exceeds i16") })?;
        self.code[operand_at..operand_at + 2].copy_from_slice(&rel16.to_le_bytes());
        Ok(())
    }

    fn jump_back(&mut self, op: Op, target: usize) -> Result<(), CompileError> {
        self.code.push(op as u8);
        let rel = target as i64 - (self.code.len() as i64 + 2);
        let rel16 = i16::try_from(rel)
            .map_err(|_| CompileError { message: format!("jump distance {rel} exceeds i16") })?;
        self.code.extend_from_slice(&rel16.to_le_bytes());
        Ok(())
    }

    fn declare_local(&mut self, name: &str) -> Result<u32, CompileError> {
        let slot = self.nlocals;
        if slot >= 255 {
            return err("too many locals");
        }
        self.scopes.last_mut().expect("scope stack never empty").push((name.to_string(), slot));
        self.nlocals += 1;
        self.max_locals = self.max_locals.max(self.nlocals);
        Ok(slot)
    }

    fn hidden_name(&mut self, what: &str) -> String {
        self.hidden += 1;
        format!("({what}-{})", self.hidden)
    }

    fn lookup_local(&self, name: &str) -> Option<u32> {
        for scope in self.scopes.iter().rev() {
            for (n, s) in scope.iter().rev() {
                if n == name {
                    return Some(*s);
                }
            }
        }
        None
    }

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        let dropped = self.scopes.pop().expect("scope stack never empty");
        self.nlocals -= dropped.len() as u32;
    }

    fn get_local(&mut self, slot: u32) {
        match slot {
            0..=7 => self.op(Op::from_u8(Op::GetLocal0 as u8 + slot as u8).expect("dense")),
            _ => self.op_u8(Op::GetLocal, slot as u8),
        }
    }

    fn set_local(&mut self, slot: u32) {
        match slot {
            0..=3 => self.op(Op::from_u8(Op::SetLocal0 as u8 + slot as u8).expect("dense")),
            _ => self.op_u8(Op::SetLocal, slot as u8),
        }
    }

    fn push_const_bits(&mut self, bits: u64) -> Result<(), CompileError> {
        let k = self.shared.const_idx(bits)?;
        if k < 8 {
            self.op(Op::from_u8(Op::PushConst0 as u8 + k as u8).expect("dense"));
        } else {
            self.op_u16(Op::PushConst, k as u16);
        }
        Ok(())
    }

    // ---- expressions: push exactly one value ----

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => {
                // -0.0 must go through the constant pool: the integer
                // immediates would drop its sign bit.
                let int_ok = n.fract() == 0.0 && !(*n == 0.0 && n.is_sign_negative());
                if int_ok && (-128.0..=127.0).contains(n) {
                    self.op_u8(Op::PushInt8, *n as i8 as u8);
                } else if int_ok && (-32768.0..=32767.0).contains(n) {
                    self.op_u16(Op::PushInt16, *n as i16 as u16);
                } else {
                    self.push_const_bits(value::num(*n))?;
                }
            }
            Expr::Bool(true) => self.op(Op::PushTrue),
            Expr::Bool(false) => self.op(Op::PushFalse),
            Expr::Nil => self.op(Op::PushNil),
            Expr::Var(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    self.get_local(slot);
                } else if let Some(&g) = self.shared.global_map.get(name.as_str()) {
                    self.op_u16(Op::GetGlobal, g as u16);
                } else if let Some(&f) = self.shared.fn_ids.get(name.as_str()) {
                    self.op_u16(Op::PushFn, f as u16);
                } else {
                    return err(format!("undefined variable `{name}`"));
                }
            }
            Expr::Unary { op, expr } => {
                self.expr(expr)?;
                self.op(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                });
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.expr(lhs)?;
                    self.op(Op::Dup);
                    let j = self.jump(Op::JumpIfFalse);
                    self.op(Op::Pop);
                    self.expr(rhs)?;
                    self.patch_here(j)?;
                }
                BinOp::Or => {
                    self.expr(lhs)?;
                    self.op(Op::Dup);
                    let j = self.jump(Op::JumpIfTrue);
                    self.op(Op::Pop);
                    self.expr(rhs)?;
                    self.patch_here(j)?;
                }
                _ => {
                    self.expr(lhs)?;
                    // Inc/Dec specializations for +1/-1.
                    if let Expr::Num(n) = **rhs {
                        if n == 1.0 && *op == BinOp::Add {
                            self.op(Op::Inc);
                            return Ok(());
                        }
                        if n == 1.0 && *op == BinOp::Sub {
                            self.op(Op::Dec);
                            return Ok(());
                        }
                    }
                    self.expr(rhs)?;
                    self.op(match op {
                        BinOp::Add => Op::Add,
                        BinOp::Sub => Op::Sub,
                        BinOp::Mul => Op::Mul,
                        BinOp::Div => Op::Div,
                        BinOp::Mod => Op::Mod,
                        BinOp::Eq => Op::Eq,
                        BinOp::Ne => Op::Ne,
                        BinOp::Lt => Op::Lt,
                        BinOp::Le => Op::Le,
                        BinOp::Gt => Op::Gt,
                        BinOp::Ge => Op::Ge,
                        BinOp::And | BinOp::Or => unreachable!("handled above"),
                    });
                }
            },
            Expr::Index { array, index } => {
                self.expr(array)?;
                if let Expr::Num(n) = **index {
                    if n.fract() == 0.0 && (0.0..256.0).contains(&n) {
                        self.op_u8(Op::GetElemI, n as u8);
                        return Ok(());
                    }
                }
                self.expr(index)?;
                self.op(Op::GetElem);
            }
            Expr::ArrayLit(items) => {
                self.expr(&Expr::Num(items.len() as f64))?;
                self.op(Op::NewArray);
                for (i, item) in items.iter().enumerate() {
                    self.op(Op::Dup);
                    if i < 256 {
                        self.expr(item)?;
                        self.op_u8(Op::SetElemI, i as u8);
                    } else {
                        self.expr(&Expr::Num(i as f64))?;
                        self.expr(item)?;
                        self.op(Op::SetElem);
                    }
                }
            }
            Expr::Call { callee, args } => {
                if let Expr::Var(name) = &**callee {
                    if self.lookup_local(name).is_none()
                        && !self.shared.global_map.contains_key(name.as_str())
                    {
                        if let Some(&f) = self.shared.fn_ids.get(name.as_str()) {
                            let want = self.shared.fn_arity[f as usize];
                            if want != args.len() {
                                return err(format!(
                                    "function `{name}` takes {want} argument(s), got {}",
                                    args.len()
                                ));
                            }
                        }
                    }
                }
                self.expr(callee)?;
                for a in args {
                    self.expr(a)?;
                }
                if args.len() > 255 {
                    return err("too many call arguments");
                }
                self.op_u8(Op::Call, args.len() as u8);
            }
            Expr::BuiltinCall { builtin, args } => match builtin {
                Builtin::Len => {
                    self.expr(&args[0])?;
                    self.op(Op::Len);
                }
                Builtin::Array => {
                    self.expr(&args[0])?;
                    self.op(Op::NewArray);
                }
                _ => {
                    for a in args {
                        self.expr(a)?;
                    }
                    let id = match builtin {
                        Builtin::Floor => builtin_id::FLOOR,
                        Builtin::Sqrt => builtin_id::SQRT,
                        Builtin::Abs => builtin_id::ABS,
                        Builtin::Min => builtin_id::MIN,
                        Builtin::Max => builtin_id::MAX,
                        Builtin::Emit => builtin_id::EMIT,
                        Builtin::Len | Builtin::Array => unreachable!("handled above"),
                    };
                    self.op_u8(Op::Builtin, id as u8);
                }
            },
        }
        Ok(())
    }

    // ---- statements ----

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.push_scope();
        for s in stmts {
            self.stmt(s)?;
        }
        self.pop_scope();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Var { name, init } => {
                if self.is_main && self.scopes.len() == 1 {
                    let g = *self
                        .shared
                        .global_map
                        .get(name.as_str())
                        .expect("top-level globals pre-registered");
                    self.expr(init)?;
                    self.op_u16(Op::SetGlobal, g as u16);
                } else {
                    self.expr(init)?;
                    let slot = self.declare_local(name)?;
                    self.set_local(slot);
                }
            }
            Stmt::Assign { target, value } => match target {
                Expr::Var(name) => {
                    if let Some(slot) = self.lookup_local(name) {
                        self.expr(value)?;
                        self.set_local(slot);
                    } else if let Some(&g) = self.shared.global_map.get(name.as_str()) {
                        self.expr(value)?;
                        self.op_u16(Op::SetGlobal, g as u16);
                    } else {
                        return err(format!("undefined variable `{name}`"));
                    }
                }
                Expr::Index { array, index } => {
                    self.expr(array)?;
                    if let Expr::Num(n) = **index {
                        if n.fract() == 0.0 && (0.0..256.0).contains(&n) {
                            self.expr(value)?;
                            self.op_u8(Op::SetElemI, n as u8);
                            return Ok(());
                        }
                    }
                    self.expr(index)?;
                    self.expr(value)?;
                    self.op(Op::SetElem);
                }
                _ => return err("invalid assignment target"),
            },
            Stmt::If { cond, then_body, else_body } => {
                self.expr(cond)?;
                let jelse = self.jump(Op::JumpIfFalse);
                self.block(then_body)?;
                if else_body.is_empty() {
                    self.patch_here(jelse)?;
                } else {
                    let jend = self.jump(Op::Jump);
                    self.patch_here(jelse)?;
                    self.block(else_body)?;
                    self.patch_here(jend)?;
                }
            }
            Stmt::While { cond, body } => {
                let top = self.code.len();
                self.expr(cond)?;
                let jexit = self.jump(Op::JumpIfFalse);
                self.breaks.push(Vec::new());
                self.block(body)?;
                self.jump_back(Op::Jump, top)?;
                self.patch_here(jexit)?;
                for b in self.breaks.pop().expect("pushed above") {
                    self.patch_here(b)?;
                }
            }
            Stmt::For { var, start, limit, step, body } => {
                self.push_scope();
                // Evaluate `start` before binding the loop variable so a
                // shadowed outer binding of the same name is still visible.
                self.expr(start)?;
                let ivar = self.declare_local(var)?;
                self.set_local(ivar);
                let limit_name = self.hidden_name("limit");
                let lslot = self.declare_local(&limit_name)?;
                self.expr(limit)?;
                self.set_local(lslot);
                // Constant steps compile a direct comparison.
                let step_const = if let Expr::Num(n) = step { Some(*n) } else { None };
                let sslot = if step_const.is_none() {
                    let step_name = self.hidden_name("step");
                    let s = self.declare_local(&step_name)?;
                    self.expr(step)?;
                    self.set_local(s);
                    Some(s)
                } else {
                    None
                };

                let top = self.code.len();
                // Continue condition.
                match step_const {
                    Some(n) if n >= 0.0 => {
                        self.get_local(ivar);
                        self.get_local(lslot);
                        self.op(Op::Le);
                    }
                    Some(_) => {
                        self.get_local(ivar);
                        self.get_local(lslot);
                        self.op(Op::Ge);
                    }
                    None => {
                        // (step > 0 and i <= limit) or (step <= 0 and i >= limit)
                        let s = sslot.expect("dynamic step has a slot");
                        self.get_local(s);
                        self.op_u8(Op::PushInt8, 0);
                        self.op(Op::Gt);
                        let jneg = self.jump(Op::JumpIfFalse);
                        self.get_local(ivar);
                        self.get_local(lslot);
                        self.op(Op::Le);
                        let jdone = self.jump(Op::Jump);
                        self.patch_here(jneg)?;
                        self.get_local(ivar);
                        self.get_local(lslot);
                        self.op(Op::Ge);
                        self.patch_here(jdone)?;
                    }
                }
                let jexit = self.jump(Op::JumpIfFalse);
                self.breaks.push(Vec::new());
                self.block(body)?;
                // Increment.
                self.get_local(ivar);
                match step_const {
                    Some(1.0) => self.op(Op::Inc),
                    Some(-1.0) => self.op(Op::Dec),
                    Some(n) => {
                        self.expr(&Expr::Num(n))?;
                        self.op(Op::Add);
                    }
                    None => {
                        self.get_local(sslot.expect("dynamic step has a slot"));
                        self.op(Op::Add);
                    }
                }
                self.set_local(ivar);
                self.jump_back(Op::Jump, top)?;
                self.patch_here(jexit)?;
                for b in self.breaks.pop().expect("pushed above") {
                    self.patch_here(b)?;
                }
                self.pop_scope();
            }
            Stmt::Return(value) => {
                if self.is_main {
                    self.op(Op::Halt);
                } else {
                    match value {
                        Some(e) => {
                            self.expr(e)?;
                            self.op(Op::ReturnVal);
                        }
                        None => self.op(Op::Return),
                    }
                }
            }
            Stmt::Break => {
                if self.breaks.is_empty() {
                    return err("`break` outside a loop");
                }
                let j = self.jump(Op::Jump);
                self.breaks.last_mut().expect("checked non-empty").push(j);
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.op(Op::Pop);
            }
        }
        Ok(())
    }
}

/// Compiles a script to SVM bytecode. Returns the program and the
/// initial global values.
///
/// # Errors
/// Returns a [`CompileError`] for undefined names, arity mismatches and
/// size-limit overflows.
pub fn compile_svm(
    script: &Script,
    predefined_globals: &[(&str, f64)],
) -> Result<(SvmProgram, Vec<u64>), CompileError> {
    let mut shared = Shared {
        consts: Vec::new(),
        const_map: HashMap::new(),
        globals: Vec::new(),
        global_map: HashMap::new(),
        fn_ids: HashMap::new(),
        fn_arity: vec![0],
    };

    let mut global_init = Vec::new();
    for (name, v) in predefined_globals {
        if shared.global_map.contains_key(*name) {
            return err(format!("duplicate predefined global `{name}`"));
        }
        shared.global_map.insert(name.to_string(), shared.globals.len() as u32);
        shared.globals.push(name.to_string());
        global_init.push(value::num(*v));
    }
    for s in &script.top_level {
        if let Stmt::Var { name, .. } = s {
            if !shared.global_map.contains_key(name) {
                shared.global_map.insert(name.clone(), shared.globals.len() as u32);
                shared.globals.push(name.clone());
                global_init.push(value::NIL);
            }
        }
    }
    for (i, f) in script.functions.iter().enumerate() {
        let id = i as u32 + 1;
        if shared.fn_ids.insert(f.name.clone(), id).is_some() {
            return err(format!("duplicate function `{}`", f.name));
        }
        shared.fn_arity.push(f.params.len());
    }

    let mut code: Vec<u8> = Vec::new();
    let mut funcs: Vec<FuncInfo> = Vec::new();

    {
        let mut g = FnGen::new(&mut shared, true);
        for s in &script.top_level {
            g.stmt(s)?;
        }
        g.op(Op::Halt);
        funcs.push(FuncInfo { code_off: 0, nparams: 0, nlocals: g.max_locals.max(1) });
        code.extend_from_slice(&g.code);
    }
    for f in &script.functions {
        let off = code.len() as u32;
        let mut g = FnGen::new(&mut shared, false);
        for p in &f.params {
            g.declare_local(p)?;
        }
        for s in &f.body {
            g.stmt(s)?;
        }
        g.op(Op::Return);
        funcs.push(FuncInfo {
            code_off: off,
            nparams: f.params.len() as u32,
            nlocals: g.max_locals.max(f.params.len() as u32).max(1),
        });
        code.extend_from_slice(&g.code);
    }

    Ok((
        SvmProgram {
            code,
            consts: shared.consts,
            funcs,
            nglobals: shared.globals.len() as u32,
            global_names: shared.globals,
        },
        global_init,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> (SvmProgram, Vec<u64>) {
        compile_svm(&parse(src).unwrap(), &[]).unwrap()
    }

    #[test]
    fn simple_compiles() {
        let (p, _) = compile("var x = 1 + 2; emit(x);");
        assert!(!p.code.is_empty());
        assert_eq!(*p.code.last().unwrap(), Op::Halt as u8);
    }

    #[test]
    fn specialized_locals_selected() {
        let (p, _) = compile("fn f(a, b) { return a + b; } emit(f(1, 2));");
        assert!(p.code.contains(&(Op::GetLocal0 as u8)));
        assert!(p.code.contains(&(Op::GetLocal1 as u8)));
    }

    #[test]
    fn inc_dec_specialized() {
        let (p, _) = compile("fn f(a) { return a + 1; } fn g(a) { return a - 1; } emit(f(g(2)));");
        assert!(p.code.contains(&(Op::Inc as u8)));
        assert!(p.code.contains(&(Op::Dec as u8)));
    }

    #[test]
    fn undefined_variable_rejected() {
        assert!(compile_svm(&parse("emit(zzz);").unwrap(), &[]).is_err());
    }

    #[test]
    fn arity_checked() {
        assert!(compile_svm(&parse("fn f(a) { return a; } f(1, 2);").unwrap(), &[]).is_err());
    }

    #[test]
    fn oversized_jump_rejected() {
        // An `if` body too large for a 16-bit jump displacement must be
        // a typed compile error, not a panic (it panicked before the
        // patchers returned Result).
        let mut src = String::from("var x = 0; if x < 1 {");
        for _ in 0..5000 {
            src.push_str(" x = x + 123456.75;");
        }
        src.push('}');
        let err = compile_svm(&parse(&src).unwrap(), &[]).unwrap_err();
        assert!(err.message.contains("jump distance"), "{err}");
    }
}
