//! SVM — the stack-based, variable-length bytecode of the
//! SpiderMonkey-like interpreter.
//!
//! Instructions are a one-byte opcode followed by zero or more
//! little-endian operand bytes. The declared opcode space is 229 entries
//! (SpiderMonkey-17's count, which the paper reports); opcodes past the
//! implemented set are reserved and trap, but they still participate in
//! the interpreter's bound check and jump table size, which is what
//! matters for dispatch behaviour.

/// Number of opcode slots in the dispatch table (SpiderMonkey-17 has 229
/// distinct bytecodes; the bound check and jump table use this value).
pub const NUM_OPS: u32 = 229;

/// The implemented SVM opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// No operation (reserved for patching)..
    Nop = 0,
    /// push K\[k16\]
    PushConst = 1,
    /// push f64(i8)
    PushInt8 = 2,
    /// push f64(i16)
    PushInt16 = 3,
    /// push nil.
    PushNil = 4,
    /// push true.
    PushTrue = 5,
    /// push false.
    PushFalse = 6,
    // Specialized constant pushes (K[0..8)).
    /// push K\[0\] (specialized).
    PushConst0 = 7,
    /// push K\[1\].
    PushConst1 = 8,
    /// push K\[2\].
    PushConst2 = 9,
    /// push K\[3\].
    PushConst3 = 10,
    /// push K\[4\].
    PushConst4 = 11,
    /// push K\[5\].
    PushConst5 = 12,
    /// push K\[6\].
    PushConst6 = 13,
    /// push K\[7\].
    PushConst7 = 14,
    /// push locals\[n8\]
    GetLocal = 15,
    /// locals\[n8\] = pop
    SetLocal = 16,
    // Specialized local accesses.
    /// push locals\[0\] (specialized).
    GetLocal0 = 17,
    /// push locals\[1\].
    GetLocal1 = 18,
    /// push locals\[2\].
    GetLocal2 = 19,
    /// push locals\[3\].
    GetLocal3 = 20,
    /// push locals\[4\].
    GetLocal4 = 21,
    /// push locals\[5\].
    GetLocal5 = 22,
    /// push locals\[6\].
    GetLocal6 = 23,
    /// push locals\[7\].
    GetLocal7 = 24,
    /// locals\[0\] = pop (specialized).
    SetLocal0 = 25,
    /// locals\[1\] = pop.
    SetLocal1 = 26,
    /// locals\[2\] = pop.
    SetLocal2 = 27,
    /// locals\[3\] = pop.
    SetLocal3 = 28,
    /// push G\[g16\]
    GetGlobal = 29,
    /// G\[g16\] = pop
    SetGlobal = 30,
    /// discard the top of stack.
    Pop = 31,
    /// duplicate the top of stack.
    Dup = 32,
    /// pop y, x; push x + y.
    Add = 33,
    /// pop y, x; push x - y.
    Sub = 34,
    /// pop y, x; push x * y.
    Mul = 35,
    /// pop y, x; push x / y.
    Div = 36,
    /// Lua-style modulo.
    Mod = 37,
    /// negate the top of stack.
    Neg = 38,
    /// logical not of the top of stack.
    Not = 39,
    /// pop y, x; push x == y.
    Eq = 40,
    /// pop y, x; push x != y.
    Ne = 41,
    /// `<` — has a private dispatch tail in the guest (like
    /// SpiderMonkey's LT).
    Lt = 42,
    /// `<=` — private dispatch tail.
    Le = 43,
    /// pop y, x; push x > y — private dispatch tail.
    Gt = 44,
    /// pop y, x; push x >= y — private dispatch tail.
    Ge = 45,
    /// pc += rel16 — private dispatch tail (like BRANCH).
    Jump = 46,
    /// if !truthy(pop) pc += rel16 — private dispatch tail.
    JumpIfFalse = 47,
    /// if truthy(pop) pc += rel16 — private dispatch tail.
    JumpIfTrue = 48,
    /// push function #f16
    PushFn = 49,
    /// call with argc8 args — private dispatch tail (like FUNCALL).
    Call = 50,
    /// return nil
    /// return nil — private dispatch tail.
    Return = 51,
    /// return pop
    /// return pop — private dispatch tail.
    ReturnVal = 52,
    /// push new array of length num(pop)
    NewArray = 53,
    /// push a\[i\] (pops i, a)
    GetElem = 54,
    /// a\[i\] = v (pops v, i, a)
    SetElem = 55,
    /// push len(pop)
    Len = 56,
    /// builtin id8 over the top of stack
    Builtin = 57,
    /// a\[imm8\] with array on stack
    GetElemI = 58,
    /// a\[imm8\] = v (pops v, a)
    SetElemI = 59,
    /// top += 1
    Inc = 60,
    /// top -= 1
    Dec = 61,
    /// stop (end of main)
    Halt = 62,
}

/// Number of *implemented* opcodes (the rest of the 229 slots trap).
pub const NUM_IMPLEMENTED: u32 = 63;

impl Op {
    /// Decodes an implemented opcode.
    pub fn from_u8(n: u8) -> Option<Op> {
        if (n as u32) < NUM_IMPLEMENTED {
            // SAFETY-free decode: the enum is dense over 0..NUM_IMPLEMENTED.
            Some(ALL[n as usize])
        } else {
            None
        }
    }

    /// Total instruction length in bytes (opcode + operands).
    pub fn length(self) -> usize {
        match self {
            Op::PushConst | Op::PushInt16 | Op::GetGlobal | Op::SetGlobal | Op::PushFn => 3,
            Op::Jump | Op::JumpIfFalse | Op::JumpIfTrue => 3,
            Op::PushInt8
            | Op::GetLocal
            | Op::SetLocal
            | Op::Call
            | Op::Builtin
            | Op::GetElemI
            | Op::SetElemI => 2,
            _ => 1,
        }
    }

    /// Whether the guest handler ends with its own (threaded) dispatch
    /// tail instead of falling back to the common dispatcher — the
    /// structural property that limited SCD's benefit on SpiderMonkey.
    /// Variable-length bytecodes advance the virtual PC by their own
    /// length and fetch at their own tail (SpiderMonkey's ADVANCE/
    /// DISPATCH macros), and so do the control-flow and compare handlers
    /// the paper names (FUNCALL, BRANCH, LT, ...); only single-byte
    /// simple bytecodes fall back to the common dispatcher.
    pub fn has_private_tail(self) -> bool {
        self.length() > 1
            || matches!(
                self,
                Op::Return | Op::ReturnVal | Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::Eq | Op::Ne
            )
    }
}

const ALL: [Op; NUM_IMPLEMENTED as usize] = [
    Op::Nop,
    Op::PushConst,
    Op::PushInt8,
    Op::PushInt16,
    Op::PushNil,
    Op::PushTrue,
    Op::PushFalse,
    Op::PushConst0,
    Op::PushConst1,
    Op::PushConst2,
    Op::PushConst3,
    Op::PushConst4,
    Op::PushConst5,
    Op::PushConst6,
    Op::PushConst7,
    Op::GetLocal,
    Op::SetLocal,
    Op::GetLocal0,
    Op::GetLocal1,
    Op::GetLocal2,
    Op::GetLocal3,
    Op::GetLocal4,
    Op::GetLocal5,
    Op::GetLocal6,
    Op::GetLocal7,
    Op::SetLocal0,
    Op::SetLocal1,
    Op::SetLocal2,
    Op::SetLocal3,
    Op::GetGlobal,
    Op::SetGlobal,
    Op::Pop,
    Op::Dup,
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::Mod,
    Op::Neg,
    Op::Not,
    Op::Eq,
    Op::Ne,
    Op::Lt,
    Op::Le,
    Op::Gt,
    Op::Ge,
    Op::Jump,
    Op::JumpIfFalse,
    Op::JumpIfTrue,
    Op::PushFn,
    Op::Call,
    Op::Return,
    Op::ReturnVal,
    Op::NewArray,
    Op::GetElem,
    Op::SetElem,
    Op::Len,
    Op::Builtin,
    Op::GetElemI,
    Op::SetElemI,
    Op::Inc,
    Op::Dec,
    Op::Halt,
];

/// Builtin IDs for `Op::Builtin` (same numbering as LVM's CallB).
pub use crate::lvm::bytecode::builtin_id;

/// Per-function metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncInfo {
    /// Byte offset of the function's first instruction.
    pub code_off: u32,
    /// Number of parameters.
    pub nparams: u32,
    /// Local slot count (params included).
    pub nlocals: u32,
}

/// A compiled SVM program.
#[derive(Debug, Clone, Default)]
pub struct SvmProgram {
    /// All functions' code, concatenated (function 0 is main).
    pub code: Vec<u8>,
    /// Shared constant pool (NaN-boxed).
    pub consts: Vec<u64>,
    /// Function table; index 0 is main.
    pub funcs: Vec<FuncInfo>,
    /// Number of global slots.
    pub nglobals: u32,
    /// Global slot names (index = slot).
    pub global_names: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_numbering() {
        for (n, op) in ALL.iter().enumerate() {
            assert_eq!(*op as u8 as usize, n);
            assert_eq!(Op::from_u8(n as u8), Some(*op));
        }
        assert_eq!(Op::from_u8(NUM_IMPLEMENTED as u8), None);
        const { assert!(NUM_IMPLEMENTED < NUM_OPS) };
    }

    #[test]
    fn lengths() {
        assert_eq!(Op::Add.length(), 1);
        assert_eq!(Op::PushInt8.length(), 2);
        assert_eq!(Op::PushConst.length(), 3);
        assert_eq!(Op::Jump.length(), 3);
        assert_eq!(Op::GetLocal3.length(), 1);
    }

    #[test]
    fn private_tails_match_paper_structure() {
        // Control flow, compares and variable-length forms have their
        // own dispatch tails; single-byte simple ops use the common
        // dispatcher.
        assert!(Op::Call.has_private_tail());
        assert!(Op::Jump.has_private_tail());
        assert!(Op::Lt.has_private_tail());
        assert!(Op::GetLocal.has_private_tail()); // variable length
        assert!(!Op::Add.has_private_tail());
        assert!(!Op::GetLocal0.has_private_tail()); // specialized, 1 byte
        assert!(!Op::Dup.has_private_tail());
    }
}
