//! Host (oracle) interpreter for SVM bytecode — the bit-exact reference
//! for the stack-based guest interpreter.

use super::bytecode::{builtin_id, FuncInfo, Op, SvmProgram};
use crate::lvm::interp::{RunResult, RuntimeError};
use crate::value as v;

/// Value-stack size cap. Hand-crafted programs can declare absurd
/// `nlocals`; capping turns the would-be allocation blow-up into a trap.
const STACK_CAP: usize = 1_000_000;

struct Frame {
    ret_pc: usize,
    locals: usize,
    /// Stack index of the callee's function-value slot (receives the
    /// result).
    fun_slot: usize,
}

/// The reference interpreter.
pub struct SvmInterp<'p> {
    p: &'p SvmProgram,
    globals: Vec<u64>,
    arrays: Vec<Vec<u64>>,
    stack: Vec<u64>,
    frames: Vec<Frame>,
    checksum: u64,
    emitted: Vec<u64>,
    op_counts: Vec<u64>,
}

impl<'p> SvmInterp<'p> {
    /// Creates an interpreter with initial global values.
    pub fn new(p: &'p SvmProgram, global_init: &[u64]) -> Self {
        let mut globals = vec![v::NIL; p.nglobals as usize];
        for (i, g) in global_init.iter().enumerate().take(globals.len()) {
            globals[i] = *g;
        }
        SvmInterp {
            p,
            globals,
            arrays: Vec::new(),
            stack: Vec::new(),
            frames: Vec::new(),
            checksum: 0,
            emitted: Vec::new(),
            op_counts: vec![0; super::bytecode::NUM_OPS as usize],
        }
    }

    fn fail<T>(&self, pc: usize, msg: impl Into<String>) -> Result<T, RuntimeError> {
        Err(RuntimeError { pc, message: msg.into() })
    }

    fn new_array(&mut self, len: usize) -> u64 {
        let handle = self.arrays.len() as u64;
        self.arrays.push(vec![v::NIL; len]);
        v::array_ref(handle)
    }

    fn elem(&self, pc: usize, aval: u64, ival: u64) -> Result<(usize, usize), RuntimeError> {
        if v::is_num(aval) || v::tag(aval) != v::TAG_ARRAY {
            return self.fail(pc, format!("indexing non-array {}", v::display(aval)));
        }
        if !v::is_num(ival) {
            return self.fail(pc, format!("non-numeric index {}", v::display(ival)));
        }
        let h = v::payload(aval) as usize;
        let idx = v::as_num(ival).trunc();
        // Byte-soup constants can forge an array ref with a bogus handle.
        let len = match self.arrays.get(h) {
            Some(a) => a.len(),
            None => return self.fail(pc, format!("bad array handle {h}")),
        };
        let i = idx as i64 as u64;
        if i >= len as u64 {
            return self.fail(pc, format!("index {idx} out of bounds (len {len})"));
        }
        Ok((h, i as usize))
    }

    /// Runs to `Halt`.
    ///
    /// # Errors
    /// Returns a [`RuntimeError`] on type errors, bad indices, stack
    /// overflow, reserved opcodes, truncated or out-of-range bytecode,
    /// or step-limit exhaustion. Never panics, even on hand-crafted
    /// byte-soup programs.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, RuntimeError> {
        let code = &self.p.code;
        let main: FuncInfo = match self.p.funcs.first() {
            Some(f) => *f,
            None => return self.fail(0, "program has no functions"),
        };
        if main.nlocals as usize > STACK_CAP {
            return self.fail(0, format!("main needs {} locals (cap {STACK_CAP})", main.nlocals));
        }
        let mut locals = 0usize;
        self.stack.resize(main.nlocals as usize, v::NIL);
        let mut pc = main.code_off as usize;
        let mut steps = 0u64;

        macro_rules! pop {
            ($pc:expr) => {
                match self.stack.pop() {
                    Some(x) => x,
                    None => return self.fail($pc, "operand stack underflow"),
                }
            };
        }
        macro_rules! push {
            ($v:expr) => {
                self.stack.push($v)
            };
        }
        macro_rules! num1 {
            ($pc:expr) => {{
                let x = pop!($pc);
                if !v::is_num(x) {
                    return self.fail($pc, format!("arithmetic on {}", v::display(x)));
                }
                v::as_num(x)
            }};
        }

        loop {
            if steps >= max_steps {
                return self.fail(pc, format!("step limit {max_steps} exhausted"));
            }
            steps += 1;
            let this_pc = pc;
            let byte = match code.get(pc) {
                Some(&b) => b,
                None => {
                    return self.fail(pc, format!("pc {pc} outside code ({} bytes)", code.len()))
                }
            };
            let op = match Op::from_u8(byte) {
                Some(op) => op,
                None => return self.fail(pc, format!("reserved opcode {byte}")),
            };
            self.op_counts[byte as usize] += 1;
            pc += 1;

            // Operand readers (bounds-checked: byte soup must trap, not
            // index out of range).
            macro_rules! rd_u8 {
                () => {
                    match code.get(pc) {
                        Some(&b) => {
                            pc += 1;
                            b
                        }
                        None => return self.fail(this_pc, "truncated instruction"),
                    }
                };
            }
            macro_rules! rd_u16 {
                () => {
                    match code.get(pc..pc + 2) {
                        Some(s) => {
                            let w = u16::from_le_bytes([s[0], s[1]]);
                            pc += 2;
                            w
                        }
                        None => return self.fail(this_pc, "truncated instruction"),
                    }
                };
            }
            macro_rules! rd_i16 {
                () => {
                    rd_u16!() as i16
                };
            }

            match op {
                Op::Nop => {}
                Op::PushConst => {
                    let k = rd_u16!();
                    match self.p.consts.get(k as usize) {
                        Some(&c) => push!(c),
                        None => return self.fail(this_pc, format!("constant {k} out of range")),
                    }
                }
                Op::PushInt8 => {
                    let b = rd_u8!() as i8;
                    push!(v::num(b as f64));
                }
                Op::PushInt16 => {
                    let w = rd_i16!();
                    push!(v::num(w as f64));
                }
                Op::PushNil => push!(v::NIL),
                Op::PushTrue => push!(v::TRUE),
                Op::PushFalse => push!(v::FALSE),
                Op::PushConst0
                | Op::PushConst1
                | Op::PushConst2
                | Op::PushConst3
                | Op::PushConst4
                | Op::PushConst5
                | Op::PushConst6
                | Op::PushConst7 => {
                    let k = byte - Op::PushConst0 as u8;
                    match self.p.consts.get(k as usize) {
                        Some(&c) => push!(c),
                        None => return self.fail(this_pc, format!("constant {k} out of range")),
                    }
                }
                Op::GetLocal => {
                    let n = rd_u8!() as usize;
                    match self.stack.get(locals + n) {
                        Some(&x) => push!(x),
                        None => return self.fail(this_pc, format!("local {n} out of range")),
                    }
                }
                Op::SetLocal => {
                    let n = rd_u8!() as usize;
                    let val = pop!(this_pc);
                    match self.stack.get_mut(locals + n) {
                        Some(slot) => *slot = val,
                        None => return self.fail(this_pc, format!("local {n} out of range")),
                    }
                }
                Op::GetLocal0
                | Op::GetLocal1
                | Op::GetLocal2
                | Op::GetLocal3
                | Op::GetLocal4
                | Op::GetLocal5
                | Op::GetLocal6
                | Op::GetLocal7 => {
                    let n = (byte - Op::GetLocal0 as u8) as usize;
                    match self.stack.get(locals + n) {
                        Some(&x) => push!(x),
                        None => return self.fail(this_pc, format!("local {n} out of range")),
                    }
                }
                Op::SetLocal0 | Op::SetLocal1 | Op::SetLocal2 | Op::SetLocal3 => {
                    let n = (byte - Op::SetLocal0 as u8) as usize;
                    let val = pop!(this_pc);
                    match self.stack.get_mut(locals + n) {
                        Some(slot) => *slot = val,
                        None => return self.fail(this_pc, format!("local {n} out of range")),
                    }
                }
                Op::GetGlobal => {
                    let g = rd_u16!();
                    match self.globals.get(g as usize) {
                        Some(&x) => push!(x),
                        None => return self.fail(this_pc, format!("global {g} out of range")),
                    }
                }
                Op::SetGlobal => {
                    let g = rd_u16!();
                    let val = pop!(this_pc);
                    match self.globals.get_mut(g as usize) {
                        Some(slot) => *slot = val,
                        None => return self.fail(this_pc, format!("global {g} out of range")),
                    }
                }
                Op::Pop => {
                    let _ = pop!(this_pc);
                }
                Op::Dup => {
                    let top = match self.stack.last() {
                        Some(&x) => x,
                        None => return self.fail(this_pc, "dup on empty stack"),
                    };
                    push!(top);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                    let y = num1!(this_pc);
                    let x = num1!(this_pc);
                    let r = match op {
                        Op::Add => x + y,
                        Op::Sub => x - y,
                        Op::Mul => x * y,
                        Op::Div => x / y,
                        _ => x - (x / y).floor() * y,
                    };
                    push!(v::num(r));
                }
                Op::Neg => {
                    let x = num1!(this_pc);
                    push!(v::num(-x));
                }
                Op::Not => {
                    let x = pop!(this_pc);
                    push!(v::boolean(!v::truthy(x)));
                }
                Op::Eq | Op::Ne => {
                    let y = pop!(this_pc);
                    let x = pop!(this_pc);
                    let eq = v::values_equal(x, y);
                    push!(v::boolean(if op == Op::Eq { eq } else { !eq }));
                }
                Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    let y = num1!(this_pc);
                    let x = num1!(this_pc);
                    let r = match op {
                        Op::Lt => x < y,
                        Op::Le => x <= y,
                        Op::Gt => x > y,
                        _ => x >= y,
                    };
                    push!(v::boolean(r));
                }
                Op::Jump => {
                    let rel = rd_i16!();
                    pc = (pc as i64 + rel as i64) as usize;
                }
                Op::JumpIfFalse => {
                    let rel = rd_i16!();
                    if !v::truthy(pop!(this_pc)) {
                        pc = (pc as i64 + rel as i64) as usize;
                    }
                }
                Op::JumpIfTrue => {
                    let rel = rd_i16!();
                    if v::truthy(pop!(this_pc)) {
                        pc = (pc as i64 + rel as i64) as usize;
                    }
                }
                Op::PushFn => {
                    let f = rd_u16!();
                    push!(v::function_ref(f as u64));
                }
                Op::Call => {
                    let argc = rd_u8!() as usize;
                    let fun_slot = match self.stack.len().checked_sub(argc + 1) {
                        Some(s) => s,
                        None => return self.fail(this_pc, "operand stack underflow"),
                    };
                    let fval = self.stack[fun_slot];
                    if v::is_num(fval) || v::tag(fval) != v::TAG_FUNCTION {
                        return self.fail(this_pc, format!("calling {}", v::display(fval)));
                    }
                    let fidx = v::payload(fval) as usize;
                    let f = match self.p.funcs.get(fidx) {
                        Some(f) => *f,
                        None => return self.fail(this_pc, format!("bad function index {fidx}")),
                    };
                    if argc as u32 != f.nparams {
                        return self.fail(this_pc, "arity mismatch");
                    }
                    if self.frames.len() >= 100_000 {
                        return self.fail(this_pc, "call stack overflow");
                    }
                    if f.nlocals as usize > STACK_CAP - fun_slot.min(STACK_CAP) {
                        return self.fail(this_pc, "value stack overflow");
                    }
                    self.frames.push(Frame { ret_pc: pc, locals, fun_slot });
                    locals = fun_slot + 1;
                    self.stack.resize(locals + f.nlocals as usize, v::NIL);
                    pc = f.code_off as usize;
                }
                Op::Return | Op::ReturnVal => {
                    let value = if op == Op::ReturnVal { pop!(this_pc) } else { v::NIL };
                    let frame = match self.frames.pop() {
                        Some(fr) => fr,
                        None => return self.fail(this_pc, "return from main"),
                    };
                    self.stack.truncate(frame.fun_slot);
                    push!(value);
                    locals = frame.locals;
                    pc = frame.ret_pc;
                }
                Op::NewArray => {
                    let n = num1!(this_pc).trunc();
                    if !(0.0..=1e9).contains(&n) {
                        return self.fail(this_pc, format!("bad array length {n}"));
                    }
                    let a = self.new_array(n as usize);
                    push!(a);
                }
                Op::GetElem => {
                    let i = pop!(this_pc);
                    let a = pop!(this_pc);
                    let (h, idx) = self.elem(this_pc, a, i)?;
                    push!(self.arrays[h][idx]);
                }
                Op::SetElem => {
                    let val = pop!(this_pc);
                    let i = pop!(this_pc);
                    let a = pop!(this_pc);
                    let (h, idx) = self.elem(this_pc, a, i)?;
                    self.arrays[h][idx] = val;
                }
                Op::GetElemI => {
                    let n = rd_u8!();
                    let a = pop!(this_pc);
                    let (h, idx) = self.elem(this_pc, a, v::num(n as f64))?;
                    push!(self.arrays[h][idx]);
                }
                Op::SetElemI => {
                    let n = rd_u8!();
                    let val = pop!(this_pc);
                    let a = pop!(this_pc);
                    let (h, idx) = self.elem(this_pc, a, v::num(n as f64))?;
                    self.arrays[h][idx] = val;
                }
                Op::Len => {
                    let a = pop!(this_pc);
                    if v::is_num(a) || v::tag(a) != v::TAG_ARRAY {
                        return self.fail(this_pc, "len of non-array");
                    }
                    let h = v::payload(a) as usize;
                    match self.arrays.get(h) {
                        Some(arr) => push!(v::num(arr.len() as f64)),
                        None => return self.fail(this_pc, format!("bad array handle {h}")),
                    }
                }
                Op::Builtin => {
                    let id = rd_u8!() as u32;
                    match id {
                        builtin_id::FLOOR => {
                            let x = num1!(this_pc);
                            push!(v::num(x.floor()));
                        }
                        builtin_id::SQRT => {
                            let x = num1!(this_pc);
                            push!(v::num(x.sqrt()));
                        }
                        builtin_id::ABS => {
                            let x = num1!(this_pc);
                            push!(v::num(x.abs()));
                        }
                        builtin_id::MIN | builtin_id::MAX => {
                            let y = num1!(this_pc);
                            let x = num1!(this_pc);
                            push!(v::num(if id == builtin_id::MIN { x.min(y) } else { x.max(y) }));
                        }
                        builtin_id::EMIT => {
                            let x = match self.stack.last() {
                                Some(&x) => x,
                                None => return self.fail(this_pc, "emit on empty stack"),
                            };
                            self.checksum = v::checksum_step(self.checksum, x);
                            self.emitted.push(x);
                            // value stays on the stack (emit returns it)
                        }
                        _ => return self.fail(this_pc, format!("bad builtin id {id}")),
                    }
                }
                Op::Inc => {
                    let x = num1!(this_pc);
                    push!(v::num(x + 1.0));
                }
                Op::Dec => {
                    let x = num1!(this_pc);
                    push!(v::num(x - 1.0));
                }
                Op::Halt => {
                    return Ok(RunResult {
                        checksum: self.checksum,
                        emitted: std::mem::take(&mut self.emitted),
                        steps,
                        op_counts: std::mem::take(&mut self.op_counts),
                    });
                }
            }
        }
    }
}

/// Convenience: parse + compile + run on the SVM oracle.
///
/// # Errors
/// Propagates parse, compile and runtime errors as a typed
/// [`LumaError`](crate::LumaError).
pub fn run_source(
    src: &str,
    predefined: &[(&str, f64)],
    max_steps: u64,
) -> Result<RunResult, crate::LumaError> {
    let script = crate::parser::parse(src)?;
    let (p, init) = super::compile::compile_svm(&script, predefined)?;
    Ok(SvmInterp::new(&p, &init).run(max_steps)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emits(src: &str) -> Vec<f64> {
        run_source(src, &[], 50_000_000)
            .unwrap()
            .emitted
            .iter()
            .map(|&b| f64::from_bits(b))
            .collect()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(emits("emit(1 + 2 * 3);"), vec![7.0]);
        assert_eq!(emits("var x = 7; emit(x % 3);"), vec![1.0]);
        assert_eq!(emits("var x = -7; emit(x % 3);"), vec![2.0]);
    }

    #[test]
    fn loops_and_calls() {
        assert_eq!(emits("var s = 0; for i = 1, 10 { s = s + i; } emit(s);"), vec![55.0]);
        assert_eq!(
            emits(
                "fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } emit(fib(15));"
            ),
            vec![610.0]
        );
    }

    #[test]
    fn downward_for() {
        assert_eq!(emits("var s = 0; for i = 10, 1, -2 { s = s + i; } emit(s);"), vec![30.0]);
    }

    #[test]
    fn dynamic_step_for() {
        assert_eq!(
            emits("var d = 3; var s = 0; for i = 0, 10, d { s = s + i; } emit(s);"),
            vec![18.0]
        );
        assert_eq!(
            emits("var d = -5; var s = 0; for i = 10, 0, d { s = s + i; } emit(s);"),
            vec![15.0]
        );
    }

    #[test]
    fn arrays_and_builtins() {
        assert_eq!(
            emits("var a = array(3); a[1] = 4; emit(a[1] + len(a)); emit(sqrt(49));"),
            vec![7.0, 7.0]
        );
        assert_eq!(emits("var a = [9, 8]; emit(a[0] - a[1]);"), vec![1.0]);
    }

    #[test]
    fn short_circuit() {
        assert_eq!(emits("var x = nil; emit(x and 1 or 2);"), vec![2.0]);
        assert_eq!(emits("var t = true; var a = nil; if t or a[0] { emit(1); }"), vec![1.0]);
    }

    #[test]
    fn matches_lvm_oracle_on_shared_semantics() {
        let src = "
            fn mul_add(a, b, c) { return a * b + c; }
            var acc = 0;
            for i = 1, 50 {
                acc = acc + mul_add(i, i, i % 7);
            }
            emit(acc);
            emit(floor(acc / 1000));
        ";
        let l = crate::lvm::run_source(src, &[], 1_000_000).unwrap();
        let s = run_source(src, &[], 1_000_000).unwrap();
        assert_eq!(l.checksum, s.checksum);
        assert_eq!(l.emitted, s.emitted);
    }

    #[test]
    fn type_errors_trap() {
        assert!(run_source("var x = nil; var y = x + 1;", &[], 1000).is_err());
        assert!(run_source("var a = array(1); emit(a[5]);", &[], 1000).is_err());
    }

    // ---- byte-soup robustness: hand-crafted programs must trap, never
    // panic the host. These inputs all panicked before the interpreter
    // was hardened. ----

    fn soup(code: Vec<u8>, consts: Vec<u64>) -> SvmProgram {
        SvmProgram {
            code,
            consts,
            funcs: vec![FuncInfo { code_off: 0, nparams: 0, nlocals: 1 }],
            nglobals: 0,
            global_names: Vec::new(),
        }
    }

    fn run_soup(p: &SvmProgram) -> Result<RunResult, RuntimeError> {
        SvmInterp::new(p, &[]).run(10_000)
    }

    #[test]
    fn truncated_instruction_traps() {
        // PushConst with its 2-byte operand cut off.
        let err = run_soup(&soup(vec![Op::PushConst as u8, 0x01], vec![])).unwrap_err();
        assert!(err.message.contains("truncated"), "{err}");
    }

    #[test]
    fn empty_function_table_traps() {
        let p = SvmProgram { funcs: Vec::new(), ..soup(vec![Op::Halt as u8], vec![]) };
        let err = SvmInterp::new(&p, &[]).run(10).unwrap_err();
        assert!(err.message.contains("no functions"), "{err}");
    }

    #[test]
    fn stack_underflow_traps() {
        // First Pop eats main's single local slot; the second underflows.
        let code = vec![Op::Pop as u8, Op::Pop as u8, Op::Halt as u8];
        let err = run_soup(&soup(code, vec![])).unwrap_err();
        assert!(err.message.contains("underflow"), "{err}");
    }

    #[test]
    fn out_of_range_constant_traps() {
        let err = run_soup(&soup(vec![Op::PushConst0 as u8, Op::Halt as u8], vec![])).unwrap_err();
        assert!(err.message.contains("constant"), "{err}");
    }

    #[test]
    fn forged_array_handle_traps() {
        // A constant carrying an array ref whose handle was never
        // allocated.
        let code = vec![Op::PushConst0 as u8, Op::Len as u8, Op::Halt as u8];
        let err = run_soup(&soup(code, vec![v::array_ref(99)])).unwrap_err();
        assert!(err.message.contains("bad array handle"), "{err}");
    }

    #[test]
    fn jump_past_end_traps() {
        // Forward jump straight out of the code array.
        let code = vec![Op::Jump as u8, 0xFF, 0x7F];
        let err = run_soup(&soup(code, vec![])).unwrap_err();
        assert!(err.message.contains("outside code"), "{err}");
    }

    #[test]
    fn call_on_underflowed_stack_traps() {
        let code = vec![Op::Call as u8, 3, Op::Halt as u8];
        let err = run_soup(&soup(code, vec![])).unwrap_err();
        assert!(err.message.contains("underflow"), "{err}");
    }
}
