//! Tokenizer for the Luma language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric literal.
    Num(f64),
    /// Identifier.
    Ident(String),
    // keywords
    /// `fn`.
    Fn,
    /// `var`.
    Var,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `while`.
    While,
    /// `for`.
    For,
    /// `return`.
    Return,
    /// `break`.
    Break,
    /// `true`.
    True,
    /// `false`.
    False,
    /// `nil`.
    Nil,
    /// `and`.
    And,
    /// `or`.
    Or,
    /// `not`.
    Not,
    // punctuation
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexing / parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line of the error.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Tokenizes a source string.
///
/// # Errors
/// Returns a [`ParseError`] on malformed numbers or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let err = |line: u32, message: String| ParseError { line, message };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| err(line, format!("malformed number `{text}`")))?;
                out.push(Spanned { tok: Tok::Num(n), line });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "var" => Tok::Var,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "nil" => Tok::Nil,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                let two = if i + 1 < bytes.len() { &src[i..i + 2] } else { "" };
                let (tok, len) = match two {
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    _ => {
                        let t = match c {
                            b'(' => Tok::LParen,
                            b')' => Tok::RParen,
                            b'{' => Tok::LBrace,
                            b'}' => Tok::RBrace,
                            b'[' => Tok::LBracket,
                            b']' => Tok::RBracket,
                            b',' => Tok::Comma,
                            b';' => Tok::Semi,
                            b'=' => Tok::Assign,
                            b'+' => Tok::Plus,
                            b'-' => Tok::Minus,
                            b'*' => Tok::Star,
                            b'/' => Tok::Slash,
                            b'%' => Tok::Percent,
                            b'<' => Tok::Lt,
                            b'>' => Tok::Gt,
                            other => {
                                return Err(err(
                                    line,
                                    format!("unexpected character `{}`", other as char),
                                ))
                            }
                        };
                        (t, 1)
                    }
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("1 2.5 1e3 1.5e-2"), vec![
            Tok::Num(1.0),
            Tok::Num(2.5),
            Tok::Num(1000.0),
            Tok::Num(0.015),
            Tok::Eof
        ]);
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(toks("fn foo var x"), vec![
            Tok::Fn,
            Tok::Ident("foo".into()),
            Tok::Var,
            Tok::Ident("x".into()),
            Tok::Eof
        ]);
    }

    #[test]
    fn operators() {
        assert_eq!(toks("== != <= >= < > = + - * / %"), vec![
            Tok::EqEq,
            Tok::NotEq,
            Tok::Le,
            Tok::Ge,
            Tok::Lt,
            Tok::Gt,
            Tok::Assign,
            Tok::Plus,
            Tok::Minus,
            Tok::Star,
            Tok::Slash,
            Tok::Percent,
            Tok::Eof
        ]);
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("x # comment\ny").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn unknown_character_errors() {
        assert!(lex("a ~ b").is_err());
    }
}
