//! The benchmark corpus: the 11 workloads of Table III, rewritten in
//! Luma (see DESIGN.md for the two documented substitutions:
//! integer-coded k-mers in k-nucleotide and an in-script spigot in
//! pidigits).

/// One benchmark script with its input parameters.
///
/// `sim_arg` / `fpga_arg` mirror the paper's two input columns in
/// Table III (scaled so simulated runs stay in the millions of
/// instructions); `tiny_arg` is for fast unit tests.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Benchmark name (Table III).
    pub name: &'static str,
    /// One-line description from Table III.
    pub description: &'static str,
    /// The Luma source.
    pub source: &'static str,
    /// Input for simulator-scale runs.
    pub sim_arg: f64,
    /// Input for FPGA-scale runs.
    pub fpga_arg: f64,
    /// Input for unit tests.
    pub tiny_arg: f64,
}

/// All 11 benchmarks, in the paper's Table III order.
pub const BENCHMARKS: [Benchmark; 11] = [
    Benchmark {
        name: "binary-trees",
        description: "Allocate and deallocate many binary trees",
        source: include_str!("../scripts/binary_trees.luma"),
        sim_arg: 7.0,
        fpga_arg: 9.0,
        tiny_arg: 4.0,
    },
    Benchmark {
        name: "fannkuch-redux",
        description: "Indexed-access to tiny integer-sequence",
        source: include_str!("../scripts/fannkuch_redux.luma"),
        sim_arg: 7.0,
        fpga_arg: 8.0,
        tiny_arg: 5.0,
    },
    Benchmark {
        name: "k-nucleotide",
        description: "Repeatedly update hashtables keyed by k-mers",
        source: include_str!("../scripts/knucleotide.luma"),
        sim_arg: 15000.0,
        fpga_arg: 50000.0,
        tiny_arg: 300.0,
    },
    Benchmark {
        name: "mandelbrot",
        description: "Generate Mandelbrot set membership counts",
        source: include_str!("../scripts/mandelbrot.luma"),
        sim_arg: 64.0,
        fpga_arg: 160.0,
        tiny_arg: 16.0,
    },
    Benchmark {
        name: "n-body",
        description: "Double-precision N-body simulation",
        source: include_str!("../scripts/nbody.luma"),
        sim_arg: 1500.0,
        fpga_arg: 6000.0,
        tiny_arg: 40.0,
    },
    Benchmark {
        name: "spectral-norm",
        description: "Eigenvalue using the power method",
        source: include_str!("../scripts/spectral_norm.luma"),
        sim_arg: 40.0,
        fpga_arg: 90.0,
        tiny_arg: 8.0,
    },
    Benchmark {
        name: "n-sieve",
        description: "Count primes with the Sieve of Eratosthenes",
        source: include_str!("../scripts/nsieve.luma"),
        sim_arg: 4.0,
        fpga_arg: 6.0,
        tiny_arg: 2.0,
    },
    Benchmark {
        name: "random",
        description: "Linear congruential random number generation",
        source: include_str!("../scripts/random.luma"),
        sim_arg: 40000.0,
        fpga_arg: 150000.0,
        tiny_arg: 800.0,
    },
    Benchmark {
        name: "fibo",
        description: "Recursive Fibonacci",
        source: include_str!("../scripts/fibo.luma"),
        sim_arg: 21.0,
        fpga_arg: 25.0,
        tiny_arg: 12.0,
    },
    Benchmark {
        name: "ackermann",
        description: "Ackermann function recursion",
        source: include_str!("../scripts/ackermann.luma"),
        sim_arg: 5.0,
        fpga_arg: 7.0,
        tiny_arg: 3.0,
    },
    Benchmark {
        name: "pidigits",
        description: "Streaming spigot computation of pi digits",
        source: include_str!("../scripts/pidigits.luma"),
        sim_arg: 110.0,
        fpga_arg: 280.0,
        tiny_arg: 20.0,
    },
];

/// Looks up a benchmark by name.
pub fn find(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_complete() {
        assert_eq!(BENCHMARKS.len(), 11);
        assert!(find("fibo").is_some());
        assert!(find("n-body").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn all_parse() {
        for b in &BENCHMARKS {
            crate::parser::parse(b.source)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", b.name));
        }
    }

    #[test]
    fn all_run_on_both_oracles_with_matching_checksums() {
        for b in &BENCHMARKS {
            let args = [("N", b.tiny_arg)];
            let l = crate::lvm::run_source(b.source, &args, 100_000_000)
                .unwrap_or_else(|e| panic!("{} fails on LVM oracle: {e}", b.name));
            let s = crate::svm::run_source(b.source, &args, 200_000_000)
                .unwrap_or_else(|e| panic!("{} fails on SVM oracle: {e}", b.name));
            assert_eq!(
                l.checksum, s.checksum,
                "{}: LVM and SVM oracles disagree (emitted {:?} vs {:?})",
                b.name, l.emitted, s.emitted
            );
            assert!(!l.emitted.is_empty(), "{} emits nothing", b.name);
        }
    }

    #[test]
    fn results_are_scale_sensitive() {
        // Sanity: the checksum actually depends on N.
        let b = find("fibo").unwrap();
        let a = crate::lvm::run_source(b.source, &[("N", 10.0)], 10_000_000).unwrap();
        let c = crate::lvm::run_source(b.source, &[("N", 11.0)], 10_000_000).unwrap();
        assert_ne!(a.checksum, c.checksum);
    }
}
