//! LVM: the register-based bytecode VM (the paper's Lua analogue).

pub mod bytecode;
pub mod compile;
pub mod interp;

pub use bytecode::{disasm, listing, FuncInfo, LvmProgram, Op, NUM_OPS};
pub use compile::{compile_lvm, CompileError};
pub use interp::{run_source, LvmInterp, RunResult, RuntimeError};
