//! AST → LVM register bytecode compiler.
//!
//! A single-pass, Lua-style code generator: locals live in fixed
//! registers from the bottom of the frame, expression temporaries are
//! allocated above them with a `freereg` watermark.

use super::bytecode::{self as bc, abc, abx, asbx, builtin_id, FuncInfo, LvmProgram, Op};
use crate::ast::*;
use crate::value;
use std::collections::HashMap;
use std::fmt;

/// Compilation error with a message (line tracking is per-function).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError { message: msg.into() })
}

/// Shared cross-function state.
struct Shared {
    consts: Vec<u64>,
    const_map: HashMap<u64, u32>,
    globals: Vec<String>,
    global_map: HashMap<String, u32>,
    fn_ids: HashMap<String, u32>,
    fn_arity: Vec<usize>,
}

impl Shared {
    fn const_idx(&mut self, v: u64) -> u32 {
        if let Some(&i) = self.const_map.get(&v) {
            return i;
        }
        let i = self.consts.len() as u32;
        self.consts.push(v);
        self.const_map.insert(v, i);
        i
    }

    fn global_slot(&self, name: &str) -> Option<u32> {
        self.global_map.get(name).copied()
    }
}

/// Per-function code generator.
struct FnGen<'s> {
    shared: &'s mut Shared,
    code: Vec<u32>,
    scopes: Vec<Vec<(String, u32)>>,
    nlocals: u32,
    freereg: u32,
    maxreg: u32,
    /// Stack of break-patch lists for enclosing loops.
    breaks: Vec<Vec<usize>>,
    is_main: bool,
}

impl<'s> FnGen<'s> {
    fn new(shared: &'s mut Shared, is_main: bool) -> Self {
        FnGen {
            shared,
            code: Vec::new(),
            scopes: vec![Vec::new()],
            nlocals: 0,
            freereg: 0,
            maxreg: 0,
            breaks: Vec::new(),
            is_main,
        }
    }

    fn emit(&mut self, i: u32) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    /// Emits a jump-family instruction with a placeholder offset;
    /// returns the patch position.
    fn emit_jump(&mut self, op: Op, a: u32) -> usize {
        self.emit(asbx(op, a, 0))
    }

    /// Patches the jump at `pos` to land on the current position.
    fn patch_here(&mut self, pos: usize) {
        let target = self.code.len() as i32;
        let sbx = target - (pos as i32 + 1);
        let old = self.code[pos];
        let op = Op::from_u32(bc::get_op(old)).expect("patching a non-instruction");
        self.code[pos] = asbx(op, bc::get_a(old), sbx);
    }

    /// Relative offset from the instruction after `from_next` to `target`.
    fn jump_back(&mut self, op: Op, a: u32, target: usize) {
        let sbx = target as i32 - (self.code.len() as i32 + 1);
        self.emit(asbx(op, a, sbx));
    }

    fn alloc_temp(&mut self) -> Result<u32, CompileError> {
        let r = self.freereg;
        if r >= 250 {
            return err("expression too complex (out of registers)");
        }
        self.freereg += 1;
        self.maxreg = self.maxreg.max(self.freereg);
        Ok(r)
    }

    fn declare_local(&mut self, name: &str) -> Result<u32, CompileError> {
        // Locals must sit at the bottom of the live register window; any
        // pending temporaries would be clobbered, so this is only called
        // at statement boundaries where freereg == nlocals.
        debug_assert_eq!(self.freereg, self.nlocals);
        let r = self.nlocals;
        if r >= 200 {
            return err("too many locals");
        }
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.to_string(), r));
        self.nlocals += 1;
        self.freereg = self.nlocals;
        self.maxreg = self.maxreg.max(self.freereg);
        Ok(r)
    }

    fn lookup_local(&self, name: &str) -> Option<u32> {
        for scope in self.scopes.iter().rev() {
            for (n, r) in scope.iter().rev() {
                if n == name {
                    return Some(*r);
                }
            }
        }
        None
    }

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        let dropped = self.scopes.pop().expect("scope stack never empty");
        self.nlocals -= dropped.len() as u32;
        self.freereg = self.nlocals;
    }

    // ---- expressions ----

    /// Literal → boxed constant bits, when the expression is a literal.
    fn literal_bits(e: &Expr) -> Option<u64> {
        match e {
            Expr::Num(n) => Some(value::num(*n)),
            Expr::Bool(b) => Some(value::boolean(*b)),
            Expr::Nil => Some(value::NIL),
            _ => None,
        }
    }

    /// Evaluates `e` into register `dst`.
    fn expr_to(&mut self, e: &Expr, dst: u32) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => {
                // Small integral constants load immediately. -0.0 must
                // NOT take this path: the integer immediate would drop
                // the sign bit.
                if is_int_imm(*n) && (-100000.0..=100000.0).contains(n) {
                    self.emit(asbx(Op::LoadInt, dst, *n as i32));
                } else {
                    let k = self.shared.const_idx(value::num(*n));
                    self.emit(abx(Op::LoadK, dst, k));
                }
            }
            Expr::Bool(b) => {
                self.emit(abc(Op::LoadBool, dst, *b as u32, 0));
            }
            Expr::Nil => {
                self.emit(abc(Op::LoadNil, dst, 0, 0));
            }
            Expr::Var(name) => {
                if let Some(r) = self.lookup_local(name) {
                    if r != dst {
                        self.emit(abc(Op::Move, dst, r, 0));
                    }
                } else if let Some(g) = self.shared.global_slot(name) {
                    self.emit(abx(Op::GetGlobal, dst, g));
                } else if let Some(&f) = self.shared.fn_ids.get(name.as_str()) {
                    self.emit(abx(Op::Closure, dst, f));
                } else {
                    return err(format!("undefined variable `{name}`"));
                }
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => {
                    let r = self.expr_any(expr)?;
                    self.emit(abc(Op::Unm, dst, r, 0));
                }
                UnOp::Not => {
                    let r = self.expr_any(expr)?;
                    self.emit(abc(Op::Not, dst, r, 0));
                }
            },
            Expr::Binary { op, lhs, rhs } => self.binary_to(*op, lhs, rhs, dst)?,
            Expr::Index { array, index } => {
                let a = self.expr_any(array)?;
                // Immediate index fast path.
                if let Expr::Num(n) = **index {
                    if n.fract() == 0.0 && (0.0..512.0).contains(&n) {
                        self.emit(abc(Op::GetIdxI, dst, a, n as u32));
                        return Ok(());
                    }
                }
                let i = self.expr_any(index)?;
                self.emit(abc(Op::GetIdx, dst, a, i));
            }
            Expr::ArrayLit(items) => {
                if items.len() >= (1 << 18) {
                    return err("array literal too long");
                }
                let a = self.expr_fresh(&Expr::ArrayLit(Vec::new()))?; // placeholder unreachable
                // The line above would recurse; build directly instead.
                let _ = a;
                unreachable!("ArrayLit handled in expr_fresh/expr_to wrapper");
            }
            Expr::Call { callee, args } => {
                // Calls evaluate in a fresh contiguous window; copy down.
                let r = self.call_to_temp(callee, args)?;
                if r != dst {
                    self.emit(abc(Op::Move, dst, r, 0));
                }
            }
            Expr::BuiltinCall { builtin, args } => {
                let r = self.builtin_to_temp(*builtin, args)?;
                if r != dst {
                    self.emit(abc(Op::Move, dst, r, 0));
                }
            }
        }
        Ok(())
    }

    /// Evaluates `e`, returning a register that holds it (a local's own
    /// register when possible, otherwise a fresh temporary).
    fn expr_any(&mut self, e: &Expr) -> Result<u32, CompileError> {
        if let Expr::Var(name) = e {
            if let Some(r) = self.lookup_local(name) {
                return Ok(r);
            }
        }
        self.expr_fresh(e)
    }

    /// Evaluates `e` into a fresh temporary.
    fn expr_fresh(&mut self, e: &Expr) -> Result<u32, CompileError> {
        // Array literals are easier to generate here where the
        // destination register is known to be a temporary.
        if let Expr::ArrayLit(items) = e {
            let dst = self.alloc_temp()?;
            self.emit(abx(Op::NewArrI, dst, items.len() as u32));
            for (i, item) in items.iter().enumerate() {
                let saved = self.freereg;
                let v = self.expr_any(item)?;
                if i < 512 {
                    self.emit(abc(Op::SetIdxI, dst, i as u32, v));
                } else {
                    let idx = self.alloc_temp()?;
                    self.emit(asbx(Op::LoadInt, idx, i as i32));
                    self.emit(abc(Op::SetIdx, dst, idx, v));
                }
                self.freereg = saved;
            }
            return Ok(dst);
        }
        if let Expr::Call { callee, args } = e {
            return self.call_to_temp(callee, args);
        }
        if let Expr::BuiltinCall { builtin, args } = e {
            return self.builtin_to_temp(*builtin, args);
        }
        let dst = self.alloc_temp()?;
        self.expr_to(e, dst)?;
        Ok(dst)
    }

    /// Static arity check when the callee is a known function name.
    fn check_arity(&self, callee: &Expr, nargs: usize) -> Result<(), CompileError> {
        if let Expr::Var(name) = callee {
            if self.lookup_local(name).is_none() && self.shared.global_slot(name).is_none() {
                if let Some(&f) = self.shared.fn_ids.get(name.as_str()) {
                    let want = self.shared.fn_arity[f as usize];
                    if want != nargs {
                        return err(format!(
                            "function `{name}` takes {want} argument(s), got {nargs}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Emits a call; the result lands in the window base register.
    fn call_to_temp(&mut self, callee: &Expr, args: &[Expr]) -> Result<u32, CompileError> {
        let base = self.freereg;
        self.check_arity(callee, args.len())?;
        let f = self.alloc_temp()?;
        debug_assert_eq!(f, base);
        self.expr_to(callee, f)?;
        for arg in args {
            let r = self.alloc_temp()?;
            self.expr_to(arg, r)?;
            // Sub-expression temporaries may have pushed freereg past the
            // argument slot; the call window must stay contiguous.
            self.freereg = r + 1;
        }
        self.emit(abc(Op::Call, base, args.len() as u32 + 1, 2));
        self.freereg = base + 1; // result occupies the base slot
        Ok(base)
    }

    fn builtin_to_temp(&mut self, b: Builtin, args: &[Expr]) -> Result<u32, CompileError> {
        // Single-opcode builtins. The destination reuses the first free
        // slot (the handler reads B before writing A, so dst may alias
        // the argument's temporary).
        let single = match b {
            Builtin::Sqrt => Some(Op::Sqrt),
            Builtin::Floor => Some(Op::Floor),
            Builtin::Len => Some(Op::Len),
            Builtin::Array => Some(Op::NewArr),
            _ => None,
        };
        if let Some(op) = single {
            let saved = self.freereg;
            let r = self.expr_any(&args[0])?;
            self.freereg = saved;
            let dst = self.alloc_temp()?;
            self.emit(abc(op, dst, r, 0));
            return Ok(dst);
        }
        // Window-based builtins (CallB): args contiguous from base.
        let base = self.freereg;
        for arg in args {
            let r = self.alloc_temp()?;
            self.expr_to(arg, r)?;
            self.freereg = r + 1;
        }
        let id = match b {
            Builtin::Abs => builtin_id::ABS,
            Builtin::Min => builtin_id::MIN,
            Builtin::Max => builtin_id::MAX,
            Builtin::Emit => builtin_id::EMIT,
            _ => unreachable!("handled above"),
        };
        self.emit(abc(Op::CallB, base, id, args.len() as u32));
        self.freereg = base + 1;
        Ok(base)
    }

    fn binary_to(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, dst: u32) -> Result<(), CompileError> {
        // Constant folding over whole literal subtrees.
        if let (Some(a), Some(b)) = (const_eval(lhs), const_eval(rhs)) {
            if let Some(folded) = fold(op, a, b) {
                return self.expr_to(&folded, dst);
            }
        }

        match op {
            BinOp::And => {
                self.expr_to(lhs, dst)?;
                let j = self.emit_jump(Op::TestF, dst);
                self.expr_to(rhs, dst)?;
                self.patch_here(j);
                return Ok(());
            }
            BinOp::Or => {
                self.expr_to(lhs, dst)?;
                let j = self.emit_jump(Op::TestT, dst);
                self.expr_to(rhs, dst)?;
                self.patch_here(j);
                return Ok(());
            }
            _ => {}
        }

        // Normalize Gt/Ge to Lt/Le with swapped operands.
        let (op, lhs, rhs) = match op {
            BinOp::Gt => (BinOp::Lt, rhs, lhs),
            BinOp::Ge => (BinOp::Le, rhs, lhs),
            _ => (op, lhs, rhs),
        };

        let saved = self.freereg;
        let b = self.expr_any(lhs)?;

        // K-form when the RHS is a literal and the pool index fits C.
        if let Some(bits) = Self::literal_bits(rhs) {
            // AddI special case: small integer add/sub. Excludes -0.0
            // (x + 0.0 and x + (-0.0) differ when x is -0.0), and
            // subtraction of 0.0 (x - 0.0 != x + 0.0 for x = -0.0).
            if let Expr::Num(n) = rhs {
                if (op == BinOp::Add || (op == BinOp::Sub && *n != 0.0))
                    && is_int_imm(*n)
                    && (-255.0..=255.0).contains(n)
                {
                    let v = if op == BinOp::Sub { -*n } else { *n } as i32;
                    self.emit(abc(Op::AddI, dst, b, (v + 256) as u32));
                    self.freereg = saved;
                    return Ok(());
                }
            }
            let kop = match op {
                BinOp::Add => Some(Op::AddK),
                BinOp::Sub => Some(Op::SubK),
                BinOp::Mul => Some(Op::MulK),
                BinOp::Div => Some(Op::DivK),
                BinOp::Mod => Some(Op::ModK),
                BinOp::Eq => Some(Op::EqK),
                BinOp::Ne => Some(Op::NeK),
                BinOp::Lt => Some(Op::LtK),
                BinOp::Le => Some(Op::LeK),
                _ => None,
            };
            if let Some(kop) = kop {
                let k = self.shared.const_idx(bits);
                if k < 512 {
                    self.emit(abc(kop, dst, b, k));
                    self.freereg = saved;
                    return Ok(());
                }
            }
        }

        let c = self.expr_any(rhs)?;
        let rop = match op {
            BinOp::Add => Op::Add,
            BinOp::Sub => Op::Sub,
            BinOp::Mul => Op::Mul,
            BinOp::Div => Op::Div,
            BinOp::Mod => Op::Mod,
            BinOp::Eq => Op::Eq,
            BinOp::Ne => Op::Ne,
            BinOp::Lt => Op::Lt,
            BinOp::Le => Op::Le,
            BinOp::And | BinOp::Or | BinOp::Gt | BinOp::Ge => unreachable!("normalized above"),
        };
        self.emit(abc(rop, dst, b, c));
        self.freereg = saved;
        Ok(())
    }

    // ---- statements ----

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.push_scope();
        for s in stmts {
            self.stmt(s)?;
        }
        self.pop_scope();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        debug_assert_eq!(self.freereg, self.nlocals, "temps leaked across statements");
        match s {
            Stmt::Var { name, init } => {
                if self.is_main && self.scopes.len() == 1 {
                    // Top-level var: global (slot pre-registered).
                    let g = self
                        .shared
                        .global_slot(name)
                        .expect("top-level globals pre-registered");
                    let saved = self.freereg;
                    let r = self.expr_fresh(init)?;
                    self.emit(abx(Op::SetGlobal, r, g));
                    self.freereg = saved;
                } else {
                    // Evaluate first (initializer may reference an outer
                    // binding of the same name), then bind.
                    let saved = self.freereg;
                    let r = self.expr_fresh(init)?;
                    self.freereg = saved;
                    let slot = self.declare_local(name)?;
                    debug_assert_eq!(slot, r, "local lands where the temp was computed");
                    if slot != r {
                        self.emit(abc(Op::Move, slot, r, 0));
                    }
                }
            }
            Stmt::Assign { target, value } => match target {
                Expr::Var(name) => {
                    if let Some(r) = self.lookup_local(name) {
                        let saved = self.freereg;
                        self.expr_to(value, r)?;
                        self.freereg = saved;
                    } else if let Some(g) = self.shared.global_slot(name) {
                        let saved = self.freereg;
                        let r = self.expr_any(value)?;
                        self.emit(abx(Op::SetGlobal, r, g));
                        self.freereg = saved;
                    } else {
                        return err(format!("undefined variable `{name}`"));
                    }
                }
                Expr::Index { array, index } => {
                    let saved = self.freereg;
                    let a = self.expr_any(array)?;
                    if let Expr::Num(n) = **index {
                        if n.fract() == 0.0 && (0.0..512.0).contains(&n) {
                            let v = self.expr_any(value)?;
                            self.emit(abc(Op::SetIdxI, a, n as u32, v));
                            self.freereg = saved;
                            return Ok(());
                        }
                    }
                    let i = self.expr_any(index)?;
                    let v = self.expr_any(value)?;
                    self.emit(abc(Op::SetIdx, a, i, v));
                    self.freereg = saved;
                }
                _ => return err("invalid assignment target"),
            },
            Stmt::If { cond, then_body, else_body } => {
                let saved = self.freereg;
                let c = self.expr_any(cond)?;
                let jfalse = self.emit_jump(Op::TestF, c);
                self.freereg = saved;
                self.block(then_body)?;
                if else_body.is_empty() {
                    self.patch_here(jfalse);
                } else {
                    let jend = self.emit_jump(Op::Jmp, 0);
                    self.patch_here(jfalse);
                    self.block(else_body)?;
                    self.patch_here(jend);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.code.len();
                let saved = self.freereg;
                let c = self.expr_any(cond)?;
                let jexit = self.emit_jump(Op::TestF, c);
                self.freereg = saved;
                self.breaks.push(Vec::new());
                self.block(body)?;
                self.jump_back(Op::Jmp, 0, top);
                self.patch_here(jexit);
                for b in self.breaks.pop().expect("breaks pushed above") {
                    self.patch_here(b);
                }
            }
            Stmt::For { var, start, limit, step, body } => {
                self.push_scope();
                // Hidden control registers + user variable, contiguous.
                let base = self.declare_local("(for-index)")?;
                let rlimit = self.declare_local("(for-limit)")?;
                let rstep = self.declare_local("(for-step)")?;
                let saved = self.freereg;
                self.expr_to(start, base)?;
                self.expr_to(limit, rlimit)?;
                self.expr_to(step, rstep)?;
                self.freereg = saved;
                let rvar = self.declare_local(var)?;
                debug_assert_eq!(rvar, base + 3);
                let jprep = self.emit_jump(Op::ForPrep, base);
                let body_top = self.code.len();
                self.breaks.push(Vec::new());
                self.block(body)?;
                self.patch_here(jprep);
                // FORLOOP jumps back to the body top when continuing.
                let sbx = body_top as i32 - (self.code.len() as i32 + 1);
                self.emit(asbx(Op::ForLoop, base, sbx));
                for b in self.breaks.pop().expect("breaks pushed above") {
                    self.patch_here(b);
                }
                self.pop_scope();
            }
            Stmt::Return(value) => {
                if self.is_main {
                    // `return` at top level halts the interpreter.
                    self.emit(abc(Op::Halt, 0, 0, 0));
                } else {
                    match value {
                        Some(e) => {
                            let saved = self.freereg;
                            let r = self.expr_any(e)?;
                            self.emit(abc(Op::Return, r, 2, 0));
                            self.freereg = saved;
                        }
                        None => {
                            self.emit(abc(Op::Return, 0, 1, 0));
                        }
                    }
                }
            }
            Stmt::Break => {
                if self.breaks.is_empty() {
                    return err("`break` outside a loop");
                }
                let j = self.emit_jump(Op::Jmp, 0);
                self.breaks
                    .last_mut()
                    .expect("checked non-empty")
                    .push(j);
            }
            Stmt::Expr(e) => {
                let saved = self.freereg;
                // Call statements discard the result.
                if let Expr::Call { callee, args } = e {
                    self.check_arity(callee, args.len())?;
                    let base = self.freereg;
                    let f = self.alloc_temp()?;
                    self.expr_to(callee, f)?;
                    for arg in args {
                        let r = self.alloc_temp()?;
                        self.expr_to(arg, r)?;
                        self.freereg = r + 1;
                    }
                    self.emit(abc(Op::Call, base, args.len() as u32 + 1, 1));
                } else {
                    let _ = self.expr_fresh(e)?;
                }
                self.freereg = saved;
            }
        }
        debug_assert_eq!(self.freereg, self.nlocals, "temps leaked by statement");
        Ok(())
    }
}

/// True when `n` can be carried as an integer immediate without losing
/// information (in particular, -0.0 cannot: its sign bit matters).
fn is_int_imm(n: f64) -> bool {
    n.fract() == 0.0 && !(n == 0.0 && n.is_sign_negative())
}

/// Evaluates a pure-literal numeric subtree at compile time.
fn const_eval(e: &Expr) -> Option<f64> {
    match e {
        Expr::Num(n) => Some(*n),
        Expr::Unary { op: UnOp::Neg, expr } => const_eval(expr).map(|v| -v),
        Expr::Binary { op, lhs, rhs } => {
            let (a, b) = (const_eval(lhs)?, const_eval(rhs)?);
            match fold(*op, a, b)? {
                Expr::Num(n) => Some(n),
                _ => None,
            }
        }
        _ => None,
    }
}

fn fold(op: BinOp, a: f64, b: f64) -> Option<Expr> {
    Some(match op {
        BinOp::Add => Expr::Num(a + b),
        BinOp::Sub => Expr::Num(a - b),
        BinOp::Mul => Expr::Num(a * b),
        BinOp::Div => Expr::Num(a / b),
        BinOp::Mod => Expr::Num(a - (a / b).floor() * b),
        BinOp::Eq => Expr::Bool(a == b),
        BinOp::Ne => Expr::Bool(a != b),
        BinOp::Lt => Expr::Bool(a < b),
        BinOp::Le => Expr::Bool(a <= b),
        BinOp::Gt => Expr::Bool(a > b),
        BinOp::Ge => Expr::Bool(a >= b),
        BinOp::And | BinOp::Or => return None,
    })
}

/// Compiles a script to LVM bytecode.
///
/// `predefined_globals` injects named input parameters (e.g. the
/// benchmark size `N`); their initial values are stored in
/// [`LvmProgram`]-adjacent global init data returned alongside.
///
/// # Errors
/// Returns a [`CompileError`] for undefined names, arity mismatches and
/// resource-limit overflows.
pub fn compile_lvm(
    script: &Script,
    predefined_globals: &[(&str, f64)],
) -> Result<(LvmProgram, Vec<u64>), CompileError> {
    let mut shared = Shared {
        consts: Vec::new(),
        const_map: HashMap::new(),
        globals: Vec::new(),
        global_map: HashMap::new(),
        fn_ids: HashMap::new(),
        fn_arity: vec![0], // main
    };

    // Register injected globals first so their slots are stable.
    let mut global_init = Vec::new();
    for (name, v) in predefined_globals {
        if shared.global_map.contains_key(*name) {
            return err(format!("duplicate predefined global `{name}`"));
        }
        shared.global_map.insert(name.to_string(), shared.globals.len() as u32);
        shared.globals.push(name.to_string());
        global_init.push(value::num(*v));
    }

    // Register top-level globals.
    for s in &script.top_level {
        if let Stmt::Var { name, .. } = s {
            if !shared.global_map.contains_key(name) {
                shared.global_map.insert(name.clone(), shared.globals.len() as u32);
                shared.globals.push(name.clone());
                global_init.push(value::NIL);
            }
        }
    }

    // Register function names (ids 1..; 0 is main).
    for (i, f) in script.functions.iter().enumerate() {
        let id = i as u32 + 1;
        if shared.fn_ids.insert(f.name.clone(), id).is_some() {
            return err(format!("duplicate function `{}`", f.name));
        }
        shared.fn_arity.push(f.params.len());
    }

    let mut code: Vec<u32> = Vec::new();
    let mut funcs: Vec<FuncInfo> = Vec::new();

    // Main (function 0).
    {
        let mut g = FnGen::new(&mut shared, true);
        for s in &script.top_level {
            g.stmt(s)?;
        }
        g.emit(abc(Op::Halt, 0, 0, 0));
        funcs.push(FuncInfo { code_off: 0, nparams: 0, nregs: g.maxreg.max(1) });
        code.extend_from_slice(&g.code);
    }

    for f in &script.functions {
        let off = code.len() as u32;
        let mut g = FnGen::new(&mut shared, false);
        for p in &f.params {
            g.declare_local(p)?;
        }
        for s in &f.body {
            g.stmt(s)?;
        }
        // Implicit `return nil`.
        g.emit(abc(Op::Return, 0, 1, 0));
        funcs.push(FuncInfo {
            code_off: off,
            nparams: f.params.len() as u32,
            nregs: g.maxreg.max(f.params.len() as u32).max(1),
        });
        code.extend_from_slice(&g.code);
    }

    if code.len() >= (1 << 26) {
        return err("program too large");
    }

    Ok((
        LvmProgram {
            code,
            consts: shared.consts,
            funcs,
            nglobals: shared.globals.len() as u32,
            global_names: shared.globals,
        },
        global_init,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> (LvmProgram, Vec<u64>) {
        compile_lvm(&parse(src).unwrap(), &[]).unwrap()
    }

    #[test]
    fn simple_program_compiles() {
        let (p, _) = compile("var x = 1 + 2; emit(x);");
        assert_eq!(p.funcs.len(), 1);
        assert!(p.code.len() >= 3);
        // Last instruction of main is Halt.
        assert_eq!(bc::get_op(*p.code.last().unwrap()), Op::Halt as u32);
    }

    #[test]
    fn constant_folding() {
        let (p, _) = compile("var x = 2 * 3 + 4;");
        // Folded to LoadInt 10 + SetGlobal + Halt.
        assert_eq!(p.code.len(), 3);
        assert_eq!(bc::get_op(p.code[0]), Op::LoadInt as u32);
        assert_eq!(bc::get_sbx(p.code[0]), 10);
    }

    #[test]
    fn functions_and_calls() {
        let (p, _) = compile("fn id(x) { return x; } emit(id(5));");
        assert_eq!(p.funcs.len(), 2);
        assert_eq!(p.funcs[1].nparams, 1);
        let has_call = p.code.iter().any(|&i| bc::get_op(i) == Op::Call as u32);
        assert!(has_call);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r = compile_lvm(&parse("fn f(a, b) { return a; } f(1);").unwrap(), &[]);
        assert!(r.is_err());
    }

    #[test]
    fn undefined_variable_rejected() {
        assert!(compile_lvm(&parse("emit(zzz);").unwrap(), &[]).is_err());
    }

    #[test]
    fn predefined_globals_get_slots() {
        let (p, init) =
            compile_lvm(&parse("emit(N);").unwrap(), &[("N", 42.0)]).unwrap();
        assert_eq!(p.nglobals, 1);
        assert_eq!(init[0], value::num(42.0));
    }

    #[test]
    fn for_loop_uses_forprep_forloop() {
        let (p, _) = compile("var s = 0; for i = 1, 10 { s = s + i; }");
        let ops: Vec<u32> = p.code.iter().map(|&i| bc::get_op(i)).collect();
        assert!(ops.contains(&(Op::ForPrep as u32)));
        assert!(ops.contains(&(Op::ForLoop as u32)));
    }

    #[test]
    fn k_forms_selected() {
        let (p, _) = compile("var a = 0; var b = a * 1.5; var c = a < 2.5;");
        let ops: Vec<u32> = p.code.iter().map(|&i| bc::get_op(i)).collect();
        assert!(ops.contains(&(Op::MulK as u32)));
        assert!(ops.contains(&(Op::LtK as u32)));
    }

    #[test]
    fn addi_selected_for_small_ints() {
        let (p, _) = compile("var a = 0; var b = a + 1; var c = a - 3;");
        let addis: Vec<u32> =
            p.code.iter().filter(|&&i| bc::get_op(i) == Op::AddI as u32).copied().collect();
        assert_eq!(addis.len(), 2);
        assert_eq!(bc::get_c(addis[0]) as i32 - 256, 1);
        assert_eq!(bc::get_c(addis[1]) as i32 - 256, -3);
    }

    #[test]
    fn break_patches_to_loop_end() {
        let (p, _) = compile("var i = 0; while true { break; } emit(i);");
        // Must terminate: the Jmp from break lands after the loop.
        let ops: Vec<u32> = p.code.iter().map(|&i| bc::get_op(i)).collect();
        assert!(ops.contains(&(Op::Jmp as u32)));
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(compile_lvm(&parse("break;").unwrap(), &[]).is_err());
    }

    #[test]
    fn k_form_falls_back_when_pool_exceeds_c_field() {
        // Force >512 distinct constants so late K-form candidates cannot
        // fit the 9-bit C field and must fall back to LoadK + register
        // form.
        let mut src = String::from("var a = 0;
");
        for i in 0..600 {
            src.push_str(&format!("a = a + {}.5;
", i + 200000));
        }
        src.push_str("emit(a);");
        let (p, init) = compile_lvm(&parse(&src).unwrap(), &[]).unwrap();
        assert!(p.consts.len() > 512);
        // Register-form Add must appear (the fallback path).
        assert!(p.code.iter().any(|&i| bc::get_op(i) == Op::Add as u32));
        // And the program still evaluates correctly on the oracle.
        let r = crate::lvm::interp::LvmInterp::new(&p, &init).run(1_000_000).unwrap();
        let expect: f64 = (0..600).map(|i| (i + 200000) as f64 + 0.5).sum();
        assert_eq!(f64::from_bits(r.emitted[0]), expect);
    }

    #[test]
    fn deep_expression_nesting_compiles() {
        let mut e = String::from("1");
        for _ in 0..60 {
            e = format!("({e} + 1)");
        }
        let src = format!("emit({e});");
        let (p, init) = compile_lvm(&parse(&src).unwrap(), &[]).unwrap();
        let r = crate::lvm::interp::LvmInterp::new(&p, &init).run(10_000).unwrap();
        assert_eq!(f64::from_bits(r.emitted[0]), 61.0);
    }

    #[test]
    fn shadowing_in_blocks() {
        let src = "
            var x = 1;
            fn f() {
                var x = 2;
                if true { var x = 3; emit(x); }
                emit(x);
                return 0;
            }
            f();
            emit(x);
        ";
        let (p, init) = compile_lvm(&parse(src).unwrap(), &[]).unwrap();
        let r = crate::lvm::interp::LvmInterp::new(&p, &init).run(10_000).unwrap();
        let vals: Vec<f64> = r.emitted.iter().map(|&b| f64::from_bits(b)).collect();
        assert_eq!(vals, vec![3.0, 2.0, 1.0]);
    }
}
