//! LVM — the register-based bytecode of the Lua-like interpreter.
//!
//! Instructions are 32-bit words in Lua 5.3's field layout:
//!
//! ```text
//! |  B (9 bits)  |  C (9 bits)  |  A (8 bits)  | op (6 bits) |
//! 31           23 22          14 13           6 5            0
//! ```
//!
//! `Bx` occupies bits 31..14 (18 bits); `sBx` is `Bx` with an excess-K
//! bias of 131071. The opcode sits in the six least-significant bits, just
//! like Lua, which is what the guest interpreter's `Rmask` is set to
//! (0x3F).

/// Number of distinct LVM opcodes (Lua 5.3 has 47; so do we).
pub const NUM_OPS: u32 = 47;

/// Bias for the signed 18-bit `sBx` field.
pub const SBX_BIAS: i32 = 131071;

/// The LVM opcode set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// R\[A\] = R\[B\]
    Move = 0,
    /// R\[A\] = K\[Bx\]
    LoadK = 1,
    /// R\[A\] = nil
    LoadNil = 2,
    /// R\[A\] = bool(B)
    LoadBool = 3,
    /// R\[A\] = f64(sBx)
    LoadInt = 4,
    /// R\[A\] = G\[Bx\]
    GetGlobal = 5,
    /// G\[Bx\] = R\[A\]
    SetGlobal = 6,
    /// R\[A\] = new array of length num(R\[B\]), nil-filled
    NewArr = 7,
    /// R\[A\] = new array of length Bx, nil-filled
    NewArrI = 8,
    /// R\[A\] = R\[B\][R\[C\]]
    GetIdx = 9,
    /// R\[A\][R\[B\]] = R\[C\]
    SetIdx = 10,
    /// R\[A\] = R\[B\]\[C\]
    GetIdxI = 11,
    /// R\[A\]\[B\] = R\[C\]
    SetIdxI = 12,
    /// R\[A\] = len(R\[B\])
    Len = 13,
    /// R\[A\] = R\[B\] + R\[C\]
    Add = 14,
    /// R\[A\] = R\[B\] - R\[C\]
    Sub = 15,
    /// R\[A\] = R\[B\] * R\[C\]
    Mul = 16,
    /// R\[A\] = R\[B\] / R\[C\]
    Div = 17,
    /// Lua-style modulo: a - floor(a/b)*b
    Mod = 18,
    /// R\[A\] = -R\[B\]
    Unm = 19,
    /// R\[A\] = not truthy(R\[B\])
    Not = 20,
    /// R\[A\] = R\[B\] + K\[C\]
    AddK = 21,
    /// R\[A\] = R\[B\] - K\[C\]
    SubK = 22,
    /// R\[A\] = R\[B\] * K\[C\]
    MulK = 23,
    /// R\[A\] = R\[B\] / K\[C\]
    DivK = 24,
    /// R\[A\] = R\[B\] % K\[C\] (floored)
    ModK = 25,
    /// R\[A\] = R\[B\] + (C - 256)
    AddI = 26,
    /// vpc += sBx
    Jmp = 27,
    /// R\[A\] = R\[B\] == R\[C\]
    Eq = 28,
    /// R\[A\] = R\[B\] < R\[C\] (numbers only)
    Lt = 29,
    /// R\[A\] = R\[B\] <= R\[C\]
    Le = 30,
    /// R\[A\] = R\[B\] == K\[C\]
    EqK = 31,
    /// R\[A\] = R\[B\] < K\[C\]
    LtK = 32,
    /// R\[A\] = R\[B\] <= K\[C\]
    LeK = 33,
    /// R\[A\] = R\[B\] != R\[C\]
    Ne = 34,
    /// R\[A\] = R\[B\] != K\[C\]
    NeK = 35,
    /// if truthy(R\[A\]) vpc += sBx
    TestT = 36,
    /// if !truthy(R\[A\]) vpc += sBx
    TestF = 37,
    /// call R\[A\] with B-1 args in R[A+1..]; C-1 results (0 or 1)
    Call = 38,
    /// return; B==2 returns R\[A\]
    Return = 39,
    /// R\[A\] -= R[A+2]; vpc += sBx
    ForPrep = 40,
    /// R\[A\] += R[A+2]; loop if within R[A+1]; R[A+3] = R\[A\]
    ForLoop = 41,
    /// R\[A\] = function #Bx
    Closure = 42,
    /// R\[A\] = builtin_B(R\[A\], R[A+1], ...)
    CallB = 43,
    /// R\[A\] = sqrt(R\[B\])
    Sqrt = 44,
    /// R\[A\] = floor(R\[B\])
    Floor = 45,
    /// stop the interpreter (end of main)
    Halt = 46,
}

impl Op {
    /// All opcodes, indexable by numeric value.
    pub const ALL: [Op; NUM_OPS as usize] = [
        Op::Move,
        Op::LoadK,
        Op::LoadNil,
        Op::LoadBool,
        Op::LoadInt,
        Op::GetGlobal,
        Op::SetGlobal,
        Op::NewArr,
        Op::NewArrI,
        Op::GetIdx,
        Op::SetIdx,
        Op::GetIdxI,
        Op::SetIdxI,
        Op::Len,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Mod,
        Op::Unm,
        Op::Not,
        Op::AddK,
        Op::SubK,
        Op::MulK,
        Op::DivK,
        Op::ModK,
        Op::AddI,
        Op::Jmp,
        Op::Eq,
        Op::Lt,
        Op::Le,
        Op::EqK,
        Op::LtK,
        Op::LeK,
        Op::Ne,
        Op::NeK,
        Op::TestT,
        Op::TestF,
        Op::Call,
        Op::Return,
        Op::ForPrep,
        Op::ForLoop,
        Op::Closure,
        Op::CallB,
        Op::Sqrt,
        Op::Floor,
        Op::Halt,
    ];

    /// Decodes an opcode number.
    pub fn from_u32(n: u32) -> Option<Op> {
        Op::ALL.get(n as usize).copied()
    }
}

/// Builtin function IDs used by `Op::CallB`.
pub mod builtin_id {
    /// `floor(x)`.
    pub const FLOOR: u32 = 0;
    /// `sqrt(x)`.
    pub const SQRT: u32 = 1;
    /// `abs(x)`.
    pub const ABS: u32 = 2;
    /// `min(x, y)`.
    pub const MIN: u32 = 3;
    /// `max(x, y)`.
    pub const MAX: u32 = 4;
    /// `emit(v)` — fold v into the checksum.
    pub const EMIT: u32 = 5;
    /// `len(a)`.
    pub const LEN: u32 = 6;
    /// `array(n)`.
    pub const ARRAY: u32 = 7;
    /// Number of builtins.
    pub const COUNT: u32 = 8;
}

/// Packs an iABC instruction.
pub fn abc(op: Op, a: u32, b: u32, c: u32) -> u32 {
    debug_assert!(a < 256 && b < 512 && c < 512);
    (op as u32) | (a << 6) | (c << 14) | (b << 23)
}

/// Packs an iABx instruction.
pub fn abx(op: Op, a: u32, bx: u32) -> u32 {
    debug_assert!(a < 256 && bx < (1 << 18));
    (op as u32) | (a << 6) | (bx << 14)
}

/// Packs an iAsBx instruction.
pub fn asbx(op: Op, a: u32, sbx: i32) -> u32 {
    let bx = (sbx + SBX_BIAS) as u32;
    abx(op, a, bx)
}

/// The opcode field (6 LSBs).
pub fn get_op(i: u32) -> u32 {
    i & 0x3F
}
/// The A field.
pub fn get_a(i: u32) -> u32 {
    (i >> 6) & 0xFF
}
/// The C field.
pub fn get_c(i: u32) -> u32 {
    (i >> 14) & 0x1FF
}
/// The B field.
pub fn get_b(i: u32) -> u32 {
    (i >> 23) & 0x1FF
}
/// The unsigned 18-bit Bx field.
pub fn get_bx(i: u32) -> u32 {
    i >> 14
}
/// The signed sBx field.
pub fn get_sbx(i: u32) -> i32 {
    get_bx(i) as i32 - SBX_BIAS
}

/// Per-function metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncInfo {
    /// Word offset of the function's first instruction in `code`.
    pub code_off: u32,
    /// Number of parameters.
    pub nparams: u32,
    /// Frame size in registers.
    pub nregs: u32,
}

/// A compiled LVM program.
#[derive(Debug, Clone, Default)]
pub struct LvmProgram {
    /// All functions' code, concatenated (function 0 is main).
    pub code: Vec<u32>,
    /// Shared constant pool (NaN-boxed).
    pub consts: Vec<u64>,
    /// Function table; index 0 is the implicit main.
    pub funcs: Vec<FuncInfo>,
    /// Number of global slots.
    pub nglobals: u32,
    /// Global slot names, for diagnostics (index = slot).
    pub global_names: Vec<String>,
}

/// Renders one instruction for diagnostics.
pub fn disasm(i: u32) -> String {
    let op = match Op::from_u32(get_op(i)) {
        Some(op) => op,
        None => return format!("<bad op {}>", get_op(i)),
    };
    match op {
        Op::LoadK | Op::GetGlobal | Op::SetGlobal | Op::NewArrI | Op::Closure => {
            format!("{:?} A={} Bx={}", op, get_a(i), get_bx(i))
        }
        Op::Jmp | Op::TestT | Op::TestF | Op::ForPrep | Op::ForLoop | Op::LoadInt => {
            format!("{:?} A={} sBx={}", op, get_a(i), get_sbx(i))
        }
        _ => format!("{:?} A={} B={} C={}", op, get_a(i), get_b(i), get_c(i)),
    }
}

/// Renders a full program listing with function boundaries.
pub fn listing(p: &LvmProgram) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut starts: Vec<(u32, usize)> =
        p.funcs.iter().enumerate().map(|(i, f)| (f.code_off, i)).collect();
    starts.sort_unstable();
    for (pc, &word) in p.code.iter().enumerate() {
        for &(fo, fi) in &starts {
            if fo as usize == pc {
                let f = p.funcs[fi];
                let _ = writeln!(out, "fn_{fi}:  # params={} regs={}", f.nparams, f.nregs);
            }
        }
        let _ = writeln!(out, "  {pc:>5}: {}", disasm(word));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_numbering_is_dense() {
        for (n, op) in Op::ALL.iter().enumerate() {
            assert_eq!(*op as u32, n as u32);
            assert_eq!(Op::from_u32(n as u32), Some(*op));
        }
        assert_eq!(Op::ALL.len() as u32, NUM_OPS);
        assert_eq!(Op::from_u32(NUM_OPS), None);
    }

    #[test]
    fn abc_field_packing() {
        let i = abc(Op::Add, 7, 300, 150);
        assert_eq!(get_op(i), Op::Add as u32);
        assert_eq!(get_a(i), 7);
        assert_eq!(get_b(i), 300);
        assert_eq!(get_c(i), 150);
    }

    #[test]
    fn sbx_bias_roundtrip() {
        for sbx in [-131071, -1, 0, 1, 131072] {
            let i = asbx(Op::Jmp, 0, sbx);
            assert_eq!(get_sbx(i), sbx);
        }
    }

    #[test]
    fn opcode_in_low_six_bits() {
        // The guest's Rmask is 0x3F: opcode must be the 6 LSBs.
        let i = abx(Op::LoadK, 255, (1 << 18) - 1);
        assert_eq!(i & 0x3F, Op::LoadK as u32);
    }

    #[test]
    fn listing_marks_functions() {
        let script = crate::parser::parse("fn f(x) { return x; } emit(f(1));").unwrap();
        let (p, _) = crate::lvm::compile_lvm(&script, &[]).unwrap();
        let l = listing(&p);
        assert!(l.contains("fn_0:"), "{l}");
        assert!(l.contains("fn_1:"), "{l}");
        assert!(l.contains("Halt"), "{l}");
        assert!(l.contains("Return"), "{l}");
    }

    #[test]
    fn disasm_smoke() {
        assert!(disasm(abc(Op::Add, 1, 2, 3)).contains("Add"));
        assert!(disasm(asbx(Op::Jmp, 0, -5)).contains("-5"));
        assert!(disasm(0xFFFF_FFFF).contains("bad op"));
    }
}
