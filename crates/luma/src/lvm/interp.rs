//! Host (oracle) interpreter for LVM bytecode.
//!
//! This is the bit-exact reference the guest interpreter is validated
//! against: every arithmetic operation, rounding rule and the `emit`
//! checksum match the guest's assembly semantics.

use super::bytecode::{self as bc, builtin_id, LvmProgram, Op};
use crate::value as v;
use std::fmt;

/// Runtime error raised by the reference interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Word offset of the faulting instruction.
    pub pc: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lvm runtime error at pc {}: {}", self.pc, self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Fold of all emitted values (must equal the guest's).
    pub checksum: u64,
    /// The emitted values, in order.
    pub emitted: Vec<u64>,
    /// Bytecodes executed (= dispatch count).
    pub steps: u64,
    /// Dynamic opcode histogram.
    pub op_counts: Vec<u64>,
}

struct Frame {
    ret_pc: usize,
    base: usize,
    /// Absolute stack slot to receive the result, if the caller wants one.
    result_slot: Option<usize>,
}

/// The reference interpreter.
pub struct LvmInterp<'p> {
    p: &'p LvmProgram,
    globals: Vec<u64>,
    arrays: Vec<Vec<u64>>,
    stack: Vec<u64>,
    frames: Vec<Frame>,
    checksum: u64,
    emitted: Vec<u64>,
    op_counts: Vec<u64>,
}

impl<'p> LvmInterp<'p> {
    /// Creates an interpreter with the given initial global values
    /// (`global_init` from the compiler; padded with nil).
    pub fn new(p: &'p LvmProgram, global_init: &[u64]) -> Self {
        let mut globals = vec![v::NIL; p.nglobals as usize];
        for (i, g) in global_init.iter().enumerate().take(globals.len()) {
            globals[i] = *g;
        }
        LvmInterp {
            p,
            globals,
            arrays: Vec::new(),
            stack: Vec::new(),
            frames: Vec::new(),
            checksum: 0,
            emitted: Vec::new(),
            op_counts: vec![0; bc::NUM_OPS as usize],
        }
    }

    fn fail<T>(&self, pc: usize, msg: impl Into<String>) -> Result<T, RuntimeError> {
        Err(RuntimeError { pc, message: msg.into() })
    }

    fn arr_index(&self, pc: usize, aval: u64, ival: u64) -> Result<(usize, usize), RuntimeError> {
        if v::is_num(aval) || v::tag(aval) != v::TAG_ARRAY {
            return self.fail(pc, format!("indexing non-array {}", v::display(aval)));
        }
        if !v::is_num(ival) {
            return self.fail(pc, format!("non-numeric index {}", v::display(ival)));
        }
        let handle = v::payload(aval) as usize;
        let idx = v::as_num(ival).trunc();
        // Forged constants can carry an array ref with a bogus handle.
        let len = match self.arrays.get(handle) {
            Some(a) => a.len(),
            None => return self.fail(pc, format!("bad array handle {handle}")),
        };
        // Unsigned compare, matching the guest's bltu bound check.
        let i = idx as i64 as u64;
        if i >= len as u64 {
            return self.fail(pc, format!("index {idx} out of bounds (len {len})"));
        }
        Ok((handle, i as usize))
    }

    fn num2(&self, pc: usize, a: u64, b: u64) -> Result<(f64, f64), RuntimeError> {
        if !v::is_num(a) || !v::is_num(b) {
            return self.fail(pc, format!("arithmetic on {} and {}", v::display(a), v::display(b)));
        }
        Ok((v::as_num(a), v::as_num(b)))
    }

    fn new_array(&mut self, len: usize) -> u64 {
        let handle = self.arrays.len() as u64;
        self.arrays.push(vec![v::NIL; len]);
        v::array_ref(handle)
    }

    /// Runs to `Halt`.
    ///
    /// # Errors
    /// Returns a [`RuntimeError`] on type errors, bad indices, stack
    /// overflow, or when `max_steps` bytecodes have executed.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, RuntimeError> {
        let code = &self.p.code;
        let main = match self.p.funcs.first() {
            Some(f) => *f,
            None => return self.fail(0, "program has no functions"),
        };
        self.stack.resize(main.nregs as usize, v::NIL);
        let mut base = 0usize;
        let mut pc = main.code_off as usize;
        let mut steps = 0u64;

        macro_rules! r {
            ($i:expr) => {
                self.stack[base + $i as usize]
            };
        }

        loop {
            if steps >= max_steps {
                return self.fail(pc, format!("step limit {max_steps} exhausted"));
            }
            steps += 1;
            let i = match code.get(pc) {
                Some(&w) => w,
                None => {
                    return self.fail(pc, format!("pc {pc} outside code ({} words)", code.len()))
                }
            };
            let this_pc = pc;
            pc += 1;
            let op = match Op::from_u32(bc::get_op(i)) {
                Some(op) => op,
                None => return self.fail(this_pc, format!("bad opcode {}", bc::get_op(i))),
            };
            self.op_counts[op as usize] += 1;
            let a = bc::get_a(i) as usize;

            // Constant-pool reader (bounds-checked: hand-crafted
            // programs must trap, not index out of range).
            macro_rules! kst {
                ($idx:expr) => {{
                    let k = $idx as usize;
                    match self.p.consts.get(k) {
                        Some(&c) => c,
                        None => return self.fail(this_pc, format!("constant {k} out of range")),
                    }
                }};
            }

            match op {
                Op::Move => {
                    let b = bc::get_b(i) as usize;
                    r!(a) = r!(b);
                }
                Op::LoadK => {
                    r!(a) = kst!(bc::get_bx(i));
                }
                Op::LoadNil => r!(a) = v::NIL,
                Op::LoadBool => r!(a) = v::boolean(bc::get_b(i) != 0),
                Op::LoadInt => r!(a) = v::num(bc::get_sbx(i) as f64),
                Op::GetGlobal => {
                    let g = bc::get_bx(i) as usize;
                    match self.globals.get(g) {
                        Some(&x) => r!(a) = x,
                        None => return self.fail(this_pc, format!("global {g} out of range")),
                    }
                }
                Op::SetGlobal => {
                    let g = bc::get_bx(i) as usize;
                    let val = r!(a);
                    match self.globals.get_mut(g) {
                        Some(slot) => *slot = val,
                        None => return self.fail(this_pc, format!("global {g} out of range")),
                    }
                }
                Op::NewArr => {
                    let b = r!(bc::get_b(i));
                    if !v::is_num(b) {
                        return self.fail(this_pc, "array length must be a number");
                    }
                    let n = v::as_num(b).trunc();
                    if !(0.0..=1e9).contains(&n) {
                        return self.fail(this_pc, format!("bad array length {n}"));
                    }
                    r!(a) = self.new_array(n as usize);
                }
                Op::NewArrI => {
                    r!(a) = self.new_array(bc::get_bx(i) as usize);
                }
                Op::GetIdx => {
                    let (h, idx) = self.arr_index(this_pc, r!(bc::get_b(i)), r!(bc::get_c(i)))?;
                    r!(a) = self.arrays[h][idx];
                }
                Op::SetIdx => {
                    let (h, idx) = self.arr_index(this_pc, r!(a), r!(bc::get_b(i)))?;
                    self.arrays[h][idx] = r!(bc::get_c(i));
                }
                Op::GetIdxI => {
                    let ival = v::num(bc::get_c(i) as f64);
                    let (h, idx) = self.arr_index(this_pc, r!(bc::get_b(i)), ival)?;
                    r!(a) = self.arrays[h][idx];
                }
                Op::SetIdxI => {
                    let ival = v::num(bc::get_b(i) as f64);
                    let (h, idx) = self.arr_index(this_pc, r!(a), ival)?;
                    self.arrays[h][idx] = r!(bc::get_c(i));
                }
                Op::Len => {
                    let b = r!(bc::get_b(i));
                    if v::is_num(b) || v::tag(b) != v::TAG_ARRAY {
                        return self.fail(this_pc, "len of non-array");
                    }
                    let h = v::payload(b) as usize;
                    let n = match self.arrays.get(h) {
                        Some(arr) => arr.len(),
                        None => return self.fail(this_pc, format!("bad array handle {h}")),
                    };
                    r!(a) = v::num(n as f64);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                    let (x, y) = self.num2(this_pc, r!(bc::get_b(i)), r!(bc::get_c(i)))?;
                    r!(a) = v::num(arith(op, x, y));
                }
                Op::AddK | Op::SubK | Op::MulK | Op::DivK | Op::ModK => {
                    let k = kst!(bc::get_c(i));
                    let (x, y) = self.num2(this_pc, r!(bc::get_b(i)), k)?;
                    let base_op = match op {
                        Op::AddK => Op::Add,
                        Op::SubK => Op::Sub,
                        Op::MulK => Op::Mul,
                        Op::DivK => Op::Div,
                        _ => Op::Mod,
                    };
                    r!(a) = v::num(arith(base_op, x, y));
                }
                Op::AddI => {
                    let b = r!(bc::get_b(i));
                    if !v::is_num(b) {
                        return self.fail(this_pc, "arithmetic on non-number");
                    }
                    let imm = bc::get_c(i) as i32 - 256;
                    r!(a) = v::num(v::as_num(b) + imm as f64);
                }
                Op::Unm => {
                    let b = r!(bc::get_b(i));
                    if !v::is_num(b) {
                        return self.fail(this_pc, "negating non-number");
                    }
                    r!(a) = v::num(-v::as_num(b));
                }
                Op::Not => {
                    r!(a) = v::boolean(!v::truthy(r!(bc::get_b(i))));
                }
                Op::Jmp => {
                    pc = (pc as i64 + bc::get_sbx(i) as i64) as usize;
                }
                Op::Eq => r!(a) = v::boolean(v::values_equal(r!(bc::get_b(i)), r!(bc::get_c(i)))),
                Op::Ne => r!(a) = v::boolean(!v::values_equal(r!(bc::get_b(i)), r!(bc::get_c(i)))),
                Op::EqK => {
                    let k = kst!(bc::get_c(i));
                    r!(a) = v::boolean(v::values_equal(r!(bc::get_b(i)), k));
                }
                Op::NeK => {
                    let k = kst!(bc::get_c(i));
                    r!(a) = v::boolean(!v::values_equal(r!(bc::get_b(i)), k));
                }
                Op::Lt | Op::Le => {
                    let (x, y) = self.num2(this_pc, r!(bc::get_b(i)), r!(bc::get_c(i)))?;
                    r!(a) = v::boolean(if op == Op::Lt { x < y } else { x <= y });
                }
                Op::LtK | Op::LeK => {
                    let k = kst!(bc::get_c(i));
                    let (x, y) = self.num2(this_pc, r!(bc::get_b(i)), k)?;
                    r!(a) = v::boolean(if op == Op::LtK { x < y } else { x <= y });
                }
                Op::TestT => {
                    if v::truthy(r!(a)) {
                        pc = (pc as i64 + bc::get_sbx(i) as i64) as usize;
                    }
                }
                Op::TestF => {
                    if !v::truthy(r!(a)) {
                        pc = (pc as i64 + bc::get_sbx(i) as i64) as usize;
                    }
                }
                Op::Call => {
                    let fval = r!(a);
                    if v::is_num(fval) || v::tag(fval) != v::TAG_FUNCTION {
                        return self.fail(this_pc, format!("calling {}", v::display(fval)));
                    }
                    let fidx = v::payload(fval) as usize;
                    let f = match self.p.funcs.get(fidx) {
                        Some(f) => *f,
                        None => return self.fail(this_pc, format!("bad function index {fidx}")),
                    };
                    let nargs = bc::get_b(i) - 1;
                    if nargs != f.nparams {
                        return self.fail(
                            this_pc,
                            format!("arity mismatch: {} args for {} params", nargs, f.nparams),
                        );
                    }
                    let want_result = bc::get_c(i) == 2;
                    if self.frames.len() >= 100_000 {
                        return self.fail(this_pc, "call stack overflow");
                    }
                    self.frames.push(Frame {
                        ret_pc: pc,
                        base,
                        result_slot: want_result.then_some(base + a),
                    });
                    base = base + a + 1;
                    let need = base + f.nregs as usize;
                    if self.stack.len() < need {
                        self.stack.resize(need, v::NIL);
                    }
                    pc = f.code_off as usize;
                }
                Op::Return => {
                    let value = if bc::get_b(i) == 2 { r!(a) } else { v::NIL };
                    let frame = match self.frames.pop() {
                        Some(fr) => fr,
                        None => return self.fail(this_pc, "return from main"),
                    };
                    if let Some(slot) = frame.result_slot {
                        self.stack[slot] = value;
                    }
                    base = frame.base;
                    pc = frame.ret_pc;
                }
                Op::ForPrep => {
                    let (idx, step) = self.num2(this_pc, r!(a), r!(a + 2))?;
                    if !v::is_num(r!(a + 1)) {
                        return self.fail(this_pc, "for limit must be a number");
                    }
                    r!(a) = v::num(idx - step);
                    pc = (pc as i64 + bc::get_sbx(i) as i64) as usize;
                }
                Op::ForLoop => {
                    let idx = v::as_num(r!(a)) + v::as_num(r!(a + 2));
                    let limit = v::as_num(r!(a + 1));
                    let step = v::as_num(r!(a + 2));
                    r!(a) = v::num(idx);
                    let cont = if step > 0.0 { idx <= limit } else { idx >= limit };
                    if cont {
                        r!(a + 3) = v::num(idx);
                        pc = (pc as i64 + bc::get_sbx(i) as i64) as usize;
                    }
                }
                Op::Closure => {
                    r!(a) = v::function_ref(bc::get_bx(i) as u64);
                }
                Op::CallB => {
                    let id = bc::get_b(i);
                    let x = r!(a);
                    match id {
                        builtin_id::FLOOR => {
                            let (x, _) = self.num2(this_pc, x, v::num(0.0))?;
                            r!(a) = v::num(x.floor());
                        }
                        builtin_id::SQRT => {
                            let (x, _) = self.num2(this_pc, x, v::num(0.0))?;
                            r!(a) = v::num(x.sqrt());
                        }
                        builtin_id::ABS => {
                            let (x, _) = self.num2(this_pc, x, v::num(0.0))?;
                            r!(a) = v::num(x.abs());
                        }
                        builtin_id::MIN | builtin_id::MAX => {
                            let (x, y) = self.num2(this_pc, x, r!(a + 1))?;
                            let m = if id == builtin_id::MIN { x.min(y) } else { x.max(y) };
                            r!(a) = v::num(m);
                        }
                        builtin_id::EMIT => {
                            self.checksum = v::checksum_step(self.checksum, x);
                            self.emitted.push(x);
                        }
                        builtin_id::LEN => {
                            if v::is_num(x) || v::tag(x) != v::TAG_ARRAY {
                                return self.fail(this_pc, "len of non-array");
                            }
                            let h = v::payload(x) as usize;
                            let n = match self.arrays.get(h) {
                                Some(arr) => arr.len(),
                                None => return self.fail(this_pc, format!("bad array handle {h}")),
                            };
                            r!(a) = v::num(n as f64);
                        }
                        builtin_id::ARRAY => {
                            if !v::is_num(x) {
                                return self.fail(this_pc, "array length must be a number");
                            }
                            let n = v::as_num(x).trunc();
                            if !(0.0..=1e9).contains(&n) {
                                return self.fail(this_pc, format!("bad array length {n}"));
                            }
                            r!(a) = self.new_array(n as usize);
                        }
                        _ => return self.fail(this_pc, format!("bad builtin id {id}")),
                    }
                }
                Op::Sqrt => {
                    let (x, _) = self.num2(this_pc, r!(bc::get_b(i)), v::num(0.0))?;
                    r!(a) = v::num(x.sqrt());
                }
                Op::Floor => {
                    let (x, _) = self.num2(this_pc, r!(bc::get_b(i)), v::num(0.0))?;
                    r!(a) = v::num(x.floor());
                }
                Op::Halt => {
                    return Ok(RunResult {
                        checksum: self.checksum,
                        emitted: std::mem::take(&mut self.emitted),
                        steps,
                        op_counts: std::mem::take(&mut self.op_counts),
                    });
                }
            }
        }
    }
}

/// The shared arithmetic kernel; `Mod` is Lua-style (`a - floor(a/b)*b`),
/// matching the guest handler exactly.
fn arith(op: Op, x: f64, y: f64) -> f64 {
    match op {
        Op::Add => x + y,
        Op::Sub => x - y,
        Op::Mul => x * y,
        Op::Div => x / y,
        Op::Mod => x - (x / y).floor() * y,
        _ => unreachable!("not an arithmetic opcode"),
    }
}

/// Convenience: parse + compile + run a source string on the oracle.
///
/// # Errors
/// Propagates parse, compile and runtime errors as a typed
/// [`LumaError`](crate::LumaError).
pub fn run_source(
    src: &str,
    predefined: &[(&str, f64)],
    max_steps: u64,
) -> Result<RunResult, crate::LumaError> {
    let script = crate::parser::parse(src)?;
    let (p, init) = super::compile::compile_lvm(&script, predefined)?;
    Ok(LvmInterp::new(&p, &init).run(max_steps)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emits(src: &str) -> Vec<f64> {
        run_source(src, &[], 10_000_000)
            .unwrap()
            .emitted
            .iter()
            .map(|&b| f64::from_bits(b))
            .collect()
    }

    #[test]
    fn arithmetic_and_emit() {
        assert_eq!(emits("emit(1 + 2 * 3);"), vec![7.0]);
        assert_eq!(emits("var x = 10; emit(x / 4);"), vec![2.5]);
        assert_eq!(emits("var x = 7; emit(x % 3);"), vec![1.0]);
        assert_eq!(emits("var x = -7; emit(x % 3);"), vec![2.0]); // Lua-style mod
    }

    #[test]
    fn control_flow() {
        assert_eq!(emits("var x = 3; if x < 5 { emit(1); } else { emit(2); }"), vec![1.0]);
        assert_eq!(emits("var s = 0; for i = 1, 10 { s = s + i; } emit(s);"), vec![55.0]);
        assert_eq!(emits("var s = 0; for i = 10, 1, -2 { s = s + i; } emit(s);"), vec![30.0]);
        assert_eq!(
            emits("var s = 0; var i = 0; while i < 5 { i = i + 1; s = s + i; if i == 3 { break; } } emit(s);"),
            vec![6.0]
        );
    }

    #[test]
    fn recursion() {
        let src = "fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } emit(fib(15));";
        assert_eq!(emits(src), vec![610.0]);
    }

    #[test]
    fn arrays() {
        assert_eq!(
            emits("var a = array(3); a[0] = 5; a[2] = a[0] + 1; emit(a[2]); emit(len(a));"),
            vec![6.0, 3.0]
        );
        assert_eq!(emits("var a = [4, 5, 6]; emit(a[1]);"), vec![5.0]);
    }

    #[test]
    fn logic_short_circuit() {
        assert_eq!(emits("var x = nil; emit(x and 1 or 2);"), vec![2.0]);
        assert_eq!(emits("var x = 5; emit(x and 1 or 2);"), vec![1.0]);
        // RHS must not evaluate: would trap on nil index.
        assert_eq!(emits("var a = nil; var t = true; if t or a[0] { emit(1); }"), vec![1.0]);
    }

    #[test]
    fn builtins() {
        assert_eq!(emits("emit(floor(2.7)); emit(sqrt(16)); emit(abs(-3));"), vec![2.0, 4.0, 3.0]);
        assert_eq!(emits("emit(min(2, 3)); emit(max(2, 3));"), vec![2.0, 3.0]);
    }

    #[test]
    fn nil_equality() {
        assert_eq!(
            emits("var a = array(1); if a[0] == nil { emit(1); } else { emit(0); }"),
            vec![1.0]
        );
    }

    #[test]
    fn function_values() {
        assert_eq!(
            emits("fn double(x) { return x * 2; } var f = double; emit(f(21));"),
            vec![42.0]
        );
    }

    #[test]
    fn type_error_reported() {
        let r = run_source("var x = nil; var y = x + 1;", &[], 1000);
        assert!(r.is_err());
    }

    #[test]
    fn out_of_bounds_reported() {
        assert!(run_source("var a = array(2); emit(a[2]);", &[], 1000).is_err());
        assert!(run_source("var a = array(2); emit(a[0-1]);", &[], 1000).is_err());
    }

    #[test]
    fn step_limit() {
        assert!(run_source("while true { }", &[], 1000).is_err());
    }

    #[test]
    fn predefined_globals_flow_through() {
        let r = run_source("emit(N * 2);", &[("N", 21.0)], 1000).unwrap();
        assert_eq!(f64::from_bits(r.emitted[0]), 42.0);
    }

    #[test]
    fn op_counts_populated() {
        let r =
            run_source("var s = 0; for i = 1, 100 { s = s + i; } emit(s);", &[], 100_000).unwrap();
        assert!(r.op_counts[Op::ForLoop as usize] >= 100);
        assert!(r.steps > 300);
    }
}
