//! The NaN-boxed value representation shared by the host reference
//! interpreters and the guest interpreters.
//!
//! A value is a raw IEEE-754 double unless its top 16 bits are all ones
//! (`0xFFFF`), in which case bits 47:44 carry a type tag and bits 43:0 a
//! payload:
//!
//! | tag | meaning  | payload                    |
//! |-----|----------|----------------------------|
//! | 0   | nil      | 0                          |
//! | 1   | false    | 0                          |
//! | 2   | true     | 0                          |
//! | 3   | array    | guest address / host handle|
//! | 4   | function | function index             |
//!
//! Ordinary arithmetic can produce quiet NaNs (`0x7FF8...`), which never
//! collide with the `0xFFFF` box prefix.

/// Box prefix: top 16 bits all ones. This is also the bit pattern of `nil`.
pub const BOX: u64 = 0xFFFF << 48;
/// Tag field shift.
pub const TAG_SHIFT: u32 = 44;
/// Payload mask (low 44 bits).
pub const PAYLOAD_MASK: u64 = (1 << 44) - 1;

/// Tag value for `nil`.
pub const TAG_NIL: u64 = 0;
/// Tag value for `false`.
pub const TAG_FALSE: u64 = 1;
/// Tag value for `true`.
pub const TAG_TRUE: u64 = 2;
/// Tag value for array references.
pub const TAG_ARRAY: u64 = 3;
/// Tag value for function references.
pub const TAG_FUNCTION: u64 = 4;

/// The boxed `nil` bit pattern.
pub const NIL: u64 = BOX;
/// The boxed `false` bit pattern.
pub const FALSE: u64 = BOX | (TAG_FALSE << TAG_SHIFT);
/// The boxed `true` bit pattern.
pub const TRUE: u64 = BOX | (TAG_TRUE << TAG_SHIFT);

/// True if the bit pattern encodes a number (raw f64).
#[inline]
pub fn is_num(v: u64) -> bool {
    (v & BOX) != BOX
}

/// Boxes a number.
#[inline]
pub fn num(x: f64) -> u64 {
    let bits = x.to_bits();
    debug_assert!(is_num(bits), "f64 bit pattern collides with box space");
    bits
}

/// Unboxes a number (caller must check [`is_num`]).
#[inline]
pub fn as_num(v: u64) -> f64 {
    f64::from_bits(v)
}

/// Boxes a boolean.
#[inline]
pub fn boolean(b: bool) -> u64 {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// The tag of a boxed value (only meaningful when `!is_num(v)`).
#[inline]
pub fn tag(v: u64) -> u64 {
    (v >> TAG_SHIFT) & 0xF
}

/// The payload of a boxed value.
#[inline]
pub fn payload(v: u64) -> u64 {
    v & PAYLOAD_MASK
}

/// Boxes an array reference.
#[inline]
pub fn array_ref(handle: u64) -> u64 {
    debug_assert!(handle <= PAYLOAD_MASK);
    BOX | (TAG_ARRAY << TAG_SHIFT) | handle
}

/// Boxes a function reference.
#[inline]
pub fn function_ref(index: u64) -> u64 {
    debug_assert!(index <= PAYLOAD_MASK);
    BOX | (TAG_FUNCTION << TAG_SHIFT) | index
}

/// Truthiness: everything except `nil` and `false` is truthy.
#[inline]
pub fn truthy(v: u64) -> bool {
    v != NIL && v != FALSE
}

/// Language equality: numbers compare by IEEE `==` (NaN != NaN,
/// +0 == -0); boxed values compare by identity (raw bits).
#[inline]
pub fn values_equal(a: u64, b: u64) -> bool {
    if is_num(a) && is_num(b) {
        as_num(a) == as_num(b)
    } else {
        a == b
    }
}

/// The checksum accumulator used by the `emit` builtin: both the host
/// oracle and the guest interpreter fold emitted values with this exact
/// function so results can be compared bit-for-bit.
#[inline]
pub fn checksum_step(h: u64, v: u64) -> u64 {
    h.rotate_left(1) ^ v
}

/// Renders a value for diagnostics.
pub fn display(v: u64) -> String {
    if is_num(v) {
        format!("{}", as_num(v))
    } else {
        match tag(v) {
            TAG_NIL => "nil".to_string(),
            TAG_FALSE => "false".to_string(),
            TAG_TRUE => "true".to_string(),
            TAG_ARRAY => format!("array@{:#x}", payload(v)),
            TAG_FUNCTION => format!("function#{}", payload(v)),
            t => format!("<bad tag {t}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_raw() {
        for x in [0.0, -0.0, 1.5, -3.25, 1e300, f64::NAN, f64::INFINITY] {
            let v = num(x);
            assert!(is_num(v), "{x} should be a number");
            if x.is_nan() {
                assert!(as_num(v).is_nan());
            } else {
                assert_eq!(as_num(v), x);
            }
        }
    }

    #[test]
    fn boxed_tags() {
        assert!(!is_num(NIL));
        assert!(!is_num(TRUE));
        assert_eq!(tag(NIL), TAG_NIL);
        assert_eq!(tag(FALSE), TAG_FALSE);
        assert_eq!(tag(TRUE), TAG_TRUE);
        let a = array_ref(0x4000_0010);
        assert_eq!(tag(a), TAG_ARRAY);
        assert_eq!(payload(a), 0x4000_0010);
        let f = function_ref(12);
        assert_eq!(tag(f), TAG_FUNCTION);
        assert_eq!(payload(f), 12);
    }

    #[test]
    fn truthiness() {
        assert!(!truthy(NIL));
        assert!(!truthy(FALSE));
        assert!(truthy(TRUE));
        assert!(truthy(num(0.0))); // 0 is truthy, like Lua
        assert!(truthy(array_ref(8)));
    }

    #[test]
    fn equality_semantics() {
        assert!(values_equal(num(1.0), num(1.0)));
        assert!(!values_equal(num(f64::NAN), num(f64::NAN)));
        assert!(values_equal(num(0.0), num(-0.0)));
        assert!(values_equal(NIL, NIL));
        assert!(!values_equal(NIL, FALSE));
        assert!(values_equal(array_ref(8), array_ref(8)));
        assert!(!values_equal(array_ref(8), array_ref(16)));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = checksum_step(checksum_step(0, num(1.0)), num(2.0));
        let b = checksum_step(checksum_step(0, num(2.0)), num(1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(display(num(1.5)), "1.5");
        assert_eq!(display(NIL), "nil");
        assert_eq!(display(TRUE), "true");
        assert!(display(function_ref(3)).contains('3'));
    }
}
