//! Abstract syntax tree of the Luma scripting language.

/// Binary operators, in source syntax order of appearance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%` (Lua-style floored modulo).
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `and` (short-circuit).
    And,
    /// `or` (short-circuit).
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Unary `-`.
    Neg,
    /// `not`.
    Not,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `floor(x)`.
    Floor,
    /// `sqrt(x)`.
    Sqrt,
    /// `abs(x)`.
    Abs,
    /// `min(x, y)`.
    Min,
    /// `max(x, y)`.
    Max,
    /// `len(a)`.
    Len,
    /// `array(n)` — new nil-filled array.
    Array,
    /// `emit(v)` — fold into the checksum.
    Emit,
}

impl Builtin {
    /// Resolves a builtin by name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "floor" => Builtin::Floor,
            "sqrt" => Builtin::Sqrt,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "len" => Builtin::Len,
            "array" => Builtin::Array,
            "emit" => Builtin::Emit,
            _ => return None,
        })
    }

    /// Number of arguments the builtin requires.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Min | Builtin::Max => 2,
            _ => 1,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Boolean literal.
    Bool(bool),
    /// `nil` literal.
    Nil,
    /// Variable reference (local or global; resolved by the compiler).
    Var(String),
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Call of a user function or a function-valued expression.
    Call {
        /// The function expression.
        callee: Box<Expr>,
        /// Argument expressions, in order.
        args: Vec<Expr>,
    },
    /// Call of a builtin.
    BuiltinCall {
        /// Which builtin.
        builtin: Builtin,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `a[i]`.
    Index {
        /// The array expression.
        array: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `[e1, e2, ...]`
    ArrayLit(Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = expr;` — global at top level, local inside functions.
    Var {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Expr,
    },
    /// `name = expr;` or `arr[i] = expr;`
    Assign {
        /// `Expr::Var` or `Expr::Index`.
        target: Expr,
        /// The assigned value.
        value: Expr,
    },
    /// `if cond { ... } else { ... }`.
    If {
        /// Condition (truthiness).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_body: Vec<Stmt>,
    },
    /// `while cond { ... }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Numeric for: `for i = start, limit [, step] { ... }` (inclusive
    /// limit, like Lua).
    For {
        /// The loop variable.
        var: String,
        /// Initial value.
        start: Expr,
        /// Inclusive limit.
        limit: Expr,
        /// Step (defaults to 1).
        step: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return [expr];` (halts the interpreter at top level).
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// Expression evaluated for side effects (calls).
    Expr(Expr),
}

/// A user function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name (global).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Line of the `fn` keyword, for error messages.
    pub line: u32,
}

/// A parsed script: function definitions plus top-level statements
/// (the implicit `main`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// All function definitions, in source order.
    pub functions: Vec<FnDef>,
    /// Top-level statements (the implicit `main`).
    pub top_level: Vec<Stmt>,
}
