#![warn(missing_docs)]

//! # luma — the scripting language and its two VM targets
//!
//! Luma is the from-scratch scripting language used to reproduce the
//! paper's workloads. It compiles to two bytecode formats:
//!
//! * **LVM** — a register-based VM with 47 opcodes and 32-bit fixed-width
//!   instructions in Lua 5.3's field layout (the paper's Lua analogue).
//! * **SVM** — a stack-based VM with one-byte opcodes, variable-length
//!   instructions and a 229-entry opcode space (the paper's SpiderMonkey
//!   analogue).
//!
//! Both come with host *reference* interpreters that serve as bit-exact
//! oracles for the guest interpreters running on the simulated core.
//!
//! ```
//! let result = luma::lvm::run_source(
//!     "fn sq(x) { return x * x; } emit(sq(N));",
//!     &[("N", 7.0)],
//!     10_000,
//! )?;
//! assert_eq!(f64::from_bits(result.emitted[0]), 49.0);
//! # Ok::<(), luma::LumaError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lvm;
pub mod parser;
pub mod scripts;
pub mod svm;
pub mod value;

pub use error::LumaError;
pub use lexer::ParseError;
pub use parser::parse;
