//! Property tests over the language stack:
//!
//! * the LVM and SVM compilers + reference interpreters form a
//!   *differential pair* — random expression trees must evaluate
//!   identically on both VMs;
//! * the value model's invariants hold for arbitrary doubles.

use proptest::prelude::*;

// ---- value model ----

proptest! {
    #[test]
    fn every_f64_is_a_number_value(x in any::<f64>()) {
        // Any f64 produced by real arithmetic is storable. (Bit patterns
        // in the 0xFFFF box space are not produced by IEEE operations on
        // non-box inputs; we only assert over realistic values here.)
        prop_assume!((x.to_bits() >> 48) != 0xFFFF);
        let v = luma::value::num(x);
        prop_assert!(luma::value::is_num(v));
        if x.is_nan() {
            prop_assert!(luma::value::as_num(v).is_nan());
        } else {
            prop_assert_eq!(luma::value::as_num(v), x);
        }
    }

    #[test]
    fn checksum_folding_is_injective_in_last_step(a in any::<u64>(), b in any::<u64>(), h in any::<u64>()) {
        // For a fixed prefix h, different final values give different
        // checksums (xor with distinct values).
        prop_assume!(a != b);
        prop_assert_ne!(
            luma::value::checksum_step(h, a),
            luma::value::checksum_step(h, b)
        );
    }
}

// ---- differential expression evaluation ----

/// A random arithmetic expression over two variables, rendered as Luma
/// source. Division and modulo keep denominators away from zero-ish
/// values to avoid inf/NaN checksum ambiguity (those are exercised by
/// unit tests instead).
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            (-100i32..100).prop_map(|n| format!("{n}")),
            Just("a".to_string()),
            Just("b".to_string()),
        ]
        .boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            (sub.clone(), sub.clone()).prop_map(|(x, y)| format!("({x} + {y})")),
            (sub.clone(), sub.clone()).prop_map(|(x, y)| format!("({x} - {y})")),
            (sub.clone(), sub.clone()).prop_map(|(x, y)| format!("({x} * {y})")),
            (sub.clone(),).prop_map(|(x,)| format!("({x} / 7)")),
            (sub.clone(),).prop_map(|(x,)| format!("({x} % 13)")),
            (sub.clone(),).prop_map(|(x,)| format!("(0 - {x})")),
            (sub.clone(), sub.clone())
                .prop_map(|(x, y)| format!("min({x}, {y})")),
            (sub.clone(), sub).prop_map(|(x, y)| format!("max({x}, {y})")),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lvm_and_svm_agree_on_random_expressions(
        e in arb_expr(4),
        a in -1000i32..1000,
        b in -1000i32..1000,
    ) {
        let src = format!("var a = {a}; var b = {b}; emit({e});");
        let l = luma::lvm::run_source(&src, &[], 1_000_000)
            .expect("LVM oracle evaluates");
        let s = luma::svm::run_source(&src, &[], 1_000_000)
            .expect("SVM oracle evaluates");
        prop_assert_eq!(l.checksum, s.checksum, "source: {}", src);
    }

    #[test]
    fn comparison_chains_agree(
        a in -50i32..50,
        b in -50i32..50,
        c in -50i32..50,
    ) {
        let src = format!(
            "var a = {a}; var b = {b}; var c = {c};
             if a < b and b <= c or a == c {{ emit(1); }} else {{ emit(2); }}
             if not (a > b) {{ emit(3); }} else {{ emit(4); }}
             emit(min(a, min(b, c)));"
        );
        let l = luma::lvm::run_source(&src, &[], 1_000_000).expect("LVM runs");
        let s = luma::svm::run_source(&src, &[], 1_000_000).expect("SVM runs");
        prop_assert_eq!(l.emitted, s.emitted);
    }

    #[test]
    fn loops_agree_for_any_bounds(
        start in -20i32..20,
        limit in -20i32..20,
        step in prop::sample::select(vec![-3i32, -2, -1, 1, 2, 3]),
    ) {
        let src = format!(
            "var s = 0; for i = {start}, {limit}, {step} {{ s = s + i; }} emit(s);"
        );
        let l = luma::lvm::run_source(&src, &[], 1_000_000).expect("LVM runs");
        let v = luma::svm::run_source(&src, &[], 1_000_000).expect("SVM runs");
        prop_assert_eq!(l.checksum, v.checksum, "source: {}", src);
    }

    #[test]
    fn array_fill_and_sum_agree(n in 1usize..40, stride in 1usize..5) {
        let src = format!(
            "var a = array({n});
             var i = 0;
             while i < {n} {{ a[i] = i * {stride}; i = i + 1; }}
             var s = 0;
             for j = 0, {n} - 1 {{ s = s + a[j]; }}
             emit(s); emit(len(a));"
        );
        let l = luma::lvm::run_source(&src, &[], 10_000_000).expect("LVM runs");
        let v = luma::svm::run_source(&src, &[], 10_000_000).expect("SVM runs");
        prop_assert_eq!(l.emitted, v.emitted);
    }
}
