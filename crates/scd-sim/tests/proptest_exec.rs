//! Execution-level property tests: the assembler's pseudo-instructions
//! and the machine's ALU semantics are validated by actually *running*
//! randomly generated programs on the simulator.

use proptest::prelude::*;
use scd_isa::{AluOp, Asm, Reg};
use scd_sim::{Machine, SimConfig};

fn run_and_get_a0(build: impl FnOnce(&mut Asm)) -> u64 {
    let mut a = Asm::new(0x1_0000);
    build(&mut a);
    a.li(Reg::A7, 0);
    a.ecall();
    let p = a.finish().expect("assembles");
    let mut m = Machine::new(SimConfig::fpga_rocket(), &p);
    m.run(100_000).expect("halts").code
}

proptest! {
    #[test]
    fn li_materializes_any_i64(v in any::<i64>()) {
        let got = run_and_get_a0(|a| {
            a.li(Reg::A0, v);
        });
        prop_assert_eq!(got, v as u64, "li {} produced {:#x}", v, got);
    }

    #[test]
    fn li_then_arith_matches_host(x in any::<i64>(), y in any::<i64>()) {
        for (op, expect) in [
            (AluOp::Add, x.wrapping_add(y) as u64),
            (AluOp::Sub, x.wrapping_sub(y) as u64),
            (AluOp::Xor, (x ^ y) as u64),
            (AluOp::And, (x & y) as u64),
            (AluOp::Or, (x | y) as u64),
            (AluOp::Mul, x.wrapping_mul(y) as u64),
            (AluOp::Sltu, ((x as u64) < (y as u64)) as u64),
            (AluOp::Slt, (x < y) as u64),
        ] {
            let got = run_and_get_a0(|a| {
                a.li(Reg::T0, x);
                a.li(Reg::T1, y);
                a.op(op, Reg::A0, Reg::T0, Reg::T1);
            });
            prop_assert_eq!(got, expect, "{:?} of {} and {}", op, x, y);
        }
    }

    #[test]
    fn shifts_match_host(x in any::<i64>(), sh in 0i64..64) {
        let cases = [
            (AluOp::Sll, ((x as u64) << sh)),
            (AluOp::Srl, ((x as u64) >> sh)),
            (AluOp::Sra, (x >> sh) as u64),
        ];
        for (op, expect) in cases {
            let got = run_and_get_a0(|a| {
                a.li(Reg::T0, x);
                a.opi(op, Reg::A0, Reg::T0, sh);
            });
            prop_assert_eq!(got, expect, "{:?} {} by {}", op, x, sh);
        }
    }

    #[test]
    fn fp_roundtrip_matches_host(x in any::<f64>(), y in any::<f64>()) {
        // fadd through the register file must be bit-exact with host f64.
        prop_assume!((x.to_bits() >> 48) != 0xFFFF && (y.to_bits() >> 48) != 0xFFFF);
        let expect = (x + y).to_bits();
        let got = run_and_get_a0(|a| {
            a.li(Reg::T0, x.to_bits() as i64);
            a.li(Reg::T1, y.to_bits() as i64);
            a.fmv_d_x(scd_isa::FReg::FT0, Reg::T0);
            a.fmv_d_x(scd_isa::FReg::FT1, Reg::T1);
            a.fadd(scd_isa::FReg::FT2, scd_isa::FReg::FT0, scd_isa::FReg::FT1);
            a.fmv_x_d(Reg::A0, scd_isa::FReg::FT2);
        });
        // NaN payloads may differ in principle, but Rust and our model
        // both propagate the default quiet NaN for these inputs.
        if f64::from_bits(expect).is_nan() {
            prop_assert!(f64::from_bits(got).is_nan());
        } else {
            prop_assert_eq!(got, expect);
        }
    }
}

#[test]
fn store_load_roundtrip_through_mapped_segment() {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::T0, 0x10_0000);
    a.li(Reg::T1, -12345);
    a.sd(Reg::T1, 16, Reg::T0);
    a.ld(Reg::A0, 16, Reg::T0);
    a.li(Reg::A7, 0);
    a.ecall();
    let p = a.finish().expect("assembles");
    let mut m = Machine::new(SimConfig::fpga_rocket(), &p);
    m.map("data", 0x10_0000, 4096);
    assert_eq!(m.run(10_000).expect("halts").code, -12345i64 as u64);
}

// ---- robustness: random code must never panic the machine ----

fn arb_word() -> impl Strategy<Value = u32> {
    prop_oneof![
        any::<u32>(),
        // Bias towards decodable words: random fields on known opcodes.
        (any::<u32>(), prop::sample::select(vec![
            0b0110011u32, 0b0010011, 0b0000011, 0b0100011, 0b1100011, 0b1101111,
            0b1100111, 0b0110111, 0b0001011, 0b0101011, 0b1010011,
        ]))
            .prop_map(|(r, opc)| (r & !0x7F) | opc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn machine_never_panics_on_random_code(words in prop::collection::vec(arb_word(), 1..64)) {
        // Build a program from whatever subset of the words decodes;
        // append a halt so some runs terminate cleanly.
        let mut a = Asm::new(0x1_0000);
        let mut any_inst = false;
        for w in &words {
            if let Ok(inst) = scd_isa::decode(*w) {
                // Skip instructions the assembler would reject
                // (encode-decode canonicalization keeps them valid).
                if scd_isa::encode(inst).is_ok() {
                    a.inst(inst);
                    any_inst = true;
                }
            }
        }
        if !any_inst {
            a.nop();
        }
        a.li(Reg::A7, 0);
        a.li(Reg::A0, 0);
        a.ecall();
        let p = a.finish().expect("decoded instructions reassemble");
        let mut m = Machine::new(SimConfig::embedded_a5(), &p);
        m.map("data", 0x10_0000, 1 << 16);
        // Any outcome is acceptable except a panic: clean exit, memory
        // fault, runaway PC, ebreak, or exhausted budget.
        let _ = m.run(10_000);
    }
}
