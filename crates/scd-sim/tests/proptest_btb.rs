//! Property tests for the BTB (with its JTE overlay rules) and the
//! ITTAGE indirect predictor: random insert/lookup/update streams
//! checked against reference models and the population invariant.

use proptest::prelude::*;
use scd_sim::{Btb, BtbConfig, BtbKey, InsertOutcome, Ittage, Replacement};

/// Decodes a compact op stream: each `u64` drives one BTB operation so
/// the generated `Vec<u64>` shrink-prints small.
fn key_from(word: u64) -> BtbKey {
    // A deliberately tiny key universe (3 kinds x 16 raws) so streams
    // collide constantly — aliasing bugs need collisions to show up.
    let raw = (word >> 8) & 0xF;
    match word % 3 {
        0 => BtbKey::Pc(raw << 2),
        1 => BtbKey::Jte { bid: ((word >> 4) & 0x3) as u8, opcode: raw },
        _ => BtbKey::Vbbi(raw),
    }
}

proptest! {
    /// Immediately after a successful insert, the same key must hit and
    /// return the just-written target — for every kind, geometry, and
    /// interleaving.
    #[test]
    fn lookup_after_insert_hits(
        ops in prop::collection::vec(any::<u64>(), 1..200),
        fully_assoc in any::<bool>(),
        cap in 0usize..8,
    ) {
        let cfg = if fully_assoc {
            BtbConfig::fully_assoc(16, Replacement::Lru)
        } else {
            BtbConfig::set_assoc(16, 2, Replacement::RoundRobin)
        };
        let mut btb = Btb::new(BtbConfig { jte_cap: (cap < 4).then_some(cap), ..cfg });
        for (i, &w) in ops.iter().enumerate() {
            let key = key_from(w);
            let target = 0x4000 + (i as u64) * 4;
            match btb.insert(key, target) {
                InsertOutcome::CapSkipped | InsertOutcome::Blocked => {
                    prop_assert!(btb.lookup(key).is_none(), "dropped insert must not hit");
                }
                _ => prop_assert_eq!(
                    btb.lookup(key),
                    Some(target),
                    "insert #{} of {:?} did not land",
                    i,
                    key
                ),
            }
            btb.assert_population_invariant();
        }
    }

    /// A fully-associative LRU BTB fed only PC keys is exactly an LRU
    /// cache: compare hit/miss and eviction order against a brute-force
    /// recency-list model over a colliding key universe.
    #[test]
    fn fully_assoc_lru_matches_reference_model(
        ops in prop::collection::vec((any::<bool>(), 0u64..24), 1..300),
    ) {
        const ENTRIES: usize = 8;
        let mut btb = Btb::new(BtbConfig::fully_assoc(ENTRIES, Replacement::Lru));
        // Model: (key, target) in recency order, most recent last.
        let mut model: Vec<(u64, u64)> = Vec::new();
        for (i, &(is_insert, k)) in ops.iter().enumerate() {
            let target = 0x1000 + k * 8 + (i as u64 % 2);
            let pos = model.iter().position(|&(mk, _)| mk == k);
            if is_insert {
                match pos {
                    Some(p) => {
                        model.remove(p);
                        model.push((k, target));
                    }
                    None => {
                        if model.len() == ENTRIES {
                            model.remove(0); // evict least recent
                        }
                        model.push((k, target));
                    }
                }
                btb.insert(BtbKey::Pc(k << 2), target);
            } else {
                let expect = pos.map(|p| {
                    let e = model.remove(p);
                    model.push(e);
                    e.1
                });
                prop_assert_eq!(
                    btb.lookup(BtbKey::Pc(k << 2)),
                    expect,
                    "op #{} lookup of key {} disagrees with the LRU model",
                    i,
                    k
                );
            }
        }
    }

    /// Raw-value collisions across key spaces are inert: a `Pc`, a `Jte`
    /// and a `Vbbi` key sharing the same raw bits coexist and never
    /// return each other's targets.
    #[test]
    fn key_spaces_never_alias(raw in 0u64..1024, bid in 0u8..4) {
        let keys = [
            // BtbKey::Pc stores pc >> 2, so pc = raw << 2 collides with
            // a Vbbi hash of `raw` and a bid-0 Jte opcode of `raw`.
            (BtbKey::Pc(raw << 2), 0xA000u64),
            (BtbKey::Jte { bid, opcode: raw }, 0xB000u64),
            (BtbKey::Vbbi(raw), 0xC000u64),
        ];
        let mut btb = Btb::new(BtbConfig::fully_assoc(16, Replacement::Lru));
        for &(k, t) in &keys {
            btb.insert(k, t);
        }
        for &(k, t) in &keys {
            prop_assert_eq!(btb.lookup(k), Some(t), "{:?} lost or cross-matched", k);
        }
        btb.assert_population_invariant();
    }

    /// The JTE cap bounds the resident-JTE population through any
    /// stream of inserts, lookups and flushes, and the population
    /// identity holds after every operation.
    #[test]
    fn jte_cap_is_never_exceeded(
        ops in prop::collection::vec(any::<u64>(), 1..300),
        cap in 0usize..6,
    ) {
        let cfg = BtbConfig {
            jte_cap: Some(cap),
            ..BtbConfig::set_assoc(16, 2, Replacement::Lru)
        };
        let mut btb = Btb::new(cfg);
        for &w in &ops {
            match w % 5 {
                4 => {
                    btb.flush_jtes();
                }
                3 => {
                    btb.lookup(key_from(w));
                }
                _ => {
                    btb.insert(key_from(w), 0x8000 + (w & 0xFFF));
                }
            }
            prop_assert!(
                btb.resident_jtes() <= cap,
                "{} resident JTEs with cap {}",
                btb.resident_jtes(),
                cap
            );
            btb.assert_population_invariant();
        }
    }

    /// ITTAGE under an arbitrary update/predict stream: never panics,
    /// and its confidence counters saturate rather than wrap — hammering
    /// one mapping thousands of times, then reversing it, stays sound
    /// and eventually relearns the new target.
    #[test]
    fn ittage_streams_never_panic_and_counters_saturate(
        ops in prop::collection::vec((0u64..64, 0u64..8), 1..200),
    ) {
        let mut p = Ittage::new();
        for &(pc_sel, t_sel) in &ops {
            let pc = 0x1_0000 + pc_sel * 4;
            p.predict(pc);
            p.update(pc, 0x2_0000 + t_sel * 4);
        }
        // Saturation: one stable mapping, far past any counter range.
        let pc = 0x1_0000;
        for _ in 0..5_000 {
            p.update(pc, 0xAAAA_0000);
        }
        // Flipping the target must decay-and-replace, not wrap or panic.
        let mut relearned = false;
        for _ in 0..5_000 {
            p.update(pc, 0xBBBB_0000);
            relearned |= p.predict(pc) == Some(0xBBBB_0000);
        }
        prop_assert!(relearned, "ITTAGE never relearned a flipped target");
    }

    /// ITTAGE is a pure function of its update stream: two instances fed
    /// the same stream make identical predictions throughout.
    #[test]
    fn ittage_is_deterministic(
        ops in prop::collection::vec((0u64..256, 0u64..16), 1..200),
    ) {
        let mut a = Ittage::new();
        let mut b = Ittage::new();
        for &(pc_sel, t_sel) in &ops {
            let pc = 0x4_0000 + pc_sel * 4;
            prop_assert_eq!(a.predict(pc), b.predict(pc));
            a.update(pc, 0x8_0000 + t_sel * 4);
            b.update(pc, 0x8_0000 + t_sel * 4);
        }
    }
}
