//! Property tests for the BTB (with its JTE overlay rules) and the
//! ITTAGE indirect predictor: random insert/lookup/update streams
//! checked against reference models and the population invariant.

use proptest::prelude::*;
use scd_sim::{
    Btb, BtbConfig, BtbKey, EntryKind, InsertOutcome, Ittage, Replacement, TwoLevelBtbConfig,
};

/// Decodes a compact op stream: each `u64` drives one BTB operation so
/// the generated `Vec<u64>` shrink-prints small.
fn key_from(word: u64) -> BtbKey {
    // A deliberately tiny key universe (16 Pc raws, 16 Vbbi raws, and
    // 4 bids x 16 opcodes of Jte keys) so streams collide constantly —
    // aliasing bugs need collisions to show up.
    let raw = (word >> 8) & 0xF;
    match word % 3 {
        0 => BtbKey::Pc(raw << 2),
        1 => BtbKey::Jte { bid: ((word >> 4) & 0x3) as u8, opcode: raw },
        _ => BtbKey::Vbbi(raw),
    }
}

proptest! {
    /// Immediately after a successful insert, the same key must hit and
    /// return the just-written target — for every kind, geometry, and
    /// interleaving.
    #[test]
    fn lookup_after_insert_hits(
        ops in prop::collection::vec(any::<u64>(), 1..200),
        fully_assoc in any::<bool>(),
        cap in 0usize..12,
    ) {
        let cfg = if fully_assoc {
            BtbConfig::fully_assoc(16, Replacement::Lru)
        } else {
            BtbConfig::set_assoc(16, 2, Replacement::RoundRobin)
        };
        // Caps 0..6 are in force (including the Some(0) always-drop
        // path); 6..12 run uncapped.
        let mut btb = Btb::new(BtbConfig { jte_cap: (cap < 6).then_some(cap), ..cfg });
        for (i, &w) in ops.iter().enumerate() {
            let key = key_from(w);
            let target = 0x4000 + (i as u64) * 4;
            match btb.insert(key, target) {
                InsertOutcome::CapSkipped | InsertOutcome::Blocked => {
                    prop_assert!(btb.lookup(key).is_none(), "dropped insert must not hit");
                }
                _ => prop_assert_eq!(
                    btb.lookup(key),
                    Some(target),
                    "insert #{} of {:?} did not land",
                    i,
                    key
                ),
            }
            btb.assert_population_invariant();
        }
    }

    /// A fully-associative LRU BTB fed only PC keys is exactly an LRU
    /// cache: compare hit/miss and eviction order against a brute-force
    /// recency-list model over a colliding key universe.
    #[test]
    fn fully_assoc_lru_matches_reference_model(
        ops in prop::collection::vec((any::<bool>(), 0u64..24), 1..300),
    ) {
        const ENTRIES: usize = 8;
        let mut btb = Btb::new(BtbConfig::fully_assoc(ENTRIES, Replacement::Lru));
        // Model: (key, target) in recency order, most recent last.
        let mut model: Vec<(u64, u64)> = Vec::new();
        for (i, &(is_insert, k)) in ops.iter().enumerate() {
            let target = 0x1000 + k * 8 + (i as u64 % 2);
            let pos = model.iter().position(|&(mk, _)| mk == k);
            if is_insert {
                match pos {
                    Some(p) => {
                        model.remove(p);
                        model.push((k, target));
                    }
                    None => {
                        if model.len() == ENTRIES {
                            model.remove(0); // evict least recent
                        }
                        model.push((k, target));
                    }
                }
                btb.insert(BtbKey::Pc(k << 2), target);
            } else {
                let expect = pos.map(|p| {
                    let e = model.remove(p);
                    model.push(e);
                    e.1
                });
                prop_assert_eq!(
                    btb.lookup(BtbKey::Pc(k << 2)),
                    expect,
                    "op #{} lookup of key {} disagrees with the LRU model",
                    i,
                    k
                );
            }
        }
    }

    /// Raw-value collisions across key spaces are inert: a `Pc`, a `Jte`
    /// and a `Vbbi` key sharing the same raw bits coexist and never
    /// return each other's targets.
    #[test]
    fn key_spaces_never_alias(raw in 0u64..1024, bid in 0u8..4) {
        let keys = [
            // BtbKey::Pc stores pc >> 2, so pc = raw << 2 collides with
            // a Vbbi hash of `raw` and a bid-0 Jte opcode of `raw`.
            (BtbKey::Pc(raw << 2), 0xA000u64),
            (BtbKey::Jte { bid, opcode: raw }, 0xB000u64),
            (BtbKey::Vbbi(raw), 0xC000u64),
        ];
        let mut btb = Btb::new(BtbConfig::fully_assoc(16, Replacement::Lru));
        for &(k, t) in &keys {
            btb.insert(k, t);
        }
        for &(k, t) in &keys {
            prop_assert_eq!(btb.lookup(k), Some(t), "{:?} lost or cross-matched", k);
        }
        btb.assert_population_invariant();
    }

    /// With `jte_cap: Some(0)` every JTE insert takes the documented
    /// drop path: `CapSkipped`, no resident JTE ever, other kinds
    /// unaffected.
    #[test]
    fn jte_cap_zero_always_drops(ops in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut btb = Btb::new(BtbConfig {
            jte_cap: Some(0),
            ..BtbConfig::set_assoc(16, 2, Replacement::Lru)
        });
        for &w in &ops {
            let key = key_from(w);
            let out = btb.insert(key, 0x8000 + (w & 0xFFF));
            if let BtbKey::Jte { .. } = key {
                prop_assert_eq!(out, InsertOutcome::CapSkipped);
                prop_assert!(btb.lookup(key).is_none(), "a dropped JTE must not hit");
            } else {
                prop_assert!(out != InsertOutcome::CapSkipped, "the cap only governs JTEs");
            }
            prop_assert_eq!(btb.resident_jtes(), 0);
            btb.assert_population_invariant();
        }
    }

    /// The JTE cap bounds the resident-JTE population through any
    /// stream of inserts, lookups and flushes, and the population
    /// identity holds after every operation.
    #[test]
    fn jte_cap_is_never_exceeded(
        ops in prop::collection::vec(any::<u64>(), 1..300),
        cap in 0usize..8,
    ) {
        let cfg = BtbConfig {
            jte_cap: Some(cap),
            ..BtbConfig::set_assoc(16, 2, Replacement::Lru)
        };
        let mut btb = Btb::new(cfg);
        for &w in &ops {
            match w % 5 {
                4 => {
                    btb.flush_jtes();
                }
                3 => {
                    btb.lookup(key_from(w));
                }
                _ => {
                    btb.insert(key_from(w), 0x8000 + (w & 0xFFF));
                }
            }
            prop_assert!(
                btb.resident_jtes() <= cap,
                "{} resident JTEs with cap {}",
                btb.resident_jtes(),
                cap
            );
            btb.assert_population_invariant();
        }
    }

    /// Exact reference model of the two-level structure: fully
    /// associative single-set banks fed only `Pc` keys with wide
    /// (collision-free) tags reduce each level to a timestamped entry
    /// list. The model replays the documented motion rules — in-place
    /// update in either level, fill-L0 with LRU demotion (the demoted
    /// entry keeps its timestamp), promotion only into a free L0 slot —
    /// and must agree with the hardware on every lookup result
    /// (including the serving level) and on the exact per-level
    /// contents after every operation.
    #[test]
    fn two_level_fully_assoc_matches_reference_model(
        ops in prop::collection::vec((any::<bool>(), 0u64..24), 1..400),
    ) {
        const L0: usize = 4;
        const L1: usize = 8;
        let tl = TwoLevelBtbConfig {
            l0_entries: L0,
            l0_ways: 0,
            l1_entries: L1,
            l1_ways: 0,
            fold_bits: 8,
            tag_bits: 32,
            l1_bubbles: 2,
        };
        let mut btb = Btb::new(BtbConfig::two_level(tl, Replacement::Lru));
        // Model entries: (key, target, last-touch tick).
        let mut l0: Vec<(u64, u64, u64)> = Vec::new();
        let mut l1: Vec<(u64, u64, u64)> = Vec::new();
        let mut tick = 0u64;
        for (i, &(is_insert, k)) in ops.iter().enumerate() {
            tick += 1;
            let target = 0x1000 + k * 8 + (i as u64 % 2);
            let p0 = l0.iter().position(|&(mk, _, _)| mk == k);
            let p1 = l1.iter().position(|&(mk, _, _)| mk == k);
            if is_insert {
                match (p0, p1) {
                    (Some(p), _) => l0[p] = (k, target, tick),
                    (None, Some(p)) => l1[p] = (k, target, tick),
                    (None, None) => {
                        if l0.len() == L0 {
                            let v = (0..l0.len()).min_by_key(|&j| l0[j].2).unwrap();
                            let old = l0.remove(v);
                            if l1.len() == L1 {
                                let dv = (0..l1.len()).min_by_key(|&j| l1[j].2).unwrap();
                                l1.remove(dv);
                            }
                            l1.push(old);
                        }
                        l0.push((k, target, tick));
                    }
                }
                btb.insert(BtbKey::Pc(k << 2), target);
            } else {
                let expect = match (p0, p1) {
                    (Some(p), _) => {
                        l0[p].2 = tick;
                        Some((l0[p].1, false))
                    }
                    (None, Some(p)) => {
                        let t = l1[p].1;
                        if l0.len() < L0 {
                            let mut e = l1.remove(p);
                            e.2 = tick;
                            l0.push(e);
                        } else {
                            l1[p].2 = tick;
                        }
                        Some((t, true))
                    }
                    (None, None) => None,
                };
                prop_assert_eq!(
                    btb.lookup_leveled(BtbKey::Pc(k << 2)),
                    expect,
                    "op #{} lookup of key {} disagrees with the model",
                    i,
                    k
                );
            }
            let (h0, h1) = btb.snapshot_levels();
            for (level, hw, model) in [("L0", &h0, &l0), ("L1", &h1, &l1)] {
                let mut want: Vec<(u64, u64)> = model.iter().map(|&(k, t, _)| (k, t)).collect();
                let mut got: Vec<(u64, u64)> = hw.iter().map(|&(_, k, t)| (k, t)).collect();
                want.sort_unstable();
                got.sort_unstable();
                prop_assert_eq!(got, want, "{} contents diverge at op #{}", level, i);
            }
            btb.assert_population_invariant();
        }
    }

    /// Structural invariants through arbitrary mixed-kind streams over
    /// an aliasing-prone geometry (narrow tags, varying fold width):
    /// the two levels stay exclusive (no probe can match in both at
    /// once, per kind and hash class), the JTE census across both
    /// banks equals the cap counter, and the cap bound holds after
    /// every operation.
    #[test]
    fn two_level_exclusive_and_capped_through_any_stream(
        ops in prop::collection::vec(any::<u64>(), 1..300),
        cap in 0usize..6,
        fold in 3u32..9,
    ) {
        let tl = TwoLevelBtbConfig {
            l0_entries: 8,
            l0_ways: 2,
            l1_entries: 32,
            l1_ways: 4,
            fold_bits: fold,
            tag_bits: 6,
            l1_bubbles: 2,
        };
        let mut btb = Btb::new(BtbConfig {
            jte_cap: Some(cap),
            ..BtbConfig::two_level(tl, Replacement::Lru)
        });
        for (i, &w) in ops.iter().enumerate() {
            match w % 5 {
                4 => {
                    btb.flush_jtes();
                }
                3 => {
                    btb.lookup(key_from(w));
                }
                _ => {
                    btb.insert(key_from(w), 0x8000 + (w & 0xFFF));
                }
            }
            prop_assert!(btb.resident_jtes() <= cap);
            btb.assert_population_invariant();
            let (l0, l1) = btb.snapshot_levels();
            // Exclusivity across levels, and no duplicate hash class
            // within a level either.
            for (a_idx, &(k0, r0, _)) in l0.iter().enumerate() {
                for &(k1, r1, _) in &l1 {
                    prop_assert!(
                        !(k0 == k1 && tl.aliases(k0, r0, r1)),
                        "op #{}: {:?} raw {:#x} matchable in both levels (vs {:#x})",
                        i, k0, r0, r1
                    );
                }
                for &(k1, r1, _) in &l0[a_idx + 1..] {
                    prop_assert!(
                        !(k0 == k1 && tl.aliases(k0, r0, r1)),
                        "op #{}: duplicate L0 hash class for {:?} {:#x}/{:#x}",
                        i, k0, r0, r1
                    );
                }
            }
            let jtes = l0
                .iter()
                .chain(l1.iter())
                .filter(|&&(k, _, _)| k == EntryKind::Jte)
                .count();
            prop_assert_eq!(jtes, btb.resident_jtes(), "JTE census diverges at op #{}", i);
        }
    }

    /// `TwoLevelBtbConfig::aliases` is the exact indistinguishability
    /// predicate when both levels have the same set count: a probe of
    /// `b` hits an entry inserted under `a` iff they alias. `Jte` keys
    /// carry full-raw tags, so only the identical opcode ever matches
    /// — hostile hashing can starve JTEs but never corrupt a dispatch
    /// target.
    #[test]
    fn hash_collision_classes_predict_aliasing(
        a in 0u64..4096,
        b in 0u64..4096,
        bid in 0u8..4,
    ) {
        let tl = TwoLevelBtbConfig {
            l0_entries: 16,
            l0_ways: 2,
            l1_entries: 32,
            l1_ways: 4,
            fold_bits: 3,
            tag_bits: 4,
            l1_bubbles: 2,
        };
        let mut btb = Btb::new(BtbConfig::two_level(tl, Replacement::Lru));
        btb.insert(BtbKey::Pc(a << 2), 0xA000);
        let hit = btb.lookup(BtbKey::Pc(b << 2));
        prop_assert_eq!(
            hit.is_some(),
            tl.aliases(EntryKind::Pc, a, b),
            "Pc probe of {:#x} vs entry {:#x} disagrees with the collision class",
            b,
            a
        );
        if hit.is_some() {
            // An aliased hit serves the class's single stored target.
            prop_assert_eq!(hit, Some(0xA000));
        }

        let mut btb = Btb::new(BtbConfig::two_level(tl, Replacement::Lru));
        btb.insert(BtbKey::Jte { bid, opcode: a }, 0xB000);
        prop_assert_eq!(btb.lookup(BtbKey::Jte { bid, opcode: b }).is_some(), a == b);
        let jraw = |op: u64| op ^ ((bid as u64) << 56);
        prop_assert_eq!(tl.aliases(EntryKind::Jte, jraw(a), jraw(b)), a == b);
    }

    /// At-cap displacement across levels: through any insert stream, a
    /// JTE insert is never `Blocked` (at the cap it always finds a JTE
    /// to displace, in either bank), `CapSkipped` is exactly the
    /// `Some(0)` drop path, and a `Pc`/`Vbbi` insert never chain-loses
    /// a JTE through the demotion path.
    #[test]
    fn two_level_cap_displacement_outcomes(
        ops in prop::collection::vec(any::<u64>(), 1..300),
        cap in 0usize..5,
    ) {
        let tl = TwoLevelBtbConfig {
            l0_entries: 4,
            l0_ways: 2,
            l1_entries: 16,
            l1_ways: 4,
            fold_bits: 4,
            tag_bits: 8,
            l1_bubbles: 2,
        };
        let mut btb = Btb::new(BtbConfig {
            jte_cap: Some(cap),
            ..BtbConfig::two_level(tl, Replacement::Lru)
        });
        for (i, &w) in ops.iter().enumerate() {
            let key = key_from(w);
            let out = btb.insert(key, 0x9000 + (w & 0xFF));
            if let BtbKey::Jte { .. } = key {
                prop_assert!(out != InsertOutcome::Blocked, "op #{}: JTE insert blocked", i);
                if out == InsertOutcome::CapSkipped {
                    prop_assert_eq!(cap, 0, "CapSkipped is the cap-0 drop path only");
                }
            } else {
                prop_assert!(out != InsertOutcome::CapSkipped);
                if let InsertOutcome::Inserted { evicted, remote_jte_evicted } = out {
                    prop_assert!(!remote_jte_evicted);
                    prop_assert!(
                        evicted != Some(EntryKind::Jte),
                        "op #{}: a {:?} insert chain-lost a JTE",
                        i,
                        key
                    );
                }
            }
            prop_assert!(btb.resident_jtes() <= cap);
            btb.assert_population_invariant();
        }
    }

    /// ITTAGE under an arbitrary update/predict stream: never panics,
    /// and its confidence counters saturate rather than wrap — hammering
    /// one mapping thousands of times, then reversing it, stays sound
    /// and eventually relearns the new target.
    #[test]
    fn ittage_streams_never_panic_and_counters_saturate(
        ops in prop::collection::vec((0u64..64, 0u64..8), 1..200),
    ) {
        let mut p = Ittage::new();
        for &(pc_sel, t_sel) in &ops {
            let pc = 0x1_0000 + pc_sel * 4;
            p.predict(pc);
            p.update(pc, 0x2_0000 + t_sel * 4);
        }
        // Saturation: one stable mapping, far past any counter range.
        let pc = 0x1_0000;
        for _ in 0..5_000 {
            p.update(pc, 0xAAAA_0000);
        }
        // Flipping the target must decay-and-replace, not wrap or panic.
        let mut relearned = false;
        for _ in 0..5_000 {
            p.update(pc, 0xBBBB_0000);
            relearned |= p.predict(pc) == Some(0xBBBB_0000);
        }
        prop_assert!(relearned, "ITTAGE never relearned a flipped target");
    }

    /// ITTAGE is a pure function of its update stream: two instances fed
    /// the same stream make identical predictions throughout.
    #[test]
    fn ittage_is_deterministic(
        ops in prop::collection::vec((0u64..256, 0u64..16), 1..200),
    ) {
        let mut a = Ittage::new();
        let mut b = Ittage::new();
        for &(pc_sel, t_sel) in &ops {
            let pc = 0x4_0000 + pc_sel * 4;
            prop_assert_eq!(a.predict(pc), b.predict(pc));
            a.update(pc, 0x8_0000 + t_sel * 4);
            b.update(pc, 0x8_0000 + t_sel * 4);
        }
    }
}
