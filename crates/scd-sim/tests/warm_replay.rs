//! Bit-identity of the replay-driven warming engine: the gated record
//! consumer must leave byte-for-byte the machine state of the
//! interleaved `WARMING = true` loop — caches, TLBs, BTB/JTE overlay,
//! direction predictor/ITTAGE, RAS, SCD registers, scoreboard stamps
//! and counters, all carried by the `SCDCKPT2` snapshot codec — on both
//! the threaded (execute-ahead) and inline single-CPU engines. On top
//! of that, sampled runs must not care which warming engine ran: the
//! result cache does not key on the engine, so `run_sampled` under
//! `--interleaved`, the automatic host policy, and forced replay must
//! all produce identical estimates.

use proptest::prelude::*;
use scd_isa::{Asm, Inst, LoadOp, Program, Reg};
use scd_sim::{Machine, SamplingPlan, SimConfig, SimError};

/// The sampled-test dispatcher guest: `n` bytecode dispatches through a
/// `bop`/`jru` loop, touching every structure warming must fill
/// (caches, TLBs, direction predictor, BTB, JTE overlay, RAS via the
/// fill loop's calls, SCD registers).
fn dispatcher_program(n: i64) -> Program {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::S1, 0x10_0000);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, n);
    a.label("fill");
    a.andi(Reg::T2, Reg::T0, 1);
    a.slli(Reg::T3, Reg::T0, 2);
    a.add(Reg::T3, Reg::T3, Reg::S1);
    a.sw(Reg::T2, 0, Reg::T3);
    a.addi(Reg::T0, Reg::T0, 1);
    a.bne(Reg::T0, Reg::T1, "fill");
    a.li(Reg::T2, 2);
    a.slli(Reg::T3, Reg::T0, 2);
    a.add(Reg::T3, Reg::T3, Reg::S1);
    a.sw(Reg::T2, 0, Reg::T3);

    a.li(Reg::T0, 0x3f);
    a.setmask(0, Reg::T0);
    a.li(Reg::A2, 0);
    a.la(Reg::S2, "jt");
    a.label("dispatch");
    a.load_op(LoadOp::Lw, 0, Reg::A0, 0, Reg::S1);
    a.addi(Reg::S1, Reg::S1, 4);
    a.bop(0);
    a.andi(Reg::A1, Reg::A0, 0x3f);
    a.sltiu(Reg::T3, Reg::A1, 3);
    a.beqz(Reg::T3, "bad");
    a.slli(Reg::T3, Reg::A1, 3);
    a.add(Reg::T3, Reg::T3, Reg::S2);
    a.ld(Reg::T4, 0, Reg::T3);
    a.jru(0, Reg::T4);

    a.label("h0");
    a.addi(Reg::A2, Reg::A2, 1);
    a.j("dispatch");
    a.label("h1");
    a.addi(Reg::A2, Reg::A2, 2);
    a.j("dispatch");
    a.label("h2");
    a.mv(Reg::A0, Reg::A2);
    a.li(Reg::A7, 0);
    a.ecall();
    a.label("bad");
    a.inst(Inst::Ebreak);

    a.ro_label("jt");
    a.ro_addr("h0");
    a.ro_addr("h1");
    a.ro_addr("h2");
    a.finish().expect("assemble")
}

/// A plain (SCD-less) guest: nested loops over a strided buffer with a
/// call/return pair per iteration — exercises the D-side, direct and
/// indirect branches and the RAS without any `bop`/`jru` traffic, so
/// warming replay is covered off the speculation fast path too.
fn strider_program(rows: i64, stride: i64) -> Program {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::S1, 0x10_0000);
    a.li(Reg::S2, rows);
    a.li(Reg::S3, stride);
    a.li(Reg::A2, 0);
    a.label("outer");
    a.li(Reg::T0, 0);
    a.label("inner");
    a.mul(Reg::T1, Reg::T0, Reg::S3);
    a.add(Reg::T1, Reg::T1, Reg::S1);
    a.lw(Reg::T2, 0, Reg::T1);
    a.add(Reg::A2, Reg::A2, Reg::T2);
    a.sw(Reg::A2, 0, Reg::T1);
    a.call("bump");
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::S3, "inner");
    a.addi(Reg::S2, Reg::S2, -1);
    a.bnez(Reg::S2, "outer");
    a.andi(Reg::A0, Reg::A2, 0xff);
    a.li(Reg::A7, 0);
    a.ecall();
    a.label("bump");
    a.addi(Reg::A2, Reg::A2, 1);
    a.ret();
    a.finish().expect("assemble")
}

fn machine(cfg: &SimConfig, p: &Program) -> Machine {
    let mut m = Machine::new(cfg.clone(), p);
    m.map("scratch", 0x10_0000, 0x10_0000);
    m.disable_invariants();
    m
}

fn hit_limit(r: Result<scd_sim::Exit, SimError>) -> bool {
    matches!(r, Err(SimError::InstLimit { .. }))
}

/// Drives warming to `limit` on four machines — the interleaved
/// reference warmer and replay warming under each engine policy — and
/// asserts full-snapshot byte equality, then that a detailed measured
/// window from the warmed state stays byte-identical too.
fn assert_warm_identity(cfg: &SimConfig, p: &Program, limit: u64, measure: u64) {
    let mut reference = machine(cfg, p);
    let r0 = reference.run_warming(limit);

    type EnginePin = fn(&mut Machine);
    let engines: [(&str, EnginePin); 3] = [
        ("interleaved-inline", |m| m.set_replay(false)),
        ("auto", |_| {}),
        ("forced-threaded", Machine::force_replay),
    ];
    for (name, pin) in engines {
        let mut m = machine(cfg, p);
        pin(&mut m);
        let r = m.run_warming_replay(limit);
        assert_eq!(
            format!("{r:?}"),
            format!("{:?}", &r0),
            "warming outcome diverged under {name}"
        );
        assert_eq!(
            m.snapshot().to_bytes(),
            reference.snapshot().to_bytes(),
            "post-warming snapshot diverged under {name}"
        );
        if measure > 0 && r.is_err() {
            // The warmed structures must behave identically under
            // detailed timing, not just encode identically.
            let mut mm = m;
            let mut rr = machine(cfg, p);
            rr.restore(&reference.snapshot()).expect("restore");
            let a = mm.run(limit + measure);
            let b = rr.run(limit + measure);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "measured exit ({name})");
            assert_eq!(mm.stats, rr.stats, "measured stats ({name})");
        }
    }
}

#[test]
fn warm_replay_matches_interleaved_warmer() {
    let p = dispatcher_program(4000);
    let cfg = SimConfig::embedded_a5();
    assert_warm_identity(&cfg, &p, 30_000, 5_000);
}

#[test]
fn warm_replay_matches_under_flush_quantum() {
    // JTE flushes mid-warming force bop mispredictions and producer
    // rollbacks; identity must survive the rollback protocol.
    let p = dispatcher_program(4000);
    let mut cfg = SimConfig::embedded_a5();
    cfg.scd.flush_interval = Some(2_000);
    assert_warm_identity(&cfg, &p, 30_000, 5_000);
}

#[test]
fn warm_replay_matches_on_guest_exit() {
    // Budget far past the guest's end: warming replay must surface the
    // exit exactly like the interleaved warmer.
    let p = dispatcher_program(300);
    let cfg = SimConfig::embedded_a5();
    assert_warm_identity(&cfg, &p, 10_000_000, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary guests, warming budgets and flush quanta: the replay
    /// warming engine (both engine policies) leaves bit-identical
    /// snapshots to `run_warming`.
    #[test]
    fn warm_replay_bit_identical(
        dispatches in 200i64..3_000,
        limit in 1_000u64..40_000,
        flush_raw in 0u64..5_000,
        strided in 0u8..2,
        rows in 2i64..40,
        stride in 2i64..24,
    ) {
        let p = if strided == 1 {
            strider_program(rows, stride)
        } else {
            dispatcher_program(dispatches)
        };
        let mut cfg = SimConfig::embedded_a5();
        // Below 1k the raw draw means "no flush quantum".
        cfg.scd.flush_interval = (flush_raw >= 1_000).then_some(flush_raw);

        let mut reference = machine(&cfg, &p);
        let r0 = reference.run_warming(limit);
        let want = reference.snapshot().to_bytes();

        for forced in [false, true] {
            let mut m = machine(&cfg, &p);
            if forced {
                m.force_replay();
            } else {
                m.set_replay(false);
            }
            let r = m.run_warming_replay(limit);
            prop_assert_eq!(format!("{r:?}"), format!("{:?}", &r0));
            prop_assert_eq!(m.snapshot().to_bytes(), want.clone());
        }
    }

    /// Sampled runs are engine-invariant: the same plan under the
    /// interleaved warmer, inline replay warming and forced threaded
    /// replay warming produces identical exits, reports and estimates —
    /// the invariant the content-addressed result cache relies on.
    #[test]
    fn sampled_run_is_engine_invariant(
        dispatches in 500i64..4_000,
        period in 3_000u64..10_000,
        warm_permille in 100u64..400,
        measure_permille in 100u64..400,
        flush_raw in 0u64..8_000,
    ) {
        let flush = (flush_raw >= 2_000).then_some(flush_raw);
        let warmup = (period * warm_permille / 1000).max(1);
        let measure = (period * measure_permille / 1000).max(1);
        let plan = SamplingPlan::new(period, warmup, measure).unwrap();
        let p = dispatcher_program(dispatches);
        let mut cfg = SimConfig::embedded_a5();
        cfg.scd.flush_interval = flush;

        let mut runs = Vec::new();
        for mode in 0..3u8 {
            let mut m = machine(&cfg, &p);
            match mode {
                0 => m.set_replay(false),
                1 => {}
                _ => m.force_replay(),
            }
            let r = m.run_sampled(10_000_000, &plan);
            runs.push((format!("{r:?}"), m.stats.clone()));
        }
        prop_assert_eq!(&runs[0].0, &runs[1].0);
        prop_assert_eq!(&runs[0].0, &runs[2].0);
        prop_assert_eq!(&runs[0].1, &runs[1].1);
        prop_assert_eq!(&runs[0].1, &runs[2].1);
    }
}

/// Golden sampled run whose guest halts *inside* a warm leg (after
/// measured intervals have accumulated): the warming/measure boundary
/// bookkeeping must attribute every retirement, and the replay engine
/// must agree with the interleaved warmer down to the estimate.
#[test]
fn golden_sampled_exit_crosses_warming_boundary() {
    let p = dispatcher_program(2_000);
    let cfg = SimConfig::embedded_a5();

    // Full-detail reference for the architectural result.
    let mut full = machine(&cfg, &p);
    let e_full = full.run(10_000_000).expect("full run");
    let total = full.stats.instructions;

    // Place the guest's end inside a warm leg: with period 4k and the
    // end at `total`, pick warmup long enough that `total % 4k` lands
    // after the skip but before the measure window.
    let period = 4_000u64;
    let into = total % period;
    assert!(into > 600, "guest length {total} must overshoot the skip");
    let plan = SamplingPlan::new(period, into.saturating_sub(200), 200).unwrap();

    let mut runs = Vec::new();
    for forced in [false, true] {
        let mut m = machine(&cfg, &p);
        if forced {
            m.force_replay();
        } else {
            m.set_replay(false);
        }
        let (e, report) = m.run_sampled(10_000_000, &plan).expect("sampled run");
        assert_eq!(e.code, e_full.code, "exit code (forced={forced})");
        assert_eq!(e.output, e_full.output, "guest output (forced={forced})");
        assert!(!report.exact_fallback);
        assert!(report.intervals >= 1);
        // Every retirement is attributed to exactly one leg.
        assert_eq!(
            report.total_insts,
            report.ff_insts + report.warm_insts + report.measured_insts
        );
        runs.push((report, m.stats.clone()));
    }
    assert_eq!(format!("{:?}", runs[0].0), format!("{:?}", runs[1].0));
    assert_eq!(runs[0].1, runs[1].1);
}

/// Per-structure windows: a split plan (short cache window, longer
/// BTB/predictor windows) runs the whole leg under the replay engine on
/// every host, keeps architectural results exact, and collapses to the
/// uniform plan when the windows are equal.
#[test]
fn split_windows_run_and_stay_architecturally_exact() {
    let p = dispatcher_program(3_000);
    let cfg = SimConfig::embedded_a5();

    let mut full = machine(&cfg, &p);
    let e_full = full.run(10_000_000).expect("full run");

    let plan = SamplingPlan::parse("4k:600/BTB=1k,PRED=1500:800").unwrap();
    assert_eq!(plan.warm_len(), 1_500);
    for forced in [false, true] {
        let mut m = machine(&cfg, &p);
        if forced {
            m.force_replay();
        } else {
            m.set_replay(false);
        }
        let (e, report) = m.run_sampled(10_000_000, &plan).expect("sampled run");
        assert_eq!(e.code, e_full.code);
        assert_eq!(e.output, e_full.output);
        assert!(!report.exact_fallback);
        assert!(report.intervals >= 2, "intervals: {}", report.intervals);
        // The warm legs span the longest window.
        assert!(report.warm_insts >= report.intervals * 1_400);
    }

    // Uniform overrides are the plain plan: same parse, same cadence,
    // same estimate.
    let uniform = SamplingPlan::parse("4k:1k/BTB=1k,PRED=1k:800").unwrap();
    let plain = SamplingPlan::parse("4k:1k:800").unwrap();
    assert_eq!(uniform.manifest(), plain.manifest());
    let mut a = machine(&cfg, &p);
    let mut b = machine(&cfg, &p);
    let ra = a.run_sampled(10_000_000, &uniform).expect("uniform");
    let rb = b.run_sampled(10_000_000, &plain).expect("plain");
    assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
    assert_eq!(a.stats, b.stats);
}

/// Warming proceeds in detailed-replay style too: after replay warming,
/// continuing in *detailed* mode from the warmed state must match the
/// interleaved continuation — i.e. the warm seam composes with ordinary
/// runs, not just with sampled legs.
#[test]
fn warm_then_detailed_seam_composes() {
    let p = strider_program(60, 16);
    let cfg = SimConfig::embedded_a5();

    let mut a = machine(&cfg, &p);
    assert!(hit_limit(a.run_warming(8_000)));
    let ea = a.run(20_000);

    let mut b = machine(&cfg, &p);
    b.force_replay();
    assert!(hit_limit(b.run_warming_replay(8_000)));
    let eb = b.run(20_000);

    assert_eq!(format!("{ea:?}"), format!("{eb:?}"));
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.snapshot().to_bytes(), b.snapshot().to_bytes());
}
