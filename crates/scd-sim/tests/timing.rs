//! Directed timing tests: each microarchitectural cost in the model is
//! exercised in isolation with a tiny assembly kernel.

use scd_isa::{Asm, Reg};
use scd_sim::{Machine, SimConfig};

fn run(cfg: SimConfig, build: impl FnOnce(&mut Asm)) -> Machine {
    let mut a = Asm::new(0x1_0000);
    build(&mut a);
    a.li(Reg::A0, 0);
    a.li(Reg::A7, 0);
    a.ecall();
    let p = a.finish().expect("assembles");
    let mut m = Machine::new(cfg, &p);
    m.map("data", 0x10_0000, 1 << 20);
    m.run(10_000_000).expect("runs");
    m
}

fn cycles(cfg: SimConfig, build: impl FnOnce(&mut Asm)) -> u64 {
    run(cfg, build).stats.cycles
}

#[test]
fn hot_alu_loop_is_near_one_per_cycle() {
    // 100 iterations x (10 ALU + add + branch): once the I-cache and
    // predictor warm up, the core sustains ~1 IPC.
    let iters = 100u64;
    let m = run(SimConfig::embedded_a5(), |a| {
        a.li(Reg::T0, 0);
        a.li(Reg::T1, iters as i64);
        a.label("loop");
        for _ in 0..10 {
            a.addi(Reg::T2, Reg::T2, 1);
        }
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, "loop");
    });
    let insts = m.stats.instructions;
    let c = m.stats.cycles;
    assert!(c >= insts, "cycles {c} < insts {insts}");
    assert!(c < insts + insts / 4 + 200, "IPC too low: {c} cycles for {insts} insts");
}

#[test]
fn load_use_stall_charged() {
    let cfg = SimConfig::embedded_a5();
    let iters = 200u64;
    let kernel = |dependent: bool| {
        move |a: &mut Asm| {
            a.li(Reg::T0, 0x10_0000);
            a.li(Reg::S1, iters as i64);
            a.label("loop");
            for _ in 0..4 {
                a.ld(Reg::T1, 0, Reg::T0);
                if dependent {
                    a.addi(Reg::T2, Reg::T1, 1); // consumes the load
                } else {
                    a.addi(Reg::T2, Reg::T0, 1); // unrelated
                }
            }
            a.addi(Reg::S1, Reg::S1, -1);
            a.bnez(Reg::S1, "loop");
        }
    };
    let dep = cycles(cfg.clone(), kernel(true));
    let indep = cycles(cfg, kernel(false));
    // 4 load-use pairs per iteration, 2-cycle stall each (A5 D$ hit
    // latency), with a little slack for warm-up.
    let expected = iters * 4 * 2;
    assert!(
        dep >= indep + expected - expected / 10,
        "load-use pairs should stall ~2 cycles each: dep={dep} indep={indep}"
    );
}

#[test]
fn taken_branch_without_btb_entry_pays_penalty() {
    // A chain of never-taken branches is near-free; a chain of taken
    // branches costs the redirect penalty until the BTB warms up — and
    // with distinct PCs each executed once, it never warms up.
    let cfg = SimConfig::embedded_a5();
    let n = 100;
    let not_taken = cycles(cfg.clone(), |a| {
        for _ in 0..n {
            a.bne(Reg::ZERO, Reg::ZERO, "end"); // never taken
        }
        a.label("end");
    });
    let taken = cycles(cfg.clone(), |a| {
        for i in 0..n {
            let lbl = format!("l{i}");
            a.beq(Reg::ZERO, Reg::ZERO, &lbl); // always taken, unique PC
            a.label(&lbl);
        }
    });
    assert!(
        taken > not_taken + 2 * n,
        "cold taken branches must pay redirects: taken={taken} not_taken={not_taken}"
    );
}

#[test]
fn icache_misses_cost_memory_latency() {
    // A huge straight-line code path touches each line once: every 16th
    // instruction (64B line / 4B inst) misses.
    let cfg = SimConfig::embedded_a5();
    let n = 20_000; // 80 KB of code > 16 KB I$
    let m = run(cfg, |a| {
        for _ in 0..n {
            a.nop();
        }
    });
    let misses = m.stats.icache.misses;
    assert!(misses >= n / 16, "expected cold i-cache misses, got {misses}");
    assert!(m.stats.cycles > n + misses * 50, "miss latency must be charged");
}

#[test]
fn dcache_hits_after_warmup() {
    let m = run(SimConfig::embedded_a5(), |a| {
        a.li(Reg::T0, 0x10_0000);
        // Touch the same line 100 times.
        for _ in 0..100 {
            a.ld(Reg::T1, 0, Reg::T0);
        }
    });
    assert_eq!(m.stats.dcache.misses, 1);
    assert_eq!(m.stats.dcache.accesses, 100);
}

#[test]
fn dual_issue_pairs_independent_ops() {
    // A hot loop of independent pairs: the dual-issue core should
    // approach half the single-issue cycle count.
    let kernel = |a: &mut Asm| {
        a.li(Reg::S1, 300);
        a.label("loop");
        for _ in 0..8 {
            a.addi(Reg::T0, Reg::ZERO, 7);
            a.addi(Reg::T1, Reg::ZERO, 1);
        }
        a.addi(Reg::S1, Reg::S1, -1);
        a.bnez(Reg::S1, "loop");
    };
    let single = cycles(SimConfig::embedded_a5(), kernel);
    let dual = cycles(SimConfig::highend_a8(), kernel);
    assert!(
        (dual as f64) < single as f64 * 0.65,
        "dual-issue should approach half the cycles: {dual} vs {single}"
    );
}

#[test]
fn dual_issue_respects_raw_dependences() {
    let n = 400;
    let dual_dep = cycles(SimConfig::highend_a8(), |a| {
        for _ in 0..n {
            a.addi(Reg::T0, Reg::T0, 1); // chain: no pairing possible
        }
    });
    assert!(dual_dep >= n, "dependent chain cannot dual-issue: {dual_dep}");
}

#[test]
fn div_slower_than_mul_slower_than_add() {
    let mk = |op: scd_isa::AluOp| {
        cycles(SimConfig::embedded_a5(), move |a| {
            a.li(Reg::T0, 7);
            a.li(Reg::T1, 3);
            for _ in 0..100 {
                a.op(op, Reg::T2, Reg::T0, Reg::T1);
                a.addi(Reg::T3, Reg::T2, 1); // consume: expose latency
            }
        })
    };
    let add = mk(scd_isa::AluOp::Add);
    let mul = mk(scd_isa::AluOp::Mul);
    let div = mk(scd_isa::AluOp::Div);
    assert!(mul > add, "mul {mul} vs add {add}");
    assert!(div > mul, "div {div} vs mul {mul}");
}

#[test]
fn tlb_misses_charged_on_first_page_touch() {
    let m = run(SimConfig::embedded_a5(), |a| {
        a.li(Reg::T0, 0x10_0000);
        // Touch 64 distinct pages; a 10-entry TLB keeps missing.
        for p in 0..64 {
            a.ld(Reg::T1, 0, Reg::T0);
            let _ = p;
            a.li(Reg::T2, 4096);
            a.add(Reg::T0, Reg::T0, Reg::T2);
        }
    });
    assert!(m.stats.dtlb.misses >= 64, "dtlb misses {}", m.stats.dtlb.misses);
}

#[test]
fn return_address_stack_depth_matters() {
    // Nested calls deeper than the FPGA's 2-entry RAS mispredict on the
    // way out; the A5's 8-entry RAS nails them.
    let build = |a: &mut Asm| {
        a.li(Reg::S1, 200); // iterations
        a.label("iter");
        a.call("f1");
        a.addi(Reg::S1, Reg::S1, -1);
        a.bnez(Reg::S1, "iter");
        a.j("done");
        for d in 1..=6 {
            a.label(&format!("f{d}"));
            if d < 6 {
                // save ra, call deeper, restore
                a.li(Reg::T5, 0x10_0000 + d as i64 * 64);
                a.sd(Reg::RA, 0, Reg::T5);
                a.call(&format!("f{}", d + 1));
                a.li(Reg::T5, 0x10_0000 + d as i64 * 64);
                a.ld(Reg::RA, 0, Reg::T5);
            }
            a.ret();
        }
        a.label("done");
    };
    let deep_small_ras = run(SimConfig::fpga_rocket(), build);
    let deep_big_ras = run(SimConfig::embedded_a5(), build);
    let small = deep_small_ras.stats.ret.mispredicted;
    let big = deep_big_ras.stats.ret.mispredicted;
    assert!(
        small > big + 100,
        "2-entry RAS should mispredict deep returns: small={small} big={big}"
    );
}
