//! Sampled-simulation integration tests: the fast-forward → warm →
//! measure cadence against full-detail runs of the same guest, the
//! exact-fallback and budget paths, and the mid-warming checkpoint
//! property the sampling scheduler leans on.

use proptest::prelude::*;
use scd_isa::{Asm, Inst, LoadOp, Program, Reg};
use scd_sim::{Machine, SamplingPlan, SimConfig, SimError};

/// A bytecode interpreter with `n` dispatches: fills an array with
/// alternating opcodes 0/1 (terminator 2), then dispatches through a
/// `bop`/`jru` loop — every structure sampling must carry (caches,
/// predictors, the JTE overlay, SCD registers) gets exercised.
fn dispatcher_program(n: i64) -> Program {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::S1, 0x10_0000);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, n);
    a.label("fill");
    a.andi(Reg::T2, Reg::T0, 1);
    a.slli(Reg::T3, Reg::T0, 2);
    a.add(Reg::T3, Reg::T3, Reg::S1);
    a.sw(Reg::T2, 0, Reg::T3);
    a.addi(Reg::T0, Reg::T0, 1);
    a.bne(Reg::T0, Reg::T1, "fill");
    a.li(Reg::T2, 2);
    a.slli(Reg::T3, Reg::T0, 2);
    a.add(Reg::T3, Reg::T3, Reg::S1);
    a.sw(Reg::T2, 0, Reg::T3);

    a.li(Reg::T0, 0x3f);
    a.setmask(0, Reg::T0);
    a.li(Reg::A2, 0);
    a.la(Reg::S2, "jt");
    a.label("dispatch");
    a.load_op(LoadOp::Lw, 0, Reg::A0, 0, Reg::S1);
    a.addi(Reg::S1, Reg::S1, 4);
    a.bop(0);
    a.andi(Reg::A1, Reg::A0, 0x3f);
    a.sltiu(Reg::T3, Reg::A1, 3);
    a.beqz(Reg::T3, "bad");
    a.slli(Reg::T3, Reg::A1, 3);
    a.add(Reg::T3, Reg::T3, Reg::S2);
    a.ld(Reg::T4, 0, Reg::T3);
    a.jru(0, Reg::T4);

    a.label("h0");
    a.addi(Reg::A2, Reg::A2, 1);
    a.j("dispatch");
    a.label("h1");
    a.addi(Reg::A2, Reg::A2, 2);
    a.j("dispatch");
    a.label("h2");
    a.mv(Reg::A0, Reg::A2);
    a.li(Reg::A7, 0);
    a.ecall();
    a.label("bad");
    a.inst(Inst::Ebreak);

    a.ro_label("jt");
    a.ro_addr("h0");
    a.ro_addr("h1");
    a.ro_addr("h2");
    a.finish().expect("assemble")
}

fn machine(cfg: &SimConfig, p: &Program) -> Machine {
    let mut m = Machine::new(cfg.clone(), p);
    m.map("scratch", 0x10_0000, 0x10_0000);
    m.disable_invariants();
    m
}

#[test]
fn sampled_matches_full_run() {
    let p = dispatcher_program(3000);
    let cfg = SimConfig::embedded_a5();

    let mut full = machine(&cfg, &p);
    let e1 = full.run(10_000_000).expect("full run");

    let mut plan = SamplingPlan::parse("4k:1k:1k").unwrap();
    plan.self_check = true;
    let mut sampled = machine(&cfg, &p);
    let (e2, report) = sampled.run_sampled(10_000_000, &plan).expect("sampled run");

    // Architectural results are exact: same exit code, same output.
    assert_eq!(e1, e2);
    assert!(!report.exact_fallback);
    assert!(report.intervals >= 5, "intervals: {}", report.intervals);
    assert_eq!(
        report.total_insts,
        report.ff_insts + report.warm_insts + report.measured_insts
    );
    assert_eq!(sampled.stats.instructions, report.total_insts);

    // The fast-forward oracle retrains its architectural JTE map from
    // scratch each leg, so a handful of extra slow-path dispatches can
    // slip in per interval — the instruction counts agree closely but
    // not exactly.
    let di = (report.total_insts as f64 - full.stats.instructions as f64).abs()
        / full.stats.instructions as f64;
    assert!(di < 0.02, "instruction count drift {di}");

    // The timing estimate lands near the exact cycle count.
    let exact = full.stats.cycles as f64;
    let err = (report.cycles_est as f64 - exact).abs() / exact;
    assert!(
        err < 0.15,
        "cycles_est {} vs exact {} (err {err}, ±{})",
        report.cycles_est,
        full.stats.cycles,
        report.cycles_ci95
    );
    assert_eq!(sampled.stats.cycles, report.cycles_est);
}

#[test]
fn sampled_respects_flush_quantum() {
    let p = dispatcher_program(3000);
    let mut cfg = SimConfig::embedded_a5();
    cfg.scd.flush_interval = Some(2_000);

    let mut full = machine(&cfg, &p);
    let e1 = full.run(10_000_000).expect("full run");
    assert!(full.stats.btb.jte_flushes > 5);

    let mut plan = SamplingPlan::parse("4k:1k:1k").unwrap();
    plan.self_check = true;
    let mut sampled = machine(&cfg, &p);
    let (e2, report) = sampled.run_sampled(10_000_000, &plan).expect("sampled run");
    assert_eq!(e1, e2);
    // Flushes land during fast-forward legs too (the chunked run), so
    // the scaled estimate sees a comparable flush rate.
    assert!(sampled.stats.btb.jte_flushes > 0);
    assert!(!report.exact_fallback);
}

#[test]
fn sampled_falls_back_to_exact_for_short_guests() {
    let p = dispatcher_program(100);
    let cfg = SimConfig::embedded_a5();

    let mut full = machine(&cfg, &p);
    let e1 = full.run(1_000_000).expect("full run");

    // The guest exits inside the first fast-forward leg.
    let plan = SamplingPlan::parse("1M:50k:20k").unwrap();
    let mut sampled = machine(&cfg, &p);
    let (e2, report) = sampled.run_sampled(1_000_000, &plan).expect("sampled run");

    assert_eq!(e1, e2);
    assert!(report.exact_fallback);
    assert_eq!(report.intervals, 0);
    assert_eq!(report.cpi_ci95, 0.0);
    // The fallback re-ran in full detail: stats are bit-identical.
    assert_eq!(sampled.stats, full.stats);
}

#[test]
fn sampled_inst_limit_applies_estimate() {
    // A guest that never halts: the budget expires mid-run and the
    // estimate must still land in `stats` before the error surfaces.
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::T0, 0);
    a.label("spin");
    a.addi(Reg::T0, Reg::T0, 1);
    a.j("spin");
    let p = a.finish().unwrap();
    let cfg = SimConfig::embedded_a5();

    let plan = SamplingPlan::parse("4k:1k:1k").unwrap();
    let mut m = machine(&cfg, &p);
    match m.run_sampled(50_000, &plan) {
        Err(SimError::InstLimit { limit }) => assert_eq!(limit, 50_000),
        other => panic!("expected InstLimit, got {other:?}"),
    }
    assert_eq!(m.stats.instructions, 50_000);
    assert!(m.stats.cycles > 0, "estimate was not applied");
}

/// The expected outcome of every bounded leg below (the shim's
/// `prop_assert!` cannot carry a `matches!` pattern with braces).
fn hit_limit(r: Result<scd_sim::Exit, SimError>) -> bool {
    matches!(r, Err(SimError::InstLimit { .. }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A snapshot taken mid-warming restores bit-identical machine
    /// state (caches, BTB/JTE, ITTAGE, TLBs, SCD registers — the
    /// snapshot codec carries all of it), and the restored machine
    /// produces identical measured-interval statistics on resume.
    #[test]
    fn mid_warming_snapshot_resumes_bit_identical(
        w_total in 2_000u64..8_000,
        split_permille in 50u64..950,
        measure in 500u64..2_000,
    ) {
        let p = dispatcher_program(1000);
        let cfg = SimConfig::embedded_a5();
        let w_split = (w_total * split_permille / 1000).max(1);

        // Reference: warm w_total instructions in one go.
        let mut cont = machine(&cfg, &p);
        prop_assert!(hit_limit(cont.run_warming(w_total)));

        // Warm to the split point, snapshot, restore into a fresh
        // machine, finish warming there.
        let mut first = machine(&cfg, &p);
        prop_assert!(hit_limit(first.run_warming(w_split)));
        let snap = first.snapshot();
        let mut resumed = machine(&cfg, &p);
        resumed.restore(&snap).expect("restore mid-warming snapshot");
        prop_assert!(hit_limit(resumed.run_warming(w_total)));

        prop_assert_eq!(resumed.snapshot().to_bytes(), cont.snapshot().to_bytes());

        // And a detailed measured window from here is bit-identical.
        prop_assert!(hit_limit(resumed.run(w_total + measure)));
        prop_assert!(hit_limit(cont.run(w_total + measure)));
        prop_assert_eq!(&resumed.stats, &cont.stats);
        prop_assert_eq!(resumed.snapshot().to_bytes(), cont.snapshot().to_bytes());
    }
}
