//! The simulated embedded core: functional execution of the RV64-subset
//! ISA plus a cycle-approximate in-order timing model.
//!
//! Timing follows the structure of small in-order cores (MinorCPU /
//! Rocket, Table II of the paper):
//!
//! * one issue slot per instruction (an optional second slot models the
//!   dual-issue A8-like core of Section VI-C2),
//! * per-register ready cycles model load-use and long-latency interlocks,
//! * the front end charges redirect penalties decided by the branch
//!   predictor complex (direction predictor + BTB + RAS, or VBBI),
//! * I/D cache, TLB and DRAM stalls are charged at the faulting
//!   instruction (blocking, as in-order cores do),
//! * `bop` implements the paper's stall scheme: fetch waits until Rop is
//!   available, then redirects through the BTB JTE with no bubble on hit.

use crate::btb::{Btb, BtbConfig, BtbKey, EntryKind, InsertOutcome};
use crate::cache::Cache;
use crate::config::{IndirectPredictor, ScdConfig, SimConfig};
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::ittage::Ittage;
use crate::mem::{MemFault, Memory};
use crate::predictor::{Direction, Ras};
use crate::snapshot::{self, Cursor, Snapshot, SnapshotError};
use crate::stats::{BranchClass, SimStats};
use crate::tlb::Tlb;
use crate::trace::{
    BopEvent, BopOutcome, BranchEvent, BtbInsertEvent, DataAccess, FetchAccess, Inserts, InstClass,
    JteFlushEvent, L2Access, RedirectCause, RedirectEvent, SinkSlot, StatInvariants, TraceEvent,
    TraceSink,
};
use scd_isa::{AluOp, BranchOp, FCmpOp, FpOp, Inst, LoadOp, Program, Reg, Rounding, StoreOp};

/// Maximum number of SCD branch IDs supported by the model.
pub const MAX_BRANCH_IDS: usize = 4;

/// Guest-binary metadata used for statistics attribution and VBBI.
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// PC ranges counted as dispatcher code (half-open), sorted.
    pub dispatch_ranges: Vec<(u64, u64)>,
    /// PCs of the dispatch indirect jumps (the `jmp`/`jru` of Fig. 1/4).
    pub dispatch_jumps: Vec<u64>,
    /// VBBI hint registrations: on the listed jump PCs the BTB is indexed
    /// by hash(PC, masked hint-register value).
    pub vbbi_hints: Vec<VbbiHint>,
}

impl Annotations {
    /// Sorts internal tables; call after populating the fields.
    pub fn normalize(&mut self) {
        self.dispatch_ranges.sort_unstable();
        self.dispatch_jumps.sort_unstable();
        self.vbbi_hints.sort_unstable_by_key(|h| h.jump_pc);
    }
}

/// One VBBI hint registration (Section II-A / reference \[9\] in the paper).
#[derive(Debug, Clone, Copy)]
pub struct VbbiHint {
    /// PC of the indirect jump to predict with value-based indexing.
    pub jump_pc: u64,
    /// Register whose value correlates with the target (the opcode).
    pub hint_reg: Reg,
    /// Mask applied to the hint value.
    pub mask: u64,
}

/// Why a simulation run ended abnormally.
#[derive(Debug)]
pub enum SimError {
    /// Memory fault at `pc`.
    Mem {
        /// PC of the faulting instruction.
        pc: u64,
        /// The underlying access fault.
        fault: MemFault,
    },
    /// PC left the text section.
    PcOutOfRange {
        /// The runaway PC value.
        pc: u64,
    },
    /// The instruction-count budget was exhausted.
    InstLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// The guest executed `ebreak` (guest-side assertion failure).
    Break {
        /// PC of the `ebreak`.
        pc: u64,
    },
    /// A watchdog budget expired (see [`Machine::set_cycle_budget`] and
    /// [`Machine::set_wall_budget`]). Statistics are finalized for the
    /// partial run before this is returned.
    Watchdog {
        /// Which budget fired.
        kind: WatchdogKind,
        /// Instructions retired when the watchdog fired.
        instructions: u64,
        /// Simulated cycles elapsed when the watchdog fired.
        cycles: u64,
    },
}

/// Which watchdog budget expired.
///
/// Every loop iteration of [`Machine::run`] retires exactly one
/// instruction, so a guest that retires instructions without making
/// progress (a livelock: an interpreter loop that never reaches its
/// exit `ecall`) eventually exhausts the cycle budget; a simulator-side
/// hang would exhaust the wall-clock budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogKind {
    /// The simulated-cycle budget was exhausted.
    Cycles,
    /// The host wall-clock budget was exhausted.
    WallClock,
}

impl std::fmt::Display for WatchdogKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WatchdogKind::Cycles => "cycle",
            WatchdogKind::WallClock => "wall-clock",
        })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Mem { pc, fault } => write!(f, "at pc {pc:#x}: {fault}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc:#x} outside text section"),
            SimError::InstLimit { limit } => write!(f, "instruction limit {limit} exhausted"),
            SimError::Break { pc } => write!(f, "ebreak at pc {pc:#x}"),
            SimError::Watchdog { kind, instructions, cycles } => write!(
                f,
                "{kind} watchdog fired after {instructions} instructions / {cycles} cycles"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Successful run result.
#[derive(Debug)]
pub struct Exit {
    /// Value of `a0` at the halting `ecall`.
    pub code: u64,
    /// Bytes written through the putchar ecall.
    pub output: Vec<u8>,
}

#[derive(Debug, Clone, Copy, Default)]
struct ScdRegs {
    rop_v: bool,
    rop_d: u64,
    rmask: u64,
    rbop_pc: u64,
    /// Cycle at which Rop becomes visible to the fetch stage.
    rop_ready: u64,
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    cfg: SimConfig,
    insts: Vec<Inst>,
    text_base: u64,
    text_end: u64,

    /// Integer register file (x0 kept zero).
    pub regs: [u64; 32],
    /// FP register file (raw f64 bits).
    pub fregs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// Guest memory.
    pub mem: Memory,

    icache: Cache,
    dcache: Cache,
    l2: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
    direction: Direction,
    btb: Btb,
    /// CBT-style dedicated JTE table (Section VII comparison).
    jte_table: Option<Btb>,
    ras: Ras,
    ittage: Ittage,
    scd: [ScdRegs; MAX_BRANCH_IDS],

    cycle: u64,
    xready: [u64; 32],
    fready: [u64; 32],
    issued_this_cycle: usize,
    prev_dest: Option<Reg>,
    prev_fdest: Option<scd_isa::FReg>,
    prev_was_mem: bool,

    ann: Annotations,
    next_flush_at: u64,
    output: Vec<u8>,
    profile: Option<Profile>,

    tracer: SinkSlot,
    invariants: Option<StatInvariants>,
    scratch: Scratch,

    fault_plan: Option<FaultPlan>,
    cycle_budget: Option<u64>,
    wall_budget: Option<std::time::Duration>,

    /// Run statistics.
    pub stats: SimStats,
}

/// Per-retirement attribution the timing helpers fill in; drained into a
/// [`TraceEvent`] after each instruction.
#[derive(Debug, Clone, Copy, Default)]
struct Scratch {
    fetch: FetchAccess,
    data: Option<DataAccess>,
    branch: Option<BranchEvent>,
    redirect: Option<RedirectEvent>,
    bop: Option<BopEvent>,
    inserts: Inserts,
    flush: Option<JteFlushEvent>,
    fault: Option<FaultEvent>,
}

impl Machine {
    /// Builds a machine for `cfg`, loading `program`'s text and rodata.
    pub fn new(cfg: SimConfig, program: &Program) -> Self {
        let mut mem = Memory::new();
        let text_bytes: Vec<u8> = program.words.iter().flat_map(|w| w.to_le_bytes()).collect();
        mem.add_segment("text", program.text_base, text_bytes.len() as u64);
        mem.write_bytes(program.text_base, &text_bytes);
        if !program.rodata.is_empty() {
            mem.add_segment("rodata", program.rodata_base, program.rodata.len() as u64);
            mem.write_bytes(program.rodata_base, &program.rodata);
        }
        let flush_at = cfg.scd.flush_interval.unwrap_or(u64::MAX);
        Machine {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            l2: cfg.l2.map(Cache::new),
            itlb: Tlb::new(cfg.itlb_entries),
            dtlb: Tlb::new(cfg.dtlb_entries),
            direction: Direction::new(cfg.direction),
            btb: Btb::new(cfg.btb),
            jte_table: cfg.scd.dedicated_jte_table.then(|| {
                Btb::new(BtbConfig::fully_assoc(
                    cfg.scd.jte_table_entries,
                    crate::cache::Replacement::Lru,
                ))
            }),
            ras: Ras::new(cfg.ras_entries),
            ittage: Ittage::new(),
            scd: Default::default(),
            cycle: 0,
            xready: [0; 32],
            fready: [0; 32],
            issued_this_cycle: 0,
            prev_dest: None,
            prev_fdest: None,
            prev_was_mem: false,
            ann: Annotations::default(),
            next_flush_at: flush_at,
            output: Vec::new(),
            profile: None,
            tracer: SinkSlot(None),
            // Debug builds self-check the counters by default; release
            // builds opt in via enable_invariants().
            invariants: cfg!(debug_assertions).then(|| StatInvariants::new(4096)),
            scratch: Scratch::default(),
            fault_plan: None,
            cycle_budget: None,
            wall_budget: None,
            stats: SimStats::default(),
            regs: [0; 32],
            fregs: [0; 32],
            pc: program.text_base,
            mem,
            insts: program.insts.clone(),
            text_base: program.text_base,
            text_end: program.text_end(),
            cfg,
        }
    }

    /// Maps an additional zero-filled memory segment.
    pub fn map(&mut self, name: &'static str, base: u64, size: u64) {
        self.mem.add_segment(name, base, size);
    }

    /// Installs guest annotations (dispatch ranges, VBBI hints).
    pub fn set_annotations(&mut self, mut ann: Annotations) {
        ann.normalize();
        self.ann = ann;
    }

    /// Sets an integer register (x0 writes are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Read-only view of the BTB (for tests and diagnostics).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// Enables per-PC profiling (retired instructions and attributed
    /// cycles per static instruction). Costs a little simulation speed.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(Profile {
            text_base: self.text_base,
            insts: vec![0; self.insts.len()],
            cycles: vec![0; self.insts.len()],
        });
    }

    /// The collected profile, if profiling was enabled.
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_ref()
    }

    /// Installs a trace sink receiving one [`TraceEvent`] per retired
    /// instruction. Install before the first retirement so sequence
    /// numbers start at 0.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.0 = Some(sink);
    }

    /// Removes and returns the installed trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.0.take()
    }

    /// Enables the cross-counter self-checker, asserting the stat
    /// identities every `every` retirements (default-on in debug builds
    /// with `every = 4096`). Must be enabled before the first retirement:
    /// the checker replays the event stream from scratch.
    pub fn enable_invariants(&mut self, every: u64) {
        assert_eq!(
            self.stats.instructions, 0,
            "invariants must be enabled before the first retirement"
        );
        self.invariants = Some(StatInvariants::new(every));
    }

    /// Disables the cross-counter self-checker.
    pub fn disable_invariants(&mut self) {
        self.invariants = None;
    }

    /// Arms a fault-injection plan. From the next `run` on, the plan
    /// injects micro-architectural faults at its scheduled instruction
    /// counts; every injection is recorded on that retirement's trace
    /// event. Faults only touch predictive state (BTB/JTE, RAS,
    /// predictors, cache/TLB tags), so architectural results must be
    /// unchanged — [`crate::diff_architectural`] checks exactly that.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The armed fault plan, if any (e.g. to read its injection count).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Aborts `run` with a [`SimError::Watchdog`] once the simulated
    /// cycle counter reaches `cycles`. Detects livelocked guests:
    /// retirement always advances the cycle counter, so a guest that
    /// never halts exhausts any finite cycle budget.
    pub fn set_cycle_budget(&mut self, cycles: u64) {
        self.cycle_budget = Some(cycles);
    }

    /// Aborts `run` with a [`SimError::Watchdog`] once `budget` host
    /// wall-clock time has elapsed (checked every 4096 retirements).
    pub fn set_wall_budget(&mut self, budget: std::time::Duration) {
        self.wall_budget = Some(budget);
    }

    /// Bytes the guest has written through the putchar `ecall` so far.
    /// (A successful exit takes the buffer; this view is for comparing
    /// partial runs.)
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Applies one injected fault, returning the number of JTEs it
    /// knocked out (accounted as evictions on both the live counters and
    /// the trace event, so the population identity stays balanced).
    fn inject_fault(&mut self, kind: FaultKind, plan: &mut FaultPlan) -> u64 {
        match kind {
            FaultKind::JteInvalidate => {
                let r = plan.rng().next();
                match &mut self.jte_table {
                    Some(t) => t.fault_invalidate_jte(r),
                    None => self.btb.fault_invalidate_jte(r),
                }
            }
            FaultKind::BtbFlush => {
                let mut evicted = self.btb.fault_flush_all();
                if let Some(t) = &mut self.jte_table {
                    evicted += t.fault_flush_all();
                }
                evicted
            }
            FaultKind::BtbBitFlip => {
                self.btb.fault_flip_bit(plan.rng().next());
                0
            }
            FaultKind::RasFlush => {
                self.ras.clear();
                0
            }
            FaultKind::CacheInvalidate => {
                self.icache.flush();
                self.dcache.flush();
                if let Some(l2) = &mut self.l2 {
                    l2.flush();
                }
                0
            }
            FaultKind::TlbInvalidate => {
                self.itlb.flush();
                self.dtlb.flush();
                0
            }
            FaultKind::PredictorScramble => {
                self.direction.scramble(plan.rng());
                self.ittage.scramble(plan.rng());
                0
            }
        }
    }

    /// Finalizes statistics for a run that ends without a guest exit
    /// (instruction limit or watchdog), leaving the machine re-runnable.
    fn finalize_partial(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.btb = self.merged_btb_stats();
        if let Some(sink) = &mut self.tracer.0 {
            sink.finish();
        }
    }

    fn note_branch(&mut self, class: BranchClass, mispredicted: bool) {
        self.stats.record_branch(class, mispredicted);
        self.scratch.branch = Some(BranchEvent { class, mispredicted });
    }

    fn note_insert(&mut self, key: EntryKind, outcome: InsertOutcome) {
        self.scratch.inserts.push(BtbInsertEvent { key, outcome });
    }

    fn note_flush(&mut self, flushed: u64) {
        let f = self.scratch.flush.get_or_insert(JteFlushEvent { flushes: 0, flushed: 0 });
        f.flushes += 1;
        f.flushed += flushed;
    }

    #[inline]
    fn jte_lookup(&mut self, bid: u8, opcode: u64) -> Option<u64> {
        let key = BtbKey::Jte { bid, opcode };
        match &mut self.jte_table {
            Some(t) => t.lookup(key),
            None => self.btb.lookup(key),
        }
    }

    #[inline]
    fn jte_insert(&mut self, bid: u8, opcode: u64, target: u64) -> InsertOutcome {
        let key = BtbKey::Jte { bid, opcode };
        match &mut self.jte_table {
            Some(t) => t.insert(key, target),
            None => self.btb.insert(key, target),
        }
    }

    fn merged_btb_stats(&self) -> crate::btb::BtbStats {
        let mut s = self.btb.stats;
        if let Some(t) = &self.jte_table {
            s.jte_inserts += t.stats.jte_inserts;
            s.jte_cap_skips += t.stats.jte_cap_skips;
            s.btb_evicted_by_jte += t.stats.btb_evicted_by_jte;
            s.jte_evictions += t.stats.jte_evictions;
            s.btb_blocked_by_jte += t.stats.btb_blocked_by_jte;
            s.jte_flushes += t.stats.jte_flushes;
            s.jte_flushed += t.stats.jte_flushed;
        }
        s
    }

    fn jte_flush(&mut self) -> u64 {
        let flushed = match &mut self.jte_table {
            Some(t) => t.flush_jtes(),
            None => self.btb.flush_jtes(),
        };
        for s in &mut self.scd {
            s.rop_v = false;
        }
        flushed
    }

    #[inline]
    fn wx(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    #[inline]
    fn in_dispatch(&self, pc: u64) -> bool {
        let i = self.ann.dispatch_ranges.partition_point(|&(_, end)| end <= pc);
        self.ann.dispatch_ranges.get(i).is_some_and(|&(start, _)| pc >= start)
    }

    #[inline]
    fn is_dispatch_jump(&self, pc: u64) -> bool {
        self.ann.dispatch_jumps.binary_search(&pc).is_ok()
    }

    fn vbbi_hint(&self, pc: u64) -> Option<VbbiHint> {
        let i = self.ann.vbbi_hints.binary_search_by_key(&pc, |h| h.jump_pc).ok()?;
        Some(self.ann.vbbi_hints[i])
    }

    /// Cost of an L1 miss (L2 hit or DRAM), updating L2 stats. Also
    /// reports the L2 outcome for trace attribution.
    fn l1_miss_cost(&mut self, addr: u64, write: bool) -> (u64, Option<L2Access>) {
        match &mut self.l2 {
            Some(l2) => {
                self.stats.l2.accesses += 1;
                let a = l2.access(addr, write);
                if a.writeback {
                    self.stats.l2.writebacks += 1;
                }
                let ev = L2Access { miss: !a.hit, writeback: a.writeback };
                if a.hit {
                    (self.cfg.l2_latency, Some(ev))
                } else {
                    self.stats.l2.misses += 1;
                    (self.cfg.l2_latency + self.cfg.dram_latency, Some(ev))
                }
            }
            None => (self.cfg.dram_latency, None),
        }
    }

    /// Instruction fetch timing for the instruction at `pc`.
    fn fetch_timing(&mut self, pc: u64) {
        let mut f = FetchAccess::default();
        self.stats.itlb.accesses += 1;
        if !self.itlb.access(pc) {
            self.stats.itlb.misses += 1;
            f.itlb_miss = true;
            f.penalty += self.cfg.tlb_miss_penalty;
            self.cycle += self.cfg.tlb_miss_penalty;
        }
        self.stats.icache.accesses += 1;
        let a = self.icache.access(pc, false);
        if !a.hit {
            self.stats.icache.misses += 1;
            f.icache_miss = true;
            let (cost, l2) = self.l1_miss_cost(pc, false);
            f.l2 = l2;
            f.penalty += cost;
            self.cycle += cost;
        }
        self.scratch.fetch = f;
    }

    /// Data access timing; charges miss cycles and records attribution.
    fn data_timing(&mut self, addr: u64, write: bool) {
        let mut d = DataAccess::default();
        self.stats.dtlb.accesses += 1;
        if !self.dtlb.access(addr) {
            self.stats.dtlb.misses += 1;
            d.dtlb_miss = true;
            d.penalty += self.cfg.tlb_miss_penalty;
            self.cycle += self.cfg.tlb_miss_penalty;
        }
        self.stats.dcache.accesses += 1;
        let a = self.dcache.access(addr, write);
        if a.writeback {
            self.stats.dcache.writebacks += 1;
            d.writeback = true;
        }
        if !a.hit {
            self.stats.dcache.misses += 1;
            d.dcache_miss = true;
            let (cost, l2) = self.l1_miss_cost(addr, write);
            d.l2 = l2;
            d.penalty += cost;
            self.cycle += cost;
        }
        self.scratch.data = Some(d);
    }

    /// Advances the issue clock for one instruction, honoring dual-issue
    /// pairing rules and operand readiness.
    fn issue(&mut self, inst: &Inst) {
        let mut min_cycle = self.cycle;
        for src in inst.use_xregs().into_iter().flatten() {
            min_cycle = min_cycle.max(self.xready[src.index()]);
        }
        // FP sources.
        match *inst {
            Inst::FOp { rs1, rs2, .. } => {
                min_cycle = min_cycle.max(self.fready[rs1.index()]).max(self.fready[rs2.index()]);
            }
            Inst::FCmp { rs1, rs2, .. } => {
                min_cycle = min_cycle.max(self.fready[rs1.index()]).max(self.fready[rs2.index()]);
            }
            Inst::FcvtLD { rs1, .. } | Inst::FmvXD { rs1, .. } => {
                min_cycle = min_cycle.max(self.fready[rs1.index()]);
            }
            Inst::Fsd { rs2, .. } => {
                min_cycle = min_cycle.max(self.fready[rs2.index()]);
            }
            _ => {}
        }

        let can_pair = self.cfg.issue_width > 1
            && self.issued_this_cycle == 1
            && min_cycle <= self.cycle
            && !(self.prev_was_mem && (inst.is_load() || inst.is_store()))
            && !inst
                .use_xregs()
                .into_iter()
                .flatten()
                .any(|s| Some(s) == self.prev_dest && !s.is_zero())
            && match *inst {
                Inst::FOp { rs1, rs2, .. } | Inst::FCmp { rs1, rs2, .. } => {
                    Some(rs1) != self.prev_fdest && Some(rs2) != self.prev_fdest
                }
                Inst::FcvtLD { rs1, .. } | Inst::FmvXD { rs1, .. } | Inst::Fsd { rs2: rs1, .. } => {
                    Some(rs1) != self.prev_fdest
                }
                _ => true,
            };

        if can_pair {
            self.issued_this_cycle = 2;
        } else {
            self.cycle = (self.cycle + 1).max(min_cycle);
            self.issued_this_cycle = 1;
        }
        self.prev_dest = inst.def_xreg();
        self.prev_fdest = inst.def_freg();
        self.prev_was_mem = inst.is_load() || inst.is_store();
    }

    /// Charges a front-end redirect penalty and closes the issue group.
    fn redirect(&mut self, cause: RedirectCause, penalty: u64) {
        self.cycle += penalty;
        self.issued_this_cycle = self.cfg.issue_width; // next inst starts a new cycle
        debug_assert!(self.scratch.redirect.is_none(), "two redirects in one retirement");
        self.scratch.redirect = Some(RedirectEvent { cause, penalty });
    }

    fn branch_class(&self, pc: u64, rd: Reg, rs1: Reg) -> BranchClass {
        if self.is_dispatch_jump(pc) {
            BranchClass::IndirectDispatch
        } else if rs1 == Reg::RA && rd.is_zero() {
            BranchClass::Return
        } else {
            BranchClass::IndirectOther
        }
    }

    /// Predicts and accounts an indirect jump (`jalr`/`jru`) at `pc`
    /// resolving to `target`. Returns nothing; charges penalties.
    fn account_indirect(&mut self, pc: u64, rd: Reg, rs1: Reg, target: u64) {
        let class = self.branch_class(pc, rd, rs1);
        let mispredicted = match class {
            BranchClass::Return => {
                let pred = self.ras.pop();
                pred != Some(target)
            }
            _ if self.cfg.indirect == IndirectPredictor::Ittage => {
                // ITTAGE covers every indirect jump; the PC-indexed BTB
                // is its base component.
                let pred = self.ittage.predict(pc).or_else(|| self.btb.lookup(BtbKey::Pc(pc)));
                let miss = pred != Some(target);
                self.ittage.update(pc, target);
                if miss {
                    let out = self.btb.insert(BtbKey::Pc(pc), target);
                    self.note_insert(EntryKind::Pc, out);
                }
                miss
            }
            _ => {
                // VBBI applies only on registered jump PCs under the Vbbi
                // configuration; everything else is PC-indexed.
                let key = match (self.cfg.indirect, self.vbbi_hint(pc)) {
                    (IndirectPredictor::Vbbi, Some(h)) => {
                        let hint = self.regs[h.hint_reg.index()] & h.mask;
                        let ready =
                            self.xready[h.hint_reg.index()] + self.cfg.fetch_lead <= self.cycle;
                        if ready {
                            BtbKey::Vbbi(vbbi_mix(pc, hint))
                        } else {
                            BtbKey::Pc(pc)
                        }
                    }
                    _ => BtbKey::Pc(pc),
                };
                let pred = self.btb.lookup(key);
                let miss = pred != Some(target);
                if miss {
                    // Train with the resolved hint value (VBBI updates the
                    // BTB with the actual key at execute).
                    let update_key = match (self.cfg.indirect, self.vbbi_hint(pc)) {
                        (IndirectPredictor::Vbbi, Some(h)) => {
                            let hint = self.regs[h.hint_reg.index()] & h.mask;
                            BtbKey::Vbbi(vbbi_mix(pc, hint))
                        }
                        _ => BtbKey::Pc(pc),
                    };
                    let out = self.btb.insert(update_key, target);
                    self.note_insert(update_key.kind(), out);
                }
                miss
            }
        };
        if rd == Reg::RA {
            self.ras.push(pc + 4);
        }
        self.note_branch(class, mispredicted);
        if mispredicted {
            self.redirect(RedirectCause::IndirectMispredict, self.cfg.branch_miss_penalty);
        }
    }

    /// Runs until the guest halts via `ecall` (a7 = 0) or a limit/error.
    ///
    /// # Errors
    /// Returns [`SimError`] on memory faults, runaway PCs, `ebreak`, or
    /// when `max_insts` is exhausted.
    pub fn run(&mut self, max_insts: u64) -> Result<Exit, SimError> {
        let scd_cfg: ScdConfig = self.cfg.scd;
        let nbids = scd_cfg.branch_ids.min(MAX_BRANCH_IDS);
        let wall_start = std::time::Instant::now();
        loop {
            if self.stats.instructions >= max_insts {
                self.finalize_partial();
                return Err(SimError::InstLimit { limit: max_insts });
            }
            if self.cycle_budget.is_some_and(|b| self.cycle >= b) {
                self.finalize_partial();
                return Err(SimError::Watchdog {
                    kind: WatchdogKind::Cycles,
                    instructions: self.stats.instructions,
                    cycles: self.cycle,
                });
            }
            if let Some(wall) = self.wall_budget {
                if self.stats.instructions.is_multiple_of(4096) && wall_start.elapsed() >= wall {
                    self.finalize_partial();
                    return Err(SimError::Watchdog {
                        kind: WatchdogKind::WallClock,
                        instructions: self.stats.instructions,
                        cycles: self.cycle,
                    });
                }
            }
            let pc = self.pc;
            if pc < self.text_base || pc >= self.text_end || !pc.is_multiple_of(4) {
                return Err(SimError::PcOutOfRange { pc });
            }
            let inst = self.insts[((pc - self.text_base) / 4) as usize];
            self.scratch = Scratch::default();

            // ---- timing: fetch + issue ----
            let cycle_before = self.cycle;
            self.fetch_timing(pc);
            self.issue(&inst);

            // ---- retire bookkeeping ----
            self.stats.instructions += 1;
            let dispatch = self.in_dispatch(pc);
            if dispatch {
                self.stats.dispatch_instructions += 1;
            }
            if self.stats.instructions >= self.next_flush_at {
                // Emulated context switch: the OS executes jte.flush
                // (Section IV).
                let flushed = self.jte_flush();
                self.note_flush(flushed);
                self.next_flush_at += scd_cfg.flush_interval.unwrap_or(u64::MAX);
            }
            // Fault injection fires between retirements, before this
            // instruction executes; the plan is taken out of `self` for
            // the call so `inject_fault` can borrow the machine freely.
            if let Some(mut plan) = self.fault_plan.take() {
                if let Some(kind) = plan.due(self.stats.instructions) {
                    let evicted = self.inject_fault(kind, &mut plan);
                    self.scratch.fault = Some(FaultEvent { kind, evicted });
                }
                self.fault_plan = Some(plan);
            }

            let mut next_pc = pc + 4;
            let mut exit_code: Option<u64> = None;
            let merr = |fault: MemFault| SimError::Mem { pc, fault };

            match inst {
                Inst::Lui { rd, imm } => {
                    self.wx(rd, imm as u64);
                    self.xready[rd.index()] = self.cycle + 1;
                }
                Inst::Auipc { rd, imm } => {
                    self.wx(rd, pc.wrapping_add(imm as u64));
                    self.xready[rd.index()] = self.cycle + 1;
                }
                Inst::Jal { rd, offset } => {
                    let target = pc.wrapping_add(offset as u64);
                    self.wx(rd, pc + 4);
                    self.xready[rd.index()] = self.cycle + 1;
                    next_pc = target;
                    // Direct jumps: BTB-predicted in fetch; miss costs a
                    // decode-stage redirect.
                    let hit = self.btb.lookup(BtbKey::Pc(pc)) == Some(target);
                    if !hit {
                        let out = self.btb.insert(BtbKey::Pc(pc), target);
                        self.note_insert(EntryKind::Pc, out);
                        self.redirect(RedirectCause::JalMiss, self.cfg.jal_redirect_penalty);
                    }
                    self.note_branch(BranchClass::Direct, !hit);
                    if rd == Reg::RA {
                        self.ras.push(pc + 4);
                    }
                }
                Inst::Jalr { rd, rs1, offset } => {
                    let target = self.regs[rs1.index()].wrapping_add(offset as u64) & !1;
                    self.wx(rd, pc + 4);
                    self.xready[rd.index()] = self.cycle + 1;
                    next_pc = target;
                    self.account_indirect(pc, rd, rs1, target);
                }
                Inst::Branch { op, rs1, rs2, offset } => {
                    let a = self.regs[rs1.index()];
                    let b = self.regs[rs2.index()];
                    let taken = match op {
                        BranchOp::Beq => a == b,
                        BranchOp::Bne => a != b,
                        BranchOp::Blt => (a as i64) < (b as i64),
                        BranchOp::Bge => (a as i64) >= (b as i64),
                        BranchOp::Bltu => a < b,
                        BranchOp::Bgeu => a >= b,
                    };
                    let target = pc.wrapping_add(offset as u64);
                    // Effective front-end prediction: taken only when the
                    // direction predictor says taken AND the BTB supplies
                    // the target.
                    let dir_pred = self.direction.predict(pc);
                    let btb_hit = self.btb.lookup(BtbKey::Pc(pc)) == Some(target);
                    let pred_taken = dir_pred && btb_hit;
                    let mispredicted = pred_taken != taken;
                    self.direction.update(pc, taken);
                    if taken {
                        next_pc = target;
                        if !btb_hit {
                            let out = self.btb.insert(BtbKey::Pc(pc), target);
                            self.note_insert(EntryKind::Pc, out);
                        }
                    }
                    self.note_branch(BranchClass::Conditional, mispredicted);
                    if mispredicted {
                        self.redirect(RedirectCause::CondMispredict, self.cfg.branch_miss_penalty);
                    }
                }
                Inst::Load { op, rd, rs1, offset } => {
                    let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                    let v = self.exec_load(op, addr).map_err(merr)?;
                    self.wx(rd, v);
                    self.stats.loads += 1;
                    self.data_timing(addr, false);
                    self.xready[rd.index()] = self.cycle + 1 + self.cfg.load_use_penalty;
                }
                Inst::Store { op, rs2, rs1, offset } => {
                    let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                    let v = self.regs[rs2.index()];
                    self.exec_store(op, addr, v).map_err(merr)?;
                    self.stats.stores += 1;
                    self.data_timing(addr, true);
                }
                Inst::OpImm { op, rd, rs1, imm } => {
                    let v = alu(op, self.regs[rs1.index()], imm as u64);
                    self.wx(rd, v);
                    self.xready[rd.index()] = self.cycle + 1;
                }
                Inst::Op { op, rd, rs1, rs2 } => {
                    let v = alu(op, self.regs[rs1.index()], self.regs[rs2.index()]);
                    self.wx(rd, v);
                    let lat = if op.is_muldiv() {
                        if matches!(op, AluOp::Mul | AluOp::Mulh | AluOp::Mulhu | AluOp::Mulw) {
                            self.cfg.mul_latency
                        } else {
                            self.cfg.div_latency
                        }
                    } else {
                        1
                    };
                    self.xready[rd.index()] = self.cycle + lat;
                }
                Inst::Fld { rd, rs1, offset } => {
                    let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                    let v = self.mem.read_u64(addr).map_err(merr)?;
                    self.fregs[rd.index()] = v;
                    self.stats.loads += 1;
                    self.data_timing(addr, false);
                    self.fready[rd.index()] = self.cycle + 1 + self.cfg.load_use_penalty;
                }
                Inst::Fsd { rs2, rs1, offset } => {
                    let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                    self.mem.write_u64(addr, self.fregs[rs2.index()]).map_err(merr)?;
                    self.stats.stores += 1;
                    self.data_timing(addr, true);
                }
                Inst::FOp { op, rd, rs1, rs2 } => {
                    let a = f64::from_bits(self.fregs[rs1.index()]);
                    let b = f64::from_bits(self.fregs[rs2.index()]);
                    let v = match op {
                        FpOp::FaddD => a + b,
                        FpOp::FsubD => a - b,
                        FpOp::FmulD => a * b,
                        FpOp::FdivD => a / b,
                        FpOp::FminD => a.min(b),
                        FpOp::FmaxD => a.max(b),
                        FpOp::FsqrtD => a.sqrt(),
                        FpOp::FsgnjD => {
                            f64::from_bits((a.to_bits() & !SIGN) | (b.to_bits() & SIGN))
                        }
                        FpOp::FsgnjnD => {
                            f64::from_bits((a.to_bits() & !SIGN) | (!b.to_bits() & SIGN))
                        }
                        FpOp::FsgnjxD => f64::from_bits(a.to_bits() ^ (b.to_bits() & SIGN)),
                    };
                    self.fregs[rd.index()] = v.to_bits();
                    let lat = match op {
                        FpOp::FdivD | FpOp::FsqrtD => self.cfg.fdiv_latency,
                        _ => self.cfg.fpu_latency,
                    };
                    self.fready[rd.index()] = self.cycle + lat;
                }
                Inst::FCmp { op, rd, rs1, rs2 } => {
                    let a = f64::from_bits(self.fregs[rs1.index()]);
                    let b = f64::from_bits(self.fregs[rs2.index()]);
                    let v = match op {
                        FCmpOp::FeqD => a == b,
                        FCmpOp::FltD => a < b,
                        FCmpOp::FleD => a <= b,
                    };
                    self.wx(rd, v as u64);
                    self.xready[rd.index()] = self.cycle + self.cfg.fpu_latency;
                }
                Inst::FcvtLD { rd, rs1, rm } => {
                    let a = f64::from_bits(self.fregs[rs1.index()]);
                    let rounded = match rm {
                        Rounding::Rne => a.round_ties_even(),
                        Rounding::Rtz => a.trunc(),
                        Rounding::Rdn => a.floor(),
                    };
                    // RISC-V fcvt semantics: NaN and +overflow saturate
                    // to i64::MAX, -overflow to i64::MIN.
                    let v = if rounded.is_nan() || rounded >= i64::MAX as f64 {
                        i64::MAX
                    } else if rounded <= i64::MIN as f64 {
                        i64::MIN
                    } else {
                        rounded as i64
                    };
                    self.wx(rd, v as u64);
                    self.xready[rd.index()] = self.cycle + self.cfg.fpu_latency;
                }
                Inst::FcvtDL { rd, rs1 } => {
                    let v = self.regs[rs1.index()] as i64 as f64;
                    self.fregs[rd.index()] = v.to_bits();
                    self.fready[rd.index()] = self.cycle + self.cfg.fpu_latency;
                }
                Inst::FmvXD { rd, rs1 } => {
                    self.wx(rd, self.fregs[rs1.index()]);
                    self.xready[rd.index()] = self.cycle + 1;
                }
                Inst::FmvDX { rd, rs1 } => {
                    self.fregs[rd.index()] = self.regs[rs1.index()];
                    self.fready[rd.index()] = self.cycle + 1;
                }
                Inst::Ecall => {
                    match self.regs[Reg::A7.index()] {
                        // Halt is deferred past trace emission so the
                        // final retirement is observed like any other.
                        0 => exit_code = Some(self.regs[Reg::A0.index()]),
                        1 => self.output.push(self.regs[Reg::A0.index()] as u8),
                        n => {
                            // Unknown service: treat as a guest bug.
                            let _ = n;
                            return Err(SimError::Break { pc });
                        }
                    }
                }
                Inst::Ebreak => return Err(SimError::Break { pc }),
                Inst::Fence => {}

                // ---- SCD extension ----
                Inst::SetMask { bid, rs1 } => {
                    let bid = bid as usize % nbids.max(1);
                    self.scd[bid].rmask = self.regs[rs1.index()];
                }
                Inst::Bop { bid } => {
                    let bid = bid as usize % nbids.max(1);
                    self.stats.bop_executed += 1;
                    let s = self.scd[bid];
                    let mut stall = 0;
                    let outcome = if !scd_cfg.enabled {
                        BopOutcome::Disabled
                    } else if !s.rop_v {
                        BopOutcome::RopInvalid
                    } else if scd_cfg.stall_on_unready {
                        // Stall scheme: fetch waits until Rop is visible.
                        let need = s.rop_ready + self.cfg.fetch_lead;
                        if need > self.cycle {
                            stall = need - self.cycle;
                            self.stats.bop_stall_cycles += stall;
                            self.cycle = need;
                        }
                        if let Some(t) = self.jte_lookup(bid as u8, s.rop_d) {
                            next_pc = t;
                            self.scd[bid].rop_v = false;
                            self.redirect(RedirectCause::BopHit, scd_cfg.bop_hit_bubbles);
                            BopOutcome::Hit
                        } else {
                            BopOutcome::JteMiss
                        }
                    } else if s.rop_ready + self.cfg.fetch_lead > self.cycle {
                        // Fall-through scheme: only short-circuit when Rop
                        // was already available at fetch.
                        BopOutcome::NotReady
                    } else if let Some(t) = self.jte_lookup(bid as u8, s.rop_d) {
                        next_pc = t;
                        self.scd[bid].rop_v = false;
                        self.redirect(RedirectCause::BopHit, scd_cfg.bop_hit_bubbles);
                        BopOutcome::Hit
                    } else {
                        BopOutcome::JteMiss
                    };
                    if outcome == BopOutcome::Hit {
                        self.stats.bop_hits += 1;
                    } else {
                        self.stats.bop_misses += 1;
                    }
                    self.scratch.bop = Some(BopEvent { outcome, stall });
                    self.scd[bid].rbop_pc = pc;
                }
                Inst::Jru { bid, rs1 } => {
                    let bid = bid as usize % nbids.max(1);
                    self.stats.jru_executed += 1;
                    let target = self.regs[rs1.index()] & !1;
                    next_pc = target;
                    if scd_cfg.enabled && self.scd[bid].rop_v {
                        let opcode = self.scd[bid].rop_d;
                        let out = self.jte_insert(bid as u8, opcode, target);
                        self.note_insert(EntryKind::Jte, out);
                        self.scd[bid].rop_v = false;
                    }
                    self.account_indirect(pc, Reg::ZERO, rs1, target);
                }
                Inst::JteFlush => {
                    let flushed = self.jte_flush();
                    self.note_flush(flushed);
                }
                Inst::LoadOp { op, bid, rd, rs1, offset } => {
                    let bid = bid as usize % nbids.max(1);
                    let addr = self.regs[rs1.index()].wrapping_add(offset as u64);
                    let v = self.exec_load(op, addr).map_err(merr)?;
                    self.wx(rd, v);
                    self.stats.loads += 1;
                    self.data_timing(addr, false);
                    let ready = self.cycle + 1 + self.cfg.load_use_penalty;
                    self.xready[rd.index()] = ready;
                    let s = &mut self.scd[bid];
                    s.rop_d = v & s.rmask;
                    s.rop_v = true;
                    s.rop_ready = ready;
                }
            }

            if let Some(prof) = &mut self.profile {
                let idx = ((pc - self.text_base) / 4) as usize;
                prof.insts[idx] += 1;
                prof.cycles[idx] += self.cycle - cycle_before;
            }

            // ---- trace emission + invariant checkpoint ----
            if self.tracer.0.is_some() || self.invariants.is_some() {
                let ev = TraceEvent {
                    seq: self.stats.instructions - 1,
                    pc,
                    class: InstClass::of(&inst),
                    cycle: self.cycle,
                    cycles: self.cycle - cycle_before,
                    dispatch,
                    fetch: self.scratch.fetch,
                    data: self.scratch.data.filter(|d| !d.is_default()),
                    branch: self.scratch.branch,
                    redirect: self.scratch.redirect,
                    bop: self.scratch.bop,
                    inserts: self.scratch.inserts,
                    flush: self.scratch.flush,
                    fault: self.scratch.fault,
                };
                if let Some(sink) = &mut self.tracer.0 {
                    sink.event(&ev);
                }
                if let Some(inv) = &mut self.invariants {
                    inv.observe(&ev);
                }
                let checkpoint = exit_code.is_some()
                    || self.invariants.as_ref().is_some_and(|inv| inv.due(self.stats.instructions));
                if checkpoint && self.invariants.is_some() {
                    let mut live = self.stats.clone();
                    live.cycles = self.cycle;
                    live.btb = self.merged_btb_stats();
                    self.btb.assert_population_invariant();
                    let mut resident = self.btb.resident_jtes() as u64;
                    if let Some(t) = &self.jte_table {
                        t.assert_population_invariant();
                        resident += t.resident_jtes() as u64;
                    }
                    if let Some(inv) = &self.invariants {
                        inv.check(&live, resident);
                    }
                }
            }

            if let Some(code) = exit_code {
                self.finalize_partial();
                return Ok(Exit { code, output: std::mem::take(&mut self.output) });
            }
            self.pc = next_pc;
        }
    }

    fn exec_load(&self, op: LoadOp, addr: u64) -> Result<u64, MemFault> {
        Ok(match op {
            LoadOp::Lb => self.mem.read_u8(addr)? as i8 as i64 as u64,
            LoadOp::Lbu => self.mem.read_u8(addr)? as u64,
            LoadOp::Lh => self.mem.read_u16(addr)? as i16 as i64 as u64,
            LoadOp::Lhu => self.mem.read_u16(addr)? as u64,
            LoadOp::Lw => self.mem.read_u32(addr)? as i32 as i64 as u64,
            LoadOp::Lwu => self.mem.read_u32(addr)? as u64,
            LoadOp::Ld => self.mem.read_u64(addr)?,
        })
    }

    fn exec_store(&mut self, op: StoreOp, addr: u64, v: u64) -> Result<(), MemFault> {
        match op {
            StoreOp::Sb => self.mem.write_u8(addr, v as u8),
            StoreOp::Sh => self.mem.write_u16(addr, v as u16),
            StoreOp::Sw => self.mem.write_u32(addr, v as u32),
            StoreOp::Sd => self.mem.write_u64(addr, v),
        }
    }

    // ---- checkpoint / resume ----

    /// Identifies the (config, program) pair a snapshot belongs to, so a
    /// restore into a differently-built machine is rejected instead of
    /// silently misinterpreting the word stream.
    fn fingerprint(&self) -> u64 {
        let mut h = snapshot::fnv1a(snapshot::FNV_OFFSET, format!("{:?}", self.cfg).as_bytes());
        h = snapshot::fnv1a(h, &self.text_base.to_le_bytes());
        h = snapshot::fnv1a(h, &self.text_end.to_le_bytes());
        snapshot::fnv1a(h, &(self.insts.len() as u64).to_le_bytes())
    }

    /// Captures the complete machine state — architectural (registers,
    /// PC, memory, guest output) and micro-architectural (caches, TLBs,
    /// predictors, BTB/JTE, SCD registers, pipeline scoreboard, and all
    /// statistics) — such that [`Machine::restore`] followed by `run`
    /// reproduces the uninterrupted run bit for bit, stats included.
    ///
    /// Not captured: trace sinks, the stat self-checker, profiling
    /// buffers, fault plans and watchdog budgets. Re-arm those on the
    /// restored machine if needed.
    pub fn snapshot(&self) -> Snapshot {
        let mut w = Vec::new();
        w.extend_from_slice(&self.regs);
        w.extend_from_slice(&self.fregs);
        w.push(self.pc);
        w.push(self.cycle);
        w.extend_from_slice(&self.xready);
        w.extend_from_slice(&self.fready);
        w.push(self.issued_this_cycle as u64);
        w.push(self.prev_dest.map_or(u64::MAX, |r| r.index() as u64));
        w.push(self.prev_fdest.map_or(u64::MAX, |r| r.index() as u64));
        w.push(self.prev_was_mem as u64);
        for s in &self.scd {
            w.push(s.rop_v as u64);
            w.push(s.rop_d);
            w.push(s.rmask);
            w.push(s.rbop_pc);
            w.push(s.rop_ready);
        }
        w.push(self.next_flush_at);
        snapshot::stats_to_words(&self.stats, &mut w);
        self.icache.snapshot_words(&mut w);
        self.dcache.snapshot_words(&mut w);
        match &self.l2 {
            Some(l2) => {
                w.push(1);
                l2.snapshot_words(&mut w);
            }
            None => w.push(0),
        }
        self.itlb.snapshot_words(&mut w);
        self.dtlb.snapshot_words(&mut w);
        self.direction.snapshot_words(&mut w);
        self.btb.snapshot_words(&mut w);
        match &self.jte_table {
            Some(t) => {
                w.push(1);
                t.snapshot_words(&mut w);
            }
            None => w.push(0),
        }
        self.ras.snapshot_words(&mut w);
        self.ittage.snapshot_words(&mut w);
        Snapshot {
            fingerprint: self.fingerprint(),
            words: w,
            segments: self.mem.snapshot_segments(),
            output: self.output.clone(),
        }
    }

    /// Restores a [`Machine::snapshot`] into this machine. The machine
    /// must have been built from the same configuration and program and
    /// have the same memory segments mapped.
    ///
    /// The stat self-checker is disarmed: it replays the event stream
    /// from instruction 0, which a mid-stream resume cannot provide.
    ///
    /// # Errors
    /// [`SnapshotError::Fingerprint`] when the snapshot belongs to a
    /// different (config, program) pair; [`SnapshotError::Format`] when
    /// the memory layout or optional structures do not line up.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let expected = self.fingerprint();
        if snap.fingerprint != expected {
            return Err(SnapshotError::Fingerprint { expected, found: snap.fingerprint });
        }
        self.mem.restore_segments(&snap.segments).map_err(SnapshotError::Format)?;
        let mut c = Cursor::new(&snap.words);
        for r in &mut self.regs {
            *r = c.next();
        }
        for r in &mut self.fregs {
            *r = c.next();
        }
        self.pc = c.next();
        self.cycle = c.next();
        for r in &mut self.xready {
            *r = c.next();
        }
        for r in &mut self.fready {
            *r = c.next();
        }
        self.issued_this_cycle = c.next() as usize;
        self.prev_dest = match c.next() {
            u64::MAX => None,
            n => Some(Reg::new(n as u8)),
        };
        self.prev_fdest = match c.next() {
            u64::MAX => None,
            n => Some(scd_isa::FReg::new(n as u8)),
        };
        self.prev_was_mem = c.next() != 0;
        for s in &mut self.scd {
            s.rop_v = c.next() != 0;
            s.rop_d = c.next();
            s.rmask = c.next();
            s.rbop_pc = c.next();
            s.rop_ready = c.next();
        }
        self.next_flush_at = c.next();
        self.stats = snapshot::stats_from_words(&mut c);
        self.icache.restore_words(&mut c);
        self.dcache.restore_words(&mut c);
        let have_l2 = c.next() != 0;
        match (&mut self.l2, have_l2) {
            (Some(l2), true) => l2.restore_words(&mut c),
            (None, false) => {}
            _ => return Err(SnapshotError::Format("L2 presence mismatch".into())),
        }
        self.itlb.restore_words(&mut c);
        self.dtlb.restore_words(&mut c);
        self.direction.restore_words(&mut c);
        self.btb.restore_words(&mut c);
        let have_jt = c.next() != 0;
        match (&mut self.jte_table, have_jt) {
            (Some(t), true) => t.restore_words(&mut c),
            (None, false) => {}
            _ => return Err(SnapshotError::Format("JTE-table presence mismatch".into())),
        }
        self.ras.restore_words(&mut c);
        self.ittage.restore_words(&mut c);
        if c.remaining() != 0 {
            return Err(SnapshotError::Format(format!(
                "{} unconsumed snapshot words",
                c.remaining()
            )));
        }
        self.output = snap.output.clone();
        self.scratch = Scratch::default();
        self.invariants = None;
        Ok(())
    }
}

/// Per-static-instruction profile collected by
/// [`Machine::enable_profiling`].
#[derive(Debug, Clone)]
pub struct Profile {
    text_base: u64,
    insts: Vec<u64>,
    cycles: Vec<u64>,
}

impl Profile {
    /// Retired count for the instruction at `pc`.
    pub fn insts_at(&self, pc: u64) -> u64 {
        self.insts.get(((pc - self.text_base) / 4) as usize).copied().unwrap_or(0)
    }

    /// Cycles attributed to the instruction at `pc` (issue slot plus any
    /// stall it caused).
    pub fn cycles_at(&self, pc: u64) -> u64 {
        self.cycles.get(((pc - self.text_base) / 4) as usize).copied().unwrap_or(0)
    }

    /// The `n` hottest instructions by attributed cycles:
    /// `(pc, cycles, retired)`.
    pub fn hottest(&self, n: usize) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = self
            .cycles
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.text_base + 4 * i as u64, c, self.insts[i]))
            .collect();
        v.sort_by_key(|&(_, c, _)| std::cmp::Reverse(c));
        v.truncate(n);
        v
    }

    /// Total cycles attributed over a half-open PC range.
    pub fn cycles_in_range(&self, start: u64, end: u64) -> u64 {
        let a = ((start.saturating_sub(self.text_base)) / 4) as usize;
        let b = (((end.saturating_sub(self.text_base)) / 4) as usize).min(self.cycles.len());
        self.cycles[a.min(b)..b].iter().sum()
    }
}

const SIGN: u64 = 1 << 63;

fn vbbi_mix(pc: u64, hint: u64) -> u64 {
    (pc >> 2) ^ hint.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(17)
}

/// Integer ALU semantics shared by the register and immediate forms.
fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 63),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Addw => (a as i32).wrapping_add(b as i32) as i64 as u64,
        AluOp::Subw => (a as i32).wrapping_sub(b as i32) as i64 as u64,
        AluOp::Sllw => ((a as i32) << (b & 31)) as i64 as u64,
        AluOp::Srlw => (((a as u32) >> (b & 31)) as i32) as i64 as u64,
        AluOp::Sraw => ((a as i32) >> (b & 31)) as i64 as u64,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        AluOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                a.wrapping_div(b) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                a.wrapping_rem(b) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::Mulw => (a as i32).wrapping_mul(b as i32) as i64 as u64,
        AluOp::Divw => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                u64::MAX
            } else if a == i32::MIN && b == -1 {
                a as i64 as u64
            } else {
                a.wrapping_div(b) as i64 as u64
            }
        }
        AluOp::Remw => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                a as i64 as u64
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a.wrapping_rem(b) as i64 as u64
            }
        }
        AluOp::Remuw => {
            let (a, b) = (a as u32, b as u32);
            (if b == 0 { a } else { a % b }) as i32 as i64 as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_isa::Asm;

    fn run_asm(build: impl FnOnce(&mut Asm)) -> (Exit, SimStats) {
        let mut a = Asm::new(0x1_0000);
        build(&mut a);
        let p = a.finish().expect("assemble");
        let mut m = Machine::new(SimConfig::embedded_a5(), &p);
        m.map("scratch", 0x10_0000, 0x1000);
        let exit = m.run(1_000_000).expect("run");
        (exit, m.stats.clone())
    }

    fn halt(a: &mut Asm, code_reg: Reg) {
        a.mv(Reg::A0, code_reg);
        a.li(Reg::A7, 0);
        a.ecall();
    }

    #[test]
    fn arithmetic_loop() {
        let (exit, stats) = run_asm(|a| {
            a.li(Reg::A0, 0);
            a.li(Reg::T0, 0);
            a.li(Reg::T1, 100);
            a.label("loop");
            a.add(Reg::A0, Reg::A0, Reg::T0);
            a.addi(Reg::T0, Reg::T0, 1);
            a.bne(Reg::T0, Reg::T1, "loop");
            halt(a, Reg::A0);
        });
        assert_eq!(exit.code, 4950);
        assert!(stats.instructions > 300);
        assert!(stats.cycles >= stats.instructions);
    }

    #[test]
    fn memory_roundtrip() {
        let (exit, _) = run_asm(|a| {
            a.li(Reg::T0, 0x10_0000);
            a.li(Reg::T1, -12345);
            a.sd(Reg::T1, 8, Reg::T0);
            a.ld(Reg::T2, 8, Reg::T0);
            a.sub(Reg::A1, Reg::T2, Reg::T1); // 0 if equal
            halt(a, Reg::A1);
        });
        assert_eq!(exit.code, 0);
    }

    #[test]
    fn word_ops_sign_extend() {
        let (exit, _) = run_asm(|a| {
            a.li(Reg::T0, 0x7fff_ffff);
            a.opi(AluOp::Addw, Reg::T1, Reg::T0, 1); // overflows to i32::MIN
            halt(a, Reg::T1);
        });
        assert_eq!(exit.code as i64, i32::MIN as i64);
    }

    #[test]
    fn fp_pipeline() {
        let (exit, _) = run_asm(|a| {
            a.li(Reg::T0, 9);
            a.fcvt_d_l(scd_isa::FReg::FT1, Reg::T0);
            a.fsqrt(scd_isa::FReg::FT2, scd_isa::FReg::FT1);
            a.fcvt_l_d(Reg::A1, scd_isa::FReg::FT2, Rounding::Rtz);
            halt(a, Reg::A1);
        });
        assert_eq!(exit.code, 3);
    }

    #[test]
    fn call_return_uses_ras() {
        let (exit, stats) = run_asm(|a| {
            a.li(Reg::A1, 0);
            a.li(Reg::T1, 50);
            a.label("loop");
            a.call("inc");
            a.bne(Reg::A1, Reg::T1, "loop");
            halt(a, Reg::A1);
            a.label("inc");
            a.addi(Reg::A1, Reg::A1, 1);
            a.ret();
        });
        assert_eq!(exit.code, 50);
        // After warm-up the RAS should predict returns near-perfectly.
        assert!(stats.ret.executed >= 50);
        assert!(stats.ret.mispredicted <= 2, "return mispredictions: {}", stats.ret.mispredicted);
    }

    #[test]
    fn branch_predictor_learns_loop() {
        let (_, stats) = run_asm(|a| {
            a.li(Reg::T0, 0);
            a.li(Reg::T1, 1000);
            a.label("loop");
            a.addi(Reg::T0, Reg::T0, 1);
            a.bne(Reg::T0, Reg::T1, "loop");
            halt(a, Reg::T0);
        });
        assert!(stats.cond.executed >= 1000);
        // A steady loop branch should be near-perfectly predicted.
        assert!(stats.cond.mispredicted < 20, "loop mispredictions: {}", stats.cond.mispredicted);
    }

    /// A tiny dispatcher: two "bytecodes" (0 and 1) handled in a loop.
    /// Shared by the SCD fast-path test and the checkpoint tests (it
    /// exercises every structure a snapshot must carry).
    fn build_dispatcher(a: &mut Asm) {
        // Bytecode array at 0x10_0000: alternating 0,1 x 100, terminator 2.
        a.li(Reg::S1, 0x10_0000);
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 100);
        a.label("fill");
        a.andi(Reg::T2, Reg::T0, 1);
        a.slli(Reg::T3, Reg::T0, 2);
        a.add(Reg::T3, Reg::T3, Reg::S1);
        a.sw(Reg::T2, 0, Reg::T3);
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, "fill");
        // terminator opcode 2 at index 100
        a.li(Reg::T2, 2);
        a.slli(Reg::T3, Reg::T0, 2);
        a.add(Reg::T3, Reg::T3, Reg::S1);
        a.sw(Reg::T2, 0, Reg::T3);

        // Interpreter setup: mask = 0x3f, a2 = counter
        a.li(Reg::T0, 0x3f);
        a.setmask(0, Reg::T0);
        a.li(Reg::A2, 0);
        a.la(Reg::S2, "jt");

        a.label("dispatch");
        a.load_op(LoadOp::Lw, 0, Reg::A0, 0, Reg::S1);
        a.addi(Reg::S1, Reg::S1, 4);
        a.bop(0);
        // slow path: bound check + table jump
        a.andi(Reg::A1, Reg::A0, 0x3f);
        a.sltiu(Reg::T3, Reg::A1, 3);
        a.beqz(Reg::T3, "bad");
        a.slli(Reg::T3, Reg::A1, 3);
        a.add(Reg::T3, Reg::T3, Reg::S2);
        a.ld(Reg::T4, 0, Reg::T3);
        a.jru(0, Reg::T4);

        a.label("h0");
        a.addi(Reg::A2, Reg::A2, 1);
        a.j("dispatch");
        a.label("h1");
        a.addi(Reg::A2, Reg::A2, 2);
        a.j("dispatch");
        a.label("h2");
        a.jte_flush();
        halt(a, Reg::A2);
        a.label("bad");
        a.inst(Inst::Ebreak);

        a.ro_label("jt");
        a.ro_addr("h0");
        a.ro_addr("h1");
        a.ro_addr("h2");
    }

    #[test]
    fn scd_fast_path_basic() {
        let (exit, stats) = run_asm(build_dispatcher);
        // 50 zeros (+1 each) and 50 ones (+2 each) = 150
        assert_eq!(exit.code, 150);
        assert_eq!(stats.bop_executed, 101);
        // First occurrence of each opcode takes the slow path; the
        // remaining 98 dispatches of opcodes 0/1 hit.
        assert_eq!(stats.bop_hits, 98);
        assert_eq!(stats.jru_executed, 3);
        assert_eq!(stats.btb.jte_inserts, 3);
        assert_eq!(stats.btb.jte_flushes, 1);
    }

    #[test]
    fn scd_disabled_falls_through() {
        let cfg = SimConfig::embedded_a5().without_scd();
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::T0, 0x3f);
        a.setmask(0, Reg::T0);
        a.bop(0); // must fall through
        a.li(Reg::A0, 7);
        a.li(Reg::A7, 0);
        a.ecall();
        let p = a.finish().unwrap();
        let mut m = Machine::new(cfg, &p);
        let exit = m.run(100).unwrap();
        assert_eq!(exit.code, 7);
        assert_eq!(m.stats.bop_hits, 0);
    }

    #[test]
    fn putchar_collects_output() {
        let (exit, _) = run_asm(|a| {
            a.li(Reg::A0, b'h' as i64);
            a.li(Reg::A7, 1);
            a.ecall();
            a.li(Reg::A0, b'i' as i64);
            a.ecall();
            a.li(Reg::A0, 0);
            a.li(Reg::A7, 0);
            a.ecall();
        });
        assert_eq!(exit.output, b"hi");
    }

    #[test]
    fn inst_limit_errors() {
        let mut a = Asm::new(0x1_0000);
        a.label("spin");
        a.j("spin");
        let p = a.finish().unwrap();
        let mut m = Machine::new(SimConfig::embedded_a5(), &p);
        assert!(matches!(m.run(100), Err(SimError::InstLimit { .. })));
    }

    #[test]
    fn mem_fault_reported() {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::T0, 0x9999_0000);
        a.ld(Reg::T1, 0, Reg::T0);
        let p = a.finish().unwrap();
        let mut m = Machine::new(SimConfig::embedded_a5(), &p);
        match m.run(100) {
            Err(SimError::Mem { fault, .. }) => assert_eq!(fault.addr, 0x9999_0000),
            other => panic!("expected memory fault, got {other:?}"),
        }
    }

    #[test]
    fn alu_division_edge_cases() {
        assert_eq!(alu(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Div, i64::MIN as u64, u64::MAX), i64::MIN as u64);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Rem, i64::MIN as u64, u64::MAX), 0);
        assert_eq!(alu(AluOp::Divu, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
        assert_eq!(alu(AluOp::Mulh, u64::MAX, u64::MAX), 0); // (-1)*(-1) >> 64
        assert_eq!(alu(AluOp::Mulhu, u64::MAX, 2), 1);
    }

    // ---- dual-issue pairing rules ----

    /// Runs `build` under an A5 core widened to `width` issue slots and
    /// returns the cycle count, so tests can compare single- vs
    /// dual-issue timing of the same program.
    fn cycles_at_width(width: usize, build: impl Fn(&mut Asm)) -> u64 {
        let mut a = Asm::new(0x1_0000);
        build(&mut a);
        halt(&mut a, Reg::ZERO);
        let p = a.finish().expect("assemble");
        let mut cfg = SimConfig::embedded_a5();
        cfg.issue_width = width;
        let mut m = Machine::new(cfg, &p);
        m.map("scratch", 0x10_0000, 0x1000);
        m.run(1_000_000).expect("run");
        m.stats.cycles
    }

    const DUAL_N: usize = 64;

    #[test]
    fn dual_issue_pairs_independent_alu_ops() {
        let regs = [Reg::T0, Reg::T1, Reg::T2, Reg::T3];
        let build = |a: &mut Asm| {
            for i in 0..DUAL_N {
                a.addi(regs[i % regs.len()], Reg::ZERO, i as i64);
            }
        };
        let single = cycles_at_width(1, build);
        let dual = cycles_at_width(2, build);
        // Every other instruction rides in the second slot: the block
        // roughly halves.
        assert!(
            single - dual >= (DUAL_N / 2 - 6) as u64,
            "independent ALU ops should pair: single {single}, dual {dual}"
        );
    }

    #[test]
    fn dual_issue_raw_hazard_blocks_pairing() {
        let build = |a: &mut Asm| {
            a.addi(Reg::T0, Reg::ZERO, 0);
            for _ in 0..DUAL_N {
                a.addi(Reg::T0, Reg::T0, 1); // consumes the previous dest
            }
        };
        let single = cycles_at_width(1, build);
        let dual = cycles_at_width(2, build);
        // A dependent chain gains nothing from the second slot (the halt
        // epilogue may pair, hence the tiny slack).
        assert!(single - dual <= 2, "RAW chain must not pair: single {single}, dual {dual}");
    }

    #[test]
    fn dual_issue_never_pairs_two_memory_ops() {
        let regs = [Reg::T1, Reg::T2, Reg::T3];
        let build = |a: &mut Asm| {
            a.li(Reg::T0, 0x10_0000);
            a.sd(Reg::ZERO, 0, Reg::T0);
            for i in 0..DUAL_N {
                // Alternate loads and stores: all independent, but two
                // memory ops share the single D-cache port.
                if i % 4 == 3 {
                    a.sd(Reg::T1, 0, Reg::T0);
                } else {
                    a.ld(regs[i % regs.len()], 0, Reg::T0);
                }
            }
        };
        let single = cycles_at_width(1, build);
        let dual = cycles_at_width(2, build);
        assert!(
            single - dual <= 2,
            "back-to-back memory ops must not pair: single {single}, dual {dual}"
        );
    }

    /// A dual-issue machine with an empty program, for driving
    /// [`Machine::issue`] directly. End-to-end cycle counts can't
    /// isolate a single pairing rule: whenever one instruction is
    /// kicked out of the second slot, its successor slides in, so the
    /// loop's steady-state cost is unchanged.
    fn issue_fixture() -> Machine {
        let mut a = Asm::new(0x1_0000);
        halt(&mut a, Reg::ZERO);
        let p = a.finish().expect("assemble");
        let mut cfg = SimConfig::embedded_a5();
        cfg.issue_width = 2;
        Machine::new(cfg, &p)
    }

    #[test]
    fn dual_issue_fp_source_hazard_blocks_pairing() {
        use scd_isa::{FReg, FpOp};
        let fmv = |rd: u8| Inst::FmvDX { rd: FReg::new(rd), rs1: Reg::T0 };
        let fadd = |rs: u8| Inst::FOp {
            op: FpOp::FaddD,
            rd: FReg::new(2),
            rs1: FReg::new(rs),
            rs2: FReg::new(rs),
        };

        // An FOp with independent sources rides in the second slot.
        let mut m = issue_fixture();
        m.issue(&fmv(1));
        assert_eq!(m.issued_this_cycle, 1);
        let c = m.cycle;
        m.issue(&fadd(3));
        assert_eq!((m.issued_this_cycle, m.cycle), (2, c), "independent FP op should pair");

        // Reading the FP register the previous instruction wrote must
        // push the consumer to the next cycle.
        let mut m = issue_fixture();
        m.issue(&fmv(1));
        let c = m.cycle;
        m.issue(&fadd(1));
        assert_eq!(m.issued_this_cycle, 1, "FP source hazard must block pairing");
        assert_eq!(m.cycle, c + 1);

        // The single-source arm (fmv.x.d) honors the same rule.
        let mut m = issue_fixture();
        m.issue(&fmv(1));
        m.issue(&Inst::FmvXD { rd: Reg::T1, rs1: FReg::new(1) });
        assert_eq!(m.issued_this_cycle, 1, "fmv.x.d reading prev FP dest must not pair");
        let mut m = issue_fixture();
        m.issue(&fmv(1));
        m.issue(&Inst::FmvXD { rd: Reg::T1, rs1: FReg::new(3) });
        assert_eq!(m.issued_this_cycle, 2, "fmv.x.d with an unrelated source pairs");
    }

    #[test]
    fn dual_issue_width_caps_group_at_two() {
        let addi = |rd: Reg| Inst::OpImm { op: AluOp::Add, rd, rs1: Reg::ZERO, imm: 1 };
        let mut m = issue_fixture();
        m.issue(&addi(Reg::T0));
        m.issue(&addi(Reg::T1));
        assert_eq!(m.issued_this_cycle, 2);
        let c = m.cycle;
        m.issue(&addi(Reg::T2));
        assert_eq!((m.issued_this_cycle, m.cycle), (1, c + 1), "third op starts a new group");
    }

    // ---- watchdog ----

    #[test]
    fn cycle_watchdog_catches_livelock() {
        let mut a = Asm::new(0x1_0000);
        a.label("spin");
        a.j("spin");
        let p = a.finish().unwrap();
        let mut m = Machine::new(SimConfig::embedded_a5(), &p);
        m.set_cycle_budget(10_000);
        match m.run(u64::MAX) {
            Err(SimError::Watchdog { kind: WatchdogKind::Cycles, instructions, cycles }) => {
                assert!(cycles >= 10_000, "budget not exhausted: {cycles}");
                assert!(instructions > 0);
                // Stats are finalized for the partial run.
                assert_eq!(m.stats.cycles, cycles);
                assert_eq!(m.stats.instructions, instructions);
            }
            other => panic!("expected cycle watchdog, got {other:?}"),
        }
    }

    #[test]
    fn wall_watchdog_fires() {
        let mut a = Asm::new(0x1_0000);
        a.label("spin");
        a.j("spin");
        let p = a.finish().unwrap();
        let mut m = Machine::new(SimConfig::embedded_a5(), &p);
        m.set_wall_budget(std::time::Duration::ZERO);
        assert!(matches!(
            m.run(u64::MAX),
            Err(SimError::Watchdog { kind: WatchdogKind::WallClock, .. })
        ));
    }

    // ---- checkpoint / resume ----

    fn dispatcher_machine(p: &scd_isa::Program) -> Machine {
        let mut m = Machine::new(SimConfig::embedded_a5(), p);
        m.map("scratch", 0x10_0000, 0x1000);
        m
    }

    #[test]
    fn checkpoint_resume_reproduces_run_exactly() {
        let mut a = Asm::new(0x1_0000);
        build_dispatcher(&mut a);
        let p = a.finish().expect("assemble");

        // Reference: the uninterrupted run.
        let mut whole = dispatcher_machine(&p);
        let exit_whole = whole.run(1_000_000).expect("run");

        // Chunked: stop every 117 instructions, snapshot through the
        // byte codec, restore into a FRESH machine, continue.
        let mut m = dispatcher_machine(&p);
        let mut limit = 117;
        let exit_chunked = loop {
            match m.run(limit) {
                Ok(exit) => break exit,
                Err(SimError::InstLimit { .. }) => {
                    let bytes = m.snapshot().to_bytes();
                    let snap = Snapshot::from_bytes(&bytes).expect("decode");
                    let mut fresh = dispatcher_machine(&p);
                    fresh.restore(&snap).expect("restore");
                    m = fresh;
                    limit += 117;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };

        assert_eq!(exit_whole.code, exit_chunked.code);
        assert_eq!(exit_whole.output, exit_chunked.output);
        // The whole point: SimStats (cycles, every counter) bit-identical.
        assert_eq!(whole.stats, m.stats);
    }

    #[test]
    fn restore_rejects_wrong_program() {
        let mut a = Asm::new(0x1_0000);
        a.label("spin");
        a.j("spin");
        let p1 = a.finish().unwrap();
        let mut b = Asm::new(0x1_0000);
        b.nop();
        b.label("spin");
        b.j("spin");
        let p2 = b.finish().unwrap();
        let m1 = Machine::new(SimConfig::embedded_a5(), &p1);
        let snap = m1.snapshot();
        let mut m2 = Machine::new(SimConfig::embedded_a5(), &p2);
        assert!(matches!(m2.restore(&snap), Err(SnapshotError::Fingerprint { .. })));
    }

    #[test]
    fn restore_rejects_missing_segment() {
        let mut a = Asm::new(0x1_0000);
        a.label("spin");
        a.j("spin");
        let p = a.finish().unwrap();
        let mut m1 = Machine::new(SimConfig::embedded_a5(), &p);
        m1.map("scratch", 0x10_0000, 0x1000);
        let snap = m1.snapshot();
        let mut m2 = Machine::new(SimConfig::embedded_a5(), &p); // no scratch
        assert!(matches!(m2.restore(&snap), Err(SnapshotError::Format(_))));
    }
}
