//! Machine configurations, mirroring Table II of the paper.

use crate::btb::{BtbConfig, TwoLevelBtbConfig};
use crate::cache::{CacheConfig, Replacement};
use crate::predictor::DirectionConfig;

/// How indirect jumps (`jalr`) are predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndirectPredictor {
    /// Conventional PC-indexed BTB (the paper's baseline).
    BtbPc,
    /// Value-Based BTB Indexing (Farooq et al., HPCA'10): registered
    /// dispatch jumps index the BTB with hash(PC, hint value).
    Vbbi,
    /// ITTAGE (Seznec & Michaud): tagged geometric-history target
    /// prediction for all indirect jumps (related-work comparison).
    Ittage,
}

/// SCD-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScdConfig {
    /// If false, `bop` always falls through and `jru` behaves like a plain
    /// indirect jump (lets SCD binaries run on a non-SCD core).
    pub enabled: bool,
    /// Fetch stalls until Rop is available (the paper's default second
    /// scheme). If false, an unready `bop` simply falls through to the
    /// slow path (the paper's first scheme).
    pub stall_on_unready: bool,
    /// Extra bubbles charged on a `bop` hit (0 = BTB redirects next-PC
    /// selection in the fetch stage, as in Figure 5).
    pub bop_hit_bubbles: u64,
    /// Number of simultaneously tracked jump tables (branch IDs),
    /// Section IV.
    pub branch_ids: usize,
    /// If set, all JTEs (and Rop valid bits) are flushed every N
    /// instructions, emulating OS context switches (Section IV).
    pub flush_interval: Option<u64>,
    /// Store JTEs in a dedicated table instead of overlaying the BTB —
    /// the Case Block Table organization of Kaeli & Emma that the paper
    /// contrasts against (same dispatch behaviour, extra hardware, no
    /// BTB contention).
    pub dedicated_jte_table: bool,
    /// Size of the dedicated table when enabled.
    pub jte_table_entries: usize,
}

impl Default for ScdConfig {
    fn default() -> Self {
        ScdConfig {
            enabled: true,
            stall_on_unready: true,
            bop_hit_bubbles: 0,
            branch_ids: 4,
            flush_interval: None,
            dedicated_jte_table: false,
            jte_table_entries: 64,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Instructions issued per cycle (1 = A5/Rocket, 2 = A8-like).
    pub issue_width: usize,
    /// Pipeline stages between fetch and operand read; governs how early
    /// Rop / VBBI hints must be ready at fetch.
    pub fetch_lead: u64,
    /// Penalty for a mispredicted branch (redirect from execute).
    pub branch_miss_penalty: u64,
    /// Penalty when a direct jump misses the BTB (redirect from decode).
    pub jal_redirect_penalty: u64,
    /// Direction predictor.
    pub direction: DirectionConfig,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// Return address stack depth.
    pub ras_entries: usize,
    /// Indirect-jump prediction scheme.
    pub indirect: IndirectPredictor,
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Optional unified L2.
    pub l2: Option<CacheConfig>,
    /// L1-miss, L2-hit latency (cycles).
    pub l2_latency: u64,
    /// Instruction TLB entries.
    pub itlb_entries: usize,
    /// Data TLB entries.
    pub dtlb_entries: usize,
    /// TLB miss (page walk) penalty in cycles.
    pub tlb_miss_penalty: u64,
    /// Memory access latency in core cycles (L2 miss or L1 miss without L2).
    pub dram_latency: u64,
    /// Extra cycles before a load's value can feed a dependent
    /// instruction (L1 hit latency - 1).
    pub load_use_penalty: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Integer divide latency.
    pub div_latency: u64,
    /// FP add/sub/mul/compare/convert latency.
    pub fpu_latency: u64,
    /// FP divide / sqrt latency.
    pub fdiv_latency: u64,
    /// SCD extension knobs.
    pub scd: ScdConfig,
}

impl SimConfig {
    /// The paper's *Simulator* column of Table II: gem5 MinorCPU modeling
    /// an ARM Cortex-A5-class single-issue in-order core at 1 GHz.
    pub fn embedded_a5() -> Self {
        SimConfig {
            name: "embedded-a5",
            issue_width: 1,
            fetch_lead: 2,
            branch_miss_penalty: 3,
            jal_redirect_penalty: 1,
            direction: DirectionConfig::Tournament { global_entries: 512, local_entries: 128 },
            btb: BtbConfig::set_assoc(256, 2, Replacement::RoundRobin),
            ras_entries: 8,
            indirect: IndirectPredictor::BtbPc,
            icache: CacheConfig { size: 16 * 1024, ways: 2, line: 64, replacement: Replacement::Lru },
            dcache: CacheConfig { size: 32 * 1024, ways: 4, line: 64, replacement: Replacement::Lru },
            l2: None,
            l2_latency: 8,
            itlb_entries: 10,
            dtlb_entries: 10,
            tlb_miss_penalty: 20,
            dram_latency: 60,
            load_use_penalty: 2,
            mul_latency: 3,
            div_latency: 20,
            fpu_latency: 4,
            fdiv_latency: 18,
            scd: ScdConfig::default(),
        }
    }

    /// The paper's *FPGA* column of Table II: RISC-V Rocket, 5-stage,
    /// 50 MHz (memory is relatively close at that clock).
    pub fn fpga_rocket() -> Self {
        SimConfig {
            name: "fpga-rocket",
            issue_width: 1,
            fetch_lead: 2,
            branch_miss_penalty: 2,
            jal_redirect_penalty: 1,
            direction: DirectionConfig::Gshare { entries: 128 },
            btb: BtbConfig::fully_assoc(62, Replacement::Lru),
            ras_entries: 2,
            indirect: IndirectPredictor::BtbPc,
            icache: CacheConfig { size: 16 * 1024, ways: 4, line: 64, replacement: Replacement::Lru },
            dcache: CacheConfig { size: 16 * 1024, ways: 4, line: 64, replacement: Replacement::Lru },
            l2: None,
            l2_latency: 6,
            itlb_entries: 8,
            dtlb_entries: 8,
            tlb_miss_penalty: 12,
            dram_latency: 20,
            load_use_penalty: 1,
            mul_latency: 3,
            div_latency: 20,
            fpu_latency: 4,
            fdiv_latency: 18,
            scd: ScdConfig::default(),
        }
    }

    /// The higher-end in-order core of Section VI-C2 (Cortex-A8-like):
    /// dual issue, 32 KB 4-way I$, 256 KB L2, 512-entry BTB.
    pub fn highend_a8() -> Self {
        let mut c = SimConfig::embedded_a5();
        c.name = "highend-a8";
        c.issue_width = 2;
        c.icache = CacheConfig { size: 32 * 1024, ways: 4, line: 64, replacement: Replacement::Lru };
        c.btb = BtbConfig::set_assoc(512, 2, Replacement::RoundRobin);
        c.l2 = Some(CacheConfig { size: 256 * 1024, ways: 8, line: 64, replacement: Replacement::Lru });
        c.l2_latency = 8;
        c.dram_latency = 90;
        c
    }

    /// Returns a copy with a different BTB entry count (sensitivity study,
    /// Fig. 11a-b).
    pub fn with_btb_entries(mut self, entries: usize) -> Self {
        self.btb.entries = entries;
        self
    }

    /// Returns a copy with a JTE cap (sensitivity study, Fig. 11c-d).
    pub fn with_jte_cap(mut self, cap: Option<usize>) -> Self {
        self.btb.jte_cap = cap;
        self
    }

    /// Returns a copy using the VBBI indirect predictor.
    pub fn with_vbbi(mut self) -> Self {
        self.indirect = IndirectPredictor::Vbbi;
        self
    }

    /// Returns a copy using the ITTAGE indirect predictor.
    pub fn with_ittage(mut self) -> Self {
        self.indirect = IndirectPredictor::Ittage;
        self
    }

    /// Returns a copy with SCD disabled in hardware.
    pub fn without_scd(mut self) -> Self {
        self.scd.enabled = false;
        self
    }

    /// Returns a copy using a dedicated (CBT-style) jump-table-entry
    /// table instead of the BTB overlay.
    pub fn with_dedicated_jte_table(mut self, entries: usize) -> Self {
        self.scd.dedicated_jte_table = true;
        self.scd.jte_table_entries = entries;
        self
    }

    /// Returns a copy using the realistic two-level BTB organization
    /// (extension study; DESIGN.md "Two-level BTB"). The replacement
    /// policy and JTE cap of the current BTB carry over.
    pub fn with_two_level_btb(mut self, tl: TwoLevelBtbConfig) -> Self {
        let mut btb = BtbConfig::two_level(tl, self.btb.replacement);
        btb.jte_cap = self.btb.jte_cap;
        self.btb = btb;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_ii() {
        let a5 = SimConfig::embedded_a5();
        assert_eq!(a5.btb.entries, 256);
        assert_eq!(a5.btb.ways, 2);
        assert_eq!(a5.branch_miss_penalty, 3);
        assert_eq!(a5.ras_entries, 8);
        assert_eq!(a5.icache.size, 16 * 1024);
        assert_eq!(a5.dcache.size, 32 * 1024);

        let fpga = SimConfig::fpga_rocket();
        assert_eq!(fpga.btb.entries, 62);
        assert_eq!(fpga.btb.ways, 0); // fully associative
        assert_eq!(fpga.branch_miss_penalty, 2);
        assert_eq!(fpga.ras_entries, 2);
        assert!(matches!(fpga.direction, DirectionConfig::Gshare { entries: 128 }));

        let a8 = SimConfig::highend_a8();
        assert_eq!(a8.issue_width, 2);
        assert_eq!(a8.btb.entries, 512);
        assert!(a8.l2.is_some());
    }

    #[test]
    fn builder_modifiers() {
        let c = SimConfig::embedded_a5().with_btb_entries(64).with_jte_cap(Some(4)).with_vbbi();
        assert_eq!(c.btb.entries, 64);
        assert_eq!(c.btb.jte_cap, Some(4));
        assert_eq!(c.indirect, IndirectPredictor::Vbbi);
        assert!(!SimConfig::embedded_a5().without_scd().scd.enabled);
    }
}
