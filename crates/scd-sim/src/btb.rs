//! Branch target buffer with the SCD jump-table-entry (JTE) overlay.
//!
//! Each entry carries a kind tag (Section III-B of the paper extends the
//! J/B flag): `Pc` entries are conventional PC-indexed target
//! predictions, `Jte` entries cache software jump-table entries keyed by
//! `(branch id, opcode)`, and `Vbbi` entries are keyed by a hash of
//! (PC, hint value). The tag participates in tag match, so the three key
//! spaces can never satisfy each other's lookups even when their raw key
//! bits collide.
//!
//! The replacement policy implements the paper's default: an incoming
//! JTE may evict a `Pc`/`Vbbi` entry but those can never evict a JTE,
//! and an optional cap bounds the number of resident JTEs (Section IV /
//! Fig. 11c-d).
//!
//! ## JTE cap semantics
//!
//! `jte_cap` is a **global** bound on resident JTEs across all sets, not
//! a per-set quota. While at the cap, an incoming JTE must displace
//! another JTE so the population stays bounded:
//!
//! 1. if its own set holds a JTE, the replacement policy picks among
//!    those ways (ordinary same-set replacement);
//! 2. otherwise the globally least-recently-used JTE (in whatever set)
//!    is invalidated first, and the insert then proceeds in its own set
//!    under the normal no-cap priority rules.
//!
//! Rule 2 fixes a seed defect where an at-cap insert whose set held no
//! JTE was silently dropped forever — even when the set had invalid
//! ways — permanently locking the cap's population into whichever sets
//! filled first. A JTE insert is now only ever dropped when `jte_cap`
//! is `Some(0)`.

use crate::cache::Replacement;

/// BTB geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity; `0` means fully associative.
    pub ways: usize,
    /// Replacement policy within a set.
    pub replacement: Replacement,
    /// Maximum number of resident JTEs across all sets (`None` =
    /// unbounded). See the module docs for the at-cap displacement
    /// rules.
    pub jte_cap: Option<usize>,
}

impl BtbConfig {
    /// Set-associative BTB (paper simulator config: 256 entries, 2-way,
    /// round-robin).
    pub fn set_assoc(entries: usize, ways: usize, replacement: Replacement) -> Self {
        BtbConfig { entries, ways, replacement, jte_cap: None }
    }

    /// Fully-associative BTB (paper FPGA config: 62 entries, LRU).
    pub fn fully_assoc(entries: usize, replacement: Replacement) -> Self {
        BtbConfig { entries, ways: 0, replacement, jte_cap: None }
    }

    fn effective_ways(&self) -> usize {
        if self.ways == 0 {
            self.entries
        } else {
            self.ways
        }
    }
}

/// Which key space a BTB entry belongs to. Stored in the entry and
/// matched on lookup, so raw key collisions across spaces are inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Conventional PC-indexed entry.
    Pc,
    /// SCD jump table entry.
    Jte,
    /// VBBI entry (hash of PC and hint value).
    Vbbi,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    kind: EntryKind,
    key: u64,
    target: u64,
    lru: u64,
}

impl Default for Entry {
    fn default() -> Self {
        Entry { valid: false, kind: EntryKind::Pc, key: 0, target: 0, lru: 0 }
    }
}

/// Counters for BTB/JTE interaction, surfaced into `SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// JTE insertions performed (fresh entries; in-place target updates
    /// are not counted).
    pub jte_inserts: u64,
    /// JTE insertions dropped because of the JTE cap (only possible
    /// with `jte_cap == Some(0)`).
    pub jte_cap_skips: u64,
    /// Valid `Pc`/`Vbbi` entries evicted by an incoming JTE.
    pub btb_evicted_by_jte: u64,
    /// Resident JTEs displaced by an insert (same-set replacement or
    /// the at-cap global eviction).
    pub jte_evictions: u64,
    /// `Pc`/`Vbbi` insertions skipped because every way held a JTE.
    pub btb_blocked_by_jte: u64,
    /// `jte.flush` invocations.
    pub jte_flushes: u64,
    /// JTE entries invalidated by `jte.flush` invocations.
    pub jte_flushed: u64,
}

/// What [`Btb::insert`] did, for per-event tracing and invariant
/// checking. Together with the inserted key's kind this determines the
/// exact [`BtbStats`] delta of the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Tag match: the existing entry's target was refreshed in place.
    Updated,
    /// A new entry was written.
    Inserted {
        /// Kind of the valid entry this insert displaced in its own
        /// set, if any.
        evicted: Option<EntryKind>,
        /// True when the at-cap rule additionally invalidated the
        /// globally least-recently-used JTE in another set.
        remote_jte_evicted: bool,
    },
    /// A JTE insert was dropped: the cap is in force and there is no
    /// resident JTE to displace (`jte_cap == Some(0)`).
    CapSkipped,
    /// A `Pc`/`Vbbi` insert found every candidate way holding a JTE.
    Blocked,
}

/// The branch target buffer.
#[derive(Debug)]
pub struct Btb {
    cfg: BtbConfig,
    sets: usize,
    ways: usize,
    entries: Vec<Entry>,
    rr_next: Vec<usize>,
    tick: u64,
    jte_count: usize,
    /// Interaction counters.
    pub stats: BtbStats,
}

/// Key space separator so PC keys, JTE keys and VBBI keys never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbKey {
    /// Conventional PC-indexed entry.
    Pc(u64),
    /// SCD jump table entry: (branch id, opcode).
    Jte {
        /// Branch ID (Section IV, multiple jump tables).
        bid: u8,
        /// The masked opcode value from Rop.
        opcode: u64,
    },
    /// VBBI entry: hash of (PC, hint value).
    Vbbi(u64),
}

impl BtbKey {
    /// The key space this key lives in.
    pub fn kind(self) -> EntryKind {
        self.raw().1
    }

    fn raw(self) -> (u64, EntryKind) {
        match self {
            // PCs are 4-byte aligned; drop the known-zero bits for indexing.
            BtbKey::Pc(pc) => (pc >> 2, EntryKind::Pc),
            BtbKey::Jte { bid, opcode } => (opcode ^ ((bid as u64) << 56), EntryKind::Jte),
            BtbKey::Vbbi(h) => (h, EntryKind::Vbbi),
        }
    }
}

impl Btb {
    /// Builds a BTB from its configuration.
    ///
    /// # Panics
    /// Panics if `entries` is not divisible into power-of-two sets.
    pub fn new(cfg: BtbConfig) -> Self {
        let ways = cfg.effective_ways();
        assert!(ways > 0 && cfg.entries > 0, "BTB must be non-empty");
        assert_eq!(cfg.entries % ways, 0, "entries must divide into ways");
        let sets = cfg.entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Btb {
            cfg,
            sets,
            ways,
            entries: vec![Entry::default(); cfg.entries],
            rr_next: vec![0; sets],
            tick: 0,
            jte_count: 0,
            stats: BtbStats::default(),
        }
    }

    /// The configuration this BTB was built with.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    /// Number of currently resident JTEs.
    pub fn resident_jtes(&self) -> usize {
        self.jte_count
    }

    #[inline]
    fn set_of(&self, raw: u64) -> usize {
        (raw as usize) & (self.sets - 1)
    }

    /// Looks up a key; returns the cached target on hit and refreshes LRU.
    #[inline]
    pub fn lookup(&mut self, key: BtbKey) -> Option<u64> {
        self.tick += 1;
        let (raw, kind) = key.raw();
        let set = self.set_of(raw);
        let base = set * self.ways;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.kind == kind && e.key == raw {
                e.lru = self.tick;
                return Some(e.target);
            }
        }
        None
    }

    /// Inserts or updates an entry for `key`, reporting what happened.
    pub fn insert(&mut self, key: BtbKey, target: u64) -> InsertOutcome {
        self.tick += 1;
        let (raw, kind) = key.raw();
        let is_jte = kind == EntryKind::Jte;
        let set = self.set_of(raw);
        let base = set * self.ways;

        // Update in place on tag match (population unchanged, so the cap
        // never applies here).
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.kind == kind && e.key == raw {
                e.target = target;
                e.lru = self.tick;
                return InsertOutcome::Updated;
            }
        }

        let at_cap = is_jte && self.cfg.jte_cap.is_some_and(|cap| self.jte_count >= cap);
        let own_set_has_jte = self.entries[base..base + self.ways]
            .iter()
            .any(|e| e.valid && e.kind == EntryKind::Jte);

        // At the cap with no JTE in our own set: make room by evicting
        // the globally least-recently-used JTE, then insert under the
        // normal rules (module docs, rule 2).
        let mut remote_jte_evicted = false;
        let at_cap = if at_cap && !own_set_has_jte {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.valid && e.kind == EntryKind::Jte)
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.entries[i].valid = false;
                    self.jte_count -= 1;
                    self.stats.jte_evictions += 1;
                    remote_jte_evicted = true;
                    false
                }
                None => {
                    // cap == 0: there is no JTE anywhere to displace.
                    self.stats.jte_cap_skips += 1;
                    return InsertOutcome::CapSkipped;
                }
            }
        } else {
            at_cap
        };

        // Choose a victim way subject to the priority rules.
        let allowed = |e: &Entry| -> bool {
            if !e.valid {
                // An invalid way is always usable, except that a JTE at
                // cap must replace another JTE to keep the population
                // bounded (only reachable when the set holds one).
                return !at_cap;
            }
            if is_jte {
                if at_cap {
                    e.kind == EntryKind::Jte
                } else {
                    true // JTE priority: may evict anything
                }
            } else {
                e.kind != EntryKind::Jte // Pc/Vbbi entries never evict JTEs
            }
        };

        let ways = &self.entries[base..base + self.ways];
        let victim = match self.cfg.replacement {
            Replacement::Lru => {
                let mut best: Option<(usize, u64)> = None;
                for (i, e) in ways.iter().enumerate() {
                    if !allowed(e) {
                        continue;
                    }
                    let score = if e.valid { e.lru } else { 0 };
                    if best.is_none_or(|(_, b)| score < b) {
                        best = Some((i, score));
                    }
                }
                best.map(|(i, _)| i)
            }
            Replacement::RoundRobin => {
                let start = self.rr_next[set];
                let mut found = None;
                for k in 0..self.ways {
                    let i = (start + k) % self.ways;
                    if allowed(&ways[i]) {
                        found = Some(i);
                        self.rr_next[set] = (i + 1) % self.ways;
                        break;
                    }
                }
                found
            }
        };

        let Some(victim) = victim else {
            debug_assert!(!is_jte, "a JTE insert always finds a victim once under the cap");
            self.stats.btb_blocked_by_jte += 1;
            return InsertOutcome::Blocked;
        };

        let old = self.entries[base + victim];
        let evicted = old.valid.then_some(old.kind);
        if old.valid {
            if old.kind == EntryKind::Jte {
                self.jte_count -= 1;
                self.stats.jte_evictions += 1;
            } else if is_jte {
                self.stats.btb_evicted_by_jte += 1;
            }
        }
        if is_jte {
            self.jte_count += 1;
            self.stats.jte_inserts += 1;
        }
        self.entries[base + victim] = Entry { valid: true, kind, key: raw, target, lru: self.tick };
        InsertOutcome::Inserted { evicted, remote_jte_evicted }
    }

    /// A snapshot of the valid entries: `(kind, key, target)`, in
    /// array order. For diagnostics and the Fig. 6 walk-through.
    pub fn snapshot(&self) -> Vec<(EntryKind, u64, u64)> {
        self.entries.iter().filter(|e| e.valid).map(|e| (e.kind, e.key, e.target)).collect()
    }

    /// `jte.flush`: invalidates every JTE but leaves other entries
    /// intact. Returns the number of entries invalidated.
    pub fn flush_jtes(&mut self) -> u64 {
        let mut flushed = 0;
        for e in &mut self.entries {
            if e.valid && e.kind == EntryKind::Jte {
                e.valid = false;
                flushed += 1;
            }
        }
        self.jte_count = 0;
        self.stats.jte_flushes += 1;
        self.stats.jte_flushed += flushed;
        flushed
    }

    /// Checks the population identity `resident JTEs == inserts -
    /// evictions - flush losses` against the counters; used by the
    /// stat-invariant checker.
    ///
    /// # Panics
    /// Panics (with both sides of the identity) when it is violated.
    pub fn assert_population_invariant(&self) {
        let derived = self
            .stats
            .jte_inserts
            .checked_sub(self.stats.jte_evictions + self.stats.jte_flushed)
            .expect("JTE losses cannot exceed inserts");
        assert_eq!(
            self.jte_count as u64, derived,
            "resident JTEs diverged from insert/eviction/flush accounting"
        );
        debug_assert_eq!(
            self.jte_count,
            self.entries.iter().filter(|e| e.valid && e.kind == EntryKind::Jte).count(),
            "cached JTE population diverged from the entry array"
        );
    }

    // ---- fault-injection hooks (crate::fault) ----

    /// Fault hook: invalidates one pseudo-randomly chosen resident JTE,
    /// modeling parity-detected corruption. The loss is counted as a JTE
    /// eviction so the population identity keeps balancing. Returns the
    /// number of JTEs invalidated (0 or 1).
    pub(crate) fn fault_invalidate_jte(&mut self, r: u64) -> u64 {
        let resident = self.entries.iter().filter(|e| e.valid && e.kind == EntryKind::Jte).count();
        if resident == 0 {
            return 0;
        }
        let pick = (r % resident as u64) as usize;
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid && e.kind == EntryKind::Jte)
            .nth(pick)
            .map(|(i, _)| i)
            .expect("pick < resident count");
        self.entries[idx].valid = false;
        self.jte_count -= 1;
        self.stats.jte_evictions += 1;
        1
    }

    /// Fault hook: invalidates every entry. Resident JTEs lost this way
    /// are counted as JTE evictions (they were not `jte.flush`ed);
    /// `Pc`/`Vbbi` entries have no population counters and simply
    /// vanish. Returns the number of JTEs lost.
    pub(crate) fn fault_flush_all(&mut self) -> u64 {
        let mut lost = 0;
        for e in &mut self.entries {
            if e.valid && e.kind == EntryKind::Jte {
                lost += 1;
            }
            e.valid = false;
        }
        self.jte_count = 0;
        self.stats.jte_evictions += lost;
        lost
    }

    /// Fault hook: flips one pseudo-random bit in the key or target of a
    /// pseudo-randomly chosen valid **non-JTE** entry. Those entries
    /// hold verified predictions (resolved at execute), so the flip can
    /// only cost cycles. The kind tag is never touched — a corrupted
    /// entry can never cross into the unverified JTE key space.
    pub(crate) fn fault_flip_bit(&mut self, r: u64) {
        let candidates =
            self.entries.iter().filter(|e| e.valid && e.kind != EntryKind::Jte).count();
        if candidates == 0 {
            return;
        }
        let pick = (r % candidates as u64) as usize;
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid && e.kind != EntryKind::Jte)
            .nth(pick)
            .map(|(i, _)| i)
            .expect("pick < candidate count");
        let bit = (r >> 32) % 128;
        if bit < 64 {
            self.entries[idx].key ^= 1 << bit;
        } else {
            self.entries[idx].target ^= 1 << (bit - 64);
        }
    }

    // ---- checkpoint codec (crate::snapshot) ----

    pub(crate) fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.push(self.entries.len() as u64);
        for e in &self.entries {
            let kind = match e.kind {
                EntryKind::Pc => 0u64,
                EntryKind::Jte => 1,
                EntryKind::Vbbi => 2,
            };
            out.push(e.valid as u64 | (kind << 1));
            out.push(e.key);
            out.push(e.target);
            out.push(e.lru);
        }
        out.push(self.rr_next.len() as u64);
        out.extend(self.rr_next.iter().map(|&v| v as u64));
        out.push(self.tick);
        out.push(self.jte_count as u64);
        let s = &self.stats;
        out.extend_from_slice(&[
            s.jte_inserts,
            s.jte_cap_skips,
            s.btb_evicted_by_jte,
            s.jte_evictions,
            s.btb_blocked_by_jte,
            s.jte_flushes,
            s.jte_flushed,
        ]);
    }

    pub(crate) fn restore_words(
        &mut self,
        c: &mut crate::snapshot::Cursor,
    ) -> Result<(), crate::SnapshotError> {
        let n = c.next()? as usize;
        crate::snapshot::check(n == self.entries.len(), "snapshot BTB geometry mismatch")?;
        for e in &mut self.entries {
            let flags = c.next()?;
            e.valid = flags & 1 != 0;
            e.kind = match flags >> 1 {
                0 => EntryKind::Pc,
                1 => EntryKind::Jte,
                2 => EntryKind::Vbbi,
                _ => {
                    return Err(crate::SnapshotError::Format(
                        "snapshot holds unknown BTB entry kind".into(),
                    ))
                }
            };
            e.key = c.next()?;
            e.target = c.next()?;
            e.lru = c.next()?;
        }
        let nrr = c.next()? as usize;
        crate::snapshot::check(nrr == self.rr_next.len(), "snapshot BTB set-count mismatch")?;
        for v in &mut self.rr_next {
            *v = c.next()? as usize;
        }
        self.tick = c.next()?;
        self.jte_count = c.next()? as usize;
        let s = &mut self.stats;
        s.jte_inserts = c.next()?;
        s.jte_cap_skips = c.next()?;
        s.btb_evicted_by_jte = c.next()?;
        s.jte_evictions = c.next()?;
        s.btb_blocked_by_jte = c.next()?;
        s.jte_flushes = c.next()?;
        s.jte_flushed = c.next()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb(entries: usize, ways: usize) -> Btb {
        Btb::new(BtbConfig::set_assoc(entries, ways, Replacement::Lru))
    }

    #[test]
    fn pc_lookup_roundtrip() {
        let mut b = btb(8, 2);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), None);
        assert!(matches!(
            b.insert(BtbKey::Pc(0x1000), 0x2000),
            InsertOutcome::Inserted { evicted: None, .. }
        ));
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(0x2000));
        assert_eq!(b.insert(BtbKey::Pc(0x1000), 0x3000), InsertOutcome::Updated);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(0x3000));
    }

    #[test]
    fn jte_and_pc_do_not_alias() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 5 }, 0xAAAA);
        // A PC whose raw key equals the JTE's raw key must not hit it.
        assert_eq!(b.lookup(BtbKey::Pc(5 << 2)), None);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 5 }), Some(0xAAAA));
        // Different branch id: different entry.
        assert_eq!(b.lookup(BtbKey::Jte { bid: 1, opcode: 5 }), None);
    }

    #[test]
    fn jte_evicts_btb_but_not_vice_versa() {
        // One set of 2 ways.
        let mut b = btb(2, 2);
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Pc(0x2000), 2);
        // JTE insertion must evict one of the B entries.
        let out = b.insert(BtbKey::Jte { bid: 0, opcode: 9 }, 3);
        assert_eq!(
            out,
            InsertOutcome::Inserted { evicted: Some(EntryKind::Pc), remote_jte_evicted: false }
        );
        assert_eq!(b.resident_jtes(), 1);
        assert_eq!(b.stats.btb_evicted_by_jte, 1);
        // Fill the other way with a JTE too.
        b.insert(BtbKey::Jte { bid: 0, opcode: 10 }, 4);
        assert_eq!(b.resident_jtes(), 2);
        // Now a B entry cannot get in.
        assert_eq!(b.insert(BtbKey::Pc(0x3000), 5), InsertOutcome::Blocked);
        assert_eq!(b.lookup(BtbKey::Pc(0x3000)), None);
        assert_eq!(b.stats.btb_blocked_by_jte, 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 9 }), Some(3));
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 10 }), Some(4));
    }

    #[test]
    fn jte_cap_enforced() {
        let mut cfg = BtbConfig::fully_assoc(8, Replacement::Lru);
        cfg.jte_cap = Some(2);
        let mut b = Btb::new(cfg);
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 1);
        b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 2);
        assert_eq!(b.resident_jtes(), 2);
        // Third JTE replaces an existing one (LRU: opcode 1), keeping count at cap.
        b.insert(BtbKey::Jte { bid: 0, opcode: 3 }, 3);
        assert_eq!(b.resident_jtes(), 2);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 3 }), Some(3));
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), None);
        b.assert_population_invariant();
    }

    #[test]
    fn at_cap_insert_into_jteless_set_displaces_global_lru() {
        // 4 sets x 2 ways. Cap of 1: the first JTE lands in set 1; a
        // second JTE whose key maps to set 2 must displace it rather
        // than being dropped forever (the seed defect).
        let mut cfg = BtbConfig::set_assoc(8, 2, Replacement::Lru);
        cfg.jte_cap = Some(1);
        let mut b = Btb::new(cfg);
        assert!(matches!(
            b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 0x100),
            InsertOutcome::Inserted { evicted: None, remote_jte_evicted: false }
        ));
        assert_eq!(b.resident_jtes(), 1);
        let out = b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 0x200);
        assert_eq!(out, InsertOutcome::Inserted { evicted: None, remote_jte_evicted: true });
        assert_eq!(b.resident_jtes(), 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 2 }), Some(0x200));
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), None);
        assert_eq!(b.stats.jte_cap_skips, 0);
        assert_eq!(b.stats.jte_evictions, 1);
        assert_eq!(b.stats.jte_inserts, 2);
        b.assert_population_invariant();
    }

    #[test]
    fn zero_cap_drops_every_jte() {
        let mut cfg = BtbConfig::set_assoc(8, 2, Replacement::Lru);
        cfg.jte_cap = Some(0);
        let mut b = Btb::new(cfg);
        assert_eq!(b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 1), InsertOutcome::CapSkipped);
        assert_eq!(b.resident_jtes(), 0);
        assert_eq!(b.stats.jte_cap_skips, 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), None);
        b.assert_population_invariant();
    }

    #[test]
    fn flush_jtes_spares_btb_entries() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Jte { bid: 0, opcode: 7 }, 2);
        assert_eq!(b.flush_jtes(), 1);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 7 }), None);
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(1));
        assert_eq!(b.resident_jtes(), 0);
        assert_eq!(b.stats.jte_flushes, 1);
        assert_eq!(b.stats.jte_flushed, 1);
        b.assert_population_invariant();
    }

    #[test]
    fn fully_assoc_lru() {
        let mut b = Btb::new(BtbConfig::fully_assoc(2, Replacement::Lru));
        b.insert(BtbKey::Pc(0x1000), 1);
        b.insert(BtbKey::Pc(0x2000), 2);
        let _ = b.lookup(BtbKey::Pc(0x1000)); // refresh
        b.insert(BtbKey::Pc(0x3000), 3); // evicts 0x2000
        assert_eq!(b.lookup(BtbKey::Pc(0x1000)), Some(1));
        assert_eq!(b.lookup(BtbKey::Pc(0x2000)), None);
        assert_eq!(b.lookup(BtbKey::Pc(0x3000)), Some(3));
    }

    #[test]
    fn round_robin_respects_jte_priority() {
        let mut b = Btb::new(BtbConfig::set_assoc(2, 2, Replacement::RoundRobin));
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 1);
        b.insert(BtbKey::Pc(0x1000), 2);
        // RR pointer may point at the JTE way, but a B insert must skip it.
        b.insert(BtbKey::Pc(0x2000), 3);
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 1 }), Some(1));
    }

    #[test]
    fn snapshot_reports_valid_entries() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Pc(0x1000), 0x2000);
        b.insert(BtbKey::Jte { bid: 0, opcode: 5 }, 0x3000);
        let snap = b.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().any(|&(k, _, t)| k == EntryKind::Jte && t == 0x3000));
        assert!(snap.iter().any(|&(k, _, t)| k == EntryKind::Pc && t == 0x2000));
    }

    #[test]
    fn vbbi_keys_are_separate() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Vbbi(0x123), 7);
        assert_eq!(b.lookup(BtbKey::Vbbi(0x123)), Some(7));
        // Raw key bits collide with Pc(0x123 << 2), but the kind tag
        // keeps the spaces isolated: a VBBI entry must never satisfy a
        // plain PC lookup (it would corrupt direct-branch prediction).
        assert_eq!(b.lookup(BtbKey::Pc(0x123 << 2)), None);
        // And vice versa: a PC entry never satisfies a VBBI lookup.
        b.insert(BtbKey::Pc(0x777 << 2), 9);
        assert_eq!(b.lookup(BtbKey::Vbbi(0x777)), None);
    }

    #[test]
    fn population_invariant_over_mixed_workout() {
        let mut cfg = BtbConfig::set_assoc(16, 2, Replacement::RoundRobin);
        cfg.jte_cap = Some(3);
        let mut b = Btb::new(cfg);
        for i in 0..200u64 {
            match i % 5 {
                0 | 1 => {
                    b.insert(BtbKey::Jte { bid: (i % 2) as u8, opcode: i % 23 }, i);
                }
                2 => {
                    b.insert(BtbKey::Pc(4 * (i % 64)), i);
                }
                3 => {
                    b.insert(BtbKey::Vbbi(i % 41), i);
                }
                _ => {
                    if i % 60 == 4 {
                        b.flush_jtes();
                    } else {
                        let _ = b.lookup(BtbKey::Jte { bid: 0, opcode: i % 23 });
                    }
                }
            }
            assert!(b.resident_jtes() <= 3);
            b.assert_population_invariant();
        }
    }

    #[test]
    fn fault_hooks_keep_population_identity() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 0x10);
        b.insert(BtbKey::Jte { bid: 0, opcode: 2 }, 0x20);
        b.insert(BtbKey::Pc(0x1000), 0x30);
        assert_eq!(b.fault_invalidate_jte(7), 1);
        assert_eq!(b.resident_jtes(), 1);
        assert_eq!(b.stats.jte_evictions, 1);
        b.assert_population_invariant();
        assert_eq!(b.fault_flush_all(), 1);
        assert_eq!(b.resident_jtes(), 0);
        assert_eq!(b.stats.jte_evictions, 2);
        assert!(b.snapshot().is_empty());
        b.assert_population_invariant();
        // Nothing left: both hooks are no-ops now.
        assert_eq!(b.fault_invalidate_jte(3), 0);
        b.fault_flip_bit(99);
        b.assert_population_invariant();
    }

    #[test]
    fn fault_bit_flip_never_touches_jtes() {
        let mut b = btb(2, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 5 }, 0xAAAA);
        b.insert(BtbKey::Pc(0x1000), 0x2000);
        for r in 0..64u64 {
            b.fault_flip_bit(r.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        // The JTE is untouched; the Pc entry may have any key/target but
        // is still tagged Pc.
        assert_eq!(b.lookup(BtbKey::Jte { bid: 0, opcode: 5 }), Some(0xAAAA));
        assert_eq!(b.resident_jtes(), 1);
        b.assert_population_invariant();
    }

    #[test]
    fn snapshot_words_roundtrip() {
        let mut b = btb(8, 2);
        b.insert(BtbKey::Jte { bid: 0, opcode: 1 }, 0x10);
        b.insert(BtbKey::Pc(0x1000), 0x30);
        b.insert(BtbKey::Vbbi(0x55), 0x40);
        b.flush_jtes();
        let mut w = Vec::new();
        b.snapshot_words(&mut w);
        let mut b2 = btb(8, 2);
        let mut c = crate::snapshot::Cursor::new(&w);
        b2.restore_words(&mut c).expect("roundtrip restore succeeds");
        assert_eq!(c.remaining(), 0);
        assert_eq!(b2.stats, b.stats);
        assert_eq!(b2.resident_jtes(), b.resident_jtes());
        assert_eq!(b2.snapshot(), b.snapshot());
        assert_eq!(b2.lookup(BtbKey::Pc(0x1000)), Some(0x30));
        b2.assert_population_invariant();
    }
}
